"""Smoke + shape tests for the experiment harnesses (tables, figures, §6)."""

import pytest

from repro.experiments.ablation import (
    ablate_bisection_granularity,
    ablate_evaluation_pruning,
    ablate_gfc_port_rotation,
    ablate_prepend_threshold,
)
from repro.experiments.efficiency import (
    run_att,
    run_gfc,
    run_iran,
    run_testbed_http,
    run_testbed_skype,
    run_tmobile,
)
from repro.experiments.figure4 import busy_and_quiet_summary, format_figure4, run_figure4
from repro.experiments.sprint import format_sprint, run_sprint_detection, run_sprint_probes
from repro.experiments.table1 import format_table1, liberate_row, run_table1
from repro.experiments.table2 import format_table2, run_table2


class TestTable1:
    def test_liberate_row_derived(self):
        row = liberate_row()
        assert row.overhead == "O(1)"
        assert row.client_only and row.app_agnostic
        assert row.rule_detection and row.split_reorder
        assert row.inert_injection and row.flushing

    def test_liberate_uniquely_complete(self):
        rows = run_table1()
        complete = [
            r
            for r in rows
            if r.rule_detection and r.split_reorder and r.inert_injection and r.flushing
        ]
        assert [r.method for r in complete] == ["liberate"]

    def test_formatting(self):
        assert "liberate" in format_table1(run_table1())


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2()

    def test_all_categories_present(self, rows):
        assert {r.category for r in rows} == {
            "inert-insertion",
            "splitting",
            "reordering",
            "flushing",
        }

    def test_inert_packets_bounded(self, rows):
        inert = next(r for r in rows if r.category == "inert-insertion")
        assert inert.max_packets <= 5  # §5.3: k always less than 5

    def test_splitting_cost_is_headers(self, rows):
        splitting = next(r for r in rows if r.category == "splitting")
        assert splitting.max_bytes <= splitting.max_packets * 40

    def test_flushing_cost_is_seconds(self, rows):
        flushing = next(r for r in rows if r.category == "flushing")
        assert 40 <= flushing.max_seconds <= 240

    def test_formatting(self, rows):
        assert "inert-insertion" in format_table2(rows)


class TestFigure4:
    @pytest.fixture(scope="class")
    def samples(self):
        return run_figure4(hours=(2, 3, 13, 14, 20), trials=2)

    def test_quiet_hours_never_flush(self, samples):
        quiet = [s for s in samples if s.hour in (2, 3)]
        assert all(s.min_successful_delay is None for s in quiet)

    def test_busy_hours_flush(self, samples):
        busy = [s for s in samples if s.hour in (13, 14, 20)]
        assert all(s.min_successful_delay is not None for s in busy)

    def test_delays_in_probe_range(self, samples):
        delays = [s.min_successful_delay for s in samples if s.min_successful_delay]
        assert all(10 <= d <= 240 for d in delays)

    def test_peak_hour_flushes_fastest(self, samples):
        def best(hour):
            values = [
                s.min_successful_delay for s in samples if s.hour == hour and s.min_successful_delay
            ]
            return min(values)

        assert best(20) <= best(13)

    def test_summary_and_format(self, samples):
        summary = busy_and_quiet_summary(samples)
        assert summary["busy_success_rate"] == 1.0
        assert summary["quiet_success_rate"] == 0.0
        assert "#" in format_figure4(samples)


class TestEfficiency:
    def test_testbed_http_rounds(self):
        result = run_testbed_http()
        assert result.rounds <= 90  # paper: <=70, same order
        assert any("video.example.com" in f for f in result.matching_fields)

    def test_testbed_skype(self):
        result = run_testbed_skype()
        assert result.rounds <= 150  # paper: 115
        assert result.matching_fields  # binary STUN fields found

    def test_tmobile(self):
        result = run_tmobile()
        assert 30 <= result.rounds <= 120  # paper: 80-95
        assert any("cloudfront.net" in f for f in result.matching_fields)
        assert result.bytes_used > 5_000_000  # megabytes of replay data (paper: 18 MB)

    def test_att_server_side(self):
        result = run_att()
        assert any("Content-Type: video" in f for f in result.server_side_fields)

    def test_gfc(self):
        result = run_gfc()
        assert result.rounds <= 120  # paper: 86
        assert any("economist.com" in f for f in result.matching_fields)

    def test_iran_inspects_all(self):
        result = run_iran()
        assert result.inspects_all_packets
        assert any("facebook.com" in f for f in result.matching_fields)


class TestSprintExperiment:
    def test_probes_all_clean(self):
        probes = run_sprint_probes()
        assert len(probes) == 5
        assert all(not p.differentiated for p in probes)

    def test_detection_verdict(self):
        assert run_sprint_detection()

    def test_formatting(self):
        assert "video port 80" in format_sprint(run_sprint_probes())


class TestAblations:
    def test_pruning_saves_replays(self):
        result = ablate_evaluation_pruning()
        assert result.with_choice <= result.without_choice

    def test_granularity_tradeoff(self):
        result = ablate_bisection_granularity()
        assert result.with_choice > result.without_choice  # byte-exact costs more

    def test_port_rotation_required_for_gfc(self):
        result = ablate_gfc_port_rotation()
        assert result.with_choice == 1.0
        assert result.without_choice == 0.0

    def test_prepend_threshold_robust(self):
        result = ablate_prepend_threshold()
        assert result.with_choice == 1.0
