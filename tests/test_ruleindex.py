"""Differential tests: compiled rule index vs. the naive per-rule scan.

The compiled index (`repro.middlebox.ruleindex`) promises exact equivalence
with the per-rule `keyword in buffer` loop the DPI engine used before it —
first match in rule-list order, position rules only at their packet index,
STUN rules parsing the buffer.  These tests check that promise against a
straightforward reference implementation over randomized rule sets and
payloads drawn from a tiny alphabet so keyword collisions, overlaps and
nested patterns actually occur.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.middlebox.ruleindex import CompiledRuleSet, MultiPatternScanner, StreamScan
from repro.middlebox.rules import MatchRule, skype_stun_rule
from repro.middlebox.policy import RulePolicy
from repro.traffic.stun import ATTR_SOFTWARE, stun_binding_request

# A tiny alphabet makes overlapping / prefix-nested keywords common.
keyword_st = st.lists(st.sampled_from([b"a", b"b", b"c"]), min_size=1, max_size=4).map(b"".join)
chunk_st = st.lists(st.sampled_from([b"a", b"b", b"c", b"x"]), min_size=0, max_size=10).map(
    b"".join
)

rule_st = st.builds(
    MatchRule,
    name=st.sampled_from(["r0", "r1", "r2"]),
    keywords=st.lists(keyword_st, min_size=1, max_size=3),
    require_all=st.booleans(),
    protocol=st.sampled_from(["tcp", "udp", "any"]),
    ports=st.sampled_from([None, frozenset({80}), frozenset({80, 443})]),
    direction=st.sampled_from(["client", "server", "both"]),
    position=st.sampled_from([None, None, None, 0, 1]),
)

context_st = st.tuples(
    st.sampled_from(["tcp", "udp"]),
    st.sampled_from([80, 443, 9999]),
    st.sampled_from(["client", "server"]),
)


def naive_match(rules, protocol, port, direction, buffer, payload, index):
    """The engine's original per-rule loop, verbatim semantics."""
    for rule in rules:
        if not rule.applies_to(protocol, port, direction):
            continue
        if rule.position is not None:
            if index == rule.position and rule.matches_buffer(bytes(payload)):
                return rule
            continue
        if rule.matches_buffer(bytes(buffer)):
            return rule
    return None


def naive_stateless(rules, protocol, port, direction, payload):
    for rule in rules:
        if rule.applies_to(protocol, port, direction) and rule.matches_buffer(bytes(payload)):
            return rule
    return None


class TestMultiPatternScanner:
    @given(patterns=st.lists(keyword_st, min_size=1, max_size=8), data=chunk_st)
    def test_equals_per_pattern_search(self, patterns, data):
        scanner = MultiPatternScanner(patterns)
        assert scanner.scan(data) == {i for i, p in enumerate(patterns) if p in data}

    def test_overlapping_and_nested_patterns(self):
        # "aba" overlaps itself in "ababa"; "ab" and "a" are prefixes of it.
        scanner = MultiPatternScanner([b"aba", b"ab", b"a", b"ba", b"caba"])
        assert scanner.scan(b"ababa") == {0, 1, 2, 3}
        assert scanner.scan(b"xcabax") == {0, 1, 2, 3, 4}
        assert scanner.scan(b"xxx") == set()

    @given(patterns=st.lists(keyword_st, min_size=1, max_size=6), chunks=st.lists(chunk_st, min_size=1, max_size=6))
    def test_stream_feed_equals_full_rescan(self, patterns, chunks):
        scanner = MultiPatternScanner(patterns)
        scan = StreamScan()
        buffer = bytearray()
        for chunk in chunks:
            buffer.extend(chunk)
            incremental = scan.feed(scanner, buffer)
            assert incremental == scanner.scan(bytes(buffer))


class TestCompiledViewDifferential:
    @settings(max_examples=200)
    @given(
        rules=st.lists(rule_st, min_size=0, max_size=6),
        chunks=st.lists(chunk_st, min_size=1, max_size=5),
        context=context_st,
        limit=st.sampled_from([None, None, 6]),
    )
    def test_stream_match_equals_naive(self, rules, chunks, context, limit):
        protocol, port, direction = context
        view = CompiledRuleSet(rules).view(protocol, port, direction)
        scan = StreamScan()
        buffer = bytearray()
        for index, chunk in enumerate(chunks):
            # Same order as the engine: append, cap at the byte limit, match.
            buffer.extend(chunk)
            if limit is not None and len(buffer) > limit:
                del buffer[limit:]
            expected = naive_match(rules, protocol, port, direction, buffer, chunk, index)
            got = view.match(buffer, chunk, index, scan)
            assert got is expected, (bytes(buffer), chunk, index)

    @settings(max_examples=200)
    @given(
        rules=st.lists(rule_st, min_size=0, max_size=6),
        chunks=st.lists(chunk_st, min_size=1, max_size=5),
        context=context_st,
    )
    def test_per_packet_match_equals_naive(self, rules, chunks, context):
        protocol, port, direction = context
        view = CompiledRuleSet(rules).view(protocol, port, direction)
        for index, chunk in enumerate(chunks):
            expected = naive_match(rules, protocol, port, direction, chunk, chunk, index)
            assert view.match(chunk, chunk, index, None) is expected

    @settings(max_examples=200)
    @given(
        rules=st.lists(rule_st, min_size=0, max_size=6),
        payload=chunk_st,
        context=context_st,
    )
    def test_stateless_match_equals_naive(self, rules, payload, context):
        protocol, port, direction = context
        view = CompiledRuleSet(rules).view(protocol, port, direction)
        expected = naive_stateless(rules, protocol, port, direction, payload)
        assert view.match_stateless(payload) is expected

    def test_rule_order_wins_over_scan_order(self):
        # Both rules match; the earlier one in the list must be returned even
        # though its keyword is shorter and interned later.
        rules = [
            MatchRule(name="late-keyword", keywords=[b"b"]),
            MatchRule(name="long-keyword", keywords=[b"abc"]),
        ]
        view = CompiledRuleSet(rules).view("tcp", 80, "client")
        assert view.match(b"abc", b"abc", 0, None) is rules[0]
        assert view.match_stateless(b"abc") is rules[0]

    def test_stun_rules_match_and_respect_position(self):
        stun = skype_stun_rule(RulePolicy())
        keyword = MatchRule(name="kw", keywords=[b"Skype"], protocol="udp")
        request = stun_binding_request()
        probe = stun_binding_request(include_service_quality=False)
        for rules in ([stun, keyword], [keyword, stun]):
            view = CompiledRuleSet(rules).view("udp", 3478, "client")
            scan = StreamScan()
            got = view.match(bytearray(request), request, 0, scan)
            expected = naive_match(rules, "udp", 3478, "client", request, request, 0)
            assert got is expected
        # Position 0 only: at index 1 the STUN rule must not fire.
        view = CompiledRuleSet([stun]).view("udp", 3478, "client")
        assert view.match(bytearray(request), request, 1, StreamScan()) is None
        # Stateless ignores position, and attribute presence still matters.
        assert view.match_stateless(request) is stun
        assert view.match_stateless(probe) is None
        # A STUN-but-wrong-attribute rule never fires on ATTR_SOFTWARE alone.
        other = MatchRule(
            name="other-attr", protocol="udp", stun_attribute=ATTR_SOFTWARE, keywords=[]
        )
        assert CompiledRuleSet([other]).view("udp", 3478, "client").match_stateless(probe) is other

    def test_require_all_across_packets(self):
        rule = MatchRule(name="both", keywords=[b"aa", b"bb"], require_all=True)
        view = CompiledRuleSet([rule]).view("tcp", 80, "client")
        scan = StreamScan()
        buffer = bytearray(b"aa")
        assert view.match(buffer, b"aa", 0, scan) is None
        buffer.extend(b"xbb")
        # Second keyword arrives in a later packet; the stream view must
        # remember the first across feeds, exactly like rescanning the buffer.
        assert view.match(buffer, b"xbb", 1, scan) is rule

    def test_keyword_spanning_packet_boundary(self):
        rule = MatchRule(name="span", keywords=[b"abcd"])
        view = CompiledRuleSet([rule]).view("tcp", 80, "client")
        scan = StreamScan()
        buffer = bytearray(b"ab")
        assert view.match(buffer, b"ab", 0, scan) is None
        buffer.extend(b"cd")
        assert view.match(buffer, b"cd", 1, scan) is rule
