"""Unit tests for ICMP messages and IP option constructors."""

import pytest

from repro.packets.icmp import (
    ICMP_TIME_EXCEEDED,
    ICMPMessage,
    icmp_time_exceeded,
)
from repro.packets.options import (
    DEPRECATED_OPTION_TYPES,
    deprecated_ip_option,
    invalid_ip_option,
    nop_padding,
    options_are_wellformed,
    options_contain_deprecated,
    pad_options,
    record_route_option,
)


class TestICMP:
    def test_roundtrip(self):
        message = ICMPMessage(icmp_type=8, code=0, rest=b"\x00\x01\x00\x02", payload=b"ping")
        parsed = ICMPMessage.from_bytes(message.to_bytes())
        assert parsed.icmp_type == 8
        assert parsed.rest == b"\x00\x01\x00\x02"
        assert parsed.payload == b"ping"

    def test_time_exceeded_builder(self):
        original = bytes(range(40))
        message = icmp_time_exceeded(original)
        assert message.icmp_type == ICMP_TIME_EXCEEDED
        assert message.is_time_exceeded
        assert message.payload == original[:28]

    def test_rest_length_enforced(self):
        with pytest.raises(ValueError):
            ICMPMessage(rest=b"\x00")

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            ICMPMessage.from_bytes(b"\x0b\x00")

    def test_wire_length(self):
        assert ICMPMessage(payload=b"abc").wire_length() == 11


class TestOptions:
    def test_nop_padding(self):
        assert nop_padding(4) == b"\x01\x01\x01\x01"

    def test_nop_padding_rejects_negative(self):
        with pytest.raises(ValueError):
            nop_padding(-1)

    def test_record_route_wellformed(self):
        assert options_are_wellformed(record_route_option())

    def test_record_route_slot_bounds(self):
        with pytest.raises(ValueError):
            record_route_option(slots=10)

    def test_invalid_option_malformed(self):
        assert not options_are_wellformed(invalid_ip_option())

    def test_deprecated_option_wellformed_but_deprecated(self):
        option = deprecated_ip_option()
        assert options_are_wellformed(option)
        assert options_contain_deprecated(option)

    def test_nop_not_deprecated(self):
        assert not options_contain_deprecated(nop_padding())

    def test_pad_options_multiple_of_four(self):
        assert len(pad_options(b"\x01\x01\x01")) == 4
        assert pad_options(b"") == b""

    def test_deprecated_type_constants(self):
        assert 136 in DEPRECATED_OPTION_TYPES  # Stream ID (RFC 6814)

    def test_eol_terminates_walk(self):
        assert options_are_wellformed(b"\x00\xff\xff")  # junk after EOL ignored

    def test_length_overrun_detected(self):
        assert not options_are_wellformed(b"\x07\x40")  # claims 64 bytes
