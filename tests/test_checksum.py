"""Unit tests for the RFC 1071 checksum and address helpers."""

import pytest

from repro.packets.checksum import (
    bytes_to_ip,
    internet_checksum,
    ip_to_bytes,
    pseudo_header,
    verify_checksum,
)


class TestInternetChecksum:
    def test_known_vector(self):
        # Classic example from RFC 1071 discussions.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_inserting_checksum_verifies(self):
        data = b"\x45\x00\x00\x1c\x00\x01\x00\x00\x40\x06\x00\x00" + bytes(8)
        csum = internet_checksum(data)
        patched = data[:10] + csum.to_bytes(2, "big") + data[12:]
        assert verify_checksum(patched)

    def test_corruption_detected(self):
        data = b"\x45\x00\x00\x1c\x00\x01\x00\x00\x40\x06\x00\x00" + bytes(8)
        csum = internet_checksum(data)
        patched = bytearray(data[:10] + csum.to_bytes(2, "big") + data[12:])
        patched[0] ^= 0xFF
        assert not verify_checksum(bytes(patched))

    def test_result_is_16_bit(self):
        assert 0 <= internet_checksum(bytes(range(256)) * 7) <= 0xFFFF


class TestAddressConversion:
    def test_roundtrip(self):
        assert bytes_to_ip(ip_to_bytes("192.0.2.33")) == "192.0.2.33"

    def test_known_bytes(self):
        assert ip_to_bytes("10.0.0.1") == b"\x0a\x00\x00\x01"

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            ip_to_bytes("10.0.0")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_bytes("10.0.0.256")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            ip_to_bytes("a.b.c.d")

    def test_bytes_to_ip_needs_four(self):
        with pytest.raises(ValueError):
            bytes_to_ip(b"\x01\x02\x03")


class TestPseudoHeader:
    def test_layout(self):
        header = pseudo_header("1.2.3.4", "5.6.7.8", 6, 20)
        assert header == b"\x01\x02\x03\x04\x05\x06\x07\x08\x00\x06\x00\x14"

    def test_length_field(self):
        assert pseudo_header("0.0.0.0", "0.0.0.0", 17, 0xABCD)[-2:] == b"\xab\xcd"
