"""The HTML experiment dashboard: model building, rendering, drift check."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.obs import report_html

pytestmark = pytest.mark.obs


def _sample_model() -> dict:
    return report_html.build_model(
        trace_summary={
            "events": 12,
            "flows": 2,
            "kinds": {"mbx.verdict": 2, "table3.cell": 2},
            "rules": {
                "video-throttle": {
                    "matches": 3,
                    "events": 3,
                    "actions": {"throttle": 3},
                    "elements": ["testbed-device"],
                }
            },
            "drops": {"fault.drop:loss": 1},
            "verdicts": {"throttled": 2},
            "arq": {},
            "cells": [
                {
                    "kind": "table3.cell",
                    "env": "testbed",
                    "technique": "ip-low-ttl",
                    "cc": "Y",
                    "rs": "N",
                },
                {
                    "kind": "table3.cell",
                    "env": "sprint",
                    "technique": "ip-low-ttl",
                    "cc": "-",
                    "rs": "-",
                },
                {"kind": "figure4.sample", "hour": 3, "trial": 0, "min_delay": None},
            ],
        },
        metrics={
            **{key: 5 for key in report_html.HEADLINE_METRICS},
            "mbx.scan.payload_bytes": {
                "count": 4,
                "sum": 900.0,
                "buckets": {"100": 1, "250": 3, "inf": 4},
            },
        },
        profile={
            "table3.columns": {"wall_seconds": 1.5, "cpu_seconds": 1.2, "calls": 1},
            "env.build.testbed": {"wall_seconds": 0.3, "cpu_seconds": 0.3, "calls": 2},
        },
        events={"exp.start": 1, "table3.cell": 2},
        history={
            "obs_overhead": [
                {"name": "obs_overhead", "seconds": 1.0},
                {"name": "obs_overhead", "seconds": 1.2},
            ]
        },
        flags=[
            {
                "bench": "obs_overhead",
                "key": "seconds",
                "message": "1.2s vs median 1.0s",
            }
        ],
    )


class TestModel:
    def test_model_carries_headline_catalog(self):
        model = report_html.build_model()
        assert model["headline"] == list(report_html.HEADLINE_METRICS)
        assert model["schema"] == report_html.DASHBOARD_SCHEMA_VERSION

    def test_missing_metric_keys_empty_when_all_present(self):
        assert report_html.missing_metric_keys(_sample_model()) == []

    def test_missing_metric_keys_flags_dropped_series(self):
        model = _sample_model()
        del model["metrics"]["table3.cells"]
        assert report_html.missing_metric_keys(model) == ["table3.cells"]

    def test_missing_metric_keys_without_snapshot(self):
        assert report_html.missing_metric_keys(report_html.build_model()) == list(
            report_html.HEADLINE_METRICS
        )


class TestRendering:
    def test_sections_render(self):
        page = report_html.render_dashboard(_sample_model())
        assert "<!DOCTYPE html>" in page
        for heading in (
            "Headline metrics",
            "Experiment cells",
            "Metrics",
            "Stage profile",
            "Flow trace",
            "Telemetry events",
            "Benchmark history",
        ):
            assert f"<h2>{heading}</h2>" in page
        # Cell matrix with drill-down and the figure-4 sample summary.
        assert "CC=Y" in page and "<details>" in page
        assert "1 figure-4 sample(s)" in page
        # Inline SVG charts: histogram bars, profile waterfall, history trend.
        assert page.count("<svg") >= 3
        assert "polyline" in page
        assert "watchdog flags" in page

    def test_dashboard_is_self_contained(self):
        page = report_html.render_dashboard(_sample_model())
        assert "<script src" not in page
        assert "<link" not in page
        assert "http://" not in page and "https://" not in page

    def test_embedded_model_round_trips(self, tmp_path):
        model = _sample_model()
        out = tmp_path / "dash.html"
        report_html.write_dashboard(model, str(out))
        assert report_html.load_model(str(out)) == model

    def test_empty_model_renders_placeholder(self):
        page = report_html.render_dashboard(report_html.build_model())
        assert "no observability artifacts" in page

    def test_html_escaping(self):
        model = report_html.build_model(
            metrics={"table3.cells": 1}, title="<script>alert(1)</script>"
        )
        page = report_html.render_dashboard(model)
        # Visible HTML escapes the title; the embedded JSON model keeps the
        # raw string but escapes "</" so nothing can close the script tag.
        assert "&lt;script&gt;" in page
        visible = page.split('<script type="application/json"')[0]
        assert "<script>alert" not in visible
        assert page.count("</script>") == 1  # only the model block's own close

    def test_render_text_shares_the_model(self):
        text = report_html.render_text(_sample_model())
        assert "trace: 12 events over 2 flow(s)" in text
        assert "metrics:" in text
        assert "watchdog: 1 regression flag(s)" in text


class TestSvgHelpers:
    def test_spark_bars(self):
        svg = report_html._spark_bars([0, 2, 5])
        assert svg.startswith("<svg") and svg.count("<rect") == 3

    def test_spark_line_single_point(self):
        assert "polyline" in report_html._spark_line([1.0])

    def test_empty_series(self):
        assert report_html._spark_bars([]) == ""
        assert report_html._spark_line([]) == ""


class TestCliObsHtml:
    @pytest.fixture
    def trace_file(self, tmp_path):
        from repro.core.pipeline import Liberate
        from repro.envs import make_testbed
        from repro.obs import trace as obs_trace
        from repro.traffic.http import http_get_trace

        path = tmp_path / "trace.jsonl"
        with obs_trace.tracing() as tracer:
            Liberate(make_testbed(), stop_at_first=True).run(
                http_get_trace("video.example.com", response_body=b"v" * 600)
            )
            tracer.export_jsonl(str(path))
        return path

    def test_render_from_trace(self, tmp_path, trace_file, capsys):
        out = tmp_path / "dash.html"
        code = main(["obs", "html", str(trace_file), "--out", str(out)])
        assert code == 0
        page = out.read_text()
        assert "Flow trace" in page
        assert "wrote dashboard" in capsys.readouterr().out

    def test_render_with_metrics_and_history(self, tmp_path, trace_file):
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps({key: 1 for key in report_html.HEADLINE_METRICS}))
        history = tmp_path / "history.jsonl"
        history.write_text(
            json.dumps({"name": "bench_packets", "seconds": 0.5}) + "\n"
        )
        out = tmp_path / "dash.html"
        code = main(
            [
                "obs",
                "html",
                str(trace_file),
                "--metrics-file",
                str(metrics),
                "--history",
                str(history),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        page = out.read_text()
        assert "Headline metrics" in page
        assert "bench_packets" in page

    def test_check_passes_on_complete_snapshot(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        report_html.write_dashboard(_sample_model(), str(out))
        assert main(["obs", "html", "--check", str(out)]) == 0
        assert "all headline metric keys present" in capsys.readouterr().out

    def test_check_fails_on_metric_drift(self, tmp_path, capsys):
        model = _sample_model()
        del model["metrics"]["replay.runs"]
        out = tmp_path / "dash.html"
        report_html.write_dashboard(model, str(out))
        assert main(["obs", "html", "--check", str(out)]) == 1
        assert "replay.runs" in capsys.readouterr().err

    def test_check_rejects_non_dashboard_file(self, tmp_path, capsys):
        stray = tmp_path / "not-a-dashboard.html"
        stray.write_text("<html></html>")
        assert main(["obs", "html", "--check", str(stray)]) == 2
        assert "no embedded dashboard model" in capsys.readouterr().err

    def test_trace_file_required_without_check(self, capsys):
        assert main(["obs", "html"]) == 2
        assert "trace file is required" in capsys.readouterr().err


class TestCliDashboardFlags:
    def test_dashboard_implies_metrics(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "table3",
                "--envs",
                "testbed",
                "--fast",
                "--dashboard",
                "--events-out",
                "events.jsonl",
            ]
        )
        assert code == 0
        page = (tmp_path / "dashboard.html").read_text()
        # --dashboard implied --metrics: the headline tiles have values.
        assert "Headline metrics" in page
        model = report_html.load_model(str(tmp_path / "dashboard.html"))
        assert model["metrics"]["table3.cells"] > 0
        assert report_html.missing_metric_keys(model) == []
        # The telemetry event log was exported alongside.
        header = (tmp_path / "events.jsonl").read_text().splitlines()[0]
        assert json.loads(header)["kind"] == "events.header"
        out = capsys.readouterr()
        assert "--- metrics ---" in out.out

    def test_dashboard_custom_path(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["table3", "--envs", "testbed", "--fast", "--dashboard", "custom.html"]
        )
        assert code == 0
        assert (tmp_path / "custom.html").exists()
