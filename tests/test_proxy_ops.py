"""Live serving + the ops endpoint under concurrent load.

The acceptance claims from the operational-observability work: while the
proxy is actively serving, ``/metrics`` answers valid Prometheus text
exposition, ``/healthz`` flips ok→degraded the moment shedding starts, a
forced shed episode produces exactly one flight-recorder dump readable by
the trace analyzer, and the selfcheck CLI surfaces p50/p99 verdict
latency.
"""

import asyncio
import json
import re

import pytest

from repro.cli.main import main as cli_main
from repro.core.pipeline import Liberate
from repro.core.proxy_server import ProxyServer, drive_clients, request_verdict
from repro.envs import ENVIRONMENT_FACTORIES
from repro.middlebox.overload import OverloadPolicy
from repro.obs import flight as obs_flight
from repro.obs import ops as obs_ops
from repro.obs.analyze import TraceIndex
from repro.obs.ops import OpsServer, http_get
from repro.traffic.http import http_get_trace

pytestmark = pytest.mark.obs


def make_ladder(window: int = 5, failure_threshold: int = 3):
    env = ENVIRONMENT_FACTORIES["testbed"]()
    base = http_get_trace("video.example.com", response_body=b"x" * 800)
    ladder = Liberate(env).deploy_ladder(
        base, window=window, failure_threshold=failure_threshold
    )
    return ladder, base


async def _serve_with_ops(server, ops_server, coroutine):
    await server.start()
    await ops_server.start()
    try:
        return await coroutine()
    finally:
        await ops_server.stop()
        await server.stop()


_SAMPLE_LINE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE+.\-]+$")


class TestOpsEndpointUnderLoad:
    def test_metrics_healthz_statusz_respond_mid_serve(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port)
        ops_server = OpsServer(server)
        payloads = [base.client_payloads()[0]] * 48

        with obs_ops.ops_recording():

            async def drive():
                driver = asyncio.ensure_future(
                    drive_clients(
                        "127.0.0.1", server.bound_port, payloads, concurrency=16
                    )
                )
                # Scrape all three surfaces while the driver is in flight.
                health_code, health_body = await http_get(
                    "127.0.0.1", ops_server.bound_port, "/healthz"
                )
                metrics_code, metrics_body = await http_get(
                    "127.0.0.1", ops_server.bound_port, "/metrics"
                )
                status_code, status_body = await http_get(
                    "127.0.0.1", ops_server.bound_port, "/statusz"
                )
                verdicts = await driver
                return (
                    (health_code, health_body),
                    (metrics_code, metrics_body),
                    (status_code, status_body),
                    verdicts,
                )

            health, metrics, statusz, verdicts = asyncio.run(
                _serve_with_ops(server, ops_server, drive)
            )

        assert len(verdicts) == len(payloads)
        assert health[0] == 200
        assert json.loads(health[1])["status"] == "ok"
        assert metrics[0] == 200
        for line in metrics[1].splitlines():
            if line and not line.startswith("#"):
                assert _SAMPLE_LINE.match(line), line
        status = json.loads(statusz[1])
        assert status["stats"]["flows"] >= 1
        assert status["health"]["status"] == "ok"
        assert "ops" in status

    def test_metrics_exposes_verdict_latency_after_load(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port)
        ops_server = OpsServer(server)
        payloads = [base.client_payloads()[0]] * 20

        with obs_ops.ops_recording() as registry:

            async def drive():
                await drive_clients("127.0.0.1", server.bound_port, payloads)
                return await http_get("127.0.0.1", ops_server.bound_port, "/metrics")

            _code, body = asyncio.run(_serve_with_ops(server, ops_server, drive))
            assert registry.recorder("proxy.verdict").count == len(payloads)

        assert f"liberate_ops_proxy_verdict_seconds_count {len(payloads)}" in body
        assert 'liberate_ops_proxy_verdict_seconds_bucket{le="+Inf"}' in body

    def test_unknown_route_404_and_non_get_405(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port)
        ops_server = OpsServer(server)

        async def drive():
            code, _body = await http_get("127.0.0.1", ops_server.bound_port, "/nope")
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", ops_server.bound_port
            )
            writer.write(b"POST /metrics HTTP/1.1\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return code, raw

        not_found, post_raw = asyncio.run(_serve_with_ops(server, ops_server, drive))
        assert not_found == 404
        assert b"405" in post_raw.split(b"\r\n", 1)[0]


class TestHealthFlipsDegraded:
    def test_healthz_flips_ok_to_degraded_when_shedding_starts(self):
        ladder, base = make_ladder()
        server = ProxyServer(
            ladder,
            server_port=base.server_port,
            max_active=4,
            overload=OverloadPolicy(shed_start=0.25, shed_max=1.0),
        )
        ops_server = OpsServer(server)
        payloads = [base.client_payloads()[0]] * 48

        with obs_ops.ops_recording():

            async def drive():
                before_code, before_body = await http_get(
                    "127.0.0.1", ops_server.bound_port, "/healthz"
                )
                await drive_clients(
                    "127.0.0.1", server.bound_port, payloads, concurrency=48
                )
                after_code, after_body = await http_get(
                    "127.0.0.1", ops_server.bound_port, "/healthz"
                )
                return before_code, before_body, after_code, after_body

            before_code, before_body, after_code, after_body = asyncio.run(
                _serve_with_ops(server, ops_server, drive)
            )

        assert before_code == 200
        assert json.loads(before_body)["status"] == "ok"
        assert server.stats.shed > 0, "the overload run must actually shed"
        after = json.loads(after_body)
        assert after["status"] in ("degraded", "unhealthy")
        assert after["shed_rate"] > 0
        assert any("shed" in reason for reason in after["reasons"])
        # degraded still answers 200 (a scraper must be able to read it);
        # only unhealthy turns the status code.
        if after["status"] == "degraded":
            assert after_code == 200
        else:
            assert after_code == 503

    def test_exhausted_ladder_is_unhealthy_503(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port)
        ops_server = OpsServer(server)
        # Exhaust the ladder directly.
        ladder.rung = len(ladder.techniques)
        ladder.exhausted = True

        async def drive():
            return await http_get("127.0.0.1", ops_server.bound_port, "/healthz")

        code, body = asyncio.run(_serve_with_ops(server, ops_server, drive))
        assert ladder.exhausted
        assert code == 503
        assert json.loads(body)["status"] == "unhealthy"


class TestFlightEpisodesLive:
    def test_forced_shed_episode_dumps_exactly_once(self, tmp_path):
        ladder, base = make_ladder()
        server = ProxyServer(
            ladder,
            server_port=base.server_port,
            max_active=2,
            overload=OverloadPolicy(shed_start=0.1, shed_max=1.0),
        )
        payloads = [base.client_payloads()[0]] * 32

        obs_flight.enable_flight(tmp_path, sample_every=4)
        try:

            async def drive(srv):
                await srv.start()
                try:
                    await drive_clients(
                        "127.0.0.1", srv.bound_port, payloads, concurrency=32
                    )
                finally:
                    await srv.stop()

            asyncio.run(drive(server))
            stats = obs_flight.FLIGHT.stats()
        finally:
            recorder = obs_flight.FLIGHT
            obs_flight.disable_flight()

        assert server.stats.shed > 2, "storm must shed repeatedly"
        assert stats["dumps"] == 1, stats
        assert stats["suppressed_trips"] == server.stats.shed - 1
        dump = tmp_path / stats["dump_paths"][0].split("/")[-1]
        index = TraceIndex.load(str(dump))
        trips = index.query(kind="flight.trip")
        assert len(trips) == 1
        assert trips[0]["reason"] == "overload_shed"
        assert recorder.sample_every == 4

    def test_step_down_trips_its_own_episode(self, tmp_path):
        from tests.test_proxy_server import _KilledTechnique

        ladder, base = make_ladder(window=4, failure_threshold=2)
        server = ProxyServer(ladder, server_port=base.server_port)
        matching = base.client_payloads()[0]

        obs_flight.enable_flight(tmp_path, sample_every=1)
        try:

            async def drive(srv):
                await srv.start()
                try:
                    for _ in range(3):
                        await request_verdict("127.0.0.1", srv.bound_port, matching)
                    ladder.techniques[0] = _KilledTechnique(ladder.techniques[0])
                    for _ in range(6):
                        await request_verdict("127.0.0.1", srv.bound_port, matching)
                finally:
                    await srv.stop()

            asyncio.run(drive(server))
            stats = obs_flight.FLIGHT.stats()
        finally:
            obs_flight.disable_flight()

        assert server.stats.step_downs == 1
        assert stats["dumps"] == 1
        index = TraceIndex.load(stats["dump_paths"][0])
        trip = index.query(kind="flight.trip")[0]
        assert trip["reason"] == "step_down"
        assert trip["from_technique"] == ladder.step_downs[0].from_technique
        # The sampled flow records leading up to the anomaly survived.
        assert index.kinds().get("proxy.flow", 0) >= 3


class TestServeSelfcheckCLI:
    def test_selfcheck_reports_latency_and_ops_health(self, tmp_path, capsys):
        code = cli_main(
            [
                "serve",
                "--env",
                "testbed",
                "--selfcheck",
                "24",
                "--concurrency",
                "8",
                "--ops-port",
                "0",
                "--flight-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        verdict = report["latency"]["proxy.verdict"]
        assert verdict["count"] == 24
        assert 0 < verdict["p50_ms"] <= verdict["p99_ms"]
        assert report["ops"]["healthz"]["status"] == "ok"
        assert report["ops"]["healthz_status"] == 200
        assert report["ops"]["metrics_status"] == 200
        assert report["ops"]["metrics_series"] > 0
        assert report["verdicts_returned"] == 24
        # The full overload/ladder tally is in the selfcheck JSON now.
        for key in ("shed", "step_downs", "overload_transitions", "verdict_window"):
            assert key in report, key
        assert report["flight"]["offered"] == 24

    def test_selfcheck_no_flight_flag(self, capsys):
        code = cli_main(
            [
                "serve",
                "--env",
                "testbed",
                "--selfcheck",
                "4",
                "--concurrency",
                "2",
                "--no-flight",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert "flight" not in report
        assert report["latency"]["proxy.verdict"]["count"] == 4
