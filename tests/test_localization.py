"""Tests for middlebox localization via TTL probes (§5.2)."""

from repro.core.localization import locate_middlebox


class TestLocalization:
    def test_testbed_zero_hops(self, testbed, classified_trace):
        hops, rounds = locate_middlebox(testbed, classified_trace)
        assert hops == 0
        assert rounds >= 1

    def test_tmobile_two_hops(self, tmobile, video_trace):
        hops, _ = locate_middlebox(tmobile, video_trace)
        assert hops == 2

    def test_gfc_nine_hops(self, gfc, censored_trace):
        """TTL=10 reaches the GFC (§6.5) — nine decrementing hops out."""
        hops, _ = locate_middlebox(gfc, censored_trace)
        assert hops == 9

    def test_iran_seven_hops(self, iran, iran_trace):
        """"The classifier is eight hops away" — probes with TTL 8 reach it."""
        hops, _ = locate_middlebox(iran, iran_trace)
        assert hops == 7

    def test_sprint_nothing_found(self, sprint, video_trace):
        hops, rounds = locate_middlebox(sprint, video_trace, max_ttl=6)
        assert hops is None
        assert rounds == 6

    def test_rounds_scale_with_distance(self, gfc, censored_trace):
        _, rounds = locate_middlebox(gfc, censored_trace)
        assert rounds == 10  # one probe per TTL until the signal fires
