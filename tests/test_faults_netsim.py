"""Fault-injection netsim layer: determinism, every fault class, wiring."""

from __future__ import annotations

import pytest

from repro.envs import ENVIRONMENT_FACTORIES, make_gfc, make_testbed
from repro.envs.base import install_faults
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.faults import (
    FAULT_PROFILES,
    FaultElement,
    FaultProfile,
    bursty_profile,
    chaos_profile,
    lossy_profile,
)
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.netsim.reassembler import FragmentReassembler
from repro.packets.flow import Direction
from repro.packets.fragment import fragment_packet, reassemble_fragments
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.replay.session import ReplaySession
from repro.traffic.http import http_get_trace

pytestmark = pytest.mark.chaos

CLIENT = "10.1.0.2"
SERVER = "203.0.113.50"


def _ctx(clock=None):
    return TransitContext(
        clock=clock or VirtualClock(), inject_back=lambda p: None, inject_forward=lambda p: None
    )


def _packet(payload=b"hello fault injection", sport=41_000, seq=1):
    segment = TCPSegment(
        sport=sport, dport=80, seq=seq, ack=1, flags=TCPFlags.ACK | TCPFlags.PSH, payload=payload
    )
    return IPPacket(src=CLIENT, dst=SERVER, transport=segment)


def _drive(element, count=400, ctx=None, sport=41_000):
    ctx = ctx or _ctx()
    out = []
    for i in range(count):
        out.extend(element.process(_packet(seq=1 + i, sport=sport), Direction.CLIENT_TO_SERVER, ctx))
    return out


class TestFaultProfile:
    def test_zero_profile_is_zero(self):
        assert FaultProfile(seed=7).is_zero()

    @pytest.mark.parametrize("name", sorted(FAULT_PROFILES))
    def test_named_profiles_are_nonzero(self, name):
        assert not FAULT_PROFILES[name](1).is_zero()

    def test_with_seed_changes_only_the_seed(self):
        profile = lossy_profile(1).with_seed(99)
        assert profile.seed == 99
        assert profile.loss_rate == lossy_profile(1).loss_rate


class TestFaultElement:
    def test_iid_loss_and_duplication_fire(self):
        element = FaultElement(lossy_profile(3))
        out = _drive(element, 1000)
        assert element.stats.lost > 0
        assert element.stats.duplicated > 0
        assert len(out) == 1000 - element.stats.lost + element.stats.duplicated

    def test_same_seed_same_fault_sequence(self):
        a = FaultElement(lossy_profile(5))
        b = FaultElement(lossy_profile(5))
        out_a = [p.tcp.seq for p in _drive(a, 500)]
        out_b = [p.tcp.seq for p in _drive(b, 500)]
        assert out_a == out_b
        assert a.stats == b.stats

    def test_different_seed_different_sequence(self):
        a = FaultElement(lossy_profile(5))
        b = FaultElement(lossy_profile(6))
        assert [p.tcp.seq for p in _drive(a, 500)] != [p.tcp.seq for p in _drive(b, 500)]

    def test_fault_stream_is_per_flow(self):
        """A flow's faults do not depend on what other flows exist."""
        alone = FaultElement(lossy_profile(5))
        survivors_alone = [p.tcp.seq for p in _drive(alone, 300, sport=41_000)]
        mixed = FaultElement(lossy_profile(5))
        ctx = _ctx()
        survivors_mixed = []
        for i in range(300):
            mixed.process(_packet(seq=900 + i, sport=55_555), Direction.CLIENT_TO_SERVER, ctx)
            for p in mixed.process(_packet(seq=1 + i, sport=41_000), Direction.CLIENT_TO_SERVER, ctx):
                if p.tcp.sport == 41_000:
                    survivors_mixed.append(p.tcp.seq)
        assert survivors_alone == survivors_mixed

    def test_burst_loss_fires(self):
        element = FaultElement(bursty_profile(2))
        _drive(element, 2000)
        assert element.stats.burst_lost > 0

    def test_payload_corruption_freezes_checksum(self):
        element = FaultElement(FaultProfile(seed=4, corrupt_rate=1.0))
        original = _packet()
        (corrupted,) = element.process(original, Direction.CLIENT_TO_SERVER, _ctx())
        assert element.stats.corrupted == 1
        assert corrupted.tcp.payload != original.tcp.payload
        # The checksum is the pre-corruption one: a validating receiver
        # recomputes over the damaged payload and must see a mismatch.
        wire_checksum = corrupted.tcp.checksum
        recomputed = corrupted.tcp.copy(checksum=None).to_bytes(CLIENT, SERVER)
        import struct

        assert wire_checksum != struct.unpack("!H", recomputed[16:18])[0]

    def test_header_corruption_dropped_by_validating_router(self):
        element = FaultElement(FaultProfile(seed=4, header_corrupt_rate=1.0))
        (damaged,) = element.process(_packet(), Direction.CLIENT_TO_SERVER, _ctx())
        assert element.stats.header_corrupted == 1
        hop = RouterHop("r1", validate_ip_header=True)
        assert hop.process(damaged, Direction.CLIENT_TO_SERVER, _ctx()) == []
        assert hop.drop_reasons.get("bad-header") == 1

    def test_reorder_swaps_adjacent_packets(self):
        element = FaultElement(FaultProfile(seed=1, reorder_rate=1.0))
        ctx = _ctx()
        first = element.process(_packet(seq=1), Direction.CLIENT_TO_SERVER, ctx)
        assert first == []  # held back
        second = element.process(_packet(seq=2), Direction.CLIENT_TO_SERVER, ctx)
        assert [p.tcp.seq for p in second] == [1, 2]
        assert element.stats.reordered >= 1

    def test_link_flap_drops_everything_in_the_window(self):
        clock = VirtualClock()
        element = FaultElement(FaultProfile(seed=1, flap_period=10.0, flap_duration=1.0))
        ctx = _ctx(clock)
        clock.advance(10.5)  # inside the second flap window
        assert element.process(_packet(), Direction.CLIENT_TO_SERVER, ctx) == []
        assert element.stats.flap_dropped == 1
        clock.advance(2.0)  # window over
        assert len(element.process(_packet(seq=2), Direction.CLIENT_TO_SERVER, ctx)) == 1

    def test_scheduled_restart_wipes_targets(self):
        class Target:
            resets = 0

            def reset(self):
                Target.resets += 1

        clock = VirtualClock()
        element = FaultElement(
            FaultProfile(seed=1, restart_interval=60.0), restart_targets=(Target(),)
        )
        ctx = _ctx(clock)
        element.process(_packet(), Direction.CLIENT_TO_SERVER, ctx)
        assert Target.resets == 0
        clock.advance(61.0)
        element.process(_packet(seq=2), Direction.CLIENT_TO_SERVER, ctx)
        assert Target.resets == 1
        assert element.stats.restarts == 1

    def test_reset_keeps_stats_and_restart_epoch(self):
        element = FaultElement(lossy_profile(3))
        _drive(element, 500)
        injected = element.stats.total_injected()
        assert injected > 0
        element.reset()
        assert element.stats.total_injected() == injected
        assert element._flow_rngs == {}


class TestEnvironmentWiring:
    def test_install_none_or_zero_is_a_noop(self):
        for faults in (None, FaultProfile(seed=9)):
            env = make_testbed(faults=faults)
            assert env.fault_element() is None
            assert not env.reliable_mode
            assert env.fault_profile is None or env.fault_profile.is_zero()

    @pytest.mark.parametrize("name", sorted(ENVIRONMENT_FACTORIES))
    def test_every_factory_accepts_faults(self, name):
        env = ENVIRONMENT_FACTORIES[name](faults=lossy_profile(1))
        element = env.fault_element()
        assert element is not None
        assert env.path.elements[0] is element  # client edge
        assert env.reliable_mode

    def test_restart_targets_point_at_the_middlebox(self):
        env = make_gfc(faults=chaos_profile(1))
        element = env.fault_element()
        assert element.restart_targets == [env.middlebox]

    def test_install_faults_returns_the_env(self):
        env = make_testbed()
        assert install_faults(env, None) is env

    def test_faulted_replay_still_differentiates(self):
        """The ARQ layer hides a lossy link from the baseline replay."""
        env = make_testbed(faults=lossy_profile(7))
        trace = http_get_trace("video.example.com", response_body=b"v" * 600)
        outcome = ReplaySession(env, trace).run()
        assert outcome.differentiated
        assert outcome.delivered_ok
        assert env.fault_element().stats.processed > 0


class TestFragmentRobustness:
    def _fragments(self, payload=b"F" * 48, ident=0x77):
        # 20-byte TCP header + 48 payload bytes at 24 bytes per fragment:
        # exactly three fragments.
        packet = _packet(payload=payload)
        fragments = fragment_packet(packet, 24, identification=ident)
        assert len(fragments) == 3
        return payload, fragments

    def test_duplicate_fragments_deduplicated(self):
        payload, frags = self._fragments()
        whole = reassemble_fragments([frags[0], frags[0], frags[1], frags[1], frags[2]])
        assert whole is not None
        assert whole.tcp.payload == payload

    def test_corrupted_duplicate_does_not_poison_reassembly(self):
        """First copy of an offset wins; a damaged duplicate is discarded."""
        payload, frags = self._fragments()
        damaged = frags[1].copy(transport=bytes(len(frags[1].transport)))
        whole = reassemble_fragments([frags[0], frags[1], damaged, frags[2]])
        assert whole is not None
        assert whole.tcp.payload == payload

    def test_reassembler_dedupes_on_the_path(self):
        reassembler = FragmentReassembler()
        ctx = _ctx()
        payload, frags = self._fragments()
        out = []
        for fragment in (frags[0], frags[0], frags[1], frags[2]):
            out.extend(reassembler.process(fragment, Direction.CLIENT_TO_SERVER, ctx))
        assert len(out) == 1
        assert out[0].tcp.payload == payload
        assert reassembler.reassembled_count == 1

    def test_incomplete_set_expires_after_timeout(self):
        clock = VirtualClock()
        reassembler = FragmentReassembler(timeout=30.0)
        ctx = _ctx(clock)
        _, frags = self._fragments()
        assert reassembler.process(frags[0], Direction.CLIENT_TO_SERVER, ctx) == []
        clock.advance(31.0)
        # Any later traffic sweeps the stale set; the late fragment then
        # starts a fresh (still incomplete) set instead of completing a
        # half-expired one.
        assert reassembler.process(frags[2], Direction.CLIENT_TO_SERVER, ctx) == []
        assert reassembler.expired_count == 1
        assert reassembler.process(frags[1], Direction.CLIENT_TO_SERVER, ctx) == []

    def test_no_timeout_buffers_indefinitely(self):
        clock = VirtualClock()
        reassembler = FragmentReassembler()
        ctx = _ctx(clock)
        payload, frags = self._fragments()
        reassembler.process(frags[0], Direction.CLIENT_TO_SERVER, ctx)
        clock.advance(10_000.0)
        reassembler.process(frags[1], Direction.CLIENT_TO_SERVER, ctx)
        out = reassembler.process(frags[2], Direction.CLIENT_TO_SERVER, ctx)
        assert len(out) == 1 and out[0].tcp.payload == payload
