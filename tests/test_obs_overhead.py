"""Overhead guard: observability must cost ~nothing while disabled.

The wall-clock budget in the issue ("tracing-disabled table3 within 5% of
the PR 1 baseline") cannot be asserted against a *recorded* baseline —
wall time is machine-dependent and this suite runs on many machines.  The
guard here is machine-independent: it measures the actual cost of the
disabled-site guard pattern (`TRACER is not None`) on *this* machine,
multiplies by a generous overestimate of how many instrumented sites a
table3 slice executes, and requires that total to stay under 5% of the
slice's measured runtime.  `benchmarks/bench_obs.py` records the
companion wall-clock datapoints in ``BENCH_obs.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.evasion import ALL_TECHNIQUES
from repro.experiments.table3 import run_table3
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace

pytestmark = pytest.mark.obs

_KWARGS = dict(
    env_names=("testbed",),
    techniques=ALL_TECHNIQUES[:8],
    include_os_matrix=False,
    characterize=False,
)


def test_observability_disabled_by_default():
    assert obs_trace.TRACER is None
    assert obs_metrics.METRICS is None
    assert obs_profiling.PROFILER is None
    assert obs_live.BUS is None


def test_bus_guard_is_single_none_check():
    """The telemetry bus follows the same disabled-site pattern as the rest."""
    checks = 100_000
    t0 = time.perf_counter()
    for _ in range(checks):
        if obs_live.BUS is not None:  # pragma: no cover - never taken
            raise AssertionError
    per_check = (time.perf_counter() - t0) / checks
    # One attribute load + identity check: far below a microsecond each.
    assert per_check < 1e-6


def test_tracing_does_not_change_results():
    """A traced run must report the exact same Table 3 cells as an untraced one."""

    def cells(rows):
        return [
            (row.technique, name, cell.cc, cell.rs)
            for row in rows
            for name, cell in sorted(row.cells.items())
        ]

    plain = cells(run_table3(**_KWARGS))
    with obs_trace.tracing():
        with obs_metrics.collecting():
            traced = cells(run_table3(**_KWARGS))
    assert traced == plain


@pytest.mark.slow
def test_disabled_instrumentation_under_5_percent():
    run_table3(**_KWARGS)  # warm imports and caches
    t0 = time.perf_counter()
    run_table3(**_KWARGS)
    disabled_seconds = time.perf_counter() - t0

    # How many instrumented sites does the slice execute?  A traced run
    # counts one event per trace site; double it (metrics sites pair with
    # trace sites), add another for the telemetry-bus guards, and double
    # again as margin for guard-only branches.
    with obs_trace.tracing() as tracer:
        run_table3(**_KWARGS)
    site_executions = 6 * len(tracer)

    # Cost of one disabled-site guard (attribute load + None check),
    # measured with its loop overhead included — an overestimate.
    checks = 200_000
    t0 = time.perf_counter()
    for _ in range(checks):
        if obs_trace.TRACER is not None:  # pragma: no cover - never taken
            raise AssertionError
    per_check = (time.perf_counter() - t0) / checks

    overhead = per_check * site_executions
    assert overhead < 0.05 * disabled_seconds, (
        f"disabled-instrumentation estimate {overhead * 1000:.2f}ms exceeds 5% of "
        f"the {disabled_seconds * 1000:.1f}ms slice runtime"
    )
