"""Overhead guard: observability must cost ~nothing while disabled.

The wall-clock budget in the issue ("tracing-disabled table3 within 5% of
the PR 1 baseline") cannot be asserted against a *recorded* baseline —
wall time is machine-dependent and this suite runs on many machines.  The
guard here is machine-independent: it measures the actual cost of the
disabled-site guard pattern (`TRACER is not None`) on *this* machine,
multiplies by a generous overestimate of how many instrumented sites a
table3 slice executes, and requires that total to stay under 5% of the
slice's measured runtime.  `benchmarks/bench_obs.py` records the
companion wall-clock datapoints in ``BENCH_obs.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.evasion import ALL_TECHNIQUES
from repro.experiments.table3 import run_table3
from repro.obs import coverage as obs_coverage
from repro.obs import flight as obs_flight
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import ops as obs_ops
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace

pytestmark = pytest.mark.obs

_KWARGS = dict(
    env_names=("testbed",),
    techniques=ALL_TECHNIQUES[:8],
    include_os_matrix=False,
    characterize=False,
)


def test_observability_disabled_by_default():
    assert obs_trace.TRACER is None
    assert obs_metrics.METRICS is None
    assert obs_profiling.PROFILER is None
    assert obs_live.BUS is None
    assert obs_ops.OPS is None
    assert obs_flight.FLIGHT is None
    assert obs_coverage.COVERAGE is None


def test_coverage_does_not_change_results():
    """A coverage-profiled run reports the same cells as a plain run.

    Coverage swaps the automaton's bulk regex scan for the counted
    byte-walk; the differential suite pins their equivalence, and this
    pins the end-to-end consequence: identical Table 3 cells.
    """

    def cells(rows):
        return [
            (row.technique, name, cell.cc, cell.rs)
            for row in rows
            for name, cell in sorted(row.cells.items())
        ]

    plain = cells(run_table3(**_KWARGS))
    with obs_coverage.covering():
        covered = cells(run_table3(**_KWARGS))
    assert covered == plain


def test_bus_guard_is_single_none_check():
    """The telemetry bus follows the same disabled-site pattern as the rest."""
    checks = 100_000
    t0 = time.perf_counter()
    for _ in range(checks):
        if obs_live.BUS is not None:  # pragma: no cover - never taken
            raise AssertionError
    per_check = (time.perf_counter() - t0) / checks
    # One attribute load + identity check: far below a microsecond each.
    assert per_check < 1e-6


def test_tracing_does_not_change_results():
    """A traced run must report the exact same Table 3 cells as an untraced one."""

    def cells(rows):
        return [
            (row.technique, name, cell.cc, cell.rs)
            for row in rows
            for name, cell in sorted(row.cells.items())
        ]

    plain = cells(run_table3(**_KWARGS))
    with obs_trace.tracing():
        with obs_metrics.collecting():
            traced = cells(run_table3(**_KWARGS))
    assert traced == plain


@pytest.mark.slow
def test_disabled_instrumentation_under_5_percent():
    run_table3(**_KWARGS)  # warm imports and caches
    t0 = time.perf_counter()
    run_table3(**_KWARGS)
    disabled_seconds = time.perf_counter() - t0

    # How many instrumented sites does the slice execute?  A traced run
    # counts one event per trace site; double it (metrics sites pair with
    # trace sites), add another for the telemetry-bus guards, and double
    # again as margin for guard-only branches.
    with obs_trace.tracing() as tracer:
        run_table3(**_KWARGS)
    site_executions = 6 * len(tracer)

    # Cost of one disabled-site guard (attribute load + None check),
    # measured with its loop overhead included — an overestimate.
    checks = 200_000
    t0 = time.perf_counter()
    for _ in range(checks):
        if obs_trace.TRACER is not None:  # pragma: no cover - never taken
            raise AssertionError
    per_check = (time.perf_counter() - t0) / checks

    overhead = per_check * site_executions
    assert overhead < 0.05 * disabled_seconds, (
        f"disabled-instrumentation estimate {overhead * 1000:.2f}ms exceeds 5% of "
        f"the {disabled_seconds * 1000:.1f}ms slice runtime"
    )


def test_serving_always_on_path_within_budget():
    """The always-on serving config (flight recorder + ops registry live,
    both *idle*: no anomaly, below the sampling stride) must fit the same
    <5% budget as the disabled guards.

    Measured the same machine-independent way: per-operation cost of the
    real hot-path operations — a flight ``note()`` that is sampled *out*
    (the 15-in-16 case) and an ops ``record()`` — times a generous
    overestimate of how many of each a live flow executes, compared
    against the (sub-)millisecond end-to-end verdict latency a loopback
    flow actually costs (``BENCH_serve.json`` pins it above 1ms; 1ms is
    the conservative floor used here).
    """
    flight = obs_flight.FlightRecorder("/tmp", sample_every=16)
    registry = obs_ops.OpsRegistry()
    flight.note("warm")  # consume the always-sampled first offer

    reps = 50_000
    t0 = time.perf_counter()
    for _ in range(reps):
        flight.note("proxy.flow", flow=1, verdict="evaded")
    per_note = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        registry.record("proxy.verdict", 0.001)
    per_record = (time.perf_counter() - t0) / reps

    # A served flow executes ~2 flight offers (verdict note + a possible
    # shed-path note) and ~6 ops records (verdict, read, judge, plus
    # margin for mbx.scan sites); double everything as headroom.
    per_flow = 2 * (2 * per_note) + 2 * (6 * per_record)
    verdict_floor_seconds = 0.001
    assert per_flow < 0.05 * verdict_floor_seconds, (
        f"always-on serving instrumentation costs {per_flow * 1e6:.1f}µs/flow, "
        f"over 5% of the {verdict_floor_seconds * 1000:.0f}ms verdict floor"
    )
