"""Content-modification detection (one of [32]'s differentiation types)."""

from repro.core.detection import detect_differentiation
from repro.netsim.element import NetworkElement
from repro.packets.flow import Direction
from repro.replay.session import ReplaySession


class _ResponseRewriter(NetworkElement):
    """Rewrites server payload bytes in flight (same length, different content)."""

    name = "rewriter"

    def process(self, packet, direction, ctx):
        tcp = packet.tcp
        if direction is Direction.SERVER_TO_CLIENT and tcp is not None and tcp.payload:
            modified = packet.copy()
            modified.tcp.payload = bytes((b ^ 0x20) for b in tcp.payload)
            modified.tcp.checksum = None
            return [modified]
        return [packet]


class TestContentModification:
    def test_clean_path_not_flagged(self, testbed, neutral_trace):
        outcome = ReplaySession(testbed, neutral_trace).run()
        assert not outcome.content_modified
        assert outcome.server_response_ok

    def test_rewriter_flagged(self, neutral, neutral_trace):
        neutral.path.elements.append(_ResponseRewriter())
        try:
            outcome = ReplaySession(neutral, neutral_trace).run()
        finally:
            neutral.path.elements.pop()
        assert outcome.content_modified
        assert not outcome.server_response_ok
        assert outcome.delivered_ok  # the client->server direction was untouched

    def test_detection_notes_modification(self, neutral, neutral_trace):
        neutral.path.elements.append(_ResponseRewriter())
        try:
            report = detect_differentiation(neutral, neutral_trace)
        finally:
            neutral.path.elements.pop()
        assert any("modified in flight" in note for note in report.notes)

    def test_truncated_response_is_not_modification(self, gfc, censored_trace):
        """A blocked flow loses bytes; that is blocking, not rewriting."""
        outcome = ReplaySession(gfc, censored_trace).run()
        assert not outcome.content_modified
