"""Chaos suite: Table 3 agreement must survive realistic fault profiles.

The always-on tests use the fast (``characterize=False``) path so tier-1 stays
quick; the full characterize-everything run is gated behind the
``REPRO_CHAOS_SEED`` environment variable and exercised by the CI chaos job
across several seeds.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.table3 import TABLE3_ENVS, run_table3, compare_with_paper
from repro.netsim.faults import FaultProfile, chaos_profile, lossy_profile

pytestmark = pytest.mark.chaos

VALID_MARKS = {"Y", "N", "-", "?"}


def _matrix(rows):
    """The (cc, rs) verdicts of every cell, keyed for comparison."""
    return {
        (row.technique, env): (cell.cc, cell.rs)
        for row in rows
        for env, cell in row.cells.items()
    }


class TestLossyAgreement:
    def test_fast_matrix_agrees_with_paper_under_loss(self):
        """5% iid loss + duplication must not change a single verdict."""
        rows = run_table3(characterize=False, faults=lossy_profile(11))
        matches, total, mismatches = compare_with_paper(rows)
        assert mismatches == []
        assert matches == total >= 300

    @pytest.mark.skipif(
        "REPRO_CHAOS_SEED" not in os.environ,
        reason="full chaos run is exercised by the CI chaos job (REPRO_CHAOS_SEED)",
    )
    def test_full_matrix_agrees_with_paper_under_loss(self):
        seed = int(os.environ["REPRO_CHAOS_SEED"])
        rows = run_table3(faults=lossy_profile(seed))
        matches, total, mismatches = compare_with_paper(rows)
        assert mismatches == []
        assert matches == total >= 300


class TestZeroFaultIdentity:
    def test_disabled_faults_leave_the_matrix_bit_identical(self):
        """faults=None and an all-zero profile must equal the historical run."""
        baseline = _matrix(run_table3(characterize=False))
        explicit_none = _matrix(
            run_table3(characterize=False, faults=None, cell_trials=None, retry=None)
        )
        zero_profile = _matrix(
            run_table3(characterize=False, faults=FaultProfile(seed=5))
        )
        assert explicit_none == baseline
        assert zero_profile == baseline

    def test_same_seed_is_reproducible(self):
        first = _matrix(run_table3(characterize=False, faults=lossy_profile(23)))
        second = _matrix(run_table3(characterize=False, faults=lossy_profile(23)))
        assert first == second


class TestChaosGracefulDegradation:
    def test_chaos_profile_completes_with_a_full_matrix(self):
        """Restarts + flaps + corruption may flip verdicts but never crash."""
        rows = run_table3(characterize=False, faults=chaos_profile(11))
        assert len(rows) == 26
        for row in rows:
            assert set(row.cells) == set(TABLE3_ENVS)
            for cell in row.cells.values():
                assert cell.cc in VALID_MARKS
                assert cell.rs in VALID_MARKS
