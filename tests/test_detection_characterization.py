"""Tests for phases 1-2: detection and characterization."""

import pytest

from repro.core.characterization import CharacterizationError, Characterizer
from repro.core.detection import detect_differentiation
from repro.traffic.http import http_get_trace


class TestDetection:
    def test_testbed_content_based(self, testbed, classified_trace):
        report = detect_differentiation(testbed, classified_trace)
        assert report.differentiated
        assert report.content_based
        assert report.rounds == 2
        assert report.bytes_used == 2 * classified_trace.total_bytes()

    def test_testbed_neutral_clean(self, testbed, neutral_trace):
        report = detect_differentiation(testbed, neutral_trace)
        assert not report.differentiated
        assert "no differentiation" in report.summary()

    def test_gfc_detection(self, gfc, censored_trace):
        report = detect_differentiation(gfc, censored_trace)
        assert report.differentiated and report.content_based
        assert report.signal == "rst"

    def test_iran_detection(self, iran, iran_trace):
        report = detect_differentiation(iran, iran_trace)
        assert report.differentiated and report.content_based
        assert report.signal == "block-page"

    def test_sprint_nothing(self, sprint, video_trace):
        report = detect_differentiation(sprint, video_trace)
        assert not report.differentiated

    def test_udp_detection(self, testbed, skype_trace):
        report = detect_differentiation(testbed, skype_trace)
        assert report.differentiated and report.content_based


class TestCharacterizerFields:
    def test_testbed_finds_host_and_anchor(self, testbed, classified_trace):
        fields = Characterizer(testbed, classified_trace).find_matching_fields()
        contents = [f.content for f in fields]
        assert b"video.example.com" in contents
        assert b"GET" in contents

    def test_fields_are_byte_exact(self, testbed, classified_trace):
        fields = Characterizer(testbed, classified_trace).find_matching_fields()
        host_field = next(f for f in fields if f.content == b"video.example.com")
        payload = classified_trace.client_payloads()[0]
        assert payload[host_field.start : host_field.end] == b"video.example.com"

    def test_gfc_requires_rotation(self, gfc, censored_trace):
        characterizer = Characterizer(gfc, censored_trace)
        assert characterizer.rotate_ports  # inherited from the env
        fields = characterizer.find_matching_fields()
        assert b"economist.com" in [f.content for f in fields]

    def test_iran_single_keyword(self, iran, iran_trace):
        fields = Characterizer(iran, iran_trace).find_matching_fields()
        assert [f.content for f in fields] == [b"facebook.com"]

    def test_stun_fields_not_human_readable(self, testbed, skype_trace):
        """§6.1: the Skype rule matches binary STUN structure, incl. 0x8055."""
        fields = Characterizer(testbed, skype_trace).find_matching_fields()
        joined = b"".join(f.content for f in fields)
        assert b"\x80\x55" in joined  # MS-SERVICE-QUALITY attribute type
        assert all(f.packet_index == 0 for f in fields)

    def test_undifferentiated_trace_raises(self, testbed, neutral_trace):
        with pytest.raises(CharacterizationError):
            Characterizer(testbed, neutral_trace).find_matching_fields()

    def test_round_accounting(self, testbed, classified_trace):
        characterizer = Characterizer(testbed, classified_trace)
        characterizer.find_matching_fields()
        assert characterizer.rounds > 0
        assert characterizer.bytes_used >= characterizer.rounds * 10

    def test_rounds_in_paper_ballpark(self, testbed, classified_trace):
        """§6.1: at most 70 rounds for HTTP traffic."""
        characterizer = Characterizer(testbed, classified_trace)
        characterizer.run()
        assert characterizer.rounds <= 90  # paper: <=70; same order


class TestCharacterizerLimits:
    def test_testbed_prepend_sensitivity(self, testbed, classified_trace):
        report = Characterizer(testbed, classified_trace).probe_position_limits()
        assert report.prepend_sensitivity == 1  # anchored classifier
        assert report.match_and_forget
        assert not report.inspects_all_packets

    def test_iran_inspects_all(self, iran, iran_trace):
        report = Characterizer(iran, iran_trace).probe_position_limits()
        assert report.inspects_all_packets
        assert not report.match_and_forget
        assert report.packet_limit is None

    def test_packet_based_limit_detected(self, testbed, classified_trace):
        report = Characterizer(testbed, classified_trace).probe_position_limits()
        assert report.limit_is_packet_based

    def test_full_run_combines(self, testbed, classified_trace):
        report = Characterizer(testbed, classified_trace).run()
        assert report.matching_fields
        assert report.rounds > 0
        assert report.summary()

    def test_server_side_fields_att(self, att):
        from repro.traffic.video import video_stream_trace

        trace = video_stream_trace(host="video.nbcsports.com", total_bytes=120_000)
        report = Characterizer(att, trace).run(include_server_side=True)
        assert b"Content-Type: video" in [f.content for f in report.server_side_fields]
