"""The operational observability layer: latency recorders, SLO health,
Prometheus exposition, and ops-namespace segregation.

Three properties carry the layer: (1) the log-bucketed LatencyRecorder is
O(1) per record, merges losslessly, and its percentiles stay inside the
observed value envelope; (2) everything wall-clock lives in its own
registry / the ``ops.`` namespace and never reaches a deterministic
snapshot; (3) the Prometheus rendering is valid text exposition, because a
scrape endpoint that almost parses is worse than none.
"""

import json
import math
import re

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import ops as obs_ops
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    log_bucket_bounds,
)
from repro.obs.ops import (
    LatencyRecorder,
    OpsRegistry,
    SLOPolicy,
    evaluate_health,
    render_prometheus,
)

pytestmark = pytest.mark.obs


class TestLogBucketBounds:
    def test_bounds_are_strictly_increasing_and_span_the_range(self):
        bounds = log_bucket_bounds(1e-6, 60.0, per_decade=5)
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        assert bounds[0] == 1e-6
        assert bounds[-1] >= 60.0

    def test_per_decade_controls_resolution(self):
        coarse = log_bucket_bounds(1e-3, 1.0, per_decade=2)
        fine = log_bucket_bounds(1e-3, 1.0, per_decade=10)
        assert len(fine) > 2 * len(coarse)
        # Relative spacing is bounded by the decade growth factor.
        growth = 10 ** (1 / 10)
        for a, b in zip(fine, fine[1:]):
            assert b / a <= growth * 1.05

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_bucket_bounds(0, 1.0)
        with pytest.raises(ValueError):
            log_bucket_bounds(2.0, 1.0)
        with pytest.raises(ValueError):
            log_bucket_bounds(1e-3, 1.0, per_decade=0)

    def test_shared_layout_with_histogram_and_recorder(self):
        histogram = Histogram.log_spaced()
        recorder = LatencyRecorder()
        assert histogram.bounds == recorder.bounds == LATENCY_BUCKETS


class TestLatencyRecorder:
    def test_record_counts_and_envelope(self):
        recorder = LatencyRecorder()
        for value in (0.001, 0.004, 0.02, 0.5):
            recorder.record(value)
        assert recorder.count == 4
        assert recorder.min == 0.001
        assert recorder.max == 0.5
        assert math.isclose(recorder.total, 0.525)

    def test_percentiles_stay_inside_observed_range(self):
        recorder = LatencyRecorder()
        values = [0.0003 * (i + 1) for i in range(200)]
        for value in values:
            recorder.record(value)
        for p in (0, 50, 90, 99, 99.9, 100):
            estimate = recorder.percentile(p)
            assert recorder.min <= estimate <= recorder.max

    def test_percentile_relative_error_is_bucket_bounded(self):
        # All mass at one value: every percentile must come back within
        # one bucket's growth factor of the true value.
        recorder = LatencyRecorder()
        for _ in range(1000):
            recorder.record(0.0123)
        for p in (50, 99):
            assert recorder.percentile(p) == pytest.approx(0.0123, rel=10 ** (1 / 5))

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.percentile(50) == 0.0
        assert recorder.summary() == {"count": 0}

    def test_overflow_bucket_reports_observed_max(self):
        recorder = LatencyRecorder()
        recorder.record(120.0)  # beyond the 60s top bound
        assert recorder.percentile(99) == 120.0

    def test_merge_is_lossless(self):
        left, right, reference = LatencyRecorder(), LatencyRecorder(), LatencyRecorder()
        for i in range(50):
            value = 0.0001 * (i + 1) ** 2
            (left if i % 2 else right).record(value)
            reference.record(value)
        left.merge(right)
        assert left.count == reference.count
        assert left.counts == reference.counts
        assert left.min == reference.min
        assert left.max == reference.max
        assert left.percentile(99) == reference.percentile(99)

    def test_merge_rejects_mismatched_layouts(self):
        with pytest.raises(ValueError):
            LatencyRecorder().merge(LatencyRecorder(log_bucket_bounds(1e-3, 1.0)))

    def test_merge_dump_round_trip(self):
        source = LatencyRecorder()
        for value in (0.002, 0.03, 1.5):
            source.record(value)
        target = LatencyRecorder()
        target.merge_dump(json.loads(json.dumps(source.dump())))
        assert target.counts == source.counts
        assert target.min == source.min and target.max == source.max

    def test_summary_reports_milliseconds(self):
        recorder = LatencyRecorder()
        recorder.record(0.25)
        summary = recorder.summary()
        assert summary["count"] == 1
        assert summary["p50_ms"] == summary["p99_ms"] == 250.0
        assert summary["min_ms"] == summary["max_ms"] == 250.0
        assert set(summary) >= {"p50_ms", "p90_ms", "p99_ms", "p999_ms"}

    def test_rejects_bad_percentile_and_layout(self):
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(101)
        with pytest.raises(ValueError):
            LatencyRecorder(bounds=(1.0,))


class TestHistogramPercentileEdges:
    """The satellite: explicit edge cases for Histogram.percentile."""

    def test_empty_histogram_is_zero(self):
        assert Histogram().percentile(50) == 0.0
        assert Histogram.log_spaced().percentile(99) == 0.0

    def test_single_bucket_all_percentiles_agree(self):
        histogram = Histogram(bounds=(10.0, 100.0))
        for _ in range(7):
            histogram.observe(3.0)
        for p in (1, 50, 99, 100):
            assert histogram.percentile(p) == 10.0

    def test_overflow_observations_report_inf(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(50.0)
        assert histogram.percentile(99) == float("inf")

    def test_merged_dump_percentile_equals_single_process(self):
        shards = [MetricsRegistry() for _ in range(3)]
        reference = MetricsRegistry()
        for index, shard in enumerate(shards):
            for i in range(20):
                value = (index * 20 + i) * 1e-4
                shard.observe("ops.latency", value, bounds=LATENCY_BUCKETS)
                reference.observe("ops.latency", value, bounds=LATENCY_BUCKETS)
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge_dump(shard.dump())
        merged_hist = merged.histograms()["ops.latency"]
        reference_hist = reference.histograms()["ops.latency"]
        assert merged_hist.counts == reference_hist.counts
        for p in (50, 90, 99):
            assert merged_hist.percentile(p) == reference_hist.percentile(p)


class TestOpsNamespaceSegregation:
    def test_snapshot_excludes_ops_keys_by_default(self):
        registry = MetricsRegistry()
        registry.inc("mbx.scan_bytes", 10)
        registry.inc("ops.proxy.shed", 3)
        registry.set_gauge("ops.uptime", 12.5)
        registry.observe("ops.latency", 0.1, bounds=LATENCY_BUCKETS)
        deterministic = registry.snapshot()
        assert "mbx.scan_bytes" in deterministic
        assert not any(key.startswith("ops.") for key in deterministic)
        operational = registry.snapshot(include_ops=True)
        assert {"ops.proxy.shed", "ops.uptime", "ops.latency"} <= set(operational)

    def test_ops_registry_is_separate_from_metrics(self):
        with obs_ops.ops_recording() as registry:
            registry.record("proxy.verdict", 0.005)
            registry.inc("proxy.shed")
            assert obs_metrics.METRICS is None  # never auto-enabled
        assert obs_ops.OPS is None  # context restored

    def test_enable_disable_globals(self):
        registry = obs_ops.enable_ops()
        assert obs_ops.OPS is registry
        obs_ops.disable_ops()
        assert obs_ops.OPS is None

    def test_registry_snapshot_shape(self):
        registry = OpsRegistry()
        registry.record("proxy.verdict", 0.002)
        registry.inc("proxy.step_downs")
        snapshot = registry.snapshot()
        assert snapshot["uptime_seconds"] >= 0
        assert snapshot["latency"]["proxy.verdict"]["count"] == 1
        assert snapshot["counters"] == {"proxy.step_downs": 1}
        assert registry.latency_summaries(prefix="pool.") == {}


_SAMPLE_LINE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE+.\-]+$")
_TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$"
)


def _assert_valid_exposition(text: str) -> set[str]:
    """Line-validate Prometheus text format; return the series names."""
    assert text.endswith("\n")
    names = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert _TYPE_LINE.match(line), line
            continue
        assert _SAMPLE_LINE.match(line), line
        names.add(line.split("{")[0].split(" ")[0])
    return names


class TestPrometheusRendering:
    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.inc("mbx.scan_bytes", 4096)
        registry.set_gauge("pool.workers", 8)
        registry.observe("mbx.scan.payload_bytes", 700)
        ops = OpsRegistry()
        ops.record("proxy.verdict", 0.004)
        ops.inc("proxy.shed", 2)
        names = _assert_valid_exposition(render_prometheus(registry, ops))
        assert "liberate_mbx_scan_bytes" in names
        assert "liberate_pool_workers" in names
        assert "liberate_mbx_scan_payload_bytes_bucket" in names
        assert "liberate_ops_proxy_verdict_seconds_bucket" in names
        assert "liberate_ops_proxy_shed" in names
        assert "liberate_ops_uptime_seconds" in names

    def test_histogram_buckets_are_cumulative_with_inf(self):
        ops = OpsRegistry()
        for value in (0.001, 0.002, 0.5):
            ops.record("proxy.verdict", value)
        text = render_prometheus(None, ops)
        buckets = [
            line
            for line in text.splitlines()
            if line.startswith("liberate_ops_proxy_verdict_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative
        assert buckets[-1].startswith(
            'liberate_ops_proxy_verdict_seconds_bucket{le="+Inf"}'
        )
        assert counts[-1] == 3
        assert "liberate_ops_proxy_verdict_seconds_count 3" in text

    def test_empty_render_is_still_valid(self):
        assert render_prometheus(None, None) == "\n"


class TestHealthEvaluation:
    def _snapshot(self, **overrides):
        base = {
            "flows": 100,
            "shed": 0,
            "broken": 0,
            "active": 10,
            "max_active": 512,
            "ladder": {"rung": 0, "exhausted": False, "active_technique": "t"},
        }
        base.update(overrides)
        return base

    def test_ok_when_nothing_degrades(self):
        report = evaluate_health(self._snapshot(), SLOPolicy())
        assert report["status"] == "ok"
        assert report["reasons"] == []

    def test_any_shedding_degrades_by_default(self):
        report = evaluate_health(self._snapshot(shed=1), SLOPolicy())
        assert report["status"] == "degraded"
        assert any("shedding" in reason for reason in report["reasons"])

    def test_majority_shedding_is_unhealthy(self):
        report = evaluate_health(self._snapshot(shed=60), SLOPolicy())
        assert report["status"] == "unhealthy"

    def test_exhausted_ladder_is_unhealthy(self):
        snapshot = self._snapshot(
            ladder={"rung": 2, "exhausted": True, "active_technique": None}
        )
        report = evaluate_health(snapshot, SLOPolicy())
        assert report["status"] == "unhealthy"

    def test_step_down_and_fullness_degrade(self):
        snapshot = self._snapshot(
            active=500,
            ladder={"rung": 1, "exhausted": False, "active_technique": "u"},
        )
        report = evaluate_health(snapshot, SLOPolicy())
        assert report["status"] == "degraded"
        assert len(report["reasons"]) == 2  # rung + fullness

    def test_p99_slo_breach_degrades(self):
        registry = OpsRegistry()
        for _ in range(32):
            registry.record("proxy.verdict", 0.050)  # 50ms
        slo = SLOPolicy(verdict_p99_ms=10.0)
        report = evaluate_health(self._snapshot(), slo, registry)
        assert report["status"] == "degraded"
        assert report["verdict_p99_ms"] > 10.0
        # Same latencies against a loose SLO: healthy.
        loose = evaluate_health(self._snapshot(), SLOPolicy(verdict_p99_ms=500.0), registry)
        assert loose["status"] == "ok"

    def test_slo_needs_min_samples(self):
        registry = OpsRegistry()
        registry.record("proxy.verdict", 5.0)  # one awful sample
        report = evaluate_health(
            self._snapshot(), SLOPolicy(verdict_p99_ms=1.0, min_samples=16), registry
        )
        assert report["status"] == "ok"
        assert report["verdict_p99_ms"] is None

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(verdict_p99_ms=0)
        with pytest.raises(ValueError):
            SLOPolicy(max_shed_rate=1.5)
        with pytest.raises(ValueError):
            SLOPolicy(unhealthy_shed_rate=0.0)
