"""Graceful degradation: the deployment fallback ladder."""

from __future__ import annotations

import pytest

from repro.core.deployment import FallbackLadder
from repro.core.evasion.base import EvasionContext, EvasionTechnique
from repro.core.pipeline import Liberate
from repro.envs import make_testbed
from repro.traffic.http import http_get_trace

pytestmark = pytest.mark.chaos


class BrokenTechnique(EvasionTechnique):
    """Sends the flow untouched — the classifier always catches it."""

    name = "broken-noop"
    category = "inert-insertion"
    protocol = "tcp"

    def apply(self, runner):
        runner.send_default()


class InertTTL(EvasionTechnique):
    """A known-working technique on the testbed (TTL-limited inert packet)."""

    name = "working-ttl"
    category = "inert-insertion"
    protocol = "tcp"

    def apply(self, runner):
        from repro.endpoint.rawclient import SegmentPlan
        from repro.replay.runner import make_inert_payload

        ctx = runner.context
        runner.send_inert(
            SegmentPlan(payload=make_inert_payload(32), ttl=ctx.ttl_to_reach_classifier())
        )
        runner.send_default()


@pytest.fixture
def trace():
    return http_get_trace("video.example.com", response_body=b"v" * 600)


def _context(env):
    return EvasionContext(protocol="tcp", middlebox_hops=env.hops_to_middlebox)


class TestFallbackLadder:
    def test_rejects_empty_ladder(self):
        env = make_testbed()
        with pytest.raises(ValueError, match="at least one"):
            FallbackLadder(env, [], _context(env))

    def test_rejects_threshold_outside_window(self):
        env = make_testbed()
        with pytest.raises(ValueError, match="within the window"):
            FallbackLadder(env, [InertTTL()], _context(env), window=3, failure_threshold=4)

    def test_healthy_technique_never_steps_down(self, trace):
        env = make_testbed()
        ladder = FallbackLadder(env, [InertTTL(), BrokenTechnique()], _context(env))
        for _ in range(8):
            outcome = ladder.run_flow(trace)
            assert outcome.evaded
        assert ladder.rung == 0
        assert ladder.step_downs == []
        assert not ladder.exhausted

    def test_broken_technique_steps_down_to_working_one(self, trace):
        env = make_testbed()
        ladder = FallbackLadder(
            env,
            [BrokenTechnique(), InertTTL()],
            _context(env),
            window=5,
            failure_threshold=3,
        )
        for _ in range(10):
            ladder.run_flow(trace)
        assert ladder.rung == 1
        assert ladder.active_technique.name == "working-ttl"
        (step,) = ladder.step_downs
        assert step.from_technique == "broken-noop"
        assert step.to_technique == "working-ttl"
        assert step.failures_in_window >= 3
        # After the step-down the working rung keeps every flow healthy.
        assert ladder.run_flow(trace).evaded
        assert not ladder.exhausted

    def test_exhaustion_is_flagged_but_flows_continue(self, trace):
        env = make_testbed()
        ladder = FallbackLadder(
            env,
            [BrokenTechnique()],
            _context(env),
            window=3,
            failure_threshold=2,
        )
        for _ in range(6):
            ladder.run_flow(trace)
        assert ladder.exhausted
        assert ladder.step_downs[-1].to_technique is None
        assert ladder.flows_handled == 6  # kept running best-effort
        assert ladder.active_technique.name == "broken-noop"

    def test_health_snapshot_reports_state(self, trace):
        env = make_testbed()
        ladder = FallbackLadder(env, [InertTTL()], _context(env))
        ladder.run_flow(trace)
        snapshot = ladder.health_snapshot()
        assert snapshot["active_technique"] == "working-ttl"
        assert snapshot["flows_handled"] == 1
        assert snapshot["recent_failures"] == 0
        assert snapshot["exhausted"] is False


class TestDeployLadder:
    def test_pipeline_builds_ranked_ladder(self, trace):
        env = make_testbed()
        lib = Liberate(env)
        ladder = lib.deploy_ladder(trace)
        report = lib.last_report
        working = {r.technique for r in report.evasion.working()}
        assert [t.name for t in ladder.techniques] and set(
            t.name for t in ladder.techniques
        ) == working
        # Ranked cheapest-first: the first rung is the single-deploy choice.
        assert ladder.techniques[0].name == report.evasion.best().technique
        outcome = ladder.run_flow(trace)
        assert outcome.evaded
        assert ladder.step_downs == []

    def test_deploy_ladder_raises_without_working_technique(self, trace):
        from repro.envs import make_att

        env = make_att()
        lib = Liberate(env)
        with pytest.raises(RuntimeError, match="no working evasion technique"):
            lib.deploy_ladder(
                http_get_trace("video.nbcsports.com", response_body=b"v" * 600)
            )
