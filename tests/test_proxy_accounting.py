"""Unit tests for the transparent proxy (AT&T) and the usage counter (T-Mobile)."""

from repro.middlebox.accounting import UsageCounter
from repro.middlebox.proxy import TransparentHTTPProxy
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.shaper import PolicyState
from repro.packets.flow import Direction, FiveTuple
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram

CLIENT, SERVER = "10.1.0.2", "203.0.113.50"
GET = b"GET /v HTTP/1.1\r\nHost: video.example.com\r\n\r\n"
VIDEO_RESPONSE = b"HTTP/1.1 200 OK\r\nContent-Type: video/mp4\r\n\r\n" + b"\x00" * 64


def ctx():
    return TransitContext(
        clock=VirtualClock(), inject_back=lambda p: None, inject_forward=lambda p: None
    )


class ProxyDriver:
    def __init__(self, proxy, sport=40_400, dport=80):
        self.proxy = proxy
        self.ctx = ctx()
        self.sport, self.dport = sport, dport
        self.seq = 1_000
        self.forwarded = []

    def send(self, segment_kwargs, direction=Direction.CLIENT_TO_SERVER, src=CLIENT, dst=SERVER):
        segment = TCPSegment(**segment_kwargs)
        packet = IPPacket(src=src, dst=dst, transport=segment)
        out = self.proxy.process(packet, direction, self.ctx)
        self.forwarded += out
        return out

    def syn(self):
        self.send(dict(sport=self.sport, dport=self.dport, seq=self.seq, flags=TCPFlags.SYN))
        self.seq += 1

    def data(self, payload, seq=None, **overrides):
        fields = dict(
            sport=self.sport,
            dport=self.dport,
            seq=self.seq if seq is None else seq,
            ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            payload=payload,
        )
        fields.update(overrides)
        out = self.send(fields)
        if seq is None:
            self.seq += len(payload)
        return out

    def server_data(self, payload, seq=5_000):
        return self.send(
            dict(sport=self.dport, dport=self.sport, seq=seq, ack=1,
                 flags=TCPFlags.ACK | TCPFlags.PSH, payload=payload),
            direction=Direction.SERVER_TO_CLIENT,
            src=SERVER,
            dst=CLIENT,
        )


class TestTransparentProxy:
    def make(self):
        policy = PolicyState()
        return TransparentHTTPProxy(policy), policy

    def key(self, driver):
        return FiveTuple(CLIENT, driver.sport, SERVER, driver.dport, 6)

    def test_classifies_after_both_sides_match(self):
        proxy, policy = self.make()
        driver = ProxyDriver(proxy)
        driver.syn()
        driver.data(GET)
        assert policy.throttle_rate_for(self.key(driver)) is None  # server side pending
        driver.server_data(VIDEO_RESPONSE)
        assert policy.throttle_rate_for(self.key(driver)) == 1_500_000.0

    def test_non_video_response_not_throttled(self):
        proxy, policy = self.make()
        driver = ProxyDriver(proxy)
        driver.syn()
        driver.data(GET)
        driver.server_data(b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\nhi")
        assert policy.throttle_rate_for(self.key(driver)) is None

    def test_other_ports_tunneled(self):
        proxy, policy = self.make()
        driver = ProxyDriver(proxy, dport=8080)
        driver.syn()
        out = driver.data(GET)
        assert out and out[0].tcp.payload == GET  # untouched
        driver.server_data(VIDEO_RESPONSE)
        assert not policy.throttled_flows

    def test_normalizes_out_of_order(self):
        proxy, policy = self.make()
        driver = ProxyDriver(proxy)
        driver.syn()
        base = driver.seq
        cut = 20
        driver.data(GET[cut:], seq=base + cut)
        out = driver.data(GET[:cut], seq=base)
        stream = b"".join(p.tcp.payload for p in out)
        assert stream == GET  # re-emitted in order
        driver.server_data(VIDEO_RESPONSE)
        assert policy.throttled_flows  # classification saw the whole stream

    def test_drops_malformed(self):
        proxy, _ = self.make()
        driver = ProxyDriver(proxy)
        driver.syn()
        out = driver.data(b"junk", checksum=0xDEAD, seq=driver.seq)
        assert out == []
        assert proxy.dropped

    def test_mid_flow_without_syn_dropped(self):
        proxy, _ = self.make()
        driver = ProxyDriver(proxy)
        assert driver.data(GET) == []

    def test_rst_closes(self):
        proxy, _ = self.make()
        driver = ProxyDriver(proxy)
        driver.syn()
        driver.send(dict(sport=driver.sport, dport=80, seq=driver.seq, flags=TCPFlags.RST))
        assert driver.data(GET) == []

    def test_fin_forwarded(self):
        proxy, _ = self.make()
        driver = ProxyDriver(proxy)
        driver.syn()
        driver.data(GET)
        out = driver.send(
            dict(
                sport=driver.sport, dport=80, seq=driver.seq, ack=1,
                flags=TCPFlags.FIN | TCPFlags.ACK,
            )
        )
        assert any(p.tcp.flags & TCPFlags.FIN for p in out)

    def test_non_tcp_tunneled(self):
        proxy, _ = self.make()
        packet = IPPacket(
            src=CLIENT, dst=SERVER, transport=UDPDatagram(sport=1, dport=80, payload=b"u")
        )
        assert proxy.process(packet, Direction.CLIENT_TO_SERVER, ctx()) == [packet]

    def test_reset(self):
        proxy, _ = self.make()
        driver = ProxyDriver(proxy)
        driver.syn()
        proxy.reset()
        assert driver.data(GET) == []  # connection forgotten


class TestUsageCounter:
    def packet(self, payload=b"d" * 1000):
        return IPPacket(
            src=SERVER,
            dst=CLIENT,
            transport=TCPSegment(sport=80, dport=40_400, seq=1, payload=payload),
        )

    def test_counts_normal_traffic(self):
        counter = UsageCounter(PolicyState(), noise_bytes=0)
        counter.process(self.packet(), Direction.SERVER_TO_CLIENT, ctx())
        assert counter.exact == 1000

    def test_zero_rated_exempt(self):
        policy = PolicyState()
        counter = UsageCounter(policy, noise_bytes=0)
        policy.zero_rate(FiveTuple.of(self.packet()))
        counter.process(self.packet(), Direction.SERVER_TO_CLIENT, ctx())
        assert counter.exact == 0

    def test_read_includes_noise(self):
        counter = UsageCounter(PolicyState(), noise_bytes=10_000, seed=7)
        readings = [counter.read() for _ in range(5)]
        assert readings == sorted(readings)  # monotone (cumulative noise)

    def test_noise_bounded_per_read(self):
        counter = UsageCounter(PolicyState(), noise_bytes=100, seed=1)
        previous = counter.read()
        for _ in range(50):
            current = counter.read()
            assert current - previous <= 100
            previous = current

    def test_acks_not_counted(self):
        counter = UsageCounter(PolicyState(), noise_bytes=0)
        counter.process(self.packet(payload=b""), Direction.SERVER_TO_CLIENT, ctx())
        assert counter.exact == 0

    def test_reset(self):
        counter = UsageCounter(PolicyState(), noise_bytes=0)
        counter.process(self.packet(), Direction.SERVER_TO_CLIENT, ctx())
        counter.reset()
        assert counter.exact == 0
