"""Wire-level tests: exactly what packets does each technique emit?

A capture path (no middlebox, recording tap) lets these tests pin down the
crafted packets themselves — TTLs, header overrides, cut positions, ordering
— independent of any classifier's reaction.
"""

import pytest

from repro.core.evasion.base import EvasionContext
from repro.core.evasion.flushing import RSTBeforeMatch
from repro.core.evasion.inert import (
    DeprecatedIPOptions,
    InvalidDataOffset,
    InvalidFlagCombination,
    InvalidIPHeaderLength,
    InvalidIPOptions,
    InvalidIPVersion,
    LowTTLInert,
    NoACKFlag,
    TotalLengthLong,
    TotalLengthShort,
    UDPLengthShort,
    WrongIPChecksum,
    WrongProtocol,
    WrongTCPChecksum,
    WrongTCPSequence,
)
from repro.core.evasion.reordering import TCPSegmentReorder, UDPReorder
from repro.core.evasion.splitting import IPFragmentation, TCPSegmentSplit
from repro.core.report import MatchingField
from repro.envs import make_neutral
from repro.netsim.element import PacketTap
from repro.packets.flow import Direction
from repro.packets.tcp import TCPFlags
from repro.replay.session import ReplaySession
from repro.traffic.http import http_get_trace
from repro.traffic.stun import stun_trace

KEYWORD = b"video.example.com"


def capture(technique, trace=None, **ctx_kwargs):
    """Run *technique* over a tapped neutral path; return client-sent packets."""
    env = make_neutral()
    tap = PacketTap("wire-tap")
    env.path.elements.insert(0, tap)
    if trace is None:
        trace = http_get_trace("video.example.com", response_body=b"v" * 300)
    payload = trace.client_payloads()[0] if trace.protocol == "tcp" else b""
    fields = []
    if payload:
        index = payload.find(KEYWORD)
        if index >= 0:
            fields = [MatchingField(0, index, index + len(KEYWORD), KEYWORD)]
    defaults = dict(matching_fields=fields, middlebox_hops=0, protocol=trace.protocol)
    defaults.update(ctx_kwargs)
    context = EvasionContext(**defaults)
    ReplaySession(env, trace).run(technique=technique, context=context)
    return [
        r.packet
        for r in tap.records
        if r.direction is Direction.CLIENT_TO_SERVER
    ]


def data_packets(packets):
    return [p for p in packets if p.app_payload]


class TestInertEmissions:
    @pytest.mark.parametrize(
        "technique,predicate",
        [
            (LowTTLInert(), lambda p: p.ttl == 1),
            (InvalidIPVersion(), lambda p: p.version == 6),
            (InvalidIPHeaderLength(), lambda p: p.effective_ihl == 3),
            (TotalLengthLong(), lambda p: p.total_length_too_long()),
            (TotalLengthShort(), lambda p: p.total_length_too_short()),
            (WrongProtocol(), lambda p: p.effective_protocol == 0xFD),
            (WrongIPChecksum(), lambda p: not p.has_valid_checksum()),
            (InvalidIPOptions(), lambda p: not p.has_wellformed_options()),
            (DeprecatedIPOptions(), lambda p: p.has_deprecated_options()),
            (WrongTCPChecksum(), lambda p: p.tcp is not None and p.tcp.checksum == 0xDEAD),
            (InvalidDataOffset(), lambda p: p.tcp is not None and p.tcp.data_offset == 15),
            (
                InvalidFlagCombination(),
                lambda p: p.tcp is not None and not p.tcp.flags.is_valid_combination(),
            ),
            (
                NoACKFlag(),
                lambda p: p.tcp is not None
                and bool(p.app_payload)
                and not p.tcp.flags & TCPFlags.ACK,
            ),
        ],
        ids=lambda value: getattr(value, "name", "check"),
    )
    def test_exactly_one_inert_packet_with_the_defect(self, technique, predicate):
        packets = capture(technique)
        defective = [p for p in packets if predicate(p)]
        assert len(defective) == 1
        assert b"--" + technique.name.encode() in bytes(defective[0].app_payload or b"")

    def test_inert_precedes_matching_packet(self):
        packets = data_packets(capture(WrongIPChecksum()))
        inert_index = next(i for i, p in enumerate(packets) if not p.has_valid_checksum())
        match_index = next(i for i, p in enumerate(packets) if KEYWORD in p.app_payload)
        assert inert_index < match_index

    def test_inert_shares_seq_with_real_data(self):
        packets = data_packets(capture(WrongTCPChecksum()))
        inert = next(p for p in packets if p.tcp.checksum == 0xDEAD)
        real = next(p for p in packets if KEYWORD in p.app_payload)
        assert inert.tcp.seq == real.tcp.seq  # repeats, never advances

    def test_wrong_seq_is_wildly_off(self):
        packets = data_packets(capture(WrongTCPSequence()))
        seqs = [p.tcp.seq for p in packets]
        spread = max(seqs) - min(seqs)
        assert spread >= 0x10000000

    def test_inert_count_parameter(self):
        packets = data_packets(capture(WrongIPChecksum(), inert_packet_count=3))
        assert sum(1 for p in packets if not p.has_valid_checksum()) == 3

    def test_udp_length_short_field(self):
        packets = capture(UDPLengthShort(), trace=stun_trace())
        shorts = [
            p for p in packets if p.udp is not None and not p.udp.has_valid_length()
        ]
        assert len(shorts) == 1
        assert shorts[0].udp.effective_length < shorts[0].udp.wire_length()


class TestSplitEmissions:
    def test_no_single_packet_carries_the_keyword(self):
        packets = data_packets(capture(TCPSegmentSplit()))
        assert all(KEYWORD not in p.app_payload for p in packets)

    def test_pieces_cover_the_request(self):
        trace = http_get_trace("video.example.com", response_body=b"v" * 300)
        packets = data_packets(capture(TCPSegmentSplit(), trace=trace))
        base = min(p.tcp.seq for p in packets)
        stream = {}
        for p in packets:
            stream[p.tcp.seq - base] = p.app_payload
        rebuilt = b"".join(stream[k] for k in sorted(stream))
        assert rebuilt == trace.client_payloads()[0]

    def test_split_piece_count_bounded(self):
        packets = data_packets(capture(TCPSegmentSplit(), split_pieces=6))
        assert len(packets) <= 6

    def test_fragmentation_cuts_inside_field(self):
        packets = capture(IPFragmentation())
        fragments = [p for p in packets if p.is_fragment]
        assert len(fragments) >= 2
        first = next(f for f in fragments if f.frag_offset == 0)
        assert isinstance(first.transport, bytes)
        assert KEYWORD not in first.transport  # the field is cut


class TestReorderEmissions:
    def test_wire_order_is_not_seq_order(self):
        packets = data_packets(capture(TCPSegmentReorder()))
        seqs = [p.tcp.seq for p in packets if p.tcp.payload]
        assert seqs != sorted(seqs)

    def test_udp_reorder_moves_stun_packet(self):
        trace = stun_trace()
        packets = capture(UDPReorder(), trace=trace)
        payloads = [bytes(p.udp.payload) for p in packets if p.udp is not None]
        assert payloads != trace.client_payloads()
        assert sorted(payloads) == sorted(trace.client_payloads())


class TestFlushEmissions:
    def test_rst_before_match_is_ttl_limited(self):
        packets = capture(RSTBeforeMatch(), middlebox_hops=2)
        rsts = [p for p in packets if p.tcp is not None and p.tcp.flags & TCPFlags.RST]
        assert len(rsts) == 1
        assert rsts[0].ttl == 3  # hops + 1
