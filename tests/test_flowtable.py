"""FlowTable: slab/LRU semantics checked against a naive reference model.

The slab table replaced plain dicts across the middlebox layer, so its
contract is "exactly a bounded dict with LRU eviction": iteration order is
key-insertion order, recency only affects *victim choice*, and handles are
generation-stamped so stale ones dereference to ``None``.  The property
test drives random op sequences through both the slab and an OrderedDict
reference and demands identical contents, iteration order and victims.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.middlebox.flowtable import _INITIAL_SLOTS, FlowTable, Handle

settings_kwargs = dict(
    deadline=None, max_examples=60, suppress_health_check=[HealthCheck.too_slow]
)


class ModelLRU:
    """The obvious O(n) reference: a dict for contents + a recency list."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.data = {}  # insertion-ordered contents
        self.recency = []  # LRU end first
        self.evicted = []

    def _touch(self, key):
        self.recency.remove(key)
        self.recency.append(key)

    def get(self, key, touch=True):
        if key not in self.data:
            return None
        if touch:
            self._touch(key)
        return self.data[key]

    def touch(self, key):
        if key not in self.data:
            return False
        self._touch(key)
        return True

    def insert(self, key, value):
        if key in self.data:
            # dict pop+reinsert: back of iteration order, MRU end.
            del self.data[key]
            self.data[key] = value
            self._touch(key)
            return
        if self.capacity is not None and len(self.data) >= self.capacity:
            victim = self.recency.pop(0)
            self.evicted.append((victim, self.data.pop(victim)))
        self.data[key] = value
        self.recency.append(key)

    def pop(self, key):
        if key not in self.data:
            return None
        self.recency.remove(key)
        return self.data.pop(key)


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 15), st.integers(0, 1_000)),
        st.tuples(st.just("get"), st.integers(0, 15), st.booleans()),
        st.tuples(st.just("touch"), st.integers(0, 15), st.none()),
        st.tuples(st.just("pop"), st.integers(0, 15), st.none()),
    ),
    max_size=80,
)


class TestAgainstReferenceModel:
    @settings(**settings_kwargs)
    @given(ops=OPS, capacity=st.integers(min_value=1, max_value=8))
    def test_contents_order_and_victims_match_naive_lru(self, ops, capacity):
        evicted = []
        table = FlowTable(
            capacity=capacity, on_evict=lambda k, v, reason: evicted.append((k, v))
        )
        model = ModelLRU(capacity)
        for op, key, arg in ops:
            if op == "insert":
                table.insert(key, arg)
                model.insert(key, arg)
            elif op == "get":
                assert table.get(key, touch=arg) == model.get(key, touch=arg)
            elif op == "touch":
                assert table.touch(key) == model.touch(key)
            else:
                assert table.pop(key) == model.pop(key)
            assert len(table) == len(model.data)
        assert dict(table.items()) == model.data
        assert list(table.keys()) == list(model.data)
        assert evicted == model.evicted
        assert table.lru_key() == (model.recency[0] if model.recency else None)

    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_unbounded_table_is_a_plain_dict(self, ops):
        table = FlowTable()
        model = {}
        for op, key, arg in ops:
            if op == "insert":
                table.insert(key, arg)
                if key in model:
                    del model[key]
                model[key] = arg
            elif op == "get":
                assert table.get(key, touch=arg) == model.get(key)
            elif op == "touch":
                assert table.touch(key) == (key in model)
            else:
                assert table.pop(key) == model.pop(key, None)
        assert dict(table.items()) == model
        assert list(table.keys()) == list(model)


class TestHandles:
    def test_handle_dereferences_while_live(self):
        table = FlowTable(capacity=4)
        handle = table.insert("a", 1)
        assert table.entry_by_handle(handle) == ("a", 1)
        assert table.handle_of("a") == handle

    def test_stale_handle_after_pop_returns_none(self):
        table = FlowTable(capacity=4)
        handle = table.insert("a", 1)
        table.pop("a")
        assert table.entry_by_handle(handle) is None

    def test_recycled_slot_does_not_alias_new_flow(self):
        table = FlowTable(capacity=1)
        stale = table.insert("a", 1)
        table.insert("b", 2)  # evicts "a", recycles its slot
        assert table.handle_of("b").slot == stale.slot
        assert table.entry_by_handle(stale) is None
        assert table.entry_by_handle(table.handle_of("b")) == ("b", 2)

    def test_clear_invalidates_all_handles(self):
        table = FlowTable(capacity=4)
        handles = [table.insert(k, k) for k in range(3)]
        table.clear()
        assert len(table) == 0
        assert all(table.entry_by_handle(h) is None for h in handles)

    def test_garbage_handle_is_safe(self):
        table = FlowTable(capacity=4)
        assert table.entry_by_handle(Handle(999, 0)) is None
        assert table.entry_by_handle(Handle(-1, 0)) is None


class TestByteBudget:
    def make(self, budget, **kwargs):
        evicted = []
        table = FlowTable(
            byte_budget=budget,
            cost_of=len,
            on_evict=lambda k, v, reason: evicted.append((k, reason)),
            **kwargs,
        )
        return table, evicted

    def test_budget_requires_cost_function(self):
        with pytest.raises(ValueError):
            FlowTable(byte_budget=100)

    def test_exceeding_budget_evicts_from_lru_end(self):
        table, evicted = self.make(10)
        table.insert("a", b"xxxx")
        table.insert("b", b"xxxx")
        table.insert("c", b"xxxx")  # 12 bytes > 10: "a" goes
        assert evicted == [("a", "evicted-bytes")]
        assert table.total_cost == 8

    def test_recost_reappraises_and_sheds(self):
        table, evicted = self.make(10)
        table.insert("a", bytearray(b"xx"))
        grown = bytearray(b"xx")
        table.insert("b", grown)
        grown.extend(b"x" * 10)
        table.recost("b")
        assert evicted == [("a", "evicted-bytes")]
        assert table.total_cost == 12  # single oversized entry is kept

    def test_single_oversized_entry_never_self_evicts(self):
        table, evicted = self.make(4)
        table.insert("big", b"x" * 100)
        assert len(table) == 1
        assert evicted == []

    @settings(**settings_kwargs)
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=30),
        budget=st.integers(min_value=1, max_value=64),
    )
    def test_total_cost_invariant_under_churn(self, sizes, budget):
        table, _ = self.make(budget)
        for i, size in enumerate(sizes):
            table.insert(i, b"x" * size)
            assert table.total_cost == sum(len(v) for v in table.values())
            assert table.total_cost <= budget or len(table) == 1


class TestVictimPreference:
    def test_prefers_flagged_entry_near_lru_end(self):
        table = FlowTable(capacity=3, prefer_victim=lambda v: v == "done")
        table.insert("a", "live")
        table.insert("b", "done")
        table.insert("c", "live")
        table.insert("d", "live")  # capacity hit: "b" preferred over LRU "a"
        assert "b" not in table
        assert "a" in table

    def test_falls_back_to_strict_lru_without_candidates(self):
        table = FlowTable(capacity=3, prefer_victim=lambda v: False)
        for key in "abcd":
            table.insert(key, "live")
        assert "a" not in table

    def test_scan_limit_bounds_the_walk(self):
        table = FlowTable(capacity=4, prefer_victim=lambda v: v == "done", victim_scan_limit=2)
        table.insert("a", "live")
        table.insert("b", "live")
        table.insert("c", "live")
        table.insert("d", "done")  # MRU, beyond the 2-entry scan window
        table.insert("e", "live")
        assert "d" in table  # out of scan reach: strict LRU victim instead
        assert "a" not in table


class TestSlab:
    def test_slab_never_exceeds_capacity_slots(self):
        table = FlowTable(capacity=16)
        for i in range(10_000):
            table.insert(i, i)
        assert table.stats()["slots"] <= 16
        assert len(table) == 16

    def test_slab_growth_is_geometric_and_bounded(self):
        table = FlowTable(capacity=10_000)
        for i in range(200):
            table.insert(i, i)
        slots = table.stats()["slots"]
        assert 200 <= slots <= max(_INITIAL_SLOTS, 512)

    def test_eviction_counters(self):
        table = FlowTable(capacity=8)
        for i in range(20):
            table.insert(i, i)
        stats = table.stats()
        assert stats["evictions"] == 12
        assert stats["inserts"] == 20
        assert stats["size"] == 8
