"""Unit tests for the raw TCP/UDP clients and packet_from_plan."""

import pytest

from repro.endpoint.rawclient import (
    RawTCPClient,
    RawUDPClient,
    SegmentPlan,
    packet_from_plan,
)
from repro.netsim.clock import VirtualClock
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.packets.tcp import TCPFlags

from tests.conftest import CLIENT, SERVER, make_direct_link


class TestPacketFromPlan:
    def build(self, plan):
        return packet_from_plan(
            plan,
            src=CLIENT,
            dst=SERVER,
            sport=40_000,
            dport=80,
            default_seq=1_234,
            ack=5_678,
        )

    def test_defaults(self):
        packet = self.build(SegmentPlan(payload=b"x"))
        assert packet.tcp.seq == 1_234
        assert packet.tcp.ack == 5_678
        assert packet.tcp.flags == TCPFlags.ACK | TCPFlags.PSH
        assert packet.ttl == 64

    def test_seq_override(self):
        assert self.build(SegmentPlan(seq=99)).tcp.seq == 99

    def test_ttl_override(self):
        assert self.build(SegmentPlan(ttl=3)).ttl == 3

    def test_ip_field_overrides(self):
        plan = SegmentPlan(
            payload=b"x",
            ip_version=6,
            ip_protocol=0xFD,
            ip_checksum=0xBEEF,
            ip_total_length_delta=100,
        )
        packet = self.build(plan)
        assert packet.version == 6
        assert packet.effective_protocol == 0xFD
        assert packet.checksum == 0xBEEF
        assert packet.total_length_too_long()

    def test_tcp_field_overrides(self):
        plan = SegmentPlan(payload=b"x", tcp_checksum=0xDEAD, data_offset=15, flags=TCPFlags.PSH)
        packet = self.build(plan)
        assert packet.tcp.checksum == 0xDEAD
        assert packet.tcp.data_offset == 15
        assert packet.tcp.flags == TCPFlags.PSH

    def test_options_override(self):
        from repro.packets.options import deprecated_ip_option

        packet = self.build(SegmentPlan(ip_options=deprecated_ip_option()))
        assert packet.has_deprecated_options()


class TestRawTCPClient:
    def test_seq_advances_with_payload(self):
        _clock, _path, _stack, client = make_direct_link()
        client.connect()
        start = client.next_seq
        client.send_payload(b"12345")
        assert client.next_seq == start + 5

    def test_inert_plan_does_not_advance(self):
        _clock, _path, _stack, client = make_direct_link()
        client.connect()
        start = client.next_seq
        client.send_plan(SegmentPlan(payload=b"12345", advances_seq=False))
        assert client.next_seq == start

    def test_explicit_seq_does_not_advance(self):
        _clock, _path, _stack, client = make_direct_link()
        client.connect()
        start = client.next_seq
        client.send_plan(SegmentPlan(payload=b"12345", seq=start + 100))
        assert client.next_seq == start

    def test_pause_before_advances_clock(self):
        clock, _path, _stack, client = make_direct_link()
        client.connect()
        client.send_plan(SegmentPlan(payload=b"x", pause_before=9.0))
        assert clock.now >= 9.0

    def test_connect_fails_without_server(self):
        path = Path(VirtualClock(), [RouterHop("r")])
        client = RawTCPClient(path, CLIENT, SERVER)
        assert not client.connect()
        assert not client.established

    def test_empty_payload_sends_one_packet(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        before = len(stack.raw_arrivals)
        client.send_payload(b"")
        assert len(stack.raw_arrivals) == before + 1

    def test_mss_chunking(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        before = len(stack.raw_arrivals)
        client.send_payload(b"z" * 3000, mss=1000)
        assert len(stack.raw_arrivals) == before + 3

    def test_ttl_limited_rst_dies_en_route(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.send_rst(ttl=1)
        rsts = [
            p
            for p in stack.raw_arrivals
            if p.tcp is not None and p.tcp.flags & TCPFlags.RST
        ]
        assert rsts == []

    def test_collector_records_icmp(self):
        _clock, _path, _stack, client = make_direct_link()
        client.connect()
        client.send_plan(SegmentPlan(payload=b"probe", ttl=1, advances_seq=False))
        assert client.collector.icmp_time_exceeded()

    def test_server_stream_reassembles(self):
        _clock, _path, _stack, client = make_direct_link()
        client.connect()
        client.send_payload(b"echo-me")
        assert client.server_stream() == b"echo-me"


class TestRawUDPClient:
    def make(self):
        from repro.endpoint.udpstack import UDPServerStack

        path = Path(VirtualClock(), [RouterHop("r1")])
        stack = UDPServerStack(SERVER)
        path.server_endpoint = stack
        return RawUDPClient(path, CLIENT, SERVER, sport=41_500, dport=3478), stack

    def test_plain_datagram(self):
        client, stack = self.make()
        client.send_datagram(b"ping")
        assert stack.delivered_stream(41_500, 3478) == [b"ping"]

    def test_checksum_override(self):
        client, stack = self.make()
        packet = client.send_datagram(b"ping", checksum=0xDEAD)
        assert packet.udp.checksum == 0xDEAD
        assert stack.delivered_stream(41_500, 3478) == []

    def test_length_override(self):
        client, _stack = self.make()
        packet = client.send_datagram(b"ping", length_delta=8)
        assert packet.udp.effective_length == packet.udp.wire_length() + 8
