"""DependencyCache: HQTimer-style dependency-aware rule-artifact caching.

Unit tests drive a private cache instance through cascades, TTL expiry,
capacity eviction and replacement; integration tests verify the three
compile layers (rule sets, views, automata) stay coherent with their
layer-local memos when entries are invalidated underneath them.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.middlebox import automaton as mbx_automaton
from repro.middlebox.automaton import automaton_cache_key, automaton_for
from repro.middlebox.rulecache import RULE_CACHE, DependencyCache
from repro.middlebox.ruleindex import CompiledRuleSet
from repro.middlebox.rules import MatchRule

settings_kwargs = dict(
    deadline=None, max_examples=40, suppress_health_check=[HealthCheck.too_slow]
)


class TestCoreSemantics:
    def test_put_get_roundtrip(self):
        cache = DependencyCache(capacity=8)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert "a" in cache
        assert len(cache) == 1

    def test_invalidate_cascades_to_transitive_dependents(self):
        cache = DependencyCache(capacity=8)
        log = []
        hook = lambda key, value, reason: log.append((key, reason))  # noqa: E731
        cache.put("a", 1, on_invalidate=hook)
        cache.put("b", 2, deps=("a",), on_invalidate=hook)
        cache.put("c", 3, deps=("b",), on_invalidate=hook)
        cache.put("d", 4, deps=("a",), on_invalidate=hook)
        dropped = cache.invalidate("a", reason="test")
        # Breadth-first in registration order: a, then its dependents b and
        # d, then b's dependent c.
        assert dropped == ["a", "b", "d", "c"]
        assert log == [
            ("a", "test"),
            ("b", "dependency:test"),
            ("d", "dependency:test"),
            ("c", "dependency:dependency:test"),
        ]
        assert len(cache) == 0

    def test_invalidating_a_leaf_leaves_parents(self):
        cache = DependencyCache(capacity=8)
        cache.put("a", 1)
        cache.put("b", 2, deps=("a",))
        assert cache.invalidate("b") == ["b"]
        assert cache.get("a") == 1

    def test_replacement_invalidates_the_old_entry_and_its_dependents(self):
        cache = DependencyCache(capacity=8)
        log = []
        cache.put("a", 1)
        cache.put("b", 2, deps=("a",), on_invalidate=lambda k, v, r: log.append((k, v, r)))
        cache.put("a", 10)
        assert log == [("b", 2, "dependency:replaced")]
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_missing_dependencies_are_tolerated(self):
        cache = DependencyCache(capacity=8)
        cache.put("orphan", 1, deps=("never-existed",))
        assert cache.get("orphan") == 1

    def test_capacity_eviction_cascades(self):
        log = []
        cache = DependencyCache(capacity=2)
        cache.put("a", 1, on_invalidate=lambda k, v, r: log.append((k, r)))
        cache.put("view-of-a", 2, deps=("a",), on_invalidate=lambda k, v, r: log.append((k, r)))
        cache.put("b", 3)  # capacity 2: LRU entry "a" evicted, cascade drops its view
        assert log == [("a", "evicted"), ("view-of-a", "dependency:evicted")]
        assert len(cache) == 1
        assert cache.get("b") == 3

    def test_touch_protects_from_eviction(self):
        cache = DependencyCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.touch("a")
        cache.put("c", 3)  # LRU is now "b"
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert not cache.touch("b")

    def test_clear_unhooks_everything(self):
        log = []
        cache = DependencyCache(capacity=8)
        for key in ("a", "b"):
            cache.put(key, key, on_invalidate=lambda k, v, r: log.append((k, r)))
        cache.clear()
        assert log == [("a", "cleared"), ("b", "cleared")]
        assert len(cache) == 0

    def test_stats_shape(self):
        cache = DependencyCache(capacity=4)
        cache.put("a", 1)
        cache.invalidate("a")
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["expirations"] == 0
        assert stats["size"] == 0


class TestTTL:
    def test_tick_expires_idle_entries(self):
        cache = DependencyCache(capacity=8, ttl=10.0)
        log = []
        cache.put("a", 1, now=0.0, on_invalidate=lambda k, v, r: log.append((k, r)))
        cache.put("b", 2, deps=("a",), now=0.0)
        assert cache.tick(5.0) == []
        assert cache.tick(11.0) == ["a", "b"]
        assert log == [("a", "expired")]
        assert cache.expirations == 1  # the cascade victim is not an expiry

    def test_touch_resets_the_idle_clock(self):
        cache = DependencyCache(capacity=8, ttl=10.0)
        cache.put("a", 1, now=0.0)
        cache.touch("a", now=8.0)
        assert cache.tick(15.0) == []
        assert cache.tick(20.0) == ["a"]

    def test_per_entry_ttl_overrides_default(self):
        cache = DependencyCache(capacity=8, ttl=100.0)
        cache.put("short", 1, ttl=1.0, now=0.0)
        cache.put("long", 2, now=0.0)
        assert cache.tick(5.0) == ["short"]
        assert cache.get("long") == 2

    def test_no_ttl_never_expires(self):
        cache = DependencyCache(capacity=8)
        cache.put("a", 1, now=0.0)
        assert cache.tick(1e9) == []


class TestPropertyGraph:
    @settings(**settings_kwargs)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=24
        ),
        root=st.integers(0, 11),
    )
    def test_cascade_drops_exactly_the_reachable_set(self, edges, root):
        """Invalidation == reachability in the dependent graph (when keys
        are registered before their dependents reference them)."""
        cache = DependencyCache(capacity=64)
        reachable = {root}
        adjacency = {}
        for node in range(12):
            cache.put(node, node)
        for child, parent in edges:
            if child == parent:
                continue
            # Re-putting would invalidate, so record edges via a fresh put
            # only the first time the child appears.
            adjacency.setdefault(parent, []).append(child)
        for parent, children in adjacency.items():
            for child in children:
                entry = cache._store.get(parent, touch=False)
                entry.dependents.setdefault(child, None)
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for child in adjacency.get(node, ()):
                if child not in reachable:
                    reachable.add(child)
                    frontier.append(child)
        dropped = cache.invalidate(root)
        assert set(dropped) == reachable
        assert len(cache) == 12 - len(reachable)


def fresh_rules():
    return [
        MatchRule(name="video", keywords=[b"video.example.com"]),
        MatchRule(name="news", keywords=[b"news.example.org"]),
    ]


class TestCompileLayerIntegration:
    def test_shared_rulesets_intern_and_register(self):
        rules = fresh_rules()
        compiled = CompiledRuleSet.shared(rules)
        assert CompiledRuleSet.shared(rules) is compiled
        assert compiled.cache_key in RULE_CACHE

    def test_dropping_a_ruleset_drops_its_views(self):
        rules = fresh_rules()
        compiled = CompiledRuleSet.shared(rules)
        view = compiled.view("tcp", 80, "client_to_server")
        view_key = ("view", compiled.cache_key[1], ("tcp", 80, "client_to_server"))
        assert view_key in RULE_CACHE
        dropped = RULE_CACHE.invalidate(compiled.cache_key, reason="test")
        assert compiled.cache_key in dropped and view_key in dropped
        assert compiled._views == {}
        assert tuple(map(id, rules)) not in CompiledRuleSet._shared
        # The set recompiles cleanly afterwards.
        rebuilt = CompiledRuleSet.shared(rules)
        assert rebuilt is not compiled
        assert rebuilt.view("tcp", 80, "client_to_server") is not view

    def test_dropping_an_automaton_drops_views_but_not_the_ruleset(self):
        rules = fresh_rules()
        compiled = CompiledRuleSet.shared(rules)
        view = compiled.view("tcp", 80, "client_to_server")
        patterns = view.automaton.patterns
        assert patterns in mbx_automaton._INTERNED
        RULE_CACHE.invalidate(automaton_cache_key(patterns), reason="test")
        assert patterns not in mbx_automaton._INTERNED
        assert ("tcp", 80, "client_to_server") not in compiled._views
        assert compiled.cache_key in RULE_CACHE  # the parent layer survives
        # Rebuilding the view rebuilds (and re-registers) the automaton.
        rebuilt = compiled.view("tcp", 80, "client_to_server")
        assert rebuilt is not view
        assert patterns in mbx_automaton._INTERNED

    def test_automaton_interning_survives_touch(self):
        first = automaton_for((b"alpha", b"beta"))
        assert automaton_for((b"alpha", b"beta")) is first
        assert automaton_cache_key((b"alpha", b"beta")) in RULE_CACHE
        RULE_CACHE.invalidate(automaton_cache_key((b"alpha", b"beta")))
        assert automaton_for((b"alpha", b"beta")) is not first

    def test_view_memo_hits_do_not_rebuild(self):
        compiled = CompiledRuleSet.shared(fresh_rules())
        view = compiled.view("tcp", 80, "client_to_server")
        assert compiled.view("tcp", 80, "client_to_server") is view

    def test_churned_rulesets_stay_bounded(self):
        """Thousands of throwaway rule sets cannot grow the memos without
        bound: the cache's capacity evicts old sets and pops their memo
        entries (the regression the ad-hoc dicts guarded with hard limits)."""
        capacity = RULE_CACHE.capacity
        assert capacity is not None
        for index in range(64):
            CompiledRuleSet.shared([MatchRule(name=f"r{index}", keywords=[b"x%d" % index])])
        assert len(CompiledRuleSet._shared) <= capacity
        assert len(RULE_CACHE) <= capacity

    def test_global_cache_capacity_bounds_interned_automata(self):
        before = len(mbx_automaton._INTERNED)
        for index in range(32):
            automaton_for((b"churn-%d" % index,))
        assert len(mbx_automaton._INTERNED) <= before + 32
        assert len(RULE_CACHE) <= RULE_CACHE.capacity
