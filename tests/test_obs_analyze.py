"""Trace query engine tests, run against the committed golden artifacts."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs import trace as obs_trace
from repro.obs.analyze import (
    TraceIndex,
    flow_of,
    format_events,
    format_summary,
    summarize_tracer,
)

pytestmark = pytest.mark.obs

GOLDEN = Path(__file__).parent / "golden"
THROTTLE_RULE = "testbed:video.example.com"


@pytest.fixture(scope="module")
def throttle_index() -> TraceIndex:
    return TraceIndex.load(str(GOLDEN / "testbed_throttle_cell.jsonl"))


@pytest.fixture(scope="module")
def neutral_index() -> TraceIndex:
    return TraceIndex.load(str(GOLDEN / "neutral_cell.jsonl"))


class TestFlowOf:
    def test_explicit_flow_field_wins(self):
        assert flow_of({"flow": "a:1>b:2/6", "src": "x"}) == "a:1>b:2/6"

    def test_built_from_header_fields(self):
        event = {"src": "10.0.0.1", "sport": 1234, "dst": "10.0.0.2", "dport": 80, "proto": 6}
        assert flow_of(event) == "10.0.0.1:1234>10.0.0.2:80/6"

    def test_server_to_client_direction_is_flipped(self):
        event = {
            "src": "10.0.0.2",
            "sport": 80,
            "dst": "10.0.0.1",
            "dport": 1234,
            "proto": 6,
            "dir": "s2c",
        }
        assert flow_of(event) == "10.0.0.1:1234>10.0.0.2:80/6"

    def test_flowless_event_is_none(self):
        assert flow_of({"kind": "env.created"}) is None


class TestTraceIndexQueries:
    def test_kinds_counts_every_event(self, throttle_index):
        kinds = throttle_index.kinds()
        assert sum(kinds.values()) == len(throttle_index.events) == 62
        assert kinds["mbx.rule_match"] == 1

    def test_rules_sees_the_throttle_rule(self, throttle_index, neutral_index):
        assert throttle_index.rules() == [THROTTLE_RULE]
        assert neutral_index.rules() == []

    def test_query_by_kind_prefix(self, throttle_index):
        mbx = throttle_index.query(kind="mbx")
        assert {e["kind"] for e in mbx} == {
            "mbx.flow_created",
            "mbx.anchor",
            "mbx.rule_match",
            "mbx.verdict",
        }

    def test_query_kind_prefix_does_not_match_substrings(self, throttle_index):
        # "mb" is not a dotted prefix of "mbx.*" and must match nothing.
        assert throttle_index.query(kind="mb") == []

    def test_query_by_rule(self, throttle_index):
        events = throttle_index.query(rule=THROTTLE_RULE)
        assert len(events) == 1  # only the match event carries a rule field
        assert events[0]["kind"] == "mbx.rule_match"
        assert events[0]["action"] == "throttle"

    def test_query_limit_truncates(self, throttle_index):
        full = throttle_index.query(kind="hop.traverse")
        assert len(full) == 45
        assert throttle_index.query(kind="hop.traverse", limit=3) == full[:3]

    def test_query_by_flow_substring(self, throttle_index):
        flow = throttle_index.flows()[0]
        assert throttle_index.query(flow=flow, kind="hop.traverse")
        assert throttle_index.query(flow=":80/", kind="hop.traverse")

    def test_timeline_is_in_trace_order(self, throttle_index):
        flow = throttle_index.flows()[0]
        timeline = throttle_index.timeline(flow)
        assert timeline
        seqs = [event["seq"] for event in timeline]
        assert seqs == sorted(seqs)

    def test_timeline_accepts_unambiguous_substring(self, throttle_index):
        full = throttle_index.timeline(throttle_index.flows()[0])
        assert throttle_index.timeline("203.0.113.50") == full

    def test_timeline_unknown_flow_is_empty(self, throttle_index):
        assert throttle_index.timeline("nosuchhost") == []

    def test_timeline_ambiguous_substring_raises(self):
        index = TraceIndex(
            [
                {"kind": "x", "flow": "a:1>c:3/6", "seq": 0},
                {"kind": "x", "flow": "b:2>c:3/6", "seq": 1},
            ]
        )
        with pytest.raises(ValueError, match="ambiguous"):
            index.timeline("c:3")


class TestTraceIndexAggregates:
    def test_rule_stats_counts_matches_and_actions(self, throttle_index):
        stats = throttle_index.rule_stats()
        assert stats[THROTTLE_RULE]["matches"] == 1
        assert stats[THROTTLE_RULE]["actions"] == {"throttle": 1}
        assert stats[THROTTLE_RULE]["elements"] == ["testbed-dpi"]

    def test_verdicts_tally(self, throttle_index, neutral_index):
        assert throttle_index.verdicts() == {THROTTLE_RULE: 1}
        assert neutral_index.verdicts() == {}

    def test_cells_returns_experiment_results(self, throttle_index):
        cells = throttle_index.cells()
        assert len(cells) == 1
        assert cells[0]["env"] == "testbed"
        assert cells[0]["technique"] == "tcp-invalid-data-offset"
        assert cells[0]["cc"] == "N"

    def test_summary_is_json_ready_and_complete(self, throttle_index):
        import json

        summary = throttle_index.summary()
        assert summary["events"] == 62
        assert summary["flows"] == 1
        json.dumps(summary)  # must serialize without a custom encoder

    def test_summarize_tracer_round_trips(self):
        with obs_trace.tracing() as tracer:
            tracer.emit("mbx.rule_match", rule="r1", action="block", element="dpi")
            tracer.emit("mbx.verdict", verdict="r1", flow="a:1>b:2/6")
        summary = summarize_tracer(tracer)
        assert summary["events"] == 2
        assert summary["rules"]["r1"]["matches"] == 1
        assert summary["verdicts"] == {"r1": 1}

    def test_drop_stats_groups_kind_and_reason(self):
        index = TraceIndex(
            [
                {"kind": "hop.drop", "reason": "rst-injected", "seq": 0},
                {"kind": "hop.drop", "reason": "rst-injected", "seq": 1},
                {"kind": "fault.drop", "reason": "loss", "seq": 2},
                {"kind": "frag.expired", "seq": 3},
            ]
        )
        assert index.drop_stats() == {
            "fault.drop:loss": 1,
            "frag.expired:unspecified": 1,
            "hop.drop:rst-injected": 2,
        }


class TestRendering:
    def test_format_events_mentions_rule_and_kind(self, throttle_index):
        text = format_events(throttle_index.query(kind="mbx.rule_match"))
        assert "mbx.rule_match" in text
        assert THROTTLE_RULE in text

    def test_format_events_empty(self):
        assert "no matching events" in format_events([])

    def test_format_summary_sections(self, throttle_index):
        text = format_summary(throttle_index.summary())
        assert "rule hits:" in text
        assert "experiment cells:" in text
        assert THROTTLE_RULE in text
