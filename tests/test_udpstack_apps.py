"""Unit tests for the UDP stack and the server applications."""

import pytest

from repro.endpoint.apps import (
    EchoApp,
    HTTPServerApp,
    HTTPSite,
    ReplayServerApp,
    ReplayStep,
    UDPReplayApp,
)
from repro.endpoint.osmodel import LINUX, MACOS
from repro.endpoint.rawclient import RawUDPClient
from repro.endpoint.udpstack import UDPServerStack
from repro.netsim.clock import VirtualClock
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.packets.flow import FiveTuple

from tests.conftest import CLIENT, SERVER


def make_udp_link(app=None, server_os=LINUX):
    path = Path(VirtualClock(), [RouterHop("r1")])
    stack = UDPServerStack(SERVER, os_profile=server_os, app=app)
    path.server_endpoint = stack
    client = RawUDPClient(path, CLIENT, SERVER, sport=41_000, dport=3478)
    return path, stack, client


class TestUDPStack:
    def test_delivery(self):
        _path, stack, client = make_udp_link()
        client.send_datagram(b"hello")
        assert stack.delivered_stream(41_000, 3478) == [b"hello"]

    def test_bad_checksum_dropped_but_recorded(self):
        _path, stack, client = make_udp_link()
        client.send_datagram(b"junk", checksum=0xDEAD)
        assert stack.delivered_stream(41_000, 3478) == []
        assert len(stack.raw_arrivals) == 1

    def test_length_long_dropped(self):
        _path, stack, client = make_udp_link()
        client.send_datagram(b"junk", length_delta=20)
        assert stack.delivered_stream(41_000, 3478) == []

    def test_length_short_truncated_on_linux(self):
        _path, stack, client = make_udp_link(server_os=LINUX)
        client.send_datagram(b"0123456789", length_delta=-4)
        assert stack.delivered_stream(41_000, 3478) == [b"012345"]

    def test_length_short_dropped_on_macos(self):
        _path, stack, client = make_udp_link(server_os=MACOS)
        client.send_datagram(b"0123456789", length_delta=-4)
        assert stack.delivered_stream(41_000, 3478) == []

    def test_app_responses_flow_back(self):
        class _Responder:
            def on_datagram(self, src, sport, dport, data):
                return [b"pong:" + data]

        _path, _stack, client = make_udp_link(app=_Responder())
        client.send_datagram(b"ping")
        assert client.responses() == [b"pong:ping"]

    def test_port_scoping(self):
        path = Path(VirtualClock(), [])
        stack = UDPServerStack(SERVER, ports={53})
        path.server_endpoint = stack
        client = RawUDPClient(path, CLIENT, SERVER, sport=41_001, dport=3478)
        client.send_datagram(b"x")
        assert stack.delivered == []

    def test_ttl_limited_never_arrives(self):
        _path, stack, client = make_udp_link()
        client.send_datagram(b"probe", ttl=1)
        assert stack.raw_arrivals == []

    def test_reset(self):
        _path, stack, client = make_udp_link()
        client.send_datagram(b"x")
        stack.reset()
        assert stack.delivered == []
        assert stack.raw_arrivals == []


CONN = FiveTuple(CLIENT, 40_000, SERVER, 80, 6)


class TestReplayServerApp:
    def test_threshold_triggering(self):
        app = ReplayServerApp([ReplayStep(5, b"resp1"), ReplayStep(10, b"resp2")])
        app.on_connect(CONN)
        assert app.on_data(CONN, b"abc") == b""
        assert app.on_data(CONN, b"de") == b"resp1"
        assert app.on_data(CONN, b"fghij") == b"resp2"

    def test_content_independent(self):
        """Bit-inverted replays trigger exactly like originals (count-based)."""
        app = ReplayServerApp([ReplayStep(4, b"resp")])
        app.on_connect(CONN)
        assert app.on_data(CONN, b"\xff\xff\xff\xff") == b"resp"

    def test_multiple_steps_in_one_burst(self):
        app = ReplayServerApp([ReplayStep(2, b"a"), ReplayStep(4, b"b")])
        app.on_connect(CONN)
        assert app.on_data(CONN, b"wxyz") == b"ab"

    def test_stream_recorded(self):
        app = ReplayServerApp([])
        app.on_connect(CONN)
        app.on_data(CONN, b"abc")
        assert app.stream(CONN) == b"abc"

    def test_reset(self):
        app = ReplayServerApp([ReplayStep(1, b"r")])
        app.on_connect(CONN)
        app.on_data(CONN, b"x")
        app.reset()
        assert app.stream(CONN) == b""


class TestUDPReplayApp:
    def test_positional_responses(self):
        app = UDPReplayApp({0: [b"r0"], 2: [b"r2a", b"r2b"]})
        assert app.on_datagram(CLIENT, 1, 2, b"first") == [b"r0"]
        assert app.on_datagram(CLIENT, 1, 2, b"second") == []
        assert app.on_datagram(CLIENT, 1, 2, b"third") == [b"r2a", b"r2b"]

    def test_records(self):
        app = UDPReplayApp()
        app.on_datagram(CLIENT, 1, 2, b"x")
        assert app.received == [b"x"]


class TestHTTPServerApp:
    def make_app(self):
        app = HTTPServerApp()
        app.add_page("example.com", "/", "text/html", b"<html>hi</html>")
        app.add_page("video.example.com", "/v.mp4", "video/mp4", b"\x00" * 64)
        return app

    def test_serves_page(self):
        app = self.make_app()
        app.on_connect(CONN)
        response = app.on_data(CONN, b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n")
        assert b"200 OK" in response
        assert b"<html>hi</html>" in response

    def test_content_type_header(self):
        app = self.make_app()
        app.on_connect(CONN)
        response = app.on_data(CONN, b"GET /v.mp4 HTTP/1.1\r\nHost: video.example.com\r\n\r\n")
        assert b"Content-Type: video/mp4" in response

    def test_404(self):
        app = self.make_app()
        app.on_connect(CONN)
        response = app.on_data(CONN, b"GET /missing HTTP/1.1\r\nHost: example.com\r\n\r\n")
        assert b"404" in response

    def test_unknown_host_404(self):
        app = self.make_app()
        app.on_connect(CONN)
        response = app.on_data(CONN, b"GET / HTTP/1.1\r\nHost: nope.org\r\n\r\n")
        assert b"404" in response

    def test_fragmented_request_buffered(self):
        app = self.make_app()
        app.on_connect(CONN)
        assert app.on_data(CONN, b"GET / HTTP/1.1\r\nHo") == b""
        response = app.on_data(CONN, b"st: example.com\r\n\r\n")
        assert b"200 OK" in response

    def test_pipelined_requests(self):
        app = self.make_app()
        app.on_connect(CONN)
        request = b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"
        response = app.on_data(CONN, request + request)
        assert response.count(b"200 OK") == 2

    def test_bad_request(self):
        app = self.make_app()
        app.on_connect(CONN)
        assert b"400" in app.on_data(CONN, b"NONSENSE\r\n\r\n")


class TestEchoApp:
    def test_echo(self):
        app = EchoApp()
        assert app.on_data(CONN, b"abc") == b"abc"
