"""Unit tests for router hops and malformed-packet filters."""

from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.filters import FilterPolicy, MalformedPacketFilter, TCPChecksumNormalizer
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.packets.flow import Direction
from repro.packets.fragment import fragment_packet
from repro.packets.ip import IPPacket
from repro.packets.options import deprecated_ip_option, invalid_ip_option
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram


def ctx():
    injected = []
    return (
        TransitContext(
            clock=VirtualClock(),
            inject_back=injected.append,
            inject_forward=injected.append,
        ),
        injected,
    )


def tcp_packet(ttl=64, payload=b"x", flags=TCPFlags.ACK | TCPFlags.PSH, **kwargs):
    return IPPacket(
        src="10.0.0.1",
        dst="10.0.0.2",
        transport=TCPSegment(sport=1, dport=80, seq=100, flags=flags, payload=payload),
        ttl=ttl,
        **kwargs,
    )


class TestRouterHop:
    def test_decrements_ttl(self):
        router = RouterHop()
        context, _ = ctx()
        (out,) = router.process(tcp_packet(ttl=10), Direction.CLIENT_TO_SERVER, context)
        assert out.ttl == 9

    def test_ttl_expiry_drops_and_icmps(self):
        router = RouterHop()
        context, injected = ctx()
        out = router.process(tcp_packet(ttl=1), Direction.CLIENT_TO_SERVER, context)
        assert out == []
        assert len(injected) == 1
        assert injected[0].icmp is not None
        assert injected[0].icmp.is_time_exceeded
        assert router.dropped

    def test_ttl_expiry_without_icmp(self):
        router = RouterHop(send_time_exceeded=False)
        context, injected = ctx()
        assert router.process(tcp_packet(ttl=1), Direction.CLIENT_TO_SERVER, context) == []
        assert injected == []

    def test_validates_ip_header(self):
        router = RouterHop(validate_ip_header=True)
        context, _ = ctx()
        assert router.process(tcp_packet(version=6), Direction.CLIENT_TO_SERVER, context) == []
        assert router.process(tcp_packet(checksum=0xBEEF), Direction.CLIENT_TO_SERVER, context) == []

    def test_permissive_router_forwards_garbage(self):
        router = RouterHop(validate_ip_header=False)
        context, _ = ctx()
        assert len(router.process(tcp_packet(version=6, ttl=5), Direction.CLIENT_TO_SERVER, context)) == 1

    def test_options_not_validated_by_router(self):
        router = RouterHop(validate_ip_header=True)
        context, _ = ctx()
        packet = tcp_packet(options=invalid_ip_option())
        assert len(router.process(packet, Direction.CLIENT_TO_SERVER, context)) == 1

    def test_reset_clears_drops(self):
        router = RouterHop()
        context, _ = ctx()
        router.process(tcp_packet(ttl=1), Direction.CLIENT_TO_SERVER, context)
        router.reset()
        assert router.dropped == []


class TestMalformedPacketFilter:
    def _run(self, policy, packet):
        element = MalformedPacketFilter(policy)
        context, _ = ctx()
        return element.process(packet, Direction.CLIENT_TO_SERVER, context)

    def test_permissive_passes_everything(self):
        assert self._run(FilterPolicy.permissive(), tcp_packet(checksum=0xBEEF))

    def test_drop_bad_ip_header(self):
        assert self._run(FilterPolicy(drop_bad_ip_header=True), tcp_packet(version=6)) == []

    def test_drop_invalid_options(self):
        policy = FilterPolicy(drop_invalid_ip_options=True)
        assert self._run(policy, tcp_packet(options=invalid_ip_option())) == []
        assert self._run(policy, tcp_packet(options=deprecated_ip_option()))

    def test_drop_deprecated_options(self):
        policy = FilterPolicy(drop_deprecated_ip_options=True)
        assert self._run(policy, tcp_packet(options=deprecated_ip_option())) == []

    def test_drop_unknown_protocol(self):
        assert self._run(FilterPolicy(drop_unknown_protocol=True), tcp_packet(protocol=0xFD)) == []

    def test_drop_fragments(self):
        packet = fragment_packet(tcp_packet(payload=b"z" * 64), 24)[0]
        assert self._run(FilterPolicy(drop_ip_fragments=True), packet) == []

    def test_drop_bad_tcp_checksum(self):
        packet = tcp_packet()
        packet.tcp.checksum = 0xDEAD
        assert self._run(FilterPolicy(drop_bad_tcp_checksum=True), packet) == []

    def test_drop_missing_ack(self):
        packet = tcp_packet(flags=TCPFlags.PSH)
        assert self._run(FilterPolicy(drop_missing_ack_flag=True), packet) == []

    def test_syn_allowed_without_ack(self):
        packet = tcp_packet(flags=TCPFlags.SYN, payload=b"")
        assert self._run(FilterPolicy(drop_missing_ack_flag=True), packet)

    def test_drop_bad_data_offset(self):
        packet = tcp_packet()
        packet.tcp.data_offset = 15
        assert self._run(FilterPolicy(drop_bad_data_offset=True), packet) == []

    def test_drop_invalid_flag_combo(self):
        packet = tcp_packet(flags=TCPFlags.SYN | TCPFlags.FIN)
        assert self._run(FilterPolicy(drop_invalid_flag_combo=True), packet) == []

    def test_drop_bad_udp(self):
        packet = IPPacket(
            src="1.1.1.1",
            dst="2.2.2.2",
            transport=UDPDatagram(sport=1, dport=2, payload=b"u", checksum=0xDEAD),
        )
        assert self._run(FilterPolicy(drop_bad_udp_checksum=True), packet) == []

    def test_out_of_window_seq_needs_state(self):
        element = MalformedPacketFilter(FilterPolicy(drop_out_of_window_seq=True))
        context, _ = ctx()
        first = tcp_packet(payload=b"a")  # establishes tracking
        assert element.process(first, Direction.CLIENT_TO_SERVER, context)
        wild = tcp_packet(payload=b"b")
        wild.tcp.seq = (first.tcp.seq + 0x30000000) & 0xFFFFFFFF
        assert element.process(wild, Direction.CLIENT_TO_SERVER, context) == []

    def test_in_window_seq_passes(self):
        element = MalformedPacketFilter(FilterPolicy(drop_out_of_window_seq=True))
        context, _ = ctx()
        first = tcp_packet(payload=b"a")
        element.process(first, Direction.CLIENT_TO_SERVER, context)
        next_packet = tcp_packet(payload=b"b")
        next_packet.tcp.seq = first.tcp.seq + 1
        assert element.process(next_packet, Direction.CLIENT_TO_SERVER, context)

    def test_strict_carrier_profile(self):
        policy = FilterPolicy.strict_carrier()
        assert policy.drop_bad_tcp_checksum
        assert policy.drop_invalid_ip_options
        assert not policy.drop_ip_fragments


class TestChecksumNormalizer:
    def test_fixes_bad_checksum(self):
        normalizer = TCPChecksumNormalizer()
        context, _ = ctx()
        packet = tcp_packet()
        packet.tcp.checksum = 0xDEAD
        (out,) = normalizer.process(packet, Direction.CLIENT_TO_SERVER, context)
        assert out.tcp.verify_checksum(out.src, out.dst)
        assert normalizer.normalized_count == 1

    def test_leaves_good_checksum(self):
        normalizer = TCPChecksumNormalizer()
        context, _ = ctx()
        (out,) = normalizer.process(tcp_packet(), Direction.CLIENT_TO_SERVER, context)
        assert normalizer.normalized_count == 0

    def test_ignores_udp(self):
        normalizer = TCPChecksumNormalizer()
        context, _ = ctx()
        packet = IPPacket(
            src="1.1.1.1", dst="2.2.2.2", transport=UDPDatagram(sport=1, dport=2, checksum=0xDEAD)
        )
        (out,) = normalizer.process(packet, Direction.CLIENT_TO_SERVER, context)
        assert out.udp.checksum == 0xDEAD
