"""Shared fixtures: environments, workloads, and small builders."""

from __future__ import annotations

import pytest

from repro.endpoint.apps import EchoApp
from repro.endpoint.rawclient import RawTCPClient
from repro.endpoint.tcpstack import TCPServerStack
from repro.envs import (
    make_att,
    make_gfc,
    make_iran,
    make_neutral,
    make_sprint,
    make_testbed,
    make_tmobile,
)
from repro.netsim.clock import VirtualClock
from repro.netsim.hop import RouterHop
from repro.obs import observability_off
from repro.netsim.path import Path
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.traffic.http import http_get_trace
from repro.traffic.stun import stun_trace
from repro.traffic.video import video_stream_trace

CLIENT = "10.1.0.2"
SERVER = "203.0.113.50"

try:
    import pytest_timeout  # noqa: F401
except ImportError:
    # pytest-timeout enforces the ``timeout`` ini key in CI.  When the plugin
    # is absent (local runs) pytest would warn about an unknown option, so
    # register the key here as a no-op.
    def pytest_addoption(parser):
        parser.addini(
            "timeout",
            "per-test timeout in seconds (enforced only with pytest-timeout)",
            default=None,
        )


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Safety net: tracing/metrics/profiling are process-global; a test that
    enables them and fails mid-way must not leak state into the next test."""
    yield
    observability_off()


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def testbed():
    return make_testbed()


@pytest.fixture
def tmobile():
    return make_tmobile()


@pytest.fixture
def gfc():
    return make_gfc()


@pytest.fixture
def iran():
    return make_iran()


@pytest.fixture
def att():
    return make_att()


@pytest.fixture
def sprint():
    return make_sprint()


@pytest.fixture
def neutral():
    return make_neutral()


@pytest.fixture
def classified_trace():
    """An HTTP dialogue the testbed device classifies."""
    return http_get_trace("video.example.com", response_body=b"v" * 600)


@pytest.fixture
def neutral_trace():
    """An HTTP dialogue no classifier matches."""
    return http_get_trace("plain.example.org", response_body=b"p" * 600)


@pytest.fixture
def censored_trace():
    """The GFC's probe workload."""
    return http_get_trace("economist.com", response_body=b"<html>news</html>" * 40)


@pytest.fixture
def iran_trace():
    """Iran's probe workload."""
    return http_get_trace("facebook.com")


@pytest.fixture
def skype_trace():
    return stun_trace()


@pytest.fixture
def video_trace():
    return video_stream_trace(host="d1.cloudfront.net", total_bytes=250_000)


def make_direct_link(app=None, server_os=None):
    """A two-router path with a TCP echo server — for stack-level tests."""
    from repro.endpoint.osmodel import LINUX

    clock = VirtualClock()
    path = Path(clock, [RouterHop("r1"), RouterHop("r2")])
    stack = TCPServerStack(
        SERVER, os_profile=server_os or LINUX, app=app if app is not None else EchoApp()
    )
    path.server_endpoint = stack
    client = RawTCPClient(path, CLIENT, SERVER, sport=40_001, dport=80)
    return clock, path, stack, client


def tcp_packet(payload=b"", seq=1, flags=TCPFlags.ACK | TCPFlags.PSH, **ip_kwargs):
    """A quick client→server TCP packet for unit tests."""
    segment = TCPSegment(sport=40_001, dport=80, seq=seq, ack=1, flags=flags, payload=payload)
    return IPPacket(src=CLIENT, dst=SERVER, transport=segment, **ip_kwargs)
