"""Coverage profiler, verdict provenance and minimal-witness extraction.

Three pillars of the "explaining verdicts" layer:

* the :class:`~repro.obs.coverage.CoverageRecorder` — rule universes,
  dead-rule reporting, automaton state/edge counters, the env × technique
  matrix, and the cross-process dump/merge path — including the acceptance
  guarantees: a deliberately-dead rule is flagged, coverage counters agree
  with the independent trace tallies, and coverage-enabled runs are
  byte-identical across the serial/thread/process pool backends;
* :func:`~repro.obs.provenance.explain_flow` — the golden-trace causal
  chain for the known throttled flow, and the ``obs explain`` / ``obs
  diff`` CLI contracts (exit 0 on byte-identical traces, exit 1 with the
  provenance-bearing event named on divergence);
* :func:`~repro.obs.witness.ddmin` and the end-to-end witness extractor —
  deterministic minimization that converges on the classifier's keyword.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli.main import main
from repro.core.evasion import ALL_TECHNIQUES
from repro.experiments.table3 import run_table3
from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.policy import RulePolicy
from repro.middlebox.rules import MatchRule
from repro.middlebox.validation import MiddleboxValidation
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.shaper import PolicyState
from repro.obs import coverage as obs_coverage
from repro.obs import trace as obs_trace
from repro.obs.coverage import (
    COVERAGE_SCHEMA_VERSION,
    CoverageRecorder,
    automaton_digest,
    covering,
    format_snapshot,
    load_snapshot,
    ruleset_scope,
)
from repro.obs.provenance import explain_flow, format_explain
from repro.obs.witness import ddmin, minimal_payload_witness
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.runtime.pool import WorkerPool

pytestmark = pytest.mark.obs

CLIENT, SERVER = "10.1.0.2", "203.0.113.50"
GOLDEN = Path(__file__).parent / "golden"
THROTTLED = str(GOLDEN / "testbed_throttle_cell.jsonl")

obs_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_SLICE = dict(
    env_names=("testbed",),
    techniques=ALL_TECHNIQUES[:6],
    include_os_matrix=False,
    characterize=False,
)


def make_engine(extra_rules=(), **overrides):
    policy = PolicyState()
    defaults = dict(
        name="dpi",
        rules=[
            MatchRule(
                name="video",
                keywords=[b"video.example.com"],
                policy=RulePolicy.throttle(1_500_000),
            ),
            *extra_rules,
        ],
        policy_state=policy,
        validation=MiddleboxValidation.lax(),
        reassembly=ReassemblyMode.PER_PACKET,
        inspect_packet_limit=5,
        match_and_forget=True,
        require_protocol_anchor=False,
        track_flows=True,
    )
    defaults.update(overrides)
    return DPIMiddlebox(**defaults)


def run_flows(engine, payloads):
    """Feed each payload through its own single-packet TCP flow."""
    clock = VirtualClock()
    sink = []
    ctx = TransitContext(clock=clock, inject_back=sink.append, inject_forward=sink.append)
    for index, payload in enumerate(payloads):
        sport = 40_000 + index
        syn = TCPSegment(sport=sport, dport=80, seq=1, flags=TCPFlags.SYN)
        engine.process(
            IPPacket(src=CLIENT, dst=SERVER, transport=syn),
            Direction.CLIENT_TO_SERVER,
            ctx,
        )
        segment = TCPSegment(
            sport=sport,
            dport=80,
            seq=2,
            ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            payload=payload,
        )
        engine.process(
            IPPacket(src=CLIENT, dst=SERVER, transport=segment),
            Direction.CLIENT_TO_SERVER,
            ctx,
        )
        clock.advance(0.001)


# ----------------------------------------------------------------------
# recorder unit behaviour
# ----------------------------------------------------------------------
class TestCoverageRecorder:
    def test_scope_and_digest_are_content_addressed(self):
        assert ruleset_scope(["a", "b"]) == ruleset_scope(iter(("a", "b")))
        assert ruleset_scope(["a", "b"]) != ruleset_scope(["b", "a"])
        # Length-prefixing keeps concatenation ambiguity out of the digest.
        assert ruleset_scope(["ab", "c"]) != ruleset_scope(["a", "bc"])
        assert automaton_digest([b"x", b"y"]) == automaton_digest([b"y", b"x"])
        assert automaton_digest([b"x"]) != automaton_digest([b"xy"])

    def test_dead_rules_are_first_class(self):
        recorder = CoverageRecorder()
        recorder.register_rules("s", ["hit", "never"])
        recorder.rule_hit("s", "hit")
        assert recorder.exercised("s") == ("hit",)
        assert recorder.dead("s") == ("never",)
        snap = recorder.snapshot()
        assert snap["schema"] == COVERAGE_SCHEMA_VERSION
        assert snap["scopes"]["s"]["dead"] == ["never"]
        assert snap["scopes"]["s"]["hits"] == {"hit": 1, "never": 0}
        assert snap["total_rule_hits"] == 1
        assert "! s/never" not in format_snapshot(snap)  # keys are rule names
        assert "never" in format_snapshot(snap)

    def test_cell_context_attributes_hits(self):
        recorder = CoverageRecorder()
        recorder.register_rules("s", ["r"])
        with recorder.cell_context("env", "tech"):
            recorder.rule_hit("s", "r")
        recorder.rule_hit("s", "r")  # outside any cell
        snap = recorder.snapshot()
        assert snap["matrix"] == {
            "env×tech": {
                "env": "env",
                "technique": "tech",
                "rule_hits": 1,
                "rules": {"s/r": 1},
            }
        }
        assert snap["scopes"]["s"]["hits"]["r"] == 2

    def test_merge_dump_sums_counters_and_unions_universes(self):
        a, b, merged = CoverageRecorder(), CoverageRecorder(), CoverageRecorder()
        for recorder in (a, b):
            recorder.register_rules("s", ["r1", "r2"])
            recorder.register_automaton("d", 3, 2)
        a.rule_hit("s", "r1")
        a.automaton_walk("d", [0, 1], 1)
        b.rule_hit("s", "r1")
        b.rule_hit("s", "r2")
        b.automaton_walk("d", [1, 2], 2)
        merged.merge_dump(a.dump())
        merged.merge_dump(b.dump())
        snap = merged.snapshot()
        assert snap["scopes"]["s"]["hits"] == {"r1": 2, "r2": 1}
        assert snap["scopes"]["s"]["dead"] == []
        automaton = snap["automata"]["d"]
        assert automaton["state_visits"] == 4
        assert automaton["edges_walked"] == 3

    def test_reset_keeps_universe(self):
        recorder = CoverageRecorder()
        recorder.register_rules("s", ["r"])
        recorder.rule_hit("s", "r")
        recorder.reset()
        snap = recorder.snapshot()
        assert snap["scopes"]["s"]["hits"] == {"r": 0}
        assert snap["scopes"]["s"]["dead"] == ["r"]

    def test_load_snapshot_rejects_alien_schema(self, tmp_path):
        path = tmp_path / "cov.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(str(path))

    def test_covering_restores_previous_recorder(self):
        assert obs_coverage.COVERAGE is None
        with covering() as outer:
            assert obs_coverage.COVERAGE is outer
            with covering() as inner:
                assert obs_coverage.COVERAGE is inner
            assert obs_coverage.COVERAGE is outer
        assert obs_coverage.COVERAGE is None


# ----------------------------------------------------------------------
# engine integration: dead rules, trace agreement, determinism
# ----------------------------------------------------------------------
class TestEngineCoverage:
    def test_deliberately_dead_rule_is_flagged(self):
        """The acceptance fixture: a rule no workload exercises shows dead."""
        dead_rule = MatchRule(
            name="dead-rule",
            keywords=[b"never-on-the-wire.invalid"],
            policy=RulePolicy.block_with_rsts(),
        )
        engine = make_engine(extra_rules=[dead_rule])
        with covering() as recorder:
            run_flows(
                engine,
                [b"GET / HTTP/1.1\r\nHost: video.example.com\r\n\r\n"],
            )
            snap = recorder.snapshot()
        (scope,) = snap["scopes"]
        assert snap["scopes"][scope]["dead"] == ["dead-rule"]
        assert snap["scopes"][scope]["hits"]["video"] == 1

    def test_coverage_equals_trace_and_match_log_tallies(self):
        """Coverage counters, `mbx.rule_match` events and `matches_logged`
        are three independent ledgers of the same fact."""
        engine = make_engine()
        payloads = [
            b"Host: video.example.com",
            b"nothing to see",
            b"video.example.com again",
            b"still nothing",
        ]
        with covering() as recorder:
            with obs_trace.tracing() as tracer:
                run_flows(engine, payloads)
            snap = recorder.snapshot()
        trace_matches = len(tracer.events("mbx.rule_match"))
        coverage_hits = snap["total_rule_hits"]
        assert coverage_hits == trace_matches == engine.matches_logged == 2

    @given(
        flows=st.lists(
            st.tuples(st.booleans(), st.binary(min_size=0, max_size=40)),
            min_size=1,
            max_size=12,
        )
    )
    @obs_settings
    def test_coverage_matches_trace_tallies_property(self, flows):
        """For arbitrary flow batches, coverage hit totals equal the
        trace-derived rule-match tally and the engine's own counter."""
        engine = make_engine()
        payloads = [
            (b"x " + body + b" video.example.com" if match else body)
            for match, body in flows
        ]
        with covering() as recorder:
            with obs_trace.tracing() as tracer:
                run_flows(engine, payloads)
            total = recorder.snapshot()["total_rule_hits"]
        trace_matches = len(tracer.events("mbx.rule_match"))
        assert total == trace_matches == engine.matches_logged

    @given(payload=st.binary(min_size=0, max_size=80))
    @obs_settings
    def test_counted_walk_matches_bulk_scan(self, payload):
        """The counted automaton walk returns the same mask as the regex
        bulk path, and visits exactly one state per byte walked."""
        engine = make_engine()
        view = engine._view("tcp", 80, "client")
        automaton = view.automaton
        plain = automaton.scan_mask(payload)
        with covering() as recorder:
            covered = automaton.scan_mask(payload)
            snap = recorder.snapshot()
        assert covered == plain
        if payload:
            (automaton_stats,) = snap["automata"].values()
            assert automaton_stats["state_visits"] == len(payload)

    def test_rule_match_trace_carries_provenance_fields(self):
        engine = make_engine()
        with obs_trace.tracing() as tracer:
            run_flows(engine, [b"GET video.example.com"])
        (event,) = tracer.events("mbx.rule_match")
        match = event.fields
        assert match["rule_scope"].startswith("ruleset:")
        assert match["automaton"] is not None
        assert match["match_start"] < match["match_end"]

    def test_traced_coverage_run_registers_every_scope_rule(self):
        """Engine `_view` registers the full universe even when only one
        rule ever matches — dead rules exist because registration does."""
        engine = make_engine(
            extra_rules=[
                MatchRule(
                    name="other",
                    keywords=[b"other.example.org"],
                    policy=RulePolicy.block_with_rsts(),
                )
            ]
        )
        with covering() as recorder:
            run_flows(engine, [b"plain traffic only"])
            snap = recorder.snapshot()
        (scope,) = snap["scopes"]
        assert snap["scopes"][scope]["rules"] == 2
        assert snap["scopes"][scope]["exercised"] == 0


# ----------------------------------------------------------------------
# backend identity: serial / thread / process coverage is byte-identical
# ----------------------------------------------------------------------
class TestBackendIdentity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_coverage_snapshot_identical_across_backends(self, backend):
        with covering() as recorder:
            run_table3(pool=WorkerPool("serial"), **_SLICE)
            serial = json.dumps(recorder.snapshot(), sort_keys=True)
        with covering() as recorder:
            run_table3(pool=WorkerPool(backend, max_workers=2), **_SLICE)
            concurrent = json.dumps(recorder.snapshot(), sort_keys=True)
        assert concurrent == serial

    def test_matrix_covers_every_cell(self):
        with covering() as recorder:
            run_table3(**_SLICE)
            snap = recorder.snapshot()
        expected = {
            f"testbed×{technique.name}" for technique in _SLICE["techniques"]
        }
        assert set(snap["matrix"]) <= expected
        # Every matrix entry's hits re-sum to the per-cell total.
        for cell in snap["matrix"].values():
            assert cell["rule_hits"] == sum(cell["rules"].values())


# ----------------------------------------------------------------------
# provenance: the golden throttled flow and the CLI contracts
# ----------------------------------------------------------------------
class TestProvenance:
    def test_golden_throttled_flow_full_causal_chain(self):
        """Acceptance: `obs explain` reconstructs the whole chain for the
        known throttled flow — creation, anchor, rule match with byte
        range, then the throttle verdict."""
        from repro.obs.analyze import TraceIndex

        index = TraceIndex.load(THROTTLED)
        chain = explain_flow(index, "40001>203.0.113.50:80")
        assert chain["resolved"] == "10.1.0.2:40001>203.0.113.50:80/6"
        (verdict,) = chain["verdicts"]
        assert verdict["verdict"] == "testbed:video.example.com"
        assert verdict["reason"] == "rule-match"
        kinds = [cause["kind"] for cause in verdict["causes"]]
        assert kinds == ["mbx.flow_created", "mbx.anchor", "mbx.rule_match"]
        match = verdict["causes"][-1]
        assert match["rule"] == "testbed:video.example.com"
        assert match["match_start"] < match["match_end"]
        assert match["action"] == "throttle"
        assert match["rule_scope"].startswith("ruleset:")
        rendered = format_explain(chain)
        assert "verdict 'testbed:video.example.com' (rule-match)" in rendered
        assert "mbx.rule_match" in rendered

    def test_explain_unknown_flow_reports_no_events(self):
        from repro.obs.analyze import TraceIndex

        index = TraceIndex.load(THROTTLED)
        chain = explain_flow(index, "1.2.3.4:5>6.7.8.9:10/6")
        assert chain["resolved"] is None
        assert "no events" in format_explain(chain)

    def test_cli_explain_golden_flow(self, capsys):
        code = main(["obs", "explain", THROTTLED, "--flow", "40001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "testbed:video.example.com" in out
        assert "mbx.rule_match" in out

    def test_cli_explain_json_is_schema_versioned(self, capsys):
        code = main(["obs", "explain", THROTTLED, "--flow", "40001", "--json"])
        assert code == 0
        chain = json.loads(capsys.readouterr().out)
        assert chain["schema"] == 1
        assert chain["verdicts"]

    def test_cli_explain_missing_flow_exits_2(self, capsys):
        code = main(["obs", "explain", THROTTLED, "--flow", "no-such-flow"])
        assert code == 2

    def test_cli_diff_identical_traces_exits_0(self, capsys):
        assert main(["obs", "diff", THROTTLED, THROTTLED]) == 0

    def test_cli_diff_provenance_divergence_exits_1(self, tmp_path, capsys):
        """A divergence in a provenance-bearing event (the rule id of the
        winning match) is structural: exit 1 and the event named."""
        lines = Path(THROTTLED).read_text().splitlines()
        mutated = [
            line.replace("testbed:video.example.com", "testbed:other.rule")
            if '"mbx.rule_match"' in line
            else line
            for line in lines
        ]
        other = tmp_path / "mutated.jsonl"
        other.write_text("\n".join(mutated) + "\n")
        code = main(["obs", "diff", THROTTLED, str(other)])
        assert code == 1
        out = capsys.readouterr().out
        assert "mbx.rule_match" in out


# ----------------------------------------------------------------------
# coverage CLI
# ----------------------------------------------------------------------
class TestCoverageCli:
    def _snapshot_file(self, tmp_path):
        dead_rule = MatchRule(
            name="dead-rule",
            keywords=[b"never-on-the-wire.invalid"],
            policy=RulePolicy.block_with_rsts(),
        )
        engine = make_engine(extra_rules=[dead_rule])
        with covering() as recorder:
            run_flows(engine, [b"GET video.example.com"])
            snap = recorder.snapshot()
        path = tmp_path / "coverage.json"
        path.write_text(json.dumps(snap))
        return str(path)

    def test_cli_coverage_reports_dead_rule(self, tmp_path, capsys):
        path = self._snapshot_file(tmp_path)
        assert main(["obs", "coverage", path]) == 0
        out = capsys.readouterr().out
        assert "1/2 rules exercised" in out
        assert "! dead-rule" in out

    def test_cli_coverage_fail_on_dead(self, tmp_path, capsys):
        path = self._snapshot_file(tmp_path)
        assert main(["obs", "coverage", path, "--fail-on-dead"]) == 1

    def test_cli_coverage_rejects_bad_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 999}))
        assert main(["obs", "coverage", str(bad)]) == 2

    def test_table3_coverage_flag_writes_snapshot(self, tmp_path, capsys):
        out = tmp_path / "coverage.json"
        code = main(
            [
                "table3",
                "--fast",
                "--envs",
                "testbed",
                "--coverage",
                str(out),
            ]
        )
        assert code == 0
        snap = json.loads(out.read_text())
        assert snap["schema"] == COVERAGE_SCHEMA_VERSION
        assert snap["total_rule_hits"] > 0
        assert any(info["dead"] for info in snap["scopes"].values())


# ----------------------------------------------------------------------
# the minimal-witness extractor
# ----------------------------------------------------------------------
class TestWitness:
    def test_ddmin_finds_singleton(self):
        probes = []

        def needs_seven(items):
            probes.append(tuple(items))
            return 7 in items

        assert ddmin(list(range(20)), needs_seven) == [7]

    def test_ddmin_finds_scattered_pair(self):
        def needs_both(items):
            return 2 in items and 17 in items

        assert ddmin(list(range(20)), needs_both) == [2, 17]

    def test_ddmin_empty_property_returns_empty(self):
        assert ddmin(list(range(8)), lambda items: True) == []

    def test_witness_converges_on_the_keyword(self):
        """Acceptance: the minimal witness is the matched rule read back
        out of the black box — the keyword plus the protocol anchor."""
        report = minimal_payload_witness(
            "testbed",
            b"GET / HTTP/1.1\r\nHost: video.example.com\r\n\r\n",
        )
        assert report["verdict"] == "testbed:video.example.com"
        assert report["control_verdict"] is None
        witness = report["witness"]
        assert witness is not None
        assert b"video.example.com" in bytes.fromhex(witness["bytes_hex"])
        assert witness["length"] < report["payload_len"]

    def test_witness_unknown_env_raises(self):
        with pytest.raises(ValueError, match="unknown environment"):
            minimal_payload_witness("nowhere", b"x")

    def test_witness_is_deterministic(self):
        kwargs = dict(env_name="testbed", payload=b"GET video.example.com x")
        assert minimal_payload_witness(**kwargs) == minimal_payload_witness(**kwargs)

    def test_cli_witness_json(self, capsys):
        code = main(
            [
                "obs",
                "witness",
                "--env",
                "testbed",
                "--payload",
                "GET video.example.com",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == 1
        assert report["witness"] is not None
