"""Noise-aware inference: detection/characterization/localization under faults."""

from __future__ import annotations

import pytest

from repro.core.characterization import Characterizer
from repro.core.detection import detect_differentiation
from repro.core.localization import locate_middlebox
from repro.core.pipeline import Liberate
from repro.envs import make_testbed
from repro.experiments.workloads import prepare
from repro.netsim.faults import chaos_profile, lossy_profile
from repro.traffic.http import http_get_trace

pytestmark = pytest.mark.chaos

SEED = 11


@pytest.fixture
def trace():
    return http_get_trace("video.example.com", response_body=b"v" * 600)


@pytest.fixture
def clean_env():
    return make_testbed()


@pytest.fixture
def lossy_env():
    return make_testbed(faults=lossy_profile(SEED))


class TestDetectionVoting:
    def test_detection_correct_under_loss(self, lossy_env, trace):
        report = detect_differentiation(lossy_env, trace, trials=3)
        assert report.differentiated
        assert report.content_based
        assert report.rounds >= 6  # at least 3 replay pairs

    def test_single_trial_path_unchanged(self, clean_env, trace):
        voted = detect_differentiation(clean_env, trace, trials=1)
        historical = detect_differentiation(make_testbed(), trace)
        assert (voted.differentiated, voted.content_based, voted.rounds) == (
            historical.differentiated,
            historical.content_based,
            historical.rounds,
        )

    def test_tie_break_adds_one_pair(self, clean_env, trace):
        report = detect_differentiation(clean_env, trace, trials=2)
        # Even trial counts reserve a tie-break pair; with consistent clean
        # replays it is never needed.
        assert report.rounds == 4


class TestCharacterizationVoting:
    def test_fields_match_the_clean_run(self, clean_env, lossy_env, trace):
        clean = Characterizer(clean_env, trace).run()
        noisy = Characterizer(lossy_env, trace, trials=3).run()
        assert [f.content for f in noisy.matching_fields] == [
            f.content for f in clean.matching_fields
        ]
        assert noisy.packet_limit == clean.packet_limit
        assert noisy.inspects_all_packets == clean.inspects_all_packets

    def test_inconsistent_probes_are_reported(self, trace):
        env = make_testbed(faults=lossy_profile(3))
        characterizer = Characterizer(env, trace, trials=3)
        characterizer.run()
        # The counter only moves when trials disagreed; whether it did is
        # seed-dependent, but the plumbing must never go negative and the
        # note must appear exactly when it fired.
        assert characterizer.inconsistent_rounds >= 0

    def test_trials_below_one_clamped(self, clean_env, trace):
        assert Characterizer(clean_env, trace, trials=0).trials == 1


class TestLocalizationVoting:
    def test_hops_match_the_clean_run(self, clean_env, lossy_env, trace):
        clean_hops, _ = locate_middlebox(clean_env, trace)
        noisy_hops, rounds = locate_middlebox(lossy_env, trace, trials=3)
        assert noisy_hops == clean_hops
        assert rounds > 0


class TestPrepareGracefulDegradation:
    def test_lossy_prepare_matches_clean_contexts(self):
        clean = prepare(make_testbed(), characterize=True)
        noisy = prepare(make_testbed(faults=lossy_profile(SEED)), characterize=True)
        assert noisy.characterization is not None
        assert noisy.tcp_context.packet_limit == clean.tcp_context.packet_limit
        assert [f.content for f in noisy.tcp_context.matching_fields] == [
            f.content for f in clean.tcp_context.matching_fields
        ]
        assert noisy.hops == clean.hops

    def test_chaos_prepare_never_raises(self):
        """Under every fault class at once, prepare degrades, never crashes."""
        prep = prepare(make_testbed(faults=chaos_profile(SEED)), characterize=True)
        assert prep.tcp_context is not None
        assert prep.udp_context is not None

    def test_clean_prepare_defaults_to_single_trial(self):
        prep = prepare(make_testbed(), characterize=False)
        assert prep.env.fault_element() is None


class TestPipelineUnderFaults:
    def test_full_pipeline_on_lossy_testbed(self, trace):
        env = make_testbed(faults=lossy_profile(SEED))
        lib = Liberate(env)
        assert lib.trials == 3  # noisy default
        report = lib.run(trace)
        assert report.seed == SEED  # recorded from the fault profile
        assert "seed" in report.summary()
        assert report.detection.differentiated
        assert report.evasion is not None
        assert report.evasion.working()  # something still evades under loss

    def test_clean_pipeline_records_no_seed(self, clean_env, trace):
        report = Liberate(clean_env).run(trace)
        assert report.seed is None
        assert "seed" not in report.summary()

    def test_explicit_seed_wins(self, trace):
        env = make_testbed(faults=lossy_profile(SEED))
        report = Liberate(env, seed=777).run(trace)
        assert report.seed == 777
