"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.report import MatchingField
from repro.core.evasion.splitting import pieces_from_cuts, split_points
from repro.netsim.clock import VirtualClock
from repro.netsim.shaper import TokenBucket
from repro.packets.checksum import internet_checksum, verify_checksum
from repro.packets.flow import Direction, FiveTuple
from repro.packets.fragment import fragment_packet, reassemble_fragments
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram
from repro.traffic.trace import Trace, TracePacket, invert_bits

payloads = st.binary(min_size=0, max_size=512)
small_payloads = st.binary(min_size=1, max_size=128)
ports = st.integers(min_value=1, max_value=65_535)


class TestChecksumProperties:
    @given(payloads)
    def test_checksum_then_verify(self, data):
        csum = internet_checksum(data + b"\x00\x00")
        if len(data) % 2:
            data += b"\x00"
        assert verify_checksum(data + csum.to_bytes(2, "big"))

    @given(payloads)
    def test_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestInvertProperties:
    @given(payloads)
    def test_involution(self, data):
        assert invert_bits(invert_bits(data)) == data

    @given(st.binary(min_size=1, max_size=512))
    def test_always_differs(self, data):
        assert invert_bits(data) != data


class TestPacketRoundtrip:
    @given(small_payloads, ports, ports, st.integers(min_value=0, max_value=2**32 - 1))
    def test_tcp_roundtrip(self, payload, sport, dport, seq):
        packet = IPPacket(
            src="10.0.0.1",
            dst="10.0.0.2",
            transport=TCPSegment(sport=sport, dport=dport, seq=seq, payload=payload),
        )
        parsed = IPPacket.from_bytes(packet.to_bytes())
        assert parsed.tcp is not None
        assert parsed.tcp.payload == payload
        assert parsed.tcp.seq == seq
        assert parsed.has_valid_checksum()
        assert parsed.tcp.verify_checksum(parsed.src, parsed.dst)

    @given(small_payloads, ports, ports)
    def test_udp_roundtrip(self, payload, sport, dport):
        packet = IPPacket(
            src="192.0.2.1",
            dst="192.0.2.2",
            transport=UDPDatagram(sport=sport, dport=dport, payload=payload),
        )
        parsed = IPPacket.from_bytes(packet.to_bytes())
        assert parsed.udp is not None
        assert parsed.udp.payload == payload
        assert parsed.udp.verify_checksum(parsed.src, parsed.dst)


class TestFragmentProperties:
    @given(
        st.binary(min_size=30, max_size=400),
        st.integers(min_value=8, max_value=64),
        st.randoms(use_true_random=False),
    )
    def test_fragment_reassemble_any_order(self, payload, size, rng):
        packet = IPPacket(
            src="10.0.0.1",
            dst="10.0.0.2",
            transport=TCPSegment(sport=1, dport=2, seq=3, payload=payload),
        )
        fragments = fragment_packet(packet, size)
        rng.shuffle(fragments)
        whole = reassemble_fragments(fragments)
        assert whole is not None
        assert whole.tcp is not None
        assert whole.tcp.payload == payload

    @given(st.binary(min_size=30, max_size=200), st.integers(min_value=8, max_value=40))
    def test_incomplete_never_reassembles(self, payload, size):
        packet = IPPacket(
            src="10.0.0.1",
            dst="10.0.0.2",
            transport=TCPSegment(sport=1, dport=2, payload=payload),
        )
        fragments = fragment_packet(packet, size)
        if len(fragments) > 1:
            assert reassemble_fragments(fragments[:-1]) is None


class TestTraceProperties:
    traces = st.lists(
        st.tuples(st.sampled_from([Direction.CLIENT_TO_SERVER, Direction.SERVER_TO_CLIENT]), payloads),
        min_size=1,
        max_size=8,
    )

    @given(traces)
    def test_json_roundtrip(self, spec):
        trace = Trace(
            name="prop",
            protocol="tcp",
            server_port=80,
            packets=[TracePacket(direction, payload) for direction, payload in spec],
        )
        restored = Trace.from_json(trace.to_json())
        assert restored.client_bytes() == trace.client_bytes()
        assert restored.server_bytes() == trace.server_bytes()

    @given(traces)
    def test_inverted_preserves_structure(self, spec):
        trace = Trace(
            name="prop",
            protocol="tcp",
            server_port=80,
            packets=[TracePacket(direction, payload) for direction, payload in spec],
        )
        inverted = trace.inverted()
        assert len(inverted.packets) == len(trace.packets)
        assert inverted.total_bytes() == trace.total_bytes()
        assert inverted.inverted().client_bytes() == trace.client_bytes()

    @given(traces)
    def test_replay_steps_monotone(self, spec):
        trace = Trace(
            name="prop",
            protocol="tcp",
            server_port=80,
            packets=[TracePacket(direction, payload) for direction, payload in spec],
        )
        thresholds = [s.client_bytes_threshold for s in trace.replay_steps()]
        assert thresholds == sorted(thresholds)


class TestSplitProperties:
    @given(st.binary(min_size=20, max_size=300), st.integers(min_value=2, max_value=12))
    def test_pieces_reconstruct(self, message, budget):
        field_start = len(message) // 4
        field_end = min(field_start + 10, len(message))
        fields = [
            MatchingField(0, field_start, field_end, message[field_start:field_end])
        ]
        cuts = split_points(message, fields, budget)
        pieces = pieces_from_cuts(message, cuts)
        assert b"".join(data for _offset, data in pieces) == message
        assert len(pieces) <= budget
        offsets = [offset for offset, _data in pieces]
        assert offsets == sorted(offsets)

    @given(st.binary(min_size=20, max_size=300))
    def test_cut_lands_inside_field(self, message):
        field_start = 5
        field_end = 15
        fields = [MatchingField(0, field_start, field_end, message[field_start:field_end])]
        cuts = split_points(message, fields, budget=10)
        assert any(field_start < cut < field_end for cut in cuts)


class TestTCPStackProperties:
    @settings(deadline=None, max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.binary(min_size=1, max_size=600),
        st.lists(st.integers(min_value=1, max_value=599), max_size=6),
        st.randoms(use_true_random=False),
    )
    def test_reassembly_under_arbitrary_split_and_order(self, payload, cut_spec, rng):
        """Whatever the segmentation and wire order, the stack delivers the
        exact byte stream — the invariant every splitting/reordering evasion
        relies on."""
        from tests.conftest import CLIENT, make_direct_link
        from repro.endpoint.rawclient import SegmentPlan

        _clock, _path, stack, client = make_direct_link()
        assert client.connect()
        cuts = sorted({c for c in cut_spec if c < len(payload)})
        bounds = [0, *cuts, len(payload)]
        pieces = [
            (bounds[i], payload[bounds[i] : bounds[i + 1]])
            for i in range(len(bounds) - 1)
            if bounds[i + 1] > bounds[i]
        ]
        rng.shuffle(pieces)
        base = client.next_seq
        for offset, data in pieces:
            client.send_plan(SegmentPlan(payload=data, seq=base + offset))
        assert stack.stream_for(CLIENT, client.sport, 80) == payload


class TestTokenBucketProperties:
    @settings(deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=5_000), min_size=1, max_size=40),
        st.floats(min_value=10_000, max_value=10_000_000),
    )
    def test_time_lower_bound(self, sizes, rate_bps):
        """Virtual time charged is at least (bytes - burst) / rate."""
        clock = VirtualClock()
        bucket = TokenBucket(rate_bps=rate_bps, burst_bytes=4_000)
        for size in sizes:
            bucket.consume(size, clock)
        minimum = max(sum(sizes) - 4_000, 0) / (rate_bps / 8)
        assert clock.now >= minimum - 1e-6


class TestFiveTupleProperties:
    @given(ports, ports)
    def test_normalization_idempotent(self, sport, dport):
        ft = FiveTuple("10.0.0.1", sport, "10.0.0.2", dport, 6)
        assert ft.normalized() == ft.normalized().normalized()
        assert ft.normalized() == ft.reversed.normalized()
