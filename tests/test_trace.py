"""Unit tests for the trace record/replay format."""

import pytest

from repro.packets.flow import Direction
from repro.traffic.trace import Trace, TracePacket, invert_bits


def dialogue():
    return Trace(
        name="demo",
        protocol="tcp",
        server_port=80,
        packets=[
            TracePacket(Direction.CLIENT_TO_SERVER, b"req-1", 0.0),
            TracePacket(Direction.SERVER_TO_CLIENT, b"resp-1", 0.1),
            TracePacket(Direction.CLIENT_TO_SERVER, b"req-22", 0.2),
            TracePacket(Direction.SERVER_TO_CLIENT, b"resp-22", 0.3),
        ],
        metadata={"application": "demo"},
    )


class TestInvertBits:
    def test_involution(self):
        data = bytes(range(256))
        assert invert_bits(invert_bits(data)) == data

    def test_every_bit_differs(self):
        data = b"GET / HTTP/1.1"
        inverted = invert_bits(data)
        assert all(a ^ b == 0xFF for a, b in zip(data, inverted))

    def test_empty(self):
        assert invert_bits(b"") == b""


class TestTraceViews:
    def test_client_payloads(self):
        assert dialogue().client_payloads() == [b"req-1", b"req-22"]

    def test_server_payloads(self):
        assert dialogue().server_payloads() == [b"resp-1", b"resp-22"]

    def test_byte_concatenation(self):
        assert dialogue().client_bytes() == b"req-1req-22"
        assert dialogue().server_bytes() == b"resp-1resp-22"

    def test_total_bytes(self):
        assert dialogue().total_bytes() == sum(len(p.payload) for p in dialogue().packets)

    def test_replay_steps_thresholds(self):
        steps = dialogue().replay_steps()
        assert [(s.client_bytes_threshold, s.response) for s in steps] == [
            (5, b"resp-1"),
            (11, b"resp-22"),
        ]

    def test_udp_response_script(self):
        trace = Trace(
            name="u",
            protocol="udp",
            server_port=3478,
            packets=[
                TracePacket(Direction.CLIENT_TO_SERVER, b"c0"),
                TracePacket(Direction.SERVER_TO_CLIENT, b"s0"),
                TracePacket(Direction.CLIENT_TO_SERVER, b"c1"),
            ],
        )
        assert trace.udp_response_script() == {0: [b"s0"]}


class TestTransformations:
    def test_inverted_both_directions(self):
        inverted = dialogue().inverted()
        assert inverted.client_payloads()[0] == invert_bits(b"req-1")
        assert inverted.server_payloads()[0] == invert_bits(b"resp-1")
        assert "inverted" in inverted.name

    def test_with_client_payloads(self):
        modified = dialogue().with_client_payloads([b"AAAAA", b"BBBBBB"])
        assert modified.client_payloads() == [b"AAAAA", b"BBBBBB"]
        assert modified.server_payloads() == dialogue().server_payloads()

    def test_with_client_payloads_count_checked(self):
        with pytest.raises(ValueError):
            dialogue().with_client_payloads([b"only-one"])

    def test_with_server_payloads(self):
        modified = dialogue().with_server_payloads([b"X", b"Y"])
        assert modified.server_payloads() == [b"X", b"Y"]
        assert modified.client_payloads() == dialogue().client_payloads()

    def test_with_server_port(self):
        assert dialogue().with_server_port(8080).server_port == 8080

    def test_prepend_client_payloads(self):
        modified = dialogue().prepend_client_payloads([b"pad1", b"pad2"])
        assert modified.client_payloads() == [b"pad1", b"pad2", b"req-1", b"req-22"]

    def test_original_untouched(self):
        trace = dialogue()
        trace.inverted()
        trace.prepend_client_payloads([b"x"])
        assert trace.client_payloads() == [b"req-1", b"req-22"]


class TestPersistence:
    def test_json_roundtrip(self):
        trace = dialogue()
        restored = Trace.from_json(trace.to_json())
        assert restored.name == trace.name
        assert restored.protocol == trace.protocol
        assert restored.server_port == trace.server_port
        assert restored.metadata == trace.metadata
        assert [p.payload for p in restored.packets] == [p.payload for p in trace.packets]
        assert [p.direction for p in restored.packets] == [p.direction for p in trace.packets]

    def test_save_load(self, tmp_path):
        target = tmp_path / "trace.json"
        dialogue().save(target)
        restored = Trace.load(target)
        assert restored.client_bytes() == dialogue().client_bytes()

    def test_binary_payload_roundtrip(self):
        trace = Trace(
            name="b",
            protocol="udp",
            server_port=53,
            packets=[TracePacket(Direction.CLIENT_TO_SERVER, bytes(range(256)))],
        )
        assert Trace.from_json(trace.to_json()).packets[0].payload == bytes(range(256))


class TestValidation:
    def test_protocol_checked(self):
        with pytest.raises(ValueError):
            Trace(name="x", protocol="icmp", server_port=80)

    def test_port_checked(self):
        with pytest.raises(ValueError):
            Trace(name="x", protocol="tcp", server_port=0)
