"""Tests for distributed characterization (§4.2) and LRU state eviction."""

import pytest

from repro.core.characterization import Characterizer
from repro.core.distributed import DistributedCharacterizer, speedup_from_distribution
from repro.envs.testbed import make_testbed
from repro.traffic.http import http_get_trace

from tests.test_engine import Driver, GET, make_engine


class TestDistributedCharacterization:
    def test_fields_identical_to_solo(self, testbed, classified_trace):
        solo = Characterizer(make_testbed(), classified_trace)
        solo_fields = [f.content for f in solo.find_matching_fields()]
        distributed = DistributedCharacterizer(testbed, classified_trace, users=4)
        report, _loads = distributed.run_distributed()
        assert [f.content for f in report.matching_fields] == solo_fields

    def test_load_divides_across_users(self, classified_trace):
        distributed = DistributedCharacterizer(make_testbed(), classified_trace, users=4)
        distributed.run_distributed()
        loads = [user.rounds for user in distributed.users]
        assert sum(loads) == distributed.rounds
        # round-robin keeps the spread tight
        assert max(loads) - min(loads) <= 1

    def test_speedup_near_user_count(self, classified_trace):
        stats = speedup_from_distribution(make_testbed, classified_trace, users=4)
        assert stats["speedup"] >= 3.0
        assert stats["fields_agree"] == 1.0

    def test_single_user_degenerates_to_solo(self, classified_trace):
        distributed = DistributedCharacterizer(make_testbed(), classified_trace, users=1)
        distributed.run_distributed()
        assert distributed.users[0].rounds == distributed.rounds

    def test_user_count_validated(self, testbed, classified_trace):
        with pytest.raises(ValueError):
            DistributedCharacterizer(testbed, classified_trace, users=0)

    def test_bytes_accounted(self, classified_trace):
        distributed = DistributedCharacterizer(make_testbed(), classified_trace, users=3)
        distributed.run_distributed()
        assert sum(u.bytes_used for u in distributed.users) == distributed.bytes_used


class TestLRUEviction:
    def fill(self, engine, count, base_sport=41_000):
        drivers = []
        for i in range(count):
            driver = Driver(engine, sport=base_sport + i)
            driver.syn()
            drivers.append(driver)
        return drivers

    def test_capacity_enforced(self):
        engine, _ = make_engine(max_flows=5)
        self.fill(engine, 8)
        assert len(engine._flows) <= 5
        assert engine.evictions == 3

    def test_lru_victim_selection(self):
        engine, _ = make_engine(max_flows=3)
        drivers = self.fill(engine, 3)
        # touch flows 1 and 2 so flow 0 is the LRU victim
        drivers[1].clock.advance(1.0)
        drivers[1].data(b"keepalive-one")
        drivers[2].data(b"keepalive-two")
        extra = Driver(engine, sport=42_000)
        extra.syn()
        assert drivers[0].classification() is None  # evicted
        assert drivers[1].classification() is not None or len(engine._flows) == 3

    def test_eviction_clears_marks(self):
        engine, policy = make_engine(max_flows=1)
        driver = Driver(engine, sport=42_100)
        driver.syn()
        driver.data(GET)
        assert policy.throttled_flows
        newcomer = Driver(engine, sport=42_101)
        newcomer.syn()  # evicts the classified flow
        assert not policy.throttled_flows

    def test_capacity_pressure_enables_flush_evasion(self):
        """The Figure 4 mechanism: under load, pausing lets background flows
        push yours out of the table — mid-flow traffic then goes uninspected."""
        engine, _ = make_engine(max_flows=4, pre_match_timeout=None)
        victim = Driver(engine, sport=42_200)
        victim.syn()
        # background load arrives while the victim's flow is idle
        self.fill(engine, 6, base_sport=42_300)
        victim.data(GET)  # state evicted: never inspected
        assert victim.classification() is None

    def test_no_capacity_means_no_eviction(self):
        engine, _ = make_engine(max_flows=None)
        self.fill(engine, 20)
        assert engine.evictions == 0
        assert len(engine._flows) == 20
