"""Unit tests for the token-bucket shaper, policy state, and reassembler."""

import pytest

from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.reassembler import FragmentReassembler
from repro.netsim.shaper import PolicyState, TokenBucket, TokenBucketShaper
from repro.packets.flow import Direction, FiveTuple
from repro.packets.fragment import fragment_packet
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPSegment


def ctx(clock=None):
    clock = clock or VirtualClock()
    return TransitContext(clock=clock, inject_back=lambda p: None, inject_forward=lambda p: None)


def data_packet(payload=b"d" * 1000):
    return IPPacket(
        src="10.0.0.2",
        dst="10.0.0.1",
        transport=TCPSegment(sport=80, dport=40_000, seq=1, payload=payload),
    )


class TestTokenBucket:
    def test_burst_is_free(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=1_000)
        assert bucket.consume(500, clock) == 0.0
        assert clock.now == 0.0

    def test_deficit_charges_delay(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=100)  # 1000 bytes/s
        bucket.consume(100, clock)
        delay = bucket.consume(1000, clock)
        assert delay == pytest.approx(1.0)
        assert clock.now == pytest.approx(1.0)

    def test_refill_over_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=1_000)
        bucket.consume(1_000, clock)
        clock.advance(1.0)  # refills 1000 bytes
        assert bucket.consume(900, clock) == 0.0

    def test_sustained_rate(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate_bps=1_000_000, burst_bytes=1_000)
        total = 0
        for _ in range(100):
            bucket.consume(12_500, clock)  # 100 x 12.5 KB = 1.25 MB
            total += 12_500
        # 1.25 MB at 125 kB/s ~ 10 s
        assert clock.now == pytest.approx(total / 125_000, rel=0.05)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0)

    def test_reset(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate_bps=8_000, burst_bytes=100)
        bucket.consume(100, clock)
        bucket.reset()
        assert bucket.consume(100, clock) == 0.0


class TestPolicyState:
    def test_throttle_mark_normalized(self):
        state = PolicyState()
        key = FiveTuple("10.0.0.1", 40_000, "10.0.0.2", 80, 6)
        state.throttle(key, 1_500_000)
        assert state.throttle_rate_for(key.reversed) == 1_500_000

    def test_zero_rate_mark(self):
        state = PolicyState()
        key = FiveTuple("10.0.0.1", 40_000, "10.0.0.2", 80, 6)
        state.zero_rate(key)
        assert state.is_zero_rated(key)
        assert state.is_zero_rated(key.reversed)

    def test_unmarked_flow(self):
        state = PolicyState()
        key = FiveTuple("10.0.0.1", 40_000, "10.0.0.2", 80, 6)
        assert state.throttle_rate_for(key) is None
        assert not state.is_zero_rated(key)
        assert state.throttle_rate_for(None) is None

    def test_reset(self):
        state = PolicyState()
        key = FiveTuple("10.0.0.1", 40_000, "10.0.0.2", 80, 6)
        state.throttle(key, 1.0)
        state.zero_rate(key)
        state.blocked_endpoints.add(("x", 80))
        state.reset()
        assert not state.throttled_flows
        assert not state.zero_rated_flows
        assert not state.blocked_endpoints


class TestShaper:
    def test_marked_flow_is_slow(self):
        clock = VirtualClock()
        state = PolicyState()
        shaper = TokenBucketShaper(state, base_rate_bps=100_000_000)
        key = FiveTuple.of(data_packet())
        state.throttle(key, 80_000)  # 10 kB/s
        context = ctx(clock)
        for _ in range(20):
            shaper.process(data_packet(), Direction.SERVER_TO_CLIENT, context)
        # ~20 kB at 10 kB/s minus burst: roughly 1-2 seconds
        assert clock.now > 0.5

    def test_unmarked_flow_uses_base_rate(self):
        clock = VirtualClock()
        shaper = TokenBucketShaper(PolicyState(), base_rate_bps=100_000_000)
        context = ctx(clock)
        for _ in range(20):
            shaper.process(data_packet(), Direction.SERVER_TO_CLIENT, context)
        assert clock.now < 0.01

    def test_reset_restores_buckets(self):
        state = PolicyState()
        shaper = TokenBucketShaper(state, base_rate_bps=1_000)
        context = ctx()
        shaper.process(data_packet(), Direction.SERVER_TO_CLIENT, context)
        shaper.reset()
        assert shaper._flow_buckets == {}


class TestFragmentReassembler:
    def test_holds_until_complete(self):
        reassembler = FragmentReassembler()
        context = ctx()
        packet = data_packet(b"z" * 100)
        fragments = fragment_packet(packet, 40)
        for fragment in fragments[:-1]:
            assert reassembler.process(fragment, Direction.CLIENT_TO_SERVER, context) == []
        (whole,) = reassembler.process(fragments[-1], Direction.CLIENT_TO_SERVER, context)
        assert whole.tcp is not None
        assert whole.tcp.payload == b"z" * 100
        assert reassembler.reassembled_count == 1

    def test_passthrough_for_whole_packets(self):
        reassembler = FragmentReassembler()
        packet = data_packet()
        assert reassembler.process(packet, Direction.CLIENT_TO_SERVER, ctx()) == [packet]

    def test_interleaved_datagrams(self):
        reassembler = FragmentReassembler()
        context = ctx()
        first = data_packet(b"a" * 64)
        second = data_packet(b"b" * 64)
        second.identification = 777
        frag_a = fragment_packet(first, 32, identification=111)
        frag_b = fragment_packet(second, 32, identification=777)
        interleaved = [frag for pair in zip(frag_a, frag_b) for frag in pair]
        outputs = []
        for fragment in interleaved:
            outputs += reassembler.process(fragment, Direction.CLIENT_TO_SERVER, context)
        payloads = {bytes(o.tcp.payload) for o in outputs}
        assert payloads == {b"a" * 64, b"b" * 64}

    def test_reset(self):
        reassembler = FragmentReassembler()
        context = ctx()
        fragments = fragment_packet(data_packet(b"z" * 100), 40)
        reassembler.process(fragments[0], Direction.CLIENT_TO_SERVER, context)
        reassembler.reset()
        assert reassembler.process(fragments[-1], Direction.CLIENT_TO_SERVER, context) == []
