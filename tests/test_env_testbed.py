"""Testbed environment behaviour (§6.1)."""

from repro.replay.session import ReplaySession
from repro.traffic.http import http_get_trace
from repro.traffic.stun import stun_trace
from repro.traffic.tls import tls_trace


class TestTestbedClassification:
    def test_classified_host_throttled(self, testbed, classified_trace):
        outcome = ReplaySession(testbed, classified_trace).run()
        assert outcome.differentiated
        assert outcome.classification == "testbed:video.example.com"
        assert outcome.delivered_ok and outcome.server_response_ok

    def test_neutral_host_untouched(self, testbed, neutral_trace):
        outcome = ReplaySession(testbed, neutral_trace).run()
        assert not outcome.differentiated
        assert outcome.classification is None

    def test_udp_stun_classified(self, testbed, skype_trace):
        outcome = ReplaySession(testbed, skype_trace).run()
        assert outcome.differentiated
        assert outcome.classification == "skype-stun"
        assert outcome.delivered_ok

    def test_inverted_control_not_classified(self, testbed, classified_trace):
        outcome = ReplaySession(testbed, classified_trace.inverted()).run()
        assert not outcome.differentiated

    def test_classification_readout_is_ground_truth(self, testbed, classified_trace):
        session = ReplaySession(testbed, classified_trace)
        outcome = session.run()
        dpi = testbed.dpi()
        assert dpi is not None
        assert dpi.classification_of(
            testbed.client_addr, session.sport, testbed.server_addr, session.server_port
        ) == outcome.classification

    def test_multiple_hosts_have_rules(self, testbed):
        for host in ("spotify.example.com", "espn.example.com"):
            outcome = ReplaySession(testbed, http_get_trace(host)).run()
            assert outcome.classification is not None

    def test_sessions_are_isolated(self, testbed, classified_trace, neutral_trace):
        classified = ReplaySession(testbed, classified_trace).run()
        neutral = ReplaySession(testbed, neutral_trace).run()
        assert classified.differentiated and not neutral.differentiated


class TestTestbedTiming:
    def test_flush_timeout_is_120s(self, testbed):
        dpi = testbed.dpi()
        assert dpi.post_match_timeout == 120.0
        assert dpi.pre_match_timeout == 120.0

    def test_rst_reduces_timeout_to_10s(self, testbed):
        assert testbed.dpi().rst_timeout_reduction == 10.0

    def test_hops_ground_truth(self, testbed):
        assert testbed.hops_to_middlebox == 0
