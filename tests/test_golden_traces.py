"""Golden-trace regression tests: the trace of a Table 3 cell is locked.

A live re-run of each recorded cell must produce the same *structural*
event sequence (kinds, rule ids, verdicts, reasons — not timestamps or
byte counts) as the checked-in artifact under ``tests/golden/``.  A
schema bump invalidates the artifacts loudly instead of silently.

Regeneration: ``PYTHONPATH=src python tests/golden/regen.py`` (see
``tests/golden/README.md``).
"""

from __future__ import annotations

import importlib.util
import io
from pathlib import Path

import json

import pytest

from repro.obs import trace as obs_trace

pytestmark = pytest.mark.obs

GOLDEN_DIR = Path(__file__).parent / "golden"

_spec = importlib.util.spec_from_file_location("golden_regen", GOLDEN_DIR / "regen.py")
regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regen)

REGEN_HINT = "regenerate with: PYTHONPATH=src python tests/golden/regen.py"


def _golden_header(filename: str) -> dict:
    with open(GOLDEN_DIR / filename, encoding="utf-8") as handle:
        return json.loads(handle.readline())


@pytest.mark.golden
@pytest.mark.parametrize("filename", sorted(regen.CELLS))
def test_golden_schema_version(filename):
    header = _golden_header(filename)
    assert header["kind"] == "trace.header"
    assert header["schema"] == obs_trace.TRACE_SCHEMA_VERSION, REGEN_HINT
    assert header["dropped"] == 0


@pytest.mark.golden
@pytest.mark.parametrize("filename", sorted(regen.CELLS))
def test_golden_structural_match(filename):
    """Live cell re-run matches the artifact's structural skeleton."""
    env_name, technique_name = regen.CELLS[filename]
    live = regen.record_cell(env_name, technique_name)
    golden = obs_trace.load_jsonl(str(GOLDEN_DIR / filename))
    assert obs_trace.structural_view(live.events()) == obs_trace.structural_view(
        golden
    ), REGEN_HINT


@pytest.mark.golden
def test_golden_throttle_cell_rule_matches():
    """The throttling cell's rule-match events reconstruct the verdict."""
    golden = obs_trace.load_jsonl(str(GOLDEN_DIR / "testbed_throttle_cell.jsonl"))
    matches = [e for e in golden if e["kind"] == "mbx.rule_match"]
    assert [(m["rule"], m["action"]) for m in matches] == [
        ("testbed:video.example.com", "throttle")
    ]
    match = matches[0]
    assert match["element"] == "testbed-dpi"
    assert 0 <= match["match_start"] < match["match_end"] <= match["buffer_len"]
    verdicts = [e["verdict"] for e in golden if e["kind"] == "mbx.verdict"]
    assert verdicts == ["testbed:video.example.com"]
    cells = [e for e in golden if e["kind"] == "table3.cell"]
    assert [(c["env"], c["technique"], c["cc"], c["rs"]) for c in cells] == [
        ("testbed", "tcp-invalid-data-offset", "N", "Y")
    ]


@pytest.mark.golden
def test_golden_neutral_cell_has_no_rule_matches():
    golden = obs_trace.load_jsonl(str(GOLDEN_DIR / "neutral_cell.jsonl"))
    kinds = {e["kind"] for e in golden}
    assert "mbx.rule_match" not in kinds
    assert "mbx.verdict" not in kinds
    cells = [e for e in golden if e["kind"] == "table3.cell"]
    assert [(c["env"], c["cc"]) for c in cells] == [("sprint", "Y")]


@pytest.mark.golden
@pytest.mark.parametrize("filename", sorted(regen.CELLS))
def test_trace_byte_identical_across_runs(filename):
    """Two runs of the same cell export byte-identical JSONL (determinism)."""
    env_name, technique_name = regen.CELLS[filename]
    exports = []
    for _ in range(2):
        buffer = io.StringIO()
        regen.record_cell(env_name, technique_name).export_jsonl(buffer)
        exports.append(buffer.getvalue())
    assert exports[0] == exports[1]


@pytest.mark.golden
def test_regen_check_mode(tmp_path):
    """``regen.py --check`` is clean against the committed artifacts, keeps
    the regenerated copies with --out, and flags drifted goldens."""
    out_dir = tmp_path / "regen"
    assert regen.main(["--check", "--out", str(out_dir)]) == 0
    for filename in regen.CELLS:
        assert (out_dir / filename).exists()

    # A structurally-drifted golden (one altered event kind) must fail the
    # check; the regenerated copies from above avoid re-running the cells.
    drifted_dir = tmp_path / "drifted"
    drifted_dir.mkdir()
    for filename in regen.CELLS:
        lines = (out_dir / filename).read_text().splitlines()
        lines[1] = lines[1].replace('"kind":"', '"kind":"drifted.', 1)
        (drifted_dir / filename).write_text("\n".join(lines) + "\n")
    drift = regen.check(golden_dir=drifted_dir)
    # Event-core cells are held to the same committed artifact, so a
    # drifted golden is reported once per comparison it fails.
    assert len(drift) == len(regen.CELLS) + len(regen.EVENT_CORE_CELLS)
    assert all("drifted." in line for line in drift)
