"""Tests for the built-in trace library and the report generator."""

import pytest

from repro.replay.session import ReplaySession
from repro.traffic.builtin import (
    BUILTIN_BUILDERS,
    builtin_trace,
    builtin_trace_names,
    export_builtin_traces,
)
from repro.traffic.trace import Trace


class TestBuiltinTraces:
    def test_all_names_build(self):
        for name in builtin_trace_names():
            trace = builtin_trace(name)
            assert trace.total_bytes() > 0
            assert trace.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            builtin_trace("netflix-4k")

    def test_deterministic(self):
        assert builtin_trace("economist").to_json() == builtin_trace("economist").to_json()

    def test_fresh_objects(self):
        assert builtin_trace("skype") is not builtin_trace("skype")

    def test_export_roundtrip(self, tmp_path):
        written = export_builtin_traces(tmp_path)
        assert len(written) == len(BUILTIN_BUILDERS)
        for path in written:
            restored = Trace.load(path)
            assert restored.total_bytes() > 0

    def test_builtin_traces_drive_the_paper_scenarios(self, tmobile, gfc, iran):
        """The distributed trace set triggers each network's classifier."""
        assert ReplaySession(tmobile, builtin_trace("prime-video")).run().zero_rated
        assert ReplaySession(gfc, builtin_trace("economist")).run().differentiated
        assert ReplaySession(iran, builtin_trace("facebook")).run().differentiated

    def test_quic_builtin_escapes_everywhere(self, tmobile, gfc):
        for env in (tmobile, gfc):
            outcome = ReplaySession(env, builtin_trace("youtube-quic")).run()
            assert not outcome.differentiated

    def test_youtube_tls_sni(self):
        from repro.traffic.tls import extract_sni

        trace = builtin_trace("youtube-tls")
        assert extract_sni(trace.client_payloads()[0]).endswith(".googlevideo.com")


class TestReportGenerator:
    def test_generates_markdown(self, tmp_path):
        from repro.experiments.reportgen import write_report

        target = write_report(
            tmp_path / "measured.md",
            include_table3=True,
            include_figure4=False,
            include_efficiency=False,
            include_bilateral=False,
            include_countermeasures=True,
        )
        content = target.read_text()
        assert content.startswith("# lib·erate reproduction")
        assert "Table 3" in content
        assert "Paper agreement" in content
        assert "Countermeasures" in content

    def test_sections_toggle(self):
        from repro.experiments.reportgen import generate_report

        report = generate_report(
            include_table3=False,
            include_figure4=True,
            include_efficiency=False,
            include_bilateral=False,
            include_countermeasures=False,
            figure4_trials=1,
        )
        assert "Figure 4" in report
        assert "Table 3" not in report


class TestTracesCLI:
    def test_traces_listing(self, capsys):
        from repro.cli.main import main

        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "youtube-quic" in out and "economist" in out

    def test_traces_export(self, tmp_path, capsys):
        from repro.cli.main import main

        assert main(["traces", "--export", str(tmp_path)]) == 0
        assert len(list(tmp_path.glob("*.trace.json"))) == len(BUILTIN_BUILDERS)

    def test_builtin_workload_flag(self, capsys):
        from repro.cli.main import main

        assert main(["detect", "--env", "gfc", "--builtin", "economist"]) == 0
        assert "content-based" in capsys.readouterr().out
