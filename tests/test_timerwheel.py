"""TimerWheel: hierarchical expiry checked against a brute-force scan.

The wheel's contract is exactly "what a full scan over pending timers
would fire, in (deadline, schedule order)" — the engine's flush ordering
and the replay client's retransmit ordering both lean on it.  The property
test drives random schedule/cancel/advance sequences through the wheel and
a sorted-list reference and requires identical firings, including
deadlines beyond the wheel's total span (which must cascade once per
revolution, not hang or fire early).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netsim.timerwheel import TimerWheel

settings_kwargs = dict(
    deadline=None, max_examples=60, suppress_health_check=[HealthCheck.too_slow]
)

# (kind, a, b): schedule offset a (scaled), cancel index a, or advance by a.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.integers(-10, 600)),
        st.tuples(st.just("cancel"), st.integers(0, 30)),
        st.tuples(st.just("advance"), st.integers(0, 90)),
    ),
    max_size=60,
)


def run_differential(ops, wheel):
    """Replay *ops* on *wheel* and on a brute-force pending list."""
    pending = {}  # payload -> (deadline, payload); payload doubles as seq
    ids = {}
    seq = 0
    now = 0.0
    for op, arg in ops:
        if op == "schedule":
            deadline = now + arg / 10.0
            ids[seq] = wheel.schedule(deadline, seq)
            pending[seq] = deadline
            seq += 1
        elif op == "cancel":
            live = sorted(pending)
            if live:
                victim = live[arg % len(live)]
                assert wheel.cancel(ids[victim]) is True
                assert wheel.cancel(ids[victim]) is False
                del pending[victim]
        else:
            now += arg / 10.0
            fired = wheel.advance(now)
            expect = [p for p, d in sorted(pending.items(), key=lambda kv: (kv[1], kv[0])) if d <= now]
            assert fired == expect
            for payload in fired:
                del pending[payload]
        assert wheel.pending == len(pending)
    return pending


class TestAgainstBruteForce:
    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_small_wheel_fires_exactly_the_due_set(self, ops):
        # 2 levels x 4 slots x 0.5s tick: a 8s span, so the 60s deadline
        # range keeps beyond-span cascades constantly exercised.
        run_differential(ops, TimerWheel(tick=0.5, slots=4, levels=2))

    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_single_level_wheel(self, ops):
        run_differential(ops, TimerWheel(tick=1.0, slots=8, levels=1))

    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_default_geometry(self, ops):
        run_differential(ops, TimerWheel())

    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_drain_returns_survivors_in_deadline_order(self, ops):
        wheel = TimerWheel(tick=0.5, slots=4, levels=2)
        pending = run_differential(ops, wheel)
        expected = [p for p, d in sorted(pending.items(), key=lambda kv: (kv[1], kv[0]))]
        assert list(wheel.drain()) == expected
        assert wheel.pending == 0
        assert len(wheel) == 0


class TestEdgeSemantics:
    def test_overdue_deadline_fires_on_next_advance(self):
        wheel = TimerWheel(tick=0.5, slots=4, levels=1, start=10.0)
        wheel.schedule(3.0, "past")  # before the wheel's current time
        assert wheel.advance(5.0) == ["past"]  # even a past-advance drains it

    def test_advance_into_the_past_is_a_noop(self):
        wheel = TimerWheel(tick=0.5, slots=4, levels=1, start=10.0)
        wheel.schedule(12.0, "later")
        assert wheel.advance(1.0) == []
        assert wheel.now == 10.0
        assert wheel.advance(12.5) == ["later"]

    def test_beyond_span_deadline_survives_full_revolutions(self):
        wheel = TimerWheel(tick=1.0, slots=4, levels=1)  # 4s span
        wheel.schedule(11.0, "far")
        for t in range(1, 11):
            assert wheel.advance(float(t)) == []
        assert wheel.advance(11.0) == ["far"]

    def test_giant_jump_short_circuits(self):
        wheel = TimerWheel(tick=0.5, slots=64, levels=3)
        wheel.schedule(100.0, "a")
        wheel.schedule(50.0, "b")
        wheel.schedule(1_000_000.0, "far")
        assert wheel.advance(500_000.0) == ["b", "a"]
        assert wheel.advance(1_000_000.0) == ["far"]

    def test_same_deadline_fires_in_schedule_order(self):
        wheel = TimerWheel(tick=1.0, slots=8, levels=1)
        for name in ("first", "second", "third"):
            wheel.schedule(3.0, name)
        assert wheel.advance(5.0) == ["first", "second", "third"]

    def test_cancel_inside_bucket_is_skipped(self):
        wheel = TimerWheel(tick=1.0, slots=8, levels=1)
        keep = wheel.schedule(2.0, "keep")
        drop = wheel.schedule(2.0, "drop")
        assert wheel.cancel(drop)
        assert wheel.advance(3.0) == ["keep"]
        assert not wheel.cancel(keep)  # already fired

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TimerWheel(tick=0.0)
        with pytest.raises(ValueError):
            TimerWheel(slots=1)
        with pytest.raises(ValueError):
            TimerWheel(levels=0)

    def test_counters(self):
        wheel = TimerWheel(tick=0.5, slots=4, levels=2)
        for offset in (1.0, 3.0, 9.0):
            wheel.schedule(offset, offset)
        assert wheel.pending == 3
        wheel.advance(4.0)
        assert wheel.fired == 2
        assert wheel.pending == 1
