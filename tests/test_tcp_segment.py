"""Unit tests for TCP segment construction, parsing and flag semantics."""

import pytest

from repro.packets.tcp import TCP_HEADER_MIN, TCPFlags, TCPSegment


class TestFlags:
    def test_plain_ack_valid(self):
        assert TCPFlags.ACK.is_valid_combination()

    def test_syn_valid(self):
        assert TCPFlags.SYN.is_valid_combination()

    def test_syn_fin_invalid(self):
        assert not (TCPFlags.SYN | TCPFlags.FIN).is_valid_combination()

    def test_syn_rst_invalid(self):
        assert not (TCPFlags.SYN | TCPFlags.RST).is_valid_combination()

    def test_rst_fin_invalid(self):
        assert not (TCPFlags.RST | TCPFlags.FIN).is_valid_combination()

    def test_no_flags_invalid(self):
        assert not TCPFlags(0).is_valid_combination()

    def test_christmas_tree_invalid(self):
        everything = (
            TCPFlags.FIN | TCPFlags.SYN | TCPFlags.RST | TCPFlags.PSH | TCPFlags.ACK | TCPFlags.URG
        )
        assert not everything.is_valid_combination()

    def test_fin_ack_valid(self):
        assert (TCPFlags.FIN | TCPFlags.ACK).is_valid_combination()


class TestSerialization:
    def test_roundtrip(self):
        segment = TCPSegment(
            sport=40_000,
            dport=443,
            seq=0xDEADBEEF,
            ack=0x12345678,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            window=1024,
            payload=b"data!",
        )
        parsed = TCPSegment.from_bytes(segment.to_bytes("1.1.1.1", "2.2.2.2"))
        assert parsed.sport == 40_000
        assert parsed.dport == 443
        assert parsed.seq == 0xDEADBEEF
        assert parsed.ack == 0x12345678
        assert parsed.flags == TCPFlags.ACK | TCPFlags.PSH
        assert parsed.window == 1024
        assert parsed.payload == b"data!"

    def test_checksum_computed_with_addresses(self):
        segment = TCPSegment(sport=1, dport=2, payload=b"x")
        parsed = TCPSegment.from_bytes(segment.to_bytes("9.9.9.9", "8.8.8.8"))
        assert parsed.verify_checksum("9.9.9.9", "8.8.8.8")

    def test_checksum_depends_on_addresses(self):
        segment = TCPSegment(sport=1, dport=2, payload=b"x")
        parsed = TCPSegment.from_bytes(segment.to_bytes("9.9.9.9", "8.8.8.8"))
        assert not parsed.verify_checksum("9.9.9.9", "8.8.8.9")

    def test_checksum_override_emitted_verbatim(self):
        segment = TCPSegment(sport=1, dport=2, payload=b"x", checksum=0xABCD)
        raw = segment.to_bytes("9.9.9.9", "8.8.8.8")
        assert raw[16:18] == b"\xab\xcd"

    def test_options_padded(self):
        segment = TCPSegment(options=b"\x02\x04\x05\xb4\x01")  # MSS + NOP
        assert len(segment.padded_options) % 4 == 0
        assert segment.effective_data_offset == 7

    def test_data_offset_override(self):
        segment = TCPSegment(data_offset=15)
        assert segment.effective_data_offset == 15
        assert not segment.has_valid_data_offset()

    def test_valid_data_offset(self):
        assert TCPSegment().has_valid_data_offset()

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            TCPSegment.from_bytes(b"\x00" * 10)

    def test_overrunning_offset_raises(self):
        segment = TCPSegment(payload=b"")
        raw = bytearray(segment.to_bytes("1.1.1.1", "2.2.2.2"))
        raw[12] = 0xF0  # data offset 15 on a 20-byte segment
        with pytest.raises(ValueError):
            TCPSegment.from_bytes(bytes(raw))

    def test_port_range_validated(self):
        with pytest.raises(ValueError):
            TCPSegment(sport=70_000)

    def test_seq_wraps(self):
        assert TCPSegment(seq=2**32 + 5).seq == 5

    def test_wire_length(self):
        assert TCPSegment(payload=b"abc").wire_length() == TCP_HEADER_MIN + 3

    def test_copy(self):
        segment = TCPSegment(payload=b"abc")
        assert segment.copy(seq=9).seq == 9
        assert segment.seq == 0
