"""Unit tests for the norm-style traffic normalizer."""

import pytest

from repro.endpoint.rawclient import SegmentPlan
from repro.middlebox.normalizer import TrafficNormalizer
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.packets.flow import Direction
from repro.packets.fragment import fragment_packet
from repro.packets.ip import IPPacket
from repro.packets.options import deprecated_ip_option
from repro.packets.tcp import TCPFlags, TCPSegment

CLIENT, SERVER = "10.1.0.2", "203.0.113.50"


def ctx():
    return TransitContext(
        clock=VirtualClock(), inject_back=lambda p: None, inject_forward=lambda p: None
    )


class Feeder:
    def __init__(self, normalizer):
        self.normalizer = normalizer
        self.ctx = ctx()
        self.seq = 1_000

    def syn(self, sport=40_600):
        segment = TCPSegment(sport=sport, dport=80, seq=self.seq, flags=TCPFlags.SYN)
        out = self.normalizer.process(
            IPPacket(src=CLIENT, dst=SERVER, transport=segment),
            Direction.CLIENT_TO_SERVER,
            self.ctx,
        )
        self.seq += 1
        return out

    def data(self, payload, seq=None, sport=40_600, **overrides):
        fields = dict(
            sport=sport, dport=80, seq=self.seq if seq is None else seq, ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH, payload=payload,
        )
        fields.update(overrides)
        segment = TCPSegment(**fields)
        packet = IPPacket(src=CLIENT, dst=SERVER, transport=segment)
        out = self.normalizer.process(packet, Direction.CLIENT_TO_SERVER, self.ctx)
        if seq is None:
            self.seq += len(payload)
        return out


class TestValidation:
    def test_drops_bad_checksums(self):
        normalizer = TrafficNormalizer()
        feeder = Feeder(normalizer)
        feeder.syn()
        assert feeder.data(b"junk", checksum=0xDEAD, seq=feeder.seq) == []
        assert normalizer.dropped

    def test_drops_invalid_flags(self):
        normalizer = TrafficNormalizer()
        feeder = Feeder(normalizer)
        feeder.syn()
        assert feeder.data(b"junk", flags=TCPFlags.SYN | TCPFlags.FIN, seq=feeder.seq) == []

    def test_drops_wrong_protocol(self):
        normalizer = TrafficNormalizer()
        packet = IPPacket(
            src=CLIENT,
            dst=SERVER,
            transport=TCPSegment(sport=1, dport=80, seq=1, payload=b"x"),
            protocol=0xFD,
        )
        assert normalizer.process(packet, Direction.CLIENT_TO_SERVER, ctx()) == []


class TestScrubbing:
    def test_raises_low_ttl(self):
        normalizer = TrafficNormalizer(min_ttl=32, coalesce=False)
        feeder = Feeder(normalizer)
        feeder.syn()
        segment = TCPSegment(
            sport=40_600, dport=80, seq=feeder.seq, ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH, payload=b"x",
        )
        packet = IPPacket(src=CLIENT, dst=SERVER, transport=segment, ttl=3)
        (out,) = normalizer.process(packet, Direction.CLIENT_TO_SERVER, ctx())
        assert out.ttl == 32

    def test_strips_options(self):
        normalizer = TrafficNormalizer(coalesce=False)
        segment = TCPSegment(sport=40_600, dport=80, seq=9, flags=TCPFlags.ACK, payload=b"")
        packet = IPPacket(
            src=CLIENT, dst=SERVER, transport=segment, options=deprecated_ip_option()
        )
        (out,) = normalizer.process(packet, Direction.CLIENT_TO_SERVER, ctx())
        assert out.padded_options == b""
        assert out.has_valid_ihl()

    def test_server_direction_untouched(self):
        normalizer = TrafficNormalizer()
        segment = TCPSegment(sport=80, dport=40_600, seq=9, checksum=0xDEAD, payload=b"x")
        packet = IPPacket(src=SERVER, dst=CLIENT, transport=segment, ttl=2)
        assert normalizer.process(packet, Direction.SERVER_TO_CLIENT, ctx()) == [packet]


class TestCoalescing:
    def test_reorders_to_in_order(self):
        normalizer = TrafficNormalizer()
        feeder = Feeder(normalizer)
        feeder.syn()
        base = feeder.seq
        assert feeder.data(b"world", seq=base + 5) == []  # held
        out = feeder.data(b"hello", seq=base)
        stream = b"".join(p.tcp.payload for p in out)
        assert stream == b"helloworld"
        seqs = [p.tcp.seq for p in out]
        assert seqs == sorted(seqs)

    def test_duplicates_suppressed(self):
        normalizer = TrafficNormalizer()
        feeder = Feeder(normalizer)
        feeder.syn()
        base = feeder.seq
        feeder.data(b"abc", seq=base)
        assert feeder.data(b"abc", seq=base) == []  # pure retransmit

    def test_fragments_reassembled(self):
        normalizer = TrafficNormalizer()
        feeder = Feeder(normalizer)
        feeder.syn()
        segment = TCPSegment(
            sport=40_600, dport=80, seq=feeder.seq, ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH, payload=b"F" * 100,
        )
        packet = IPPacket(src=CLIENT, dst=SERVER, transport=segment)
        outputs = []
        for fragment in fragment_packet(packet, 40):
            outputs += normalizer.process(fragment, Direction.CLIENT_TO_SERVER, ctx_ := feeder.ctx)
        assert b"".join(p.tcp.payload for p in outputs) == b"F" * 100
        assert all(not p.is_fragment for p in outputs)

    def test_untracked_flow_passes_through(self):
        normalizer = TrafficNormalizer()
        feeder = Feeder(normalizer)
        out = feeder.data(b"mid-flow")  # no SYN seen
        assert len(out) == 1

    def test_reset(self):
        normalizer = TrafficNormalizer()
        feeder = Feeder(normalizer)
        feeder.syn()
        normalizer.reset()
        assert len(normalizer._flows) == 0
