"""Resilient worker-pool execution: retries, timeouts, crashes, circuit breaker."""

from __future__ import annotations

import os
import signal
import tempfile
import time

import pytest

from repro.runtime import Backend, RetryPolicy, TaskFailure, WorkerPool
from repro.runtime.pool import ENV_WORKERS, _workers_from_env

pytestmark = pytest.mark.chaos

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.001, backoff_max=0.005)


def _square(x):
    return x * x


def _fail_until_marker(arg):
    """Fail until a marker file exists (created on the first failure)."""
    marker, value = arg
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("failed once")
        raise RuntimeError("transient failure")
    return value * 10


def _always_raise(x):
    raise ValueError(f"task {x} is broken")


def _kill_self_once(arg):
    """SIGKILL the hosting worker process on the first attempt."""
    marker, value = arg
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return value + 1


def _sleep_forever(x):
    time.sleep(60)
    return x


@pytest.fixture
def marker(tmp_path):
    return str(tmp_path / "attempt-marker")


class TestRetries:
    @pytest.mark.parametrize("backend", [Backend.SERIAL, Backend.THREAD, Backend.PROCESS])
    def test_transient_failure_retried_to_success(self, backend, marker):
        pool = WorkerPool(backend, max_workers=2)
        results = pool.map(_fail_until_marker, [(marker, 7)], retry=FAST_RETRY)
        assert results == [70]

    @pytest.mark.parametrize("backend", [Backend.SERIAL, Backend.THREAD])
    def test_exhausted_retries_yield_structured_failure(self, backend):
        pool = WorkerPool(backend, max_workers=2)
        results = pool.map(_always_raise, [1], retry=FAST_RETRY)
        (failure,) = results
        assert isinstance(failure, TaskFailure)
        assert failure.index == 0
        assert failure.attempts == FAST_RETRY.max_attempts
        assert failure.error_type == "ValueError"
        assert "broken" in failure.message
        assert not failure.circuit_open

    def test_good_tasks_survive_a_bad_neighbour(self):
        pool = WorkerPool(Backend.SERIAL)
        results = pool.map(
            lambda x: _always_raise(x) if x == 1 else _square(x), [0, 1, 2], retry=FAST_RETRY
        )
        assert results[0] == 0 and results[2] == 4
        assert isinstance(results[1], TaskFailure)

    def test_no_policy_propagates_exactly_as_before(self):
        pool = WorkerPool(Backend.SERIAL)
        with pytest.raises(ValueError):
            pool.map(_always_raise, [1])

    def test_backoff_delays_are_capped(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=10.0, backoff_max=2.0)
        assert policy.delay_for(0) == 0.5
        assert policy.delay_for(5) == 2.0


class TestCrashedWorkerRecovery:
    def test_killed_process_worker_is_recovered(self, marker):
        """SIGKILL a worker mid-task: the pool rebuilds and retries."""
        pool = WorkerPool(Backend.PROCESS, max_workers=2)
        results = pool.map(
            _kill_self_once,
            [(marker, 100)],
            retry=RetryPolicy(max_attempts=3, backoff_base=0.001),
        )
        assert results == [101]

    def test_unrecoverable_crash_becomes_taskfailure(self, tmp_path):
        """A task that kills its worker every time exhausts into TaskFailure."""

        pool = WorkerPool(Backend.PROCESS, max_workers=2)
        missing = str(tmp_path / "never-created" / "marker")
        results = pool.map(
            _kill_self_always,
            [missing],
            retry=RetryPolicy(max_attempts=2, backoff_base=0.001),
        )
        (failure,) = results
        assert isinstance(failure, TaskFailure)
        assert failure.attempts == 2
        assert failure.error_type in ("BrokenProcessPool", "CancelledError")

    def test_per_task_timeout_fails_the_task_not_the_run(self):
        pool = WorkerPool(Backend.PROCESS, max_workers=2)
        start = time.monotonic()
        results = pool.map(
            _sleep_forever,
            [1],
            retry=RetryPolicy(max_attempts=1, timeout=0.5, backoff_base=0.001),
        )
        assert time.monotonic() - start < 30
        (failure,) = results
        assert isinstance(failure, TaskFailure)
        assert failure.error_type == "TimeoutError"


def _kill_self_always(_marker):
    os.kill(os.getpid(), signal.SIGKILL)


class TestCircuitBreaker:
    def test_circuit_opens_after_consecutive_exhaustions(self):
        pool = WorkerPool(Backend.SERIAL)
        policy = RetryPolicy(max_attempts=1, backoff_base=0.0, circuit_threshold=2)
        results = pool.map(_always_raise, list(range(6)), retry=policy)
        assert all(isinstance(r, TaskFailure) for r in results)
        assert [r.circuit_open for r in results] == [False, False, True, True, True, True]

    def test_success_resets_the_failure_streak(self):
        pool = WorkerPool(Backend.SERIAL)
        policy = RetryPolicy(max_attempts=1, backoff_base=0.0, circuit_threshold=2)
        items = [1, 0, 1, 0, 1, 0]  # alternate bad/good; streak never reaches 2
        results = pool.map(
            lambda x: _always_raise(x) if x else _square(x), items, retry=policy
        )
        assert not any(isinstance(r, TaskFailure) and r.circuit_open for r in results)


class TestWorkerEnvParsing:
    def test_garbage_value_warns_and_falls_back(self, monkeypatch, caplog):
        monkeypatch.setenv(ENV_WORKERS, "a-few")
        with caplog.at_level("WARNING", logger="repro.runtime.pool"):
            assert _workers_from_env() is None
        assert any("not an integer" in record.message for record in caplog.records)

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_non_positive_value_is_rejected(self, monkeypatch, value):
        monkeypatch.setenv(ENV_WORKERS, value)
        with pytest.raises(ValueError, match="positive integer"):
            _workers_from_env()

    def test_valid_value_is_used(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert WorkerPool(Backend.THREAD).max_workers == 3

    def test_explicit_non_positive_worker_count_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            WorkerPool(Backend.THREAD, max_workers=0)
