"""Unit tests for UDP datagram construction, parsing and length overrides."""

import pytest

from repro.packets.udp import UDP_HEADER_LEN, UDPDatagram


class TestSerialization:
    def test_roundtrip(self):
        datagram = UDPDatagram(sport=5353, dport=53, payload=b"query")
        parsed = UDPDatagram.from_bytes(datagram.to_bytes("1.1.1.1", "2.2.2.2"))
        assert parsed.sport == 5353
        assert parsed.dport == 53
        assert parsed.payload == b"query"
        assert parsed.effective_length == UDP_HEADER_LEN + 5

    def test_checksum_verifies(self):
        datagram = UDPDatagram(sport=1, dport=2, payload=b"abc")
        parsed = UDPDatagram.from_bytes(datagram.to_bytes("3.3.3.3", "4.4.4.4"))
        assert parsed.verify_checksum("3.3.3.3", "4.4.4.4")

    def test_wrong_checksum_detected(self):
        datagram = UDPDatagram(sport=1, dport=2, payload=b"abc", checksum=0xDEAD)
        parsed = UDPDatagram.from_bytes(datagram.to_bytes("3.3.3.3", "4.4.4.4"))
        assert not parsed.verify_checksum("3.3.3.3", "4.4.4.4")

    def test_zero_checksum_means_unused(self):
        datagram = UDPDatagram(sport=1, dport=2, payload=b"abc", checksum=0)
        assert datagram.verify_checksum("3.3.3.3", "4.4.4.4")

    def test_computed_zero_transmitted_as_ffff(self):
        # Craft a payload whose checksum would be zero; RFC 768 sends 0xFFFF.
        datagram = UDPDatagram(sport=0, dport=0, payload=b"")
        raw = datagram.to_bytes("0.0.0.0", "0.0.0.0")
        assert raw[6:8] != b"\x00\x00"

    def test_length_override(self):
        datagram = UDPDatagram(payload=b"abcdef", length=40)
        assert datagram.effective_length == 40
        assert not datagram.has_valid_length()

    def test_auto_length_valid(self):
        assert UDPDatagram(payload=b"abcdef").has_valid_length()

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            UDPDatagram.from_bytes(b"\x00" * 4)

    def test_port_validation(self):
        with pytest.raises(ValueError):
            UDPDatagram(dport=-1)

    def test_copy(self):
        datagram = UDPDatagram(payload=b"abc")
        assert datagram.copy(dport=99).dport == 99
