"""Differential trace diffing tests, anchored on the committed golden pair.

The acceptance bar: diffing the neutral cell (sprint, no DPI) against the
testbed throttle cell must pinpoint the first diverging rule-match /
verdict event — the ``testbed:video.example.com`` decision.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs.diff import Divergence, diff_traces, explain
from repro.obs.trace import load_jsonl

pytestmark = pytest.mark.obs

GOLDEN = Path(__file__).parent / "golden"
THROTTLE_RULE = "testbed:video.example.com"


@pytest.fixture(scope="module")
def neutral() -> list[dict]:
    return load_jsonl(str(GOLDEN / "neutral_cell.jsonl"))


@pytest.fixture(scope="module")
def throttled() -> list[dict]:
    return load_jsonl(str(GOLDEN / "testbed_throttle_cell.jsonl"))


class TestGoldenPairDiff:
    def test_identical_traces_have_no_divergence(self, neutral):
        diff = diff_traces(neutral, neutral)
        assert diff.identical
        assert diff.first_divergence is None
        assert diff.first_decision_divergence is None
        assert diff.kind_delta == {}

    def test_first_structural_divergence_located(self, neutral, throttled):
        diff = diff_traces(neutral, throttled)
        assert not diff.identical
        divergence = diff.first_divergence
        assert divergence is not None
        # Both cells share env.created + replay.start, then split on the
        # first in-network event: sprint routes, the testbed builds a DPI flow.
        assert divergence.index == 2
        assert divergence.left["kind"] == "hop.traverse"
        assert divergence.right["kind"] == "mbx.flow_created"
        assert [event["kind"] for event in divergence.context] == [
            "env.created",
            "replay.start",
        ]

    def test_first_decision_divergence_names_the_dpi_decision(self, neutral, throttled):
        # The neutral cell's only decisions are its replay verdict and cell;
        # the throttle cell's decision chain starts at the DPI anchor check
        # that leads straight to the rule match.  The differ must surface
        # that as the first diverging decision.
        diff = diff_traces(neutral, throttled)
        decision = diff.first_decision_divergence
        assert decision is not None
        assert decision.index == 0
        assert decision.right["kind"] == "mbx.anchor"
        assert decision.right["element"] == "testbed-dpi"

    def test_rule_and_verdict_deltas_carry_the_throttle_rule(self, neutral, throttled):
        diff = diff_traces(neutral, throttled)
        assert diff.rule_delta == {THROTTLE_RULE: (0, 1)}
        assert diff.verdict_delta == {THROTTLE_RULE: (0, 1)}
        assert diff.kind_delta["mbx.rule_match"] == (0, 1)

    def test_decision_subsequence_pinpoints_rule_match(self, neutral, throttled):
        # Restricting to middlebox decisions only: the neutral trace has
        # none, so the very first decision divergence *is* the rule chain.
        neutral_mbx = [e for e in neutral if e.get("kind", "").startswith("mbx.")]
        throttled_mbx = [e for e in throttled if e.get("kind", "").startswith("mbx.")]
        diff = diff_traces(neutral_mbx, throttled_mbx)
        decisions = [e for e in throttled_mbx if e["kind"] in ("mbx.rule_match", "mbx.verdict")]
        assert {e.get("rule") or e.get("verdict") for e in decisions} == {THROTTLE_RULE}
        assert diff.first_decision_divergence is not None
        assert diff.first_decision_divergence.right["element"] == "testbed-dpi"

    def test_explain_names_rule_and_locations(self, neutral, throttled):
        text = explain(diff_traces(neutral, throttled), "neutral", "throttled")
        assert "first structural divergence" in text
        assert "first diverging decision" in text
        assert THROTTLE_RULE in text
        assert "testbed-dpi" in text

    def test_explain_identical(self, neutral):
        text = explain(diff_traces(neutral, neutral))
        assert "structurally identical" in text


class TestDiffMechanics:
    def test_prefix_trace_diverges_at_truncation(self):
        events = [
            {"kind": "a", "seq": 0},
            {"kind": "b", "seq": 1},
            {"kind": "c", "seq": 2},
        ]
        diff = diff_traces(events, events[:2])
        assert not diff.identical
        divergence = diff.first_divergence
        assert divergence.index == 2
        assert divergence.left == {"kind": "c"}
        assert divergence.right is None

    def test_timing_only_differences_are_invisible(self):
        left = [{"kind": "hop.traverse", "element": "r1", "time": 0.1, "seq": 0}]
        right = [{"kind": "hop.traverse", "element": "r1", "time": 9.9, "seq": 0}]
        assert diff_traces(left, right).identical

    def test_context_window_is_bounded(self):
        common = [{"kind": f"k{i}", "seq": i} for i in range(10)]
        left = common + [{"kind": "left-tail", "seq": 10}]
        right = common + [{"kind": "right-tail", "seq": 10}]
        diff = diff_traces(left, right, context=2)
        assert [event["kind"] for event in diff.first_divergence.context] == ["k8", "k9"]

    def test_divergence_describe_handles_trace_end(self):
        divergence = Divergence(index=4, left={"kind": "x"}, right=None)
        text = divergence.describe()
        assert "kind=x" in text
        assert "(trace ends)" in text

    def test_as_dict_is_json_ready(self, neutral, throttled):
        import json

        payload = diff_traces(neutral, throttled).as_dict()
        json.dumps(payload)
        assert payload["identical"] is False
        assert payload["rule_delta"] == {THROTTLE_RULE: [0, 1]}
