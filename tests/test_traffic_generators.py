"""Unit tests for the HTTP/TLS/STUN/video traffic generators."""

from repro.packets.flow import Direction
from repro.traffic.http import http_get_trace, http_request, http_response
from repro.traffic.stun import (
    ATTR_MS_SERVICE_QUALITY,
    parse_stun_attributes,
    stun_binding_request,
    stun_binding_response,
    stun_trace,
)
from repro.traffic.tls import client_hello, extract_sni, server_hello, tls_trace
from repro.traffic.video import video_stream_trace


class TestHTTP:
    def test_request_contains_host(self):
        request = http_request("example.com", "/page")
        assert request.startswith(b"GET /page HTTP/1.1\r\n")
        assert b"Host: example.com\r\n" in request
        assert request.endswith(b"\r\n\r\n")

    def test_extra_headers(self):
        request = http_request("x.com", extra_headers={"Range": "bytes=0-"})
        assert b"Range: bytes=0-" in request

    def test_response_structure(self):
        response = http_response(b"body", content_type="video/mp4")
        assert response.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: video/mp4" in response
        assert b"Content-Length: 4" in response
        assert response.endswith(b"body")

    def test_get_trace_shape(self):
        trace = http_get_trace("h.example", response_body=b"B" * 10)
        assert trace.protocol == "tcp"
        assert trace.packets[0].direction is Direction.CLIENT_TO_SERVER
        assert trace.packets[1].direction is Direction.SERVER_TO_CLIENT
        assert b"h.example" in trace.client_bytes()

    def test_get_trace_port(self):
        assert http_get_trace("h", server_port=8080).server_port == 8080


class TestTLS:
    def test_client_hello_parses(self):
        hello = client_hello("video.googlevideo.com")
        assert hello[0] == 0x16  # handshake record
        assert extract_sni(hello) == "video.googlevideo.com"

    def test_sni_visible_as_plaintext(self):
        assert b"video.googlevideo.com" in client_hello("video.googlevideo.com")

    def test_extract_sni_rejects_non_tls(self):
        assert extract_sni(b"GET / HTTP/1.1\r\n") is None

    def test_extract_sni_rejects_truncated(self):
        hello = client_hello("host.example")
        assert extract_sni(hello[:20]) is None

    def test_extract_sni_server_hello(self):
        assert extract_sni(server_hello()) is None

    def test_tls_trace_shape(self):
        trace = tls_trace("sni.example", server_port=443)
        assert trace.server_port == 443
        assert extract_sni(trace.client_payloads()[0]) == "sni.example"
        assert trace.metadata["sni"] == "sni.example"


class TestSTUN:
    def test_binding_request_attributes(self):
        attributes = parse_stun_attributes(stun_binding_request())
        assert attributes is not None
        assert ATTR_MS_SERVICE_QUALITY in attributes

    def test_without_service_quality(self):
        attributes = parse_stun_attributes(
            stun_binding_request(include_service_quality=False)
        )
        assert attributes is not None
        assert ATTR_MS_SERVICE_QUALITY not in attributes

    def test_response_parses(self):
        assert parse_stun_attributes(stun_binding_response()) is not None

    def test_non_stun_rejected(self):
        assert parse_stun_attributes(b"not stun at all........") is None
        assert parse_stun_attributes(b"") is None

    def test_wrong_cookie_rejected(self):
        message = bytearray(stun_binding_request())
        message[4] ^= 0xFF  # corrupt the magic cookie
        assert parse_stun_attributes(bytes(message)) is None

    def test_trace_shape(self):
        trace = stun_trace()
        assert trace.protocol == "udp"
        first_client = trace.client_payloads()[0]
        assert parse_stun_attributes(first_client) is not None
        assert len(trace.client_payloads()) >= 3


class TestVideo:
    def test_size(self):
        trace = video_stream_trace(total_bytes=10_000)
        body_bytes = sum(len(p) for p in trace.server_payloads()[1:])
        assert body_bytes == 10_000

    def test_header_is_video(self):
        trace = video_stream_trace()
        assert b"Content-Type: video/mp4" in trace.server_payloads()[0]

    def test_request_host(self):
        trace = video_stream_trace(host="cdn.example")
        assert b"Host: cdn.example" in trace.client_payloads()[0]

    def test_rejects_empty(self):
        import pytest

        with pytest.raises(ValueError):
            video_stream_trace(total_bytes=0)

    def test_chunked_for_shaping(self):
        trace = video_stream_trace(total_bytes=100_000)
        assert len(trace.server_payloads()) > 50
