"""Live proxy integration: real asyncio sockets through the fallback ladder.

Three claims are pinned here: (1) a payload served over a loopback socket
gets exactly the verdict the simulated path gives the same payload, (2)
the server stays graceful under concurrency and overload — every client
receives a verdict line, shed flows fail open, (3) when the active
technique is killed mid-serve (the deployed classifier's rule changed),
the FallbackLadder steps down to the next-cheapest technique and service
recovers without dropping a connection.
"""

import asyncio
import json

import pytest

from repro.core.pipeline import Liberate
from repro.core.proxy_server import (
    ProxyServer,
    drive_clients,
    payload_trace,
    request_verdict,
)
from repro.envs import ENVIRONMENT_FACTORIES
from repro.middlebox.overload import OverloadPolicy
from repro.traffic.http import http_get_trace
from repro.traffic.trace import invert_bits


def make_ladder(window: int = 5, failure_threshold: int = 3):
    """A fresh testbed deployment ladder and its base workload trace."""
    env = ENVIRONMENT_FACTORIES["testbed"]()
    base = http_get_trace("video.example.com", response_body=b"x" * 800)
    ladder = Liberate(env).deploy_ladder(
        base, window=window, failure_threshold=failure_threshold
    )
    return ladder, base


class _KilledTechnique:
    """The active technique after the classifier's rule changed: it still
    runs, but its transform no longer hides anything (the replay is sent
    untransformed), so every matching flow is differentiated again."""

    def __init__(self, original):
        self.name = original.name
        self.category = original.category
        self.protocol = original.protocol
        self._original = original

    def applicable(self, ctx):
        return self._original.applicable(ctx)

    def estimated_overhead(self, ctx):
        return self._original.estimated_overhead(ctx)

    def apply(self, runner):
        runner.send_default()


async def _serve(server, coroutine):
    await server.start()
    try:
        return await coroutine(server)
    finally:
        await server.stop()


class TestVerdictEquivalence:
    def test_live_verdicts_match_the_simulated_path(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port)
        matching = base.client_payloads()[0]
        payloads = [matching, invert_bits(matching), matching, b"GET / HTTP/1.1\r\n\r\n"]

        async def drive(srv):
            out = []
            for payload in payloads:  # sequential: flow ids == payload order
                out.append(await request_verdict("127.0.0.1", srv.bound_port, payload))
            return out

        live = asyncio.run(_serve(server, drive))

        # The reference run: an identical fresh ladder fed the same flow
        # sequence through the simulator directly.
        reference_ladder, _ = make_ladder()
        for index, (payload, verdict) in enumerate(zip(payloads, live)):
            outcome = reference_ladder.run_flow(
                payload_trace(payload, f"live-{index}", base.server_port)
            )
            assert verdict["evaded"] == outcome.evaded
            assert verdict["differentiated"] == outcome.differentiated
            assert verdict["technique"] == outcome.technique
        assert reference_ladder.rung == ladder.rung

    def test_all_verdict_fields_present(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port)

        async def drive(srv):
            return await request_verdict(
                "127.0.0.1", srv.bound_port, base.client_payloads()[0]
            )

        verdict = asyncio.run(_serve(server, drive))
        assert set(verdict) == {
            "flow",
            "technique",
            "evaded",
            "differentiated",
            "delivered_ok",
            "rung",
        }


class TestConcurrency:
    def test_concurrent_clients_all_get_verdicts(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port, max_active=256)
        matching = base.client_payloads()[0]
        payloads = [
            matching if i % 2 == 0 else invert_bits(matching) for i in range(80)
        ]

        async def drive(srv):
            return await drive_clients(
                "127.0.0.1", srv.bound_port, payloads, concurrency=40
            )

        verdicts = asyncio.run(_serve(server, drive))
        assert len(verdicts) == len(payloads)
        assert all(v["evaded"] for v in verdicts)
        assert server.stats.flows == len(payloads)
        assert server.stats.evaded == len(payloads)
        assert server.stats.peak_active > 1  # genuinely concurrent
        assert server.snapshot()["ladder"]["flows_handled"] == len(payloads)

    def test_overload_sheds_deterministically_and_fails_open(self):
        ladder, base = make_ladder()
        server = ProxyServer(
            ladder,
            server_port=base.server_port,
            max_active=4,
            overload=OverloadPolicy(shed_start=0.25, shed_max=1.0),
        )
        payloads = [base.client_payloads()[0]] * 48

        async def drive(srv):
            return await drive_clients(
                "127.0.0.1", srv.bound_port, payloads, concurrency=48
            )

        verdicts = asyncio.run(_serve(server, drive))
        assert len(verdicts) == len(payloads)  # nobody was dropped
        shed = [v for v in verdicts if v.get("shed")]
        served = [v for v in verdicts if not v.get("shed")]
        assert shed, "expected admission shedding above the watermark"
        assert server.stats.shed == len(shed)
        assert all(v["evaded"] for v in served)

    def test_shed_flows_keep_no_state(self):
        ladder, base = make_ladder()
        server = ProxyServer(
            ladder,
            server_port=base.server_port,
            max_active=2,
            overload=OverloadPolicy(shed_start=0.1, shed_max=1.0),
        )
        payloads = [base.client_payloads()[0]] * 16

        async def drive(srv):
            return await drive_clients(
                "127.0.0.1", srv.bound_port, payloads, concurrency=16
            )

        asyncio.run(_serve(server, drive))
        # Shed flows never touch the ladder: its flow count is only the
        # admitted ones, and the recent-verdict window stays bounded.
        assert ladder.flows_handled == server.stats.flows - server.stats.shed
        assert server.stats.recent.maxlen == 64


class TestBoundedServe:
    def test_flow_table_bound_is_applied_to_the_path(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port, mbx_flow_bound=8)
        payloads = [base.client_payloads()[0]] * 40

        async def drive(srv):
            return await drive_clients("127.0.0.1", srv.bound_port, payloads)

        verdicts = asyncio.run(_serve(server, drive))
        assert all(v["evaded"] for v in verdicts)
        # The classifier tracked every flow but retains at most the bound:
        # live serving must not accumulate per-flow middlebox state.
        engine = ladder.env.dpi()
        assert engine is not None
        assert len(engine._flows) <= 8
        assert engine.max_flows == 8

    def test_streaming_driver_accumulates_nothing(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port)
        payloads = [base.client_payloads()[0]] * 12
        seen = []

        async def drive(srv):
            return await drive_clients(
                "127.0.0.1",
                srv.bound_port,
                payloads,
                concurrency=4,
                on_verdict=lambda i, v: seen.append((i, v["evaded"])),
            )

        returned = asyncio.run(_serve(server, drive))
        assert returned == []  # streamed, not accumulated
        assert sorted(i for i, _ in seen) == list(range(len(payloads)))
        assert all(ok for _, ok in seen)

    def test_multi_segment_payload_is_read_to_eof(self):
        # A payload larger than one TCP segment arrives in several chunks;
        # the server must judge the complete payload (prefix-judging would
        # also leave unread bytes that turn close() into an RST).
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port)
        big = base.client_payloads()[0] + b"\x00" * 300_000

        async def drive(srv):
            return await request_verdict("127.0.0.1", srv.bound_port, big)

        verdict = asyncio.run(_serve(server, drive))
        reference_ladder, _ = make_ladder()
        outcome = reference_ladder.run_flow(payload_trace(big, "big", base.server_port))
        assert verdict["evaded"] == outcome.evaded
        assert verdict["differentiated"] == outcome.differentiated

    def test_payload_cap_truncates_but_closes_cleanly(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port, max_payload=1024)
        over_cap = b"A" * 4096

        async def drive(srv):
            return await request_verdict("127.0.0.1", srv.bound_port, over_cap)

        verdict = asyncio.run(_serve(server, drive))  # no reset, a verdict came back
        assert verdict["flow"] == 0


class TestStepDown:
    def test_killed_technique_steps_the_ladder_down_gracefully(self):
        ladder, base = make_ladder(window=4, failure_threshold=2)
        server = ProxyServer(ladder, server_port=base.server_port)
        matching = base.client_payloads()[0]
        first_rung = ladder.techniques[0].name
        second_rung = ladder.techniques[1].name

        async def drive(srv):
            healthy = [
                await request_verdict("127.0.0.1", srv.bound_port, matching)
                for _ in range(3)
            ]
            # The classifier operator updates their rules: the deployed
            # technique stops working mid-serve.
            ladder.techniques[0] = _KilledTechnique(ladder.techniques[0])
            degraded = [
                await request_verdict("127.0.0.1", srv.bound_port, matching)
                for _ in range(4)
            ]
            recovered = [
                await request_verdict("127.0.0.1", srv.bound_port, matching)
                for _ in range(3)
            ]
            return healthy, degraded, recovered

        healthy, degraded, recovered = asyncio.run(_serve(server, drive))
        assert all(v["evaded"] and v["rung"] == 0 for v in healthy)
        assert any(v["differentiated"] for v in degraded)  # the kill was real
        assert ladder.rung == 1
        assert ladder.step_downs[0].from_technique == first_rung
        assert ladder.step_downs[0].to_technique == second_rung
        assert server.stats.step_downs == 1
        assert all(v["evaded"] and v["rung"] == 1 for v in recovered)
        assert all(v["technique"] == second_rung for v in recovered)
        assert not ladder.exhausted


class TestLifecycle:
    def test_bound_port_requires_start(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port)
        with pytest.raises(RuntimeError):
            _ = server.bound_port

    def test_max_active_validation(self):
        ladder, _base = make_ladder()
        with pytest.raises(ValueError):
            ProxyServer(ladder, max_active=0)

    def test_verdict_line_is_json_with_newline(self):
        ladder, base = make_ladder()
        server = ProxyServer(ladder, server_port=base.server_port)

        async def drive(srv):
            reader, writer = await asyncio.open_connection("127.0.0.1", srv.bound_port)
            writer.write(base.client_payloads()[0])
            writer.write_eof()
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw

        raw = asyncio.run(_serve(server, drive))
        assert raw.endswith(b"\n")
        json.loads(raw)  # single well-formed JSON document
