"""Tests for the bilateral experiment harness and expectation completeness."""

import pytest

from repro.core.evasion import ALL_TECHNIQUES
from repro.experiments import paper_expectations
from repro.experiments.bilateral import format_bilateral, run_bilateral_matrix


class TestBilateralExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        return run_bilateral_matrix()

    def test_paper_dummy_prefix_pattern(self, results):
        """§6.5: dummy prefix evades testbed, T-Mobile, AT&T and the GFC —
        not Iran."""
        by_env = {r.env: r for r in results}
        for env in ("testbed", "tmobile", "att", "gfc"):
            assert by_env[env].dummy_prefix_evades, env
        assert not by_env["iran"].dummy_prefix_evades

    def test_rotation_beats_everything(self, results):
        assert all(r.rotation_evades for r in results)

    def test_baselines_differentiated(self, results):
        assert all(r.baseline_differentiated for r in results)

    def test_formatting(self, results):
        rendered = format_bilateral(results)
        for env in ("testbed", "tmobile", "gfc", "iran", "att"):
            assert env in rendered


class TestPaperExpectationsCompleteness:
    def test_every_technique_has_a_table3_row(self):
        for technique in ALL_TECHNIQUES:
            assert technique.name in paper_expectations.TABLE3, technique.name

    def test_no_orphan_rows(self):
        names = {t.name for t in ALL_TECHNIQUES}
        assert set(paper_expectations.TABLE3) == names

    def test_row_structure(self):
        for name, row in paper_expectations.TABLE3.items():
            assert set(row) == {"testbed", "tmobile", "gfc", "iran", "att", "os"}, name
            for env in ("testbed", "tmobile", "gfc", "iran"):
                assert len(row[env]) == 2, (name, env)
            assert len(row["att"]) == 1
            assert len(row["os"]) == 3

    def test_cell_vocabulary(self):
        valid = {"Y", "N", "-"}
        for name, row in paper_expectations.TABLE3.items():
            for env, cells in row.items():
                for cell in cells:
                    assert cell.rstrip("1234567") in valid, (name, env, cell)

    def test_efficiency_cases_covered(self):
        assert set(paper_expectations.EFFICIENCY) == {
            "testbed-http",
            "testbed-skype",
            "tmobile",
            "att",
            "gfc",
            "iran",
        }
