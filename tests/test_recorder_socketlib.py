"""Tests for trace recording (Figure 3 step 1) and the socket-library wrapper."""

import pytest

from repro.core.evasion.base import EvasionContext
from repro.core.evasion.reordering import TCPSegmentReorder
from repro.core.socketlib import LiberateSocket
from repro.netsim.element import PacketTap
from repro.replay.session import ReplaySession
from repro.traffic.recorder import TraceRecorder


@pytest.fixture
def tapped_testbed(testbed):
    tap = PacketTap("recording-tap")
    testbed.path.elements.insert(0, tap)
    yield testbed, tap
    testbed.path.elements.remove(tap)


class TestTraceRecorder:
    def test_record_and_replay_roundtrip(self, tapped_testbed, neutral_trace):
        env, tap = tapped_testbed
        ReplaySession(env, neutral_trace).run()
        recorder = TraceRecorder(tap)
        flows = recorder.flows()
        assert len(flows) == 1
        recorded = recorder.record(flows[0], name="re-recorded")
        assert recorded.client_bytes() == neutral_trace.client_bytes()
        assert recorded.server_bytes() == neutral_trace.server_bytes()
        assert recorded.server_port == neutral_trace.server_port

    def test_recorded_trace_replays_with_same_classification(
        self, tapped_testbed, classified_trace
    ):
        env, tap = tapped_testbed
        original = ReplaySession(env, classified_trace).run()
        recorded = TraceRecorder(tap).record(TraceRecorder(tap).flows()[0])
        replayed = ReplaySession(env, recorded).run()
        assert replayed.differentiated == original.differentiated

    def test_udp_recording(self, tapped_testbed, skype_trace):
        env, tap = tapped_testbed
        ReplaySession(env, skype_trace).run()
        recorder = TraceRecorder(tap)
        flow = recorder.flows()[0]
        recorded = recorder.record(flow)
        assert recorded.protocol == "udp"
        assert recorded.client_payloads() == skype_trace.client_payloads()

    def test_retransmissions_deduplicated(self, tapped_testbed, neutral_trace):
        env, tap = tapped_testbed
        session = ReplaySession(env, neutral_trace)

        class _Retransmitter:
            name = "retransmit"

            def apply(self, runner):
                from repro.endpoint.rawclient import SegmentPlan

                message = runner.client_messages[0]
                start_seq = runner.client.next_seq
                runner.send_message(message)
                # retransmit the same bytes at the original seq
                runner.client.send_plan(SegmentPlan(payload=message, seq=start_seq))

        session.run(technique=_Retransmitter())
        recorded = TraceRecorder(tap).record(TraceRecorder(tap).flows()[0])
        assert recorded.client_bytes() == neutral_trace.client_bytes()

    def test_multiple_flows_separated(self, tapped_testbed, neutral_trace, classified_trace):
        env, tap = tapped_testbed
        ReplaySession(env, neutral_trace).run()
        ReplaySession(env, classified_trace).run()
        recorder = TraceRecorder(tap)
        assert len(recorder.flows()) == 2


class TestLiberateSocket:
    def setup_http_server(self, env):
        from repro.endpoint.apps import HTTPServerApp
        from repro.endpoint.tcpstack import TCPServerStack

        app = HTTPServerApp()
        app.add_page("video.example.com", "/", "video/mp4", b"MOVIE" * 10)
        stack = TCPServerStack(env.server_addr, app=app)
        env.path.server_endpoint = stack
        return app

    def test_plain_socket_gets_classified(self, testbed):
        self.setup_http_server(testbed)
        sock = LiberateSocket(testbed)
        sock.connect()
        sock.sendall(b"GET / HTTP/1.1\r\nHost: video.example.com\r\n\r\n")
        sock.flush()
        response = sock.recv()
        assert b"200 OK" in response
        dpi = testbed.dpi()
        assert dpi.ever_matched(testbed.client_addr, sock._client.sport)

    def test_evading_socket_not_classified(self, testbed):
        from repro.core.report import MatchingField

        self.setup_http_server(testbed)
        request = b"GET / HTTP/1.1\r\nHost: video.example.com\r\n\r\n"
        index = request.find(b"video.example.com")
        context = EvasionContext(
            matching_fields=[MatchingField(0, index, index + 17, b"video.example.com")],
            middlebox_hops=0,
        )
        sock = LiberateSocket(testbed, technique=TCPSegmentReorder(), context=context)
        sock.connect()
        sock.sendall(request)
        sock.flush()
        response = sock.recv()
        assert b"200 OK" in response  # application unaffected
        assert not testbed.dpi().ever_matched(testbed.client_addr, sock._client.sport)

    def test_context_manager(self, testbed):
        self.setup_http_server(testbed)
        with LiberateSocket(testbed) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\nHost: video.example.com\r\n\r\n")
        assert not sock.connected

    def test_send_before_connect_raises(self, testbed):
        with pytest.raises(ConnectionError):
            LiberateSocket(testbed).sendall(b"x")

    def test_connect_refused_raises(self, gfc, censored_trace):
        # Exhaust the GFC's tolerance for this server:port first.
        for _ in range(2):
            ReplaySession(gfc, censored_trace).run()
        with pytest.raises(ConnectionError):
            LiberateSocket(gfc, dport=80).connect()

    def test_incremental_recv(self, testbed):
        self.setup_http_server(testbed)
        sock = LiberateSocket(testbed)
        sock.connect()
        sock.sendall(b"GET / HTTP/1.1\r\nHost: video.example.com\r\n\r\n")
        sock.flush()
        first = sock.recv()
        assert first
        assert sock.recv() == b""  # nothing new


class TestRandomizedBlindingFallback:
    def test_random_mode_finds_same_fields(self, testbed, classified_trace):
        from repro.core.characterization import Characterizer

        inverted = Characterizer(testbed, classified_trace, blind_mode="invert")
        randomized = Characterizer(testbed, classified_trace, blind_mode="random")
        fields_a = [f.content for f in inverted.find_matching_fields()]
        fields_b = [f.content for f in randomized.find_matching_fields()]
        assert fields_a == fields_b

    def test_mode_validated(self, testbed, classified_trace):
        from repro.core.characterization import Characterizer

        with pytest.raises(ValueError):
            Characterizer(testbed, classified_trace, blind_mode="zeroes")
