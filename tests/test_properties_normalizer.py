"""Property-based tests of the traffic normalizer's stream equality."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.middlebox.normalizer import TrafficNormalizer
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment

CLIENT, SERVER = "10.1.0.2", "203.0.113.50"


def ctx():
    return TransitContext(
        clock=VirtualClock(), inject_back=lambda p: None, inject_forward=lambda p: None
    )


@settings(deadline=None, max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.binary(min_size=1, max_size=500),
    st.lists(st.integers(min_value=1, max_value=499), max_size=6),
    st.randoms(use_true_random=False),
)
def test_normalizer_output_equals_input_stream(payload, cut_spec, rng):
    """Whatever the segmentation and wire order, the normalizer's re-emitted
    stream is the exact in-order byte stream — the property that lets it sit
    in front of a per-packet classifier without corrupting anything."""
    normalizer = TrafficNormalizer()
    context = ctx()
    base_seq = 10_000
    syn = TCPSegment(sport=40_700, dport=80, seq=base_seq - 1, flags=TCPFlags.SYN)
    normalizer.process(
        IPPacket(src=CLIENT, dst=SERVER, transport=syn), Direction.CLIENT_TO_SERVER, context
    )
    cuts = sorted({c for c in cut_spec if c < len(payload)})
    bounds = [0, *cuts, len(payload)]
    pieces = [
        (bounds[i], payload[bounds[i] : bounds[i + 1]])
        for i in range(len(bounds) - 1)
        if bounds[i + 1] > bounds[i]
    ]
    rng.shuffle(pieces)
    emitted: list[IPPacket] = []
    for offset, data in pieces:
        segment = TCPSegment(
            sport=40_700,
            dport=80,
            seq=base_seq + offset,
            ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            payload=data,
        )
        emitted += normalizer.process(
            IPPacket(src=CLIENT, dst=SERVER, transport=segment),
            Direction.CLIENT_TO_SERVER,
            context,
        )
    stream = {}
    for packet in emitted:
        stream[packet.tcp.seq] = packet.app_payload
    rebuilt = b"".join(stream[k] for k in sorted(stream))
    assert rebuilt == payload
    # and the re-emission is strictly in order on the wire
    seqs = [p.tcp.seq for p in emitted]
    assert seqs == sorted(seqs)


@settings(deadline=None, max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(st.binary(min_size=1, max_size=300), st.integers(min_value=1, max_value=63))
def test_normalizer_ttl_floor(payload, ttl):
    """Every forwarded packet leaves with TTL >= the configured floor."""
    normalizer = TrafficNormalizer(min_ttl=32, coalesce=False)
    context = ctx()
    segment = TCPSegment(
        sport=40_701, dport=80, seq=5, ack=1, flags=TCPFlags.ACK | TCPFlags.PSH, payload=payload
    )
    packet = IPPacket(src=CLIENT, dst=SERVER, transport=segment, ttl=ttl)
    out = normalizer.process(packet, Direction.CLIENT_TO_SERVER, context)
    assert all(p.ttl >= 32 for p in out)
