"""Differential tests: pattern automaton and batch serializer vs. naive loops.

Two exact-equivalence contracts are checked here against straightforward
reference implementations over randomized inputs:

* :mod:`repro.middlebox.automaton` — every scan shape (one-shot ``advance``,
  bulk ``scan_mask``, resumable ``StreamScan.feed_mask`` across arbitrary
  chunk splits) must report exactly the patterns a per-pattern
  ``pattern in buffer`` loop would, including overlapping, nested and
  chunk-boundary-spanning occurrences, on both the inline small-append walk
  and the hybrid regex bulk path.

* :mod:`repro.packets.batch` — ``serialize_batch`` must be byte-identical
  to per-packet ``to_bytes()`` for every packet shape (plain fast-path
  packets, crafted overrides that fall back, unserializable ones under
  ``lenient``), in any interleaving with per-packet serialization, since
  both write the same wire memos.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.middlebox.automaton import (
    _INLINE_FACTOR,
    PatternAutomaton,
    StreamScan,
    automaton_for,
    mask_to_ids,
)
from repro.middlebox.rules import MatchRule
from repro.middlebox.ruleindex import CompiledRuleSet
from repro.packets.batch import concat_wire_bytes, serialize_batch
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram

# A tiny alphabet makes overlaps, shared prefixes and nesting common.
pattern_st = st.lists(st.sampled_from([b"a", b"b", b"c"]), min_size=1, max_size=5).map(b"".join)
patterns_st = st.lists(pattern_st, min_size=0, max_size=8)
# Chunks up to 24 bytes: far beyond max_len * _INLINE_FACTOR (<= 10), so the
# hybrid regex path and the inline walk are both exercised.
chunk_st = st.lists(st.sampled_from([b"a", b"b", b"c", b"x"]), min_size=0, max_size=24).map(
    b"".join
)


def naive_mask(patterns, data: bytes) -> int:
    """Bit *i* set iff ``patterns[i] in data`` — the loop being replaced."""
    mask = 0
    for i, pattern in enumerate(patterns):
        if pattern in data:
            mask |= 1 << i
    return mask


class TestAutomatonDifferential:
    @settings(max_examples=200)
    @given(patterns=patterns_st, data=chunk_st)
    def test_advance_equals_per_pattern_search(self, patterns, data):
        automaton = PatternAutomaton(patterns)
        _node, mask = automaton.advance(0, data)
        assert mask == naive_mask(patterns, data)

    @settings(max_examples=200)
    @given(patterns=patterns_st, data=chunk_st, bounds=st.tuples(st.integers(0, 24), st.integers(0, 24)))
    def test_scan_mask_equals_sliced_search(self, patterns, data, bounds):
        start, end = sorted(bounds)
        automaton = PatternAutomaton(patterns)
        assert automaton.scan_mask(data, start, min(end, len(data))) == naive_mask(
            patterns, data[start:end]
        )

    @settings(max_examples=200)
    @given(patterns=patterns_st, data=chunk_st, end=st.integers(0, 24))
    def test_resume_node_equals_full_walk(self, patterns, data, end):
        automaton = PatternAutomaton(patterns)
        end = min(end, len(data))
        assert automaton.resume_node(data, end) == automaton.advance(0, data[:end])[0]

    def test_overlapping_nested_and_boundary_patterns(self):
        # "aba" overlaps itself in "ababa"; "ab"/"a" are nested prefixes.
        patterns = [b"aba", b"ab", b"a", b"ba", b"caba"]
        automaton = automaton_for(patterns)
        assert mask_to_ids(automaton.scan_mask(b"ababa")) == {0, 1, 2, 3}
        # The only "caba" occurrence spans the chunk boundary; the resumable
        # scan must see it without ever re-feeding the first chunk.
        scan = StreamScan()
        buffer = bytearray(b"xca")
        scan.feed_mask(automaton, buffer)
        buffer.extend(b"ba")
        assert mask_to_ids(scan.feed_mask(automaton, buffer)) == {0, 1, 2, 3, 4}


class TestStreamScanDifferential:
    @settings(max_examples=300)
    @given(patterns=patterns_st, chunks=st.lists(chunk_st, min_size=1, max_size=6))
    def test_chunked_feed_equals_full_rescan(self, patterns, chunks):
        """The resumable scan sees exactly what rescanning the buffer would.

        Chunk sizes straddle the inline/hybrid threshold, so both feed paths
        and the cross-boundary head walk are covered.
        """
        automaton = PatternAutomaton(patterns)
        scan = StreamScan()
        buffer = bytearray()
        for chunk in chunks:
            buffer.extend(chunk)
            mask = scan.feed_mask(automaton, buffer)
            assert mask == naive_mask(patterns, bytes(buffer))
            # The carried node must equal the state a from-scratch walk of
            # the whole stream reaches — that is what makes the next feed's
            # boundary handling exact.
            assert scan.node == automaton.advance(0, bytes(buffer))[0]
            assert scan.watermark == len(buffer)

    @settings(max_examples=100)
    @given(patterns=patterns_st, chunks=st.lists(chunk_st, min_size=1, max_size=6))
    def test_forced_inline_and_forced_bulk_agree(self, patterns, chunks):
        """Feeding byte-by-byte and in maximal chunks yields the same hits."""
        automaton = PatternAutomaton(patterns)
        stream = b"".join(chunks)
        inline_scan = StreamScan()
        buffer = bytearray()
        for offset in range(len(stream)):  # appends of 1: always inline
            buffer.append(stream[offset])
            inline_mask = inline_scan.feed_mask(automaton, buffer)
        bulk_scan = StreamScan()
        bulk_mask = bulk_scan.feed_mask(automaton, stream)  # one append: bulk
        if stream:
            assert inline_mask == bulk_mask == naive_mask(patterns, stream)
        threshold = automaton.max_len * _INLINE_FACTOR
        assert threshold >= 0  # documents what the two paths split on


class TestRuleLoopDifferential:
    """Random rule lists × random chunked streams vs the naive per-rule loop."""

    rule_st = st.builds(
        MatchRule,
        name=st.sampled_from(["r0", "r1", "r2", "r3"]),
        keywords=st.lists(pattern_st, min_size=1, max_size=3),
        require_all=st.booleans(),
    )

    @staticmethod
    def naive_first_match(rules, buffer: bytes):
        for rule in rules:
            if rule.matches_buffer(buffer):
                return rule
        return None

    @settings(max_examples=200)
    @given(
        rules=st.lists(rule_st, min_size=0, max_size=6),
        chunks=st.lists(chunk_st, min_size=1, max_size=6),
    )
    def test_compiled_match_equals_naive_loop(self, rules, chunks):
        view = CompiledRuleSet(rules).view("tcp", 80, "client")
        scan = StreamScan()
        buffer = bytearray()
        for index, chunk in enumerate(chunks):
            buffer.extend(chunk)
            expected = self.naive_first_match(rules, bytes(buffer))
            assert view.match(buffer, chunk, index, scan) is expected


# ----------------------------------------------------------------------
# serialize_batch vs per-packet to_bytes
# ----------------------------------------------------------------------

payload_st = st.binary(max_size=64)
port_st = st.integers(0, 0xFFFF)

plain_tcp_st = st.builds(
    TCPSegment,
    sport=port_st,
    dport=port_st,
    seq=st.integers(0, 0xFFFFFFFF),
    ack=st.integers(0, 0xFFFFFFFF),
    flags=st.sampled_from([TCPFlags.ACK, TCPFlags.SYN, TCPFlags.ACK | TCPFlags.PSH]),
    payload=payload_st,
)
plain_udp_st = st.builds(
    UDPDatagram,
    sport=port_st,
    dport=port_st,
    payload=payload_st,
    # Length overrides stay on the fast path: the wire uses the actual size
    # for the pseudo-header and IP total length either way.
    length=st.sampled_from([None, None, None, 0, 13, 0xFFFF]),
)
crafted_tcp_st = plain_tcp_st.map(
    lambda seg: TCPSegment(
        sport=seg.sport, dport=seg.dport, seq=seg.seq, ack=seg.ack,
        flags=seg.flags, payload=seg.payload, checksum=0xBEEF,
    )
)
address_st = st.sampled_from(["10.0.0.1", "10.0.0.2", "192.168.1.7", "203.0.113.9"])

packet_st = st.builds(
    IPPacket,
    src=address_st,
    dst=address_st,
    transport=st.one_of(plain_tcp_st, plain_udp_st, crafted_tcp_st, st.just(b"raw-bytes")),
    ttl=st.integers(0, 255),
    tos=st.integers(0, 255),
    identification=st.integers(0, 0xFFFF),
    df=st.booleans(),
    mf=st.booleans(),
    frag_offset=st.integers(0, 0x1FFF),
    # Header overrides knock packets off the fast path; the batch must fall
    # back to to_bytes() and still agree byte-for-byte.
    total_length=st.sampled_from([None, None, None, 10, 2000]),
    checksum=st.sampled_from([None, None, None, 0]),
    options=st.sampled_from([b"", b"", b"\x01\x01"]),
)


def reference_wires(packets):
    """Per-packet serialization on independent clones (no shared memos)."""
    wires = []
    for packet in packets:
        try:
            wires.append(packet.copy().to_bytes())
        except (ValueError, OverflowError):
            wires.append(None)
    return wires


class TestSerializeBatchDifferential:
    @settings(max_examples=150)
    @given(packets=st.lists(packet_st, max_size=10))
    def test_batch_equals_per_packet_to_bytes(self, packets):
        assert serialize_batch(packets, lenient=True) == reference_wires(packets)

    @settings(max_examples=100)
    @given(packets=st.lists(packet_st, max_size=8), interleave=st.lists(st.booleans(), max_size=8))
    def test_memo_warming_is_consistent(self, packets, interleave):
        """to_bytes() before or after the batch never changes any byte."""
        expected = reference_wires(packets)
        # Warm some packets' memos via the per-packet path first...
        for packet, pre_serialize in zip(packets, interleave):
            if pre_serialize:
                try:
                    packet.to_bytes()
                except (ValueError, OverflowError):
                    pass
        # ...then batch, then serialize per-packet again off the warm memos.
        assert serialize_batch(packets, lenient=True) == expected
        for packet, wire in zip(packets, expected):
            if wire is not None:
                assert packet.to_bytes() == wire

    @settings(max_examples=50)
    @given(packets=st.lists(packet_st, max_size=6))
    def test_concat_equals_joined_serializable_wires(self, packets):
        expected = b"".join(w for w in reference_wires(packets) if w)
        assert concat_wire_bytes(packets) == expected

    def test_strict_mode_raises_where_to_bytes_raises(self):
        import pytest

        good = IPPacket(src="10.0.0.1", dst="10.0.0.2", transport=TCPSegment())
        bad = IPPacket(src="not-an-address", dst="10.0.0.2", transport=TCPSegment())
        assert serialize_batch([good, bad], lenient=True) == [good.copy().to_bytes(), None]
        with pytest.raises(ValueError):
            serialize_batch([good, bad])

    def test_shared_pair_state_does_not_leak_across_pairs(self):
        # Alternating endpoint pairs force the per-pair pseudo-header prefix
        # to be recomputed; every wire must still match its own packet.
        packets = []
        for i in range(6):
            src = "10.0.0.1" if i % 2 else "10.0.0.3"
            packets.append(
                IPPacket(
                    src=src, dst="10.0.0.2",
                    transport=TCPSegment(sport=1000 + i, dport=80, payload=b"x" * i),
                )
            )
        assert serialize_batch(packets) == reference_wires(packets)
