"""Fuzz / chaos tests: random technique sequences never crash the system,
and outcome invariants hold everywhere."""

import random

import pytest

from repro.core.evasion import ALL_TECHNIQUES
from repro.core.evasion.base import EvasionContext
from repro.envs import make_att, make_gfc, make_iran, make_sprint, make_testbed, make_tmobile
from repro.replay.session import ReplaySession
from repro.traffic.http import http_get_trace
from repro.traffic.stun import stun_trace

FACTORIES = {
    "testbed": make_testbed,
    "tmobile": make_tmobile,
    "gfc": make_gfc,
    "iran": make_iran,
    "att": make_att,
    "sprint": make_sprint,
}


def check_invariants(outcome):
    """Cross-field consistency every replay outcome must satisfy."""
    if outcome.evaded:
        assert not outcome.differentiated
        assert outcome.delivered_ok and outcome.server_response_ok
    if outcome.delivered_ok and outcome.bytes_used:
        assert outcome.payload_reached_server or not outcome.trace_name  # delivery implies arrival
    assert outcome.rst_count >= 0
    assert outcome.overhead_packets >= 0
    assert outcome.overhead_seconds >= 0
    if outcome.blocked:
        assert outcome.rst_count > 0 or outcome.block_page_received or True


@pytest.mark.parametrize("env_name", sorted(FACTORIES))
def test_random_technique_sequences_never_crash(env_name):
    rng = random.Random(hash(env_name) & 0xFFFF)
    env = FACTORIES[env_name]()
    hosts = ["video.example.com", "economist.com", "facebook.com", "plain.example.org"]
    for step in range(12):
        protocol_is_udp = rng.random() < 0.25
        if protocol_is_udp:
            trace = stun_trace()
            context = EvasionContext(protocol="udp", middlebox_hops=env.hops_to_middlebox)
        else:
            trace = http_get_trace(rng.choice(hosts), response_body=b"r" * rng.randrange(1, 2000))
            context = EvasionContext(
                protocol="tcp",
                middlebox_hops=env.hops_to_middlebox,
                flush_wait_seconds=float(rng.randrange(5, 200)),
                split_pieces=rng.randrange(2, 11),
                inert_packet_count=rng.randrange(1, 4),
            )
        candidates = [t for t in ALL_TECHNIQUES if t.applicable(context)]
        technique = rng.choice([None, *candidates])
        port = rng.choice([80, 8080, 9000]) if not protocol_is_udp else 3478
        outcome = ReplaySession(env, trace, server_port=port).run(
            technique=technique, context=context
        )
        check_invariants(outcome)


def test_interleaved_environments_share_nothing():
    """Replays alternating across environments never bleed state."""
    rng = random.Random(99)
    envs = {name: factory() for name, factory in FACTORIES.items()}
    for _ in range(10):
        name = rng.choice(sorted(envs))
        env = envs[name]
        outcome = ReplaySession(env, http_get_trace("plain.example.org")).run()
        assert not outcome.differentiated  # neutral content is neutral everywhere
        check_invariants(outcome)


def test_repeated_replays_are_stable():
    """The same replay repeated many times yields the same verdict."""
    env = make_testbed()
    trace = http_get_trace("video.example.com")
    verdicts = {ReplaySession(env, trace).run().differentiated for _ in range(8)}
    assert verdicts == {True}
