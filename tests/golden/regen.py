"""Regenerate the golden observability traces in this directory.

Each golden artifact is the full ``--trace`` JSONL of one Table 3 cell:

* ``neutral_cell.jsonl`` — the neutral cell: ``tcp-segment-split`` on the
  Sprint environment (no DPI, so no rule-match events at all);
* ``testbed_throttle_cell.jsonl`` — the throttling cell:
  ``tcp-invalid-data-offset`` on the testbed, which the DPI still
  classifies (CC=N), so the trace carries the
  ``testbed:video.example.com`` throttle rule match and verdict.

Regenerate after an intentional trace-schema or instrumentation change::

    PYTHONPATH=src python tests/golden/regen.py

then review the diff of the ``*.jsonl`` files like any other code change —
the golden tests compare the structural skeleton (event kinds, rule ids,
verdicts, reasons), so only behavioural changes should show up there.

``--check`` regenerates into a temporary directory and *structurally*
compares against the committed artifacts instead of rewriting them,
exiting non-zero on drift — that's what CI runs, so an instrumentation
change can't silently invalidate the goldens::

    PYTHONPATH=src python tests/golden/regen.py --check [--out DIR]

``--out DIR`` keeps the freshly-regenerated files (CI uploads them as an
artifact so a drifted run can be diffed without rerunning anything).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.core.evasion import ALL_TECHNIQUES
from repro.experiments.table3 import run_table3
from repro.obs import trace as obs_trace

GOLDEN_DIR = Path(__file__).parent

#: artifact file -> (environment, technique) of the recorded Table 3 cell
CELLS: dict[str, tuple[str, str]] = {
    "neutral_cell.jsonl": ("sprint", "tcp-segment-split"),
    "testbed_throttle_cell.jsonl": ("testbed", "tcp-invalid-data-offset"),
}

#: Cells re-recorded on the event-scheduler core during ``--check`` and
#: compared against the SAME committed artifacts: the event core's contract
#: is byte-identical traces, so it gets no golden files of its own — drift
#: from the legacy driver's artifact IS the failure.
EVENT_CORE_CELLS = ("testbed_throttle_cell.jsonl",)


def record_cell(
    env_name: str, technique_name: str, event_core: bool = False
) -> obs_trace.FlowTracer:
    """Run one Table 3 cell under a fresh tracer and return the tracer."""
    from repro.netsim.scheduler import use_event_core

    technique = next(t for t in ALL_TECHNIQUES if t.name == technique_name)
    with use_event_core(enabled=event_core):
        with obs_trace.tracing() as tracer:
            run_table3(
                env_names=(env_name,),
                techniques=(technique,),
                include_os_matrix=False,
                characterize=False,
            )
    return tracer


def regenerate(golden_dir: Path = GOLDEN_DIR) -> dict[str, int]:
    """Rewrite every golden artifact; returns events written per file."""
    written = {}
    for filename, (env_name, technique_name) in sorted(CELLS.items()):
        tracer = record_cell(env_name, technique_name)
        written[filename] = tracer.export_jsonl(str(golden_dir / filename))
    return written


def check(out_dir: Path | None = None, golden_dir: Path = GOLDEN_DIR) -> list[str]:
    """Regenerate into a scratch dir and structurally compare with *golden_dir*.

    Returns the drift report: one line per divergent artifact (empty =
    clean).  Comparison uses :func:`repro.obs.trace.structural_view`, the
    same projection the golden tests assert on, so timing-only differences
    never count as drift.
    """
    from repro.obs.diff import diff_traces

    drift: list[str] = []
    with tempfile.TemporaryDirectory(prefix="golden-regen-") as scratch:
        target = out_dir or Path(scratch)
        target.mkdir(parents=True, exist_ok=True)
        regenerate(target)
        for filename in sorted(EVENT_CORE_CELLS):
            env_name, technique_name = CELLS[filename]
            tracer = record_cell(env_name, technique_name, event_core=True)
            tracer.export_jsonl(str(target / f"event_core__{filename}"))
        for filename in sorted(CELLS):
            committed = golden_dir / filename
            if not committed.exists():
                drift.append(f"{filename}: committed artifact missing")
                continue
            candidates = [filename]
            if filename in EVENT_CORE_CELLS:
                candidates.append(f"event_core__{filename}")
            for candidate in candidates:
                diff = diff_traces(
                    obs_trace.load_jsonl(str(committed)),
                    obs_trace.load_jsonl(str(target / candidate)),
                )
                if not diff.identical:
                    assert diff.first_divergence is not None
                    drift.append(f"{candidate}: {diff.first_divergence.describe()}")
    return drift


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare a fresh regeneration against the committed goldens "
        "instead of rewriting them; non-zero exit on drift",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="with --check: keep the regenerated files in this directory",
    )
    args = parser.parse_args(argv)
    if args.check:
        # Also re-records EVENT_CORE_CELLS on the event-scheduler core and
        # holds them to the same committed artifacts (byte-identity bar).
        drift = check(out_dir=args.out)
        if drift:
            print("golden traces drifted from the committed artifacts:", file=sys.stderr)
            for line in drift:
                print(f"  {line}", file=sys.stderr)
            print(
                "intentional change? rerun without --check and commit the diff",
                file=sys.stderr,
            )
            return 1
        print(f"{len(CELLS)} golden trace(s) structurally match the committed artifacts")
        return 0
    for filename, count in regenerate().items():
        print(f"wrote {count} events to {GOLDEN_DIR / filename}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
