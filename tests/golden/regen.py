"""Regenerate the golden observability traces in this directory.

Each golden artifact is the full ``--trace`` JSONL of one Table 3 cell:

* ``neutral_cell.jsonl`` — the neutral cell: ``tcp-segment-split`` on the
  Sprint environment (no DPI, so no rule-match events at all);
* ``testbed_throttle_cell.jsonl`` — the throttling cell:
  ``tcp-invalid-data-offset`` on the testbed, which the DPI still
  classifies (CC=N), so the trace carries the
  ``testbed:video.example.com`` throttle rule match and verdict.

Regenerate after an intentional trace-schema or instrumentation change::

    PYTHONPATH=src python tests/golden/regen.py

then review the diff of the ``*.jsonl`` files like any other code change —
the golden tests compare the structural skeleton (event kinds, rule ids,
verdicts, reasons), so only behavioural changes should show up there.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.evasion import ALL_TECHNIQUES
from repro.experiments.table3 import run_table3
from repro.obs import trace as obs_trace

GOLDEN_DIR = Path(__file__).parent

#: artifact file -> (environment, technique) of the recorded Table 3 cell
CELLS: dict[str, tuple[str, str]] = {
    "neutral_cell.jsonl": ("sprint", "tcp-segment-split"),
    "testbed_throttle_cell.jsonl": ("testbed", "tcp-invalid-data-offset"),
}


def record_cell(env_name: str, technique_name: str) -> obs_trace.FlowTracer:
    """Run one Table 3 cell under a fresh tracer and return the tracer."""
    technique = next(t for t in ALL_TECHNIQUES if t.name == technique_name)
    with obs_trace.tracing() as tracer:
        run_table3(
            env_names=(env_name,),
            techniques=(technique,),
            include_os_matrix=False,
            characterize=False,
        )
    return tracer


def regenerate(golden_dir: Path = GOLDEN_DIR) -> dict[str, int]:
    """Rewrite every golden artifact; returns events written per file."""
    written = {}
    for filename, (env_name, technique_name) in sorted(CELLS.items()):
        tracer = record_cell(env_name, technique_name)
        written[filename] = tracer.export_jsonl(str(golden_dir / filename))
    return written


if __name__ == "__main__":
    for filename, count in regenerate().items():
        print(f"wrote {count} events to {GOLDEN_DIR / filename}")
