"""Property tests (hypothesis) for the observability layer's invariants.

The flight recorder is only trustworthy if its events are *conservation
laws* of the simulator, not best-effort breadcrumbs:

* every injected packet produces exactly one ``hop.traverse`` event per
  hop it traversed (and one ``endpoint.deliver`` when nothing ate it);
* ``fault.drop`` events are exactly the injector's loss ledger
  (``lost + burst_lost + flap_dropped``);
* ``mbx.rule_match`` events agree with the middlebox's own match log and
  verdict bookkeeping;
* metrics counters equal the independent trace-event tallies.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.evasion import ALL_TECHNIQUES
from repro.envs import make_testbed
from repro.experiments.table3 import run_table3
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.faults import (
    FaultElement,
    bursty_profile,
    chaos_profile,
    lossy_profile,
)
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.replay.session import ReplaySession
from repro.traffic.http import http_get_trace

pytestmark = pytest.mark.obs

CLIENT = "10.1.0.2"
SERVER = "203.0.113.50"

obs_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _packet(ident: int, payload: bytes = b"x") -> IPPacket:
    segment = TCPSegment(
        sport=40_001,
        dport=80,
        seq=1 + ident,
        ack=1,
        flags=TCPFlags.ACK | TCPFlags.PSH,
        payload=payload,
    )
    return IPPacket(src=CLIENT, dst=SERVER, transport=segment, identification=ident)


class TestPacketConservation:
    @pytest.mark.property
    @obs_settings
    @given(
        n_hops=st.integers(min_value=1, max_value=5),
        idents=st.lists(
            st.integers(min_value=1, max_value=60_000),
            min_size=1,
            max_size=20,
            unique=True,
        ),
    )
    def test_each_packet_traverses_each_hop_exactly_once(self, n_hops, idents):
        clock = VirtualClock()
        hops = [RouterHop(f"r{i}") for i in range(n_hops)]
        path = Path(clock, list(hops))
        with obs_trace.tracing() as tracer:
            for ident in idents:
                path.send_from_client(_packet(ident))
        traverses = tracer.events("hop.traverse")
        # exactly one traverse per (packet, hop) pair, in hop order
        for ident in idents:
            mine = [e for e in traverses if e.fields["ident"] == ident]
            assert [e.fields["element"] for e in mine] == [h.name for h in hops]
        assert len(traverses) == len(idents) * n_hops
        # a clean router chain delivers everything it was given
        delivered = tracer.events("endpoint.deliver")
        assert sorted(e.fields["ident"] for e in delivered) == sorted(idents)
        assert not tracer.events("hop.drop")


class TestFaultLedger:
    @pytest.mark.property
    @obs_settings
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        profile_factory=st.sampled_from([lossy_profile, bursty_profile, chaos_profile]),
        count=st.integers(min_value=20, max_value=200),
    )
    def test_drop_events_match_fault_ledger(self, seed, profile_factory, count):
        element = FaultElement(profile_factory(seed))
        clock = VirtualClock()
        ctx = TransitContext(
            clock=clock, inject_back=lambda p: None, inject_forward=lambda p: None
        )
        with obs_metrics.collecting() as metrics:
            with obs_trace.tracing() as tracer:
                for i in range(count):
                    element.process(_packet(1 + i), Direction.CLIENT_TO_SERVER, ctx)
                    clock.advance(0.05)
        stats = element.stats
        dropped = stats.lost + stats.burst_lost + stats.flap_dropped
        tally = tracer.tally()
        assert tally.get("fault.drop", 0) == dropped
        assert metrics.counter("faults.drop") == dropped
        assert tally.get("fault.duplicate", 0) == stats.duplicated
        corrupted = stats.corrupted + stats.header_corrupted
        assert tally.get("fault.corrupt", 0) == corrupted
        assert tally.get("fault.restart", 0) == stats.restarts
        assert metrics.counter("netsim.packets.corrupted") == corrupted


class TestRuleMatchAgreement:
    @pytest.mark.property
    @obs_settings
    @given(
        host=st.sampled_from(
            ["video.example.com", "music.example.com", "plain.example.org"]
        ),
        body=st.integers(min_value=1, max_value=900),
    )
    def test_rule_match_events_agree_with_middlebox(self, host, body):
        env = make_testbed()
        trace = http_get_trace(host, response_body=b"v" * body)
        with obs_trace.tracing() as tracer:
            ReplaySession(env, trace).run()
        engine = env.path.element_named("testbed-dpi")
        matches = tracer.events("mbx.rule_match")
        assert len(matches) == len(engine.match_log)
        assert [e.fields["rule"] for e in matches] == [
            rule_name for _time, rule_name, _key in engine.match_log
        ]
        # every match event was followed by a verdict event for the same rule
        verdicts = tracer.events("mbx.verdict")
        matched_verdicts = [
            e.fields["verdict"] for e in verdicts if e.fields["reason"] == "rule-match"
        ]
        assert matched_verdicts == [e.fields["rule"] for e in matches]


class TestMetricsAgreeWithTrace:
    @pytest.mark.property
    @obs_settings
    @given(
        technique=st.sampled_from(
            ["tcp-invalid-data-offset", "tcp-segment-split", "flush-rst-after-match"]
        )
    )
    def test_counters_equal_trace_tallies(self, technique):
        chosen = next(t for t in ALL_TECHNIQUES if t.name == technique)
        with obs_metrics.collecting() as metrics:
            with obs_trace.tracing() as tracer:
                run_table3(
                    env_names=("testbed",),
                    techniques=(chosen,),
                    include_os_matrix=False,
                    characterize=False,
                )
        tally = tracer.tally()
        for counter, kind in [
            ("mbx.rule_matches", "mbx.rule_match"),
            ("table3.cells", "table3.cell"),
            ("replay.runs", "replay.start"),
            ("env.created", "env.created"),
            ("mbx.endpoint_blocks", "mbx.endpoint_block"),
            ("netsim.frags.reassembled", "frag.reassembled"),
        ]:
            assert metrics.counter(counter) == tally.get(kind, 0), counter
        assert metrics.counter("netsim.packets.dropped") == tally.get(
            "hop.drop", 0
        ) + tally.get("fault.drop", 0)
