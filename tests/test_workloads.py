"""Tests for the experiment workloads module and environment preparation."""

import pytest

from repro.envs import make_iran, make_sprint, make_testbed
from repro.experiments.workloads import (
    PreparedEnvironment,
    prepare,
    tcp_workload,
    udp_workload,
)


class TestWorkloads:
    def test_every_env_has_a_tcp_workload(self):
        for name in ("testbed", "tmobile", "gfc", "iran", "att", "sprint"):
            trace = tcp_workload(name)
            assert trace.protocol == "tcp"
            assert trace.total_bytes() > 0

    def test_unknown_env_raises(self):
        with pytest.raises(KeyError):
            tcp_workload("nonexistent")

    def test_udp_workload_is_stun(self):
        trace = udp_workload("testbed")
        assert trace.protocol == "udp"
        assert trace.metadata["application"] == "skype"

    def test_workloads_carry_the_classified_content(self):
        assert b"economist.com" in tcp_workload("gfc").client_bytes()
        assert b"facebook.com" in tcp_workload("iran").client_bytes()
        assert b"cloudfront.net" in tcp_workload("tmobile").client_bytes()
        assert b"Content-Type: video" in tcp_workload("att").server_bytes()


class TestPrepare:
    def test_characterized_prepare(self):
        prep = prepare(make_iran(), characterize=True)
        assert isinstance(prep, PreparedEnvironment)
        assert prep.tcp_context.inspects_all_packets  # discovered, not assumed
        assert prep.hops == 7  # localization result
        assert prep.characterization is not None
        assert prep.characterization.rounds > 0

    def test_fast_prepare_uses_ground_truth(self):
        prep = prepare(make_testbed(), characterize=False)
        assert prep.characterization is None
        assert prep.hops == 0
        assert prep.tcp_context.matching_fields  # host keyword guessed

    def test_prepare_without_middlebox(self):
        prep = prepare(make_sprint(), characterize=True)
        assert prep.characterization is None  # nothing to characterize
        assert prep.tcp_context is not None

    def test_udp_context_window(self):
        prep = prepare(make_testbed(), characterize=False)
        assert prep.udp_context.protocol == "udp"
        assert prep.udp_context.packet_limit == 6

    def test_fast_context_fields_point_at_host(self):
        prep = prepare(make_testbed(), characterize=False)
        field = prep.tcp_context.matching_fields[0]
        payload = prep.tcp_trace.client_payloads()[field.packet_index]
        assert payload[field.start : field.end] == field.content
