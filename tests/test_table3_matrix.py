"""Integration: the full Table 3 matrix must match the paper cell-for-cell."""

import pytest

from repro.experiments.table3 import compare_with_paper, format_table3, run_table3


@pytest.fixture(scope="module")
def table3_rows():
    return run_table3(characterize=False)


class TestTable3:
    def test_every_cell_matches_the_paper(self, table3_rows):
        matches, total, mismatches = compare_with_paper(table3_rows)
        assert total >= 300  # 26 rows x (4 envs x 2 + AT&T + 3 OS columns)
        assert mismatches == []
        assert matches == total

    def test_formatting_contains_all_rows(self, table3_rows):
        rendered = format_table3(table3_rows)
        for row in table3_rows:
            assert row.technique in rendered

    def test_att_column_all_negative(self, table3_rows):
        """The transparent proxy defeats every unilateral technique (§6.3)."""
        for row in table3_rows:
            assert row.cells["att"].cc in ("N", "-")

    def test_testbed_most_vulnerable(self, table3_rows):
        testbed_wins = sum(1 for r in table3_rows if r.cells["testbed"].cc == "Y")
        for env in ("tmobile", "gfc", "iran"):
            env_wins = sum(1 for r in table3_rows if r.cells[env].cc == "Y")
            assert testbed_wins > env_wins

    def test_splitting_beats_iran_only_segments(self, table3_rows):
        by_name = {r.technique: r for r in table3_rows}
        assert by_name["tcp-segment-split"].cells["iran"].cc == "Y"
        assert by_name["ip-fragmentation"].cells["iran"].cc == "N"

    def test_udp_rows_not_applicable_outside_testbed(self, table3_rows):
        by_name = {r.technique: r for r in table3_rows}
        for env in ("tmobile", "gfc", "iran"):
            assert by_name["udp-invalid-checksum"].cells[env].cc == "-"
