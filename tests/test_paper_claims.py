"""The paper's headline findings (§1 bullet list), one test per claim.

Table 3 covers these cell-by-cell; this module restates them as the named,
cross-environment claims the introduction advertises, so the reproduction's
coverage of the paper's *conclusions* is explicit.
"""

import pytest

from repro.core.bilateral import run_bilateral_dummy_prefix
from repro.core.evasion.base import EvasionContext
from repro.core.evasion.flushing import PauseAfterMatch, PauseBeforeMatch
from repro.core.evasion.inert import LowTTLInert, WrongIPChecksum
from repro.core.evasion.reordering import TCPSegmentReorder
from repro.core.report import MatchingField
from repro.envs import make_att, make_gfc, make_iran, make_testbed, make_tmobile
from repro.experiments.workloads import tcp_workload
from repro.replay.session import ReplaySession
from repro.traffic.stun import stun_trace

FACTORIES = {
    "testbed": make_testbed,
    "tmobile": make_tmobile,
    "gfc": make_gfc,
    "iran": make_iran,
    "att": make_att,
}


def classification_changed(env_name, outcome):
    """The Table 3 CC? semantics (AT&T's proxy requires intact delivery)."""
    if env_name == "att":
        return outcome.evaded
    return not outcome.differentiated and outcome.payload_reached_server


def run_with(env_name, technique, at_hour=None, tolerate_prefix=False):
    env = FACTORIES[env_name]()
    if at_hour is not None:
        env.clock.at_hour(at_hour)
    trace = tcp_workload(env_name)
    payload = trace.client_payloads()[0]
    host = trace.metadata.get("host", "")
    fields = []
    if host:
        index = payload.find(host.encode())
        if index >= 0:
            fields = [MatchingField(0, index, index + len(host), host.encode())]
    context = EvasionContext(
        matching_fields=fields,
        middlebox_hops=env.hops_to_middlebox,
        packet_limit=4,
        protocol="tcp",
    )
    session = ReplaySession(env, trace, tolerate_prefix=tolerate_prefix)
    return env, session.run(technique=technique, context=context)


class TestHeadlineClaims:
    def test_keyword_based_classification(self):
        # Claim: policies rely on keyword searches in HTTP payloads, SNI
        # fields and protocol-specific fields — characterization recovers
        # exactly those keywords.
        from repro.core.characterization import Characterizer

        fields = Characterizer(make_gfc(), tcp_workload("gfc")).find_matching_fields()
        assert b"economist.com" in [f.content for f in fields]

    def test_iran_inspects_entire_flow(self):
        # Claim: Iran's censoring devices inspect the entire flow.
        from repro.core.characterization import Characterizer

        report = Characterizer(make_iran(), tcp_workload("iran")).probe_position_limits()
        assert report.inspects_all_packets

    @pytest.mark.parametrize("env_name", ["tmobile", "gfc", "iran", "att"])
    def test_udp_never_classified_operationally(self, env_name):
        # Claim: no operational network classified UDP traffic — a
        # surprisingly easy way to evade their policies.
        outcome = ReplaySession(FACTORIES[env_name](), stun_trace()).run()
        assert not outcome.differentiated

    @pytest.mark.parametrize(
        "env_name,expected",
        [("testbed", True), ("tmobile", True), ("iran", True), ("gfc", False), ("att", False)],
    )
    def test_reordering_alters_classification_except_gfc_and_att(self, env_name, expected):
        # Claim: reordering TCP segments alters classification everywhere
        # except the GFC and AT&T.
        _env, outcome = run_with(env_name, TCPSegmentReorder())
        assert classification_changed(env_name, outcome) == expected

    @pytest.mark.parametrize(
        "env_name,expected",
        [("testbed", True), ("tmobile", True), ("gfc", True), ("iran", False), ("att", False)],
    )
    def test_ttl_limited_misclassification_except_att_and_iran(self, env_name, expected):
        # Claim: except for AT&T and Iran, all middleboxes are vulnerable to
        # misclassification via TTL-limited traffic that reaches the
        # middlebox but not the server.
        _env, outcome = run_with(env_name, LowTTLInert())
        assert classification_changed(env_name, outcome) == expected

    def test_iran_and_att_port_80_only(self):
        # Claim: Iran's and AT&T's classifiers only inspect port 80, so
        # changing the server port evades them.
        iran = ReplaySession(make_iran(), tcp_workload("iran"), server_port=8080).run()
        assert not iran.differentiated and iran.delivered_ok
        att = ReplaySession(make_att(), tcp_workload("att"), server_port=8080).run()
        assert not att.differentiated and att.delivered_ok

    def test_classifier_results_do_not_persist_indefinitely(self):
        # Claim: classification state expires, so establishing a connection
        # and pausing evades middlebox policies.
        _env, after = run_with("testbed", PauseAfterMatch())
        assert after.evaded
        _env, before = run_with("gfc", PauseBeforeMatch(), at_hour=14)
        assert before.evaded

    @pytest.mark.parametrize(
        "env_name,expected",
        [("testbed", True), ("tmobile", True), ("att", True), ("gfc", True), ("iran", False)],
    )
    def test_one_dummy_packet_with_server_support(self, env_name, expected):
        # Claim: with server-side support, one dummy packet at the start of
        # a flow evades classification in the testbed, T-Mobile, AT&T and
        # the GFC.
        outcome = run_bilateral_dummy_prefix(FACTORIES[env_name](), tcp_workload(env_name))
        assert outcome.evaded == expected

    def test_gfc_extensive_validation_vs_testbed_none(self):
        # Claim: the testbed device barely validates headers while the GFC
        # validates extensively — measured as evadability by invalid-header
        # inert packets.
        _env, testbed_outcome = run_with("testbed", WrongIPChecksum())
        assert not testbed_outcome.differentiated
        _env, gfc_outcome = run_with("gfc", WrongIPChecksum())
        assert gfc_outcome.differentiated
