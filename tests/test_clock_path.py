"""Unit tests for the virtual clock and path propagation."""

import pytest

from repro.netsim.clock import SECONDS_PER_DAY, VirtualClock
from repro.netsim.element import NetworkElement, PacketTap, TransitContext
from repro.netsim.path import Path
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPSegment


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(5.5)
        assert clock.now == 5.5

    def test_sleep_alias(self):
        clock = VirtualClock()
        clock.sleep(2)
        assert clock.now == 2

    def test_no_backwards(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_no_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-10)

    def test_hour_of_day(self):
        clock = VirtualClock(start=3 * 3600 + 1800)
        assert clock.hour_of_day == pytest.approx(3.5)

    def test_hour_wraps_at_midnight(self):
        clock = VirtualClock(start=SECONDS_PER_DAY + 3600)
        assert clock.hour_of_day == pytest.approx(1.0)

    def test_at_hour_moves_forward(self):
        clock = VirtualClock(start=10 * 3600)
        clock.at_hour(14)
        assert clock.hour_of_day == pytest.approx(14.0)

    def test_at_hour_wraps_to_next_day(self):
        clock = VirtualClock(start=20 * 3600)
        before = clock.now
        clock.at_hour(3)
        assert clock.now > before
        assert clock.hour_of_day == pytest.approx(3.0)

    def test_at_hour_validates(self):
        with pytest.raises(ValueError):
            VirtualClock().at_hour(24)


def packet(src="10.0.0.1", dst="10.0.0.2", payload=b"p"):
    return IPPacket(src=src, dst=dst, transport=TCPSegment(sport=1, dport=2, payload=payload))


class _Recorder:
    def __init__(self):
        self.received = []

    def receive(self, pkt):
        self.received.append(pkt)
        return []


class _Responder:
    """Endpoint that answers every packet once."""

    def __init__(self):
        self.received = []

    def receive(self, pkt):
        self.received.append(pkt)
        return [packet(src=pkt.dst, dst=pkt.src, payload=b"reply")]


class _DropElement(NetworkElement):
    name = "drop"

    def process(self, pkt, direction, ctx):
        return []


class _InjectBackElement(NetworkElement):
    name = "inject"

    def process(self, pkt, direction, ctx):
        ctx.inject_back(packet(src="9.9.9.9", dst=pkt.src, payload=b"icmp-ish"))
        return [pkt]


class TestPath:
    def test_delivers_to_server(self):
        clock = VirtualClock()
        path = Path(clock, [PacketTap()])
        server = _Recorder()
        path.server_endpoint = server
        path.send_from_client(packet())
        assert len(server.received) == 1

    def test_responses_travel_back(self):
        clock = VirtualClock()
        tap = PacketTap()
        path = Path(clock, [tap])
        client, server = _Recorder(), _Responder()
        path.client_endpoint = client
        path.server_endpoint = server
        path.send_from_client(packet())
        assert len(client.received) == 1
        assert client.received[0].tcp.payload == b"reply"
        # the tap saw both directions
        directions = {r.direction for r in tap.records}
        assert directions == {Direction.CLIENT_TO_SERVER, Direction.SERVER_TO_CLIENT}

    def test_drop_element_stops_packet(self):
        path = Path(VirtualClock(), [_DropElement()])
        server = _Recorder()
        path.server_endpoint = server
        path.send_from_client(packet())
        assert server.received == []

    def test_inject_back_reaches_client(self):
        path = Path(VirtualClock(), [PacketTap("before"), _InjectBackElement()])
        client, server = _Recorder(), _Recorder()
        path.client_endpoint = client
        path.server_endpoint = server
        path.send_from_client(packet())
        assert len(client.received) == 1
        assert client.received[0].src == "9.9.9.9"
        assert len(server.received) == 1

    def test_element_named(self):
        tap = PacketTap("mytap")
        path = Path(VirtualClock(), [tap])
        assert path.element_named("mytap") is tap
        with pytest.raises(KeyError):
            path.element_named("absent")

    def test_reset_clears_elements(self):
        tap = PacketTap()
        path = Path(VirtualClock(), [tap])
        path.server_endpoint = _Recorder()
        path.send_from_client(packet())
        assert tap.records
        path.reset()
        assert not tap.records

    def test_send_from_server(self):
        path = Path(VirtualClock(), [PacketTap()])
        client = _Recorder()
        path.client_endpoint = client
        path.send_from_server(packet(src="10.0.0.2", dst="10.0.0.1"))
        assert len(client.received) == 1

    def test_response_loop_guard(self):
        class _Echoing:
            def receive(self, pkt):
                return [packet(src=pkt.dst, dst=pkt.src)]

        path = Path(VirtualClock(), [], max_depth=10)
        path.client_endpoint = _Echoing()
        path.server_endpoint = _Echoing()
        with pytest.raises(RuntimeError):
            path.send_from_client(packet())
