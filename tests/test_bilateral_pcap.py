"""Tests for bilateral evasion (§7) and the pcap exporter."""

import pytest

from repro.core.bilateral import (
    BilateralDummyPrefix,
    encoded_wire_trace,
    rotate_payload,
    run_bilateral_dummy_prefix,
    run_bilateral_rotation,
    unrotate_payload,
)
from repro.netsim.element import PacketTap
from repro.replay.session import ReplaySession
from repro.traffic.pcap import read_pcap, tap_to_pcap, write_pcap


class TestRotation:
    def test_roundtrip(self):
        data = bytes(range(256))
        assert unrotate_payload(rotate_payload(data, 42), 42) == data

    def test_changes_every_byte(self):
        data = b"GET / HTTP/1.1"
        assert all(a != b for a, b in zip(data, rotate_payload(data, 7)))

    def test_encoded_wire_trace_rotates_client_only(self, classified_trace):
        wire = encoded_wire_trace(classified_trace, 7)
        assert wire.client_bytes() == rotate_payload(classified_trace.client_bytes(), 7)
        assert wire.server_bytes() == classified_trace.server_bytes()

    def test_key_validated(self, testbed, classified_trace):
        with pytest.raises(ValueError):
            run_bilateral_rotation(testbed, classified_trace, key=0)


class TestBilateralOutcomes:
    def test_rotation_beats_testbed(self, testbed, classified_trace):
        assert run_bilateral_rotation(testbed, classified_trace).evaded

    def test_rotation_beats_iran(self, iran, iran_trace):
        """The per-packet classifier has nothing to match on rotated bytes."""
        assert run_bilateral_rotation(iran, iran_trace).evaded

    def test_rotation_beats_att_proxy(self, att):
        from repro.traffic.video import video_stream_trace

        trace = video_stream_trace(host="video.nbcsports.com", total_bytes=200_000)
        outcome = run_bilateral_rotation(att, trace)
        assert outcome.evaded
        assert outcome.throughput_bps > 5_000_000  # full line rate

    def test_dummy_prefix_beats_gfc(self, gfc, censored_trace):
        assert run_bilateral_dummy_prefix(gfc, censored_trace).evaded

    def test_dummy_prefix_fails_iran(self, iran, iran_trace):
        outcome = run_bilateral_dummy_prefix(iran, iran_trace)
        assert not outcome.evaded

    def test_dummy_prefix_needs_server_support(self, testbed, classified_trace):
        """Without tolerate_prefix, the prefix corrupts the delivered stream."""
        from repro.core.evasion.base import EvasionContext

        session = ReplaySession(testbed, classified_trace, tolerate_prefix=False)
        outcome = session.run(
            technique=BilateralDummyPrefix(), context=EvasionContext(middlebox_hops=0)
        )
        assert not outcome.delivered_ok

    def test_prefix_validated(self):
        with pytest.raises(ValueError):
            BilateralDummyPrefix(b"")


class TestPcap:
    def test_write_read_roundtrip(self, tmp_path):
        records = [(0.5, b"\x45" + bytes(39)), (1.25, bytes(60))]
        target = tmp_path / "capture.pcap"
        assert write_pcap(target, records) == 2
        restored = read_pcap(target)
        assert len(restored) == 2
        assert restored[0][0] == pytest.approx(0.5)
        assert restored[0][1] == records[0][1]
        assert restored[1][1] == records[1][1]

    def test_empty_capture(self, tmp_path):
        target = tmp_path / "empty.pcap"
        write_pcap(target, [])
        assert read_pcap(target) == []

    def test_rejects_garbage(self, tmp_path):
        target = tmp_path / "bad.pcap"
        target.write_bytes(b"\x00" * 30)
        with pytest.raises(ValueError):
            read_pcap(target)

    def test_tap_capture_of_real_session(self, tmp_path, testbed, neutral_trace):
        tap = PacketTap("capture-tap")
        testbed.path.elements.insert(0, tap)
        try:
            ReplaySession(testbed, neutral_trace).run()
        finally:
            testbed.path.elements.remove(tap)
        target = tmp_path / "session.pcap"
        count = tap_to_pcap(tap, target)
        assert count > 4  # handshake + data both ways
        restored = read_pcap(target)
        assert len(restored) == count
        # Parse one captured packet back into our own packet type.
        from repro.packets.ip import IPPacket

        parsed = IPPacket.from_bytes(restored[0][1])
        assert parsed.src == testbed.client_addr

    def test_timestamps_preserve_order(self, tmp_path):
        records = [(float(i) * 0.001, bytes(20)) for i in range(50)]
        target = tmp_path / "ordered.pcap"
        write_pcap(target, records)
        times = [t for t, _raw in read_pcap(target)]
        assert times == sorted(times)
