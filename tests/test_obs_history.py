"""Benchmark-regression watchdog tests: history bookkeeping + flagging.

Acceptance: an injected 30% slowdown in a synthetic history is flagged,
and the real committed history + BENCH payloads pass clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import history as obs_history

pytestmark = pytest.mark.obs

REPO_ROOT = Path(__file__).parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


def _write_bench(directory: Path, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{payload['name']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def synthetic(tmp_path):
    """A history of three clean 1-second runs plus a results dir to mutate."""
    history = tmp_path / "BENCH_history.jsonl"
    obs_history.append_entries(
        history,
        [{"name": "synthetic", "seconds": s, "rounds": 10} for s in (1.0, 1.02, 0.98)],
    )
    results = tmp_path / "results"
    return history, results


class TestEntries:
    def test_entry_strips_profile_and_keeps_metrics(self):
        payload = {"name": "x", "seconds": 1.5, "rounds": 3, "profile": {"stage": {}}}
        entry = obs_history.entry_from_bench(payload)
        assert entry == {"name": "x", "seconds": 1.5, "rounds": 3}

    def test_entry_records_timestamp_when_given(self):
        entry = obs_history.entry_from_bench({"name": "x"}, timestamp=123.4567)
        assert entry["ts"] == 123.457

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        obs_history.append_entries(path, [{"name": "a", "seconds": 1.0}])
        obs_history.append_entries(path, [{"name": "b", "seconds": 2.0}, {"name": "a", "seconds": 1.1}])
        history = obs_history.load_history(path)
        assert [e["seconds"] for e in history["a"]] == [1.0, 1.1]
        assert [e["seconds"] for e in history["b"]] == [2.0]

    def test_rolling_window_trims_oldest(self, tmp_path):
        path = tmp_path / "h.jsonl"
        entries = [{"name": "a", "seconds": float(i)} for i in range(7)]
        obs_history.append_entries(path, entries, window=3)
        history = obs_history.load_history(path)
        assert [e["seconds"] for e in history["a"]] == [4.0, 5.0, 6.0]

    def test_load_missing_history_is_empty(self, tmp_path):
        assert obs_history.load_history(tmp_path / "nope.jsonl") == {}

    def test_collect_excludes_baseline_and_history(self, tmp_path):
        _write_bench(tmp_path, {"name": "real", "seconds": 1.0})
        (tmp_path / "BENCH_baseline.json").write_text('{"benchmarks": {}}')
        (tmp_path / "BENCH_history.jsonl").write_text("")
        assert sorted(obs_history.collect_bench_payloads(tmp_path)) == ["real"]


class TestRegressionChecks:
    def test_thirty_percent_slowdown_is_flagged(self, synthetic):
        history_path, results = synthetic
        _write_bench(results, {"name": "synthetic", "seconds": 1.30, "rounds": 10})
        flags = obs_history.check_regressions(
            obs_history.load_history(history_path),
            obs_history.collect_bench_payloads(results),
        )
        assert len(flags) == 1
        flag = flags[0]
        assert flag.bench == "synthetic"
        assert flag.key == "seconds"
        assert flag.ratio == pytest.approx(1.30)
        assert "median" in flag.message

    def test_within_noise_band_passes(self, synthetic):
        history_path, results = synthetic
        _write_bench(results, {"name": "synthetic", "seconds": 1.20, "rounds": 10})
        flags = obs_history.check_regressions(
            obs_history.load_history(history_path),
            obs_history.collect_bench_payloads(results),
        )
        assert flags == []

    def test_deterministic_key_change_is_flagged(self, synthetic):
        history_path, results = synthetic
        _write_bench(results, {"name": "synthetic", "seconds": 1.0, "rounds": 11})
        flags = obs_history.check_regressions(
            obs_history.load_history(history_path),
            obs_history.collect_bench_payloads(results),
        )
        assert [flag.key for flag in flags] == ["rounds"]
        assert flags[0].baseline == 10
        assert flags[0].current == 11

    def test_throughput_drop_is_flagged(self, tmp_path):
        history_path = tmp_path / "BENCH_history.jsonl"
        obs_history.append_entries(
            history_path,
            [
                {"name": "tput", "seconds": 1.0, "packets_per_second": pps}
                for pps in (10_000.0, 10_200.0, 9_800.0)
            ],
        )
        results = tmp_path / "results"
        # 7000 pkt/s is below median/1.25 = 8000: a >25% throughput drop.
        # Seconds are unchanged, so only the normalized check can see it
        # (the workload shrank along with the throughput).
        _write_bench(results, {"name": "tput", "seconds": 1.0, "packets_per_second": 7_000.0})
        flags = obs_history.check_regressions(
            obs_history.load_history(history_path),
            obs_history.collect_bench_payloads(results),
        )
        assert [flag.key for flag in flags] == ["packets_per_second"]
        assert flags[0].ratio == pytest.approx(0.7)
        assert "pkt/s" in flags[0].message

    def test_throughput_within_band_or_gained_passes(self, tmp_path):
        history_path = tmp_path / "BENCH_history.jsonl"
        obs_history.append_entries(
            history_path,
            [{"name": "tput", "seconds": 1.0, "packets_per_second": 10_000.0}],
        )
        history = obs_history.load_history(history_path)
        results = tmp_path / "results"
        for pps in (8_500.0, 10_000.0, 50_000.0):  # small dip, flat, speedup
            _write_bench(results, {"name": "tput", "seconds": 1.0, "packets_per_second": pps})
            current = obs_history.collect_bench_payloads(results)
            assert obs_history.check_regressions(history, current) == []

    def test_unrecorded_benchmark_is_skipped(self, tmp_path):
        _write_bench(tmp_path, {"name": "brand-new", "seconds": 99.0})
        assert obs_history.check_regressions({}, obs_history.collect_bench_payloads(tmp_path)) == []

    def test_custom_threshold(self, synthetic):
        history_path, results = synthetic
        _write_bench(results, {"name": "synthetic", "seconds": 1.30, "rounds": 10})
        flags = obs_history.check_regressions(
            obs_history.load_history(history_path),
            obs_history.collect_bench_payloads(results),
            threshold=0.5,
        )
        assert flags == []

    def test_real_committed_history_passes(self):
        # The committed BENCH payloads must be clean against the committed
        # rolling history (generous threshold: CI machines vary).
        history = obs_history.load_history(RESULTS_DIR / "BENCH_history.jsonl")
        current = obs_history.collect_bench_payloads(RESULTS_DIR)
        assert history, "committed BENCH_history.jsonl must not be empty"
        flags = obs_history.check_regressions(history, current, threshold=2.0)
        assert flags == [], obs_history.format_flags(flags)


class TestRunWatch:
    def test_flagged_run_exits_one(self, synthetic, capsys):
        history_path, results = synthetic
        _write_bench(results, {"name": "synthetic", "seconds": 1.30, "rounds": 10})
        code = obs_history.run_watch(results, history_path=history_path)
        assert code == 1
        assert "1 regression(s) flagged" in capsys.readouterr().out

    def test_clean_run_exits_zero_and_appends(self, synthetic, capsys):
        history_path, results = synthetic
        _write_bench(results, {"name": "synthetic", "seconds": 1.0, "rounds": 10})
        code = obs_history.run_watch(
            results, history_path=history_path, append=True, timestamp=1000.0
        )
        assert code == 0
        recorded = obs_history.load_history(history_path)["synthetic"]
        assert len(recorded) == 4
        assert recorded[-1]["ts"] == 1000.0

    def test_missing_requested_bench_exits_two(self, synthetic, capsys):
        history_path, results = synthetic
        results.mkdir(parents=True, exist_ok=True)
        code = obs_history.run_watch(results, history_path=history_path, benches=["ghost"])
        assert code == 2
        assert "ghost" in capsys.readouterr().err

    def test_json_output_is_parseable(self, synthetic, capsys):
        history_path, results = synthetic
        _write_bench(results, {"name": "synthetic", "seconds": 1.30, "rounds": 10})
        code = obs_history.run_watch(results, history_path=history_path, json_output=True)
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["checked"] == ["synthetic"]
        assert payload["flags"][0]["key"] == "seconds"

    def test_watchdog_script_wraps_run_watch(self, synthetic, capsys):
        import benchmarks.watchdog as watchdog

        history_path, results = synthetic
        _write_bench(results, {"name": "synthetic", "seconds": 1.30, "rounds": 10})
        code = watchdog.main(
            ["--results-dir", str(results), "--history", str(history_path)]
        )
        assert code == 1


class TestPeakRSSChecks:
    @pytest.fixture
    def rss_history(self, tmp_path):
        """Three runs at a steady ~40 MB peak RSS."""
        history = tmp_path / "BENCH_history.jsonl"
        obs_history.append_entries(
            history,
            [
                {"name": "scale", "seconds": 1.0, "peak_rss_kb": rss}
                for rss in (40_000, 41_000, 40_500)
            ],
        )
        return history, tmp_path / "results"

    def test_rss_jump_is_flagged(self, rss_history):
        history_path, results = rss_history
        _write_bench(results, {"name": "scale", "seconds": 1.0, "peak_rss_kb": 55_000})
        flags = obs_history.check_regressions(
            obs_history.load_history(history_path),
            obs_history.collect_bench_payloads(results),
        )
        assert [flag.key for flag in flags] == ["peak_rss_kb"]
        assert flags[0].ratio == pytest.approx(55_000 / 40_500, abs=1e-3)
        assert "peak RSS" in flags[0].message

    def test_rss_within_band_passes(self, rss_history):
        history_path, results = rss_history
        # +23% is inside the 25% band (allocator variance, not a leak).
        _write_bench(results, {"name": "scale", "seconds": 1.0, "peak_rss_kb": 49_800})
        flags = obs_history.check_regressions(
            obs_history.load_history(history_path),
            obs_history.collect_bench_payloads(results),
        )
        assert flags == []

    def test_rss_band_is_independent_of_the_timing_threshold(self, rss_history):
        # A generous wall-clock threshold must not loosen the memory band.
        history_path, results = rss_history
        _write_bench(results, {"name": "scale", "seconds": 1.0, "peak_rss_kb": 80_000})
        flags = obs_history.check_regressions(
            obs_history.load_history(history_path),
            obs_history.collect_bench_payloads(results),
            threshold=5.0,
        )
        assert [flag.key for flag in flags] == ["peak_rss_kb"]

    def test_history_without_rss_skips_the_check(self, synthetic):
        history_path, results = synthetic
        _write_bench(
            results,
            {"name": "synthetic", "seconds": 1.0, "rounds": 10, "peak_rss_kb": 99_999},
        )
        flags = obs_history.check_regressions(
            obs_history.load_history(history_path),
            obs_history.collect_bench_payloads(results),
        )
        assert flags == []

    def test_churn_counters_are_deterministic_keys(self, tmp_path):
        history_path = tmp_path / "BENCH_history.jsonl"
        obs_history.append_entries(
            history_path,
            [{"name": "scale", "seconds": 1.0, "evictions": 91_808, "sheds": 0}],
        )
        results = tmp_path / "results"
        _write_bench(
            results, {"name": "scale", "seconds": 1.0, "evictions": 91_809, "sheds": 5}
        )
        flags = obs_history.check_regressions(
            obs_history.load_history(history_path),
            obs_history.collect_bench_payloads(results),
        )
        assert sorted(flag.key for flag in flags) == ["evictions", "sheds"]

    def test_watchdog_reports_rss_flag(self, rss_history, capsys):
        history_path, results = rss_history
        _write_bench(results, {"name": "scale", "seconds": 1.0, "peak_rss_kb": 60_000})
        code = obs_history.run_watch(results, history_path=history_path, json_output=True)
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["flags"][0]["key"] == "peak_rss_kb"
