"""Tests for the ``liberate`` command-line interface."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("envs", "run", "detect", "characterize", "table1", "figure4"):
            args = parser.parse_args([command] if command != "trace" else [command, "--out", "x"])
            assert callable(args.func)


class TestCommands:
    def test_envs(self, capsys):
        assert main(["envs"]) == 0
        out = capsys.readouterr().out
        for name in ("testbed", "tmobile", "gfc", "iran", "att", "sprint"):
            assert name in out

    def test_detect_differentiated(self, capsys):
        code = main(["detect", "--env", "testbed", "--host", "video.example.com"])
        assert code == 0
        assert "content-based" in capsys.readouterr().out

    def test_detect_clean_exits_nonzero(self):
        assert main(["detect", "--env", "sprint", "--host", "whatever.org"]) == 1

    def test_characterize(self, capsys):
        code = main(["characterize", "--env", "iran", "--host", "facebook.com"])
        assert code == 0
        out = capsys.readouterr().out
        assert "facebook.com" in out
        assert "rounds=" in out

    def test_characterize_clean_fails(self, capsys):
        code = main(["characterize", "--env", "sprint", "--host", "nothing.org"])
        assert code == 1

    def test_run_fast(self, capsys):
        code = main(["run", "--env", "testbed", "--host", "video.example.com", "--fast"])
        assert code == 0
        assert "deployed:" in capsys.readouterr().out

    def test_run_verbose_lists_techniques(self, capsys):
        main(["run", "--env", "iran", "--host", "facebook.com", "--verbose"])
        out = capsys.readouterr().out
        assert "tcp-segment-split" in out or "tcp-segment-reorder" in out

    def test_unknown_env_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "--env", "nonexistent"])

    def test_trace_save_and_reuse(self, tmp_path, capsys):
        target = tmp_path / "t.json"
        assert main(["trace", "--host", "economist.com", "--out", str(target)]) == 0
        assert target.exists()
        code = main(["detect", "--env", "gfc", "--trace", str(target)])
        assert code == 0

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "liberate" in capsys.readouterr().out

    def test_figure4_small(self, capsys):
        assert main(["figure4", "--trials", "1"]) == 0
        assert "hour" in capsys.readouterr().out

    def test_bilateral(self, capsys):
        assert main(["bilateral"]) == 0
        out = capsys.readouterr().out
        assert "dummy prefix" in out and "rotation" in out

    def test_countermeasures(self, capsys):
        assert main(["countermeasures"]) == 0
        out = capsys.readouterr().out
        assert "normalized" in out and "survivors" in out
