"""Event-core vs. legacy driver: byte-identical or the refactor is wrong.

The event scheduler replaced the nested-call propagation engine; its safety
bar is exact equivalence.  These tests run the same work twice — once on
the legacy direct-call driver, once with the scheduler bound (and, at the
pipeline level, once per worker-pool backend) — and require *byte-identical*
observables: endpoint payloads, trace JSONL, metrics snapshots, telemetry
``events.jsonl`` and the propagation counter.  Any divergence is a bug in
the event core, not an acceptable behaviour change.

The hypothesis mixes cover the hard cases on one path: fragments held
across sends, seeded faults (loss/duplication/reordering/corruption),
retransmits, and reassembly flush timers driven by clock advances.
"""

import io
import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.evasion import ALL_TECHNIQUES
from repro.experiments.table3 import run_table3
from repro.netsim.clock import VirtualClock
from repro.netsim.element import PacketTap
from repro.netsim.faults import FaultElement, chaos_profile, lossy_profile
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path, packets_propagated
from repro.netsim.reassembler import FragmentReassembler
from repro.netsim.scheduler import EventScheduler, use_event_core
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.packets.fragment import fragment_packet
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPSegment
from repro.runtime import WorkerPool

settings_kwargs = dict(
    deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow]
)

# One op per element: payload sends, fragment trains, retransmits of the
# previous packet, server pushes, and virtual-time advances (flush timers).
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("payload"), st.integers(1, 300)),
        st.tuples(st.just("fragments"), st.integers(30, 300)),
        st.tuples(st.just("retransmit"), st.just(0)),
        st.tuples(st.just("server_push"), st.integers(1, 120)),
        st.tuples(st.just("advance"), st.integers(0, 20)),
    ),
    min_size=1,
    max_size=30,
)

FAULT_PROFILES = {"clean": None, "lossy": lossy_profile, "chaos": chaos_profile}


class _AckingServer:
    """Server endpoint: records payloads, acks every other packet."""

    def __init__(self):
        self.received: list[bytes] = []

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        self.received.append(packet.payload_bytes)
        if len(self.received) % 2 == 0:
            return []
        return [
            IPPacket(
                src=packet.dst,
                dst=packet.src,
                transport=TCPSegment(sport=80, dport=packet.tcp.sport, payload=b"ack"),
            )
        ]


class _RecordingClient:
    def __init__(self):
        self.received: list[bytes] = []

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        self.received.append(packet.payload_bytes)
        return []


def _packet(seq: int, size: int, sport: int = 4000) -> IPPacket:
    body = bytes((seq + i) % 251 for i in range(size))
    return IPPacket(
        src="10.0.0.1",
        dst="10.0.0.2",
        transport=TCPSegment(sport=sport, dport=80, payload=body),
        identification=0x3000 + seq,
    )


def run_mix(ops, fault: str, event_core: bool) -> dict:
    """Run one flow mix; return every observable as comparable bytes/values."""
    clock = VirtualClock()
    tap = PacketTap()
    profile = FAULT_PROFILES[fault]
    elements = [RouterHop("r1"), RouterHop("r2")]
    if profile is not None:
        elements.append(FaultElement(profile(seed=7)))
    elements += [FragmentReassembler(timeout=0.5), tap]
    scheduler = EventScheduler(clock) if event_core else None
    path = Path(clock, elements, scheduler=scheduler)
    server, client = _AckingServer(), _RecordingClient()
    path.server_endpoint = server
    path.client_endpoint = client

    before = packets_propagated()
    with obs_trace.tracing() as tracer:
        last: IPPacket | None = None
        for seq, (op, arg) in enumerate(ops):
            if op == "payload":
                last = _packet(seq, arg)
                path.send_from_client(last)
            elif op == "fragments":
                whole = _packet(seq, arg)
                for fragment in fragment_packet(whole, 32):
                    path.send_from_client(fragment)
                last = whole
            elif op == "retransmit" and last is not None:
                path.send_from_client(last)
            elif op == "server_push":
                path.send_from_server(
                    IPPacket(
                        src="10.0.0.2",
                        dst="10.0.0.1",
                        transport=TCPSegment(sport=80, dport=4000, payload=b"p" * arg),
                    )
                )
            elif op == "advance":
                clock.advance(arg / 10.0)
    return {
        "server": server.received,
        "client": client.received,
        "tap": [(r.time, r.direction.value, r.packet.to_bytes()) for r in tap.records],
        "trace": "\n".join(e.to_json() for e in tracer.events()),
        "propagated": packets_propagated() - before,
        "clock": clock.now,
    }


class TestFlowMixes:
    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_clean_path_mixes_are_byte_identical(self, ops):
        assert run_mix(ops, "clean", False) == run_mix(ops, "clean", True)

    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_lossy_path_mixes_are_byte_identical(self, ops):
        assert run_mix(ops, "lossy", False) == run_mix(ops, "lossy", True)

    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_chaos_path_mixes_are_byte_identical(self, ops):
        assert run_mix(ops, "chaos", False) == run_mix(ops, "chaos", True)


# ----------------------------------------------------------------------
# pipeline level: verdicts + trace + metrics + telemetry, across backends
# ----------------------------------------------------------------------
_TECH_NAMES = ("tcp-segment-split", "tcp-invalid-data-offset")


def run_cells(event_core: bool, backend: str) -> dict:
    """One table3 column under full observability, as comparable strings."""
    techniques = tuple(t for t in ALL_TECHNIQUES if t.name in _TECH_NAMES)
    pool = WorkerPool(backend)
    switch = use_event_core() if event_core else None
    if switch is not None:
        switch.__enter__()
    try:
        with obs_trace.tracing() as tracer, obs_metrics.collecting() as registry, obs_live.bus_on() as bus:
            rows = run_table3(
                env_names=("testbed",),
                techniques=techniques,
                include_os_matrix=False,
                characterize=False,
                pool=pool,
            )
            events = io.StringIO()
            bus.export_jsonl(events)
    finally:
        if switch is not None:
            switch.__exit__(None, None, None)
    # mbx.automaton.* / mbx.rulecache.* are per-process memoized-build facts
    # (which worker compiles what depends on scheduling and cache warmth),
    # excluded from the cross-backend identity contract exactly as in
    # tests/test_obs_live.py.
    snapshot = {
        k: v
        for k, v in registry.snapshot().items()
        if not k.startswith(("mbx.automaton.", "mbx.rulecache."))
    }
    return {
        "verdicts": json.dumps(rows, sort_keys=True, default=str),
        "trace": "\n".join(e.to_json() for e in tracer.events()),
        "metrics": json.dumps(snapshot, sort_keys=True, default=str),
        "events": events.getvalue(),
    }


class TestPipelineEquivalence:
    def test_serial_event_core_matches_legacy(self):
        assert run_cells(False, "serial") == run_cells(True, "serial")

    def test_thread_event_core_matches_legacy(self):
        assert run_cells(False, "serial") == run_cells(True, "thread")

    def test_process_event_core_matches_legacy(self):
        assert run_cells(False, "serial") == run_cells(True, "process")


# ----------------------------------------------------------------------
# deferred (event-native) API sanity on top of the equivalence bar
# ----------------------------------------------------------------------
class TestDeferredDriver:
    def test_scheduled_frames_interleave_in_deadline_order(self):
        class _Journal:
            def __init__(self):
                self.flows = []

            def receive(self, pkt):
                self.flows.append((pkt.tcp.sport, pkt.tcp.payload[0]))
                return []

        clock = VirtualClock()
        path = Path(clock, [PacketTap()], scheduler=EventScheduler(clock))
        journal = _Journal()
        path.server_endpoint = journal
        # Flow A at t=0.00/0.02, flow B at t=0.01/0.03: strict alternation.
        path.schedule_from_client(_packet(0, 10, sport=1111), at=0.00)
        path.schedule_from_client(_packet(1, 10, sport=1111), at=0.02)
        path.schedule_from_client(_packet(2, 10, sport=2222), at=0.01)
        path.schedule_from_client(_packet(3, 10, sport=2222), at=0.03)
        assert path.run() == 4
        assert journal.flows == [(1111, 0), (2222, 2), (1111, 1), (2222, 3)]
        assert clock.now == 0.03

    def test_scheduled_frame_can_be_cancelled(self):
        clock = VirtualClock()
        path = Path(clock, [], scheduler=EventScheduler(clock))
        server = _RecordingClient()
        path.server_endpoint = server
        keep = path.schedule_from_client(_packet(0, 4), delay=0.1)
        drop = path.schedule_from_client(_packet(1, 4), delay=0.2)
        assert path.scheduler.cancel(drop)
        path.run()
        assert len(server.received) == 1

    def test_reassembler_native_timer_expires_without_a_probe_packet(self):
        # In deferred mode nothing may ever poke the reassembler again; the
        # scheduler-armed timer must expire the partial datagram on its own.
        clock = VirtualClock()
        reassembler = FragmentReassembler(timeout=0.5)
        path = Path(clock, [reassembler], scheduler=EventScheduler(clock, arm_timeouts=True))
        server = _RecordingClient()
        path.server_endpoint = server
        first, *_rest = fragment_packet(_packet(0, 120), 32)
        path.send_from_client(first)  # incomplete: held
        assert reassembler.expired_count == 0
        path.scheduler.advance(1.0)
        assert reassembler.expired_count == 1
        assert server.received == []

    def test_reassembler_native_timer_cancelled_on_completion(self):
        clock = VirtualClock()
        reassembler = FragmentReassembler(timeout=0.5)
        path = Path(clock, [reassembler], scheduler=EventScheduler(clock, arm_timeouts=True))
        server = _RecordingClient()
        path.server_endpoint = server
        for fragment in fragment_packet(_packet(0, 120), 32):
            path.send_from_client(fragment)
        assert len(server.received) == 1  # reassembled and delivered
        path.scheduler.advance(2.0)
        assert reassembler.expired_count == 0  # timer was disarmed
        assert path.scheduler.pending == 0
