"""EventScheduler: the deterministic event core, checked against an oracle.

The scheduler's contract is "fire exactly what a brute-force scan over
pending events would, in (deadline, seq) order, never moving the clock
backwards".  The property tests drive random schedule/cancel/advance
sequences through the scheduler and a sorted-list reference (the same
pattern as ``tests/test_timerwheel.py``); the edge tests pin the
zero-delay guarantee — a zero-delay event fires in the drain already in
progress, and ``advance(0)`` drains everything due *now* instead of
parking it for the next tick (the regression the timer wheel is also held
to below).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netsim.clock import VirtualClock
from repro.netsim.scheduler import EventScheduler, event_core_enabled, use_event_core
from repro.netsim.timerwheel import TimerWheel

settings_kwargs = dict(
    deadline=None, max_examples=60, suppress_health_check=[HealthCheck.too_slow]
)

# (kind, a): schedule at now + a/10 (negative = in the past), cancel the
# a-th live event, or advance the clock by a/10.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.integers(-10, 600)),
        st.tuples(st.just("cancel"), st.integers(0, 30)),
        st.tuples(st.just("advance"), st.integers(0, 90)),
    ),
    max_size=60,
)


def run_differential(ops):
    """Replay *ops* on a scheduler and a brute-force pending dict."""
    clock = VirtualClock()
    scheduler = EventScheduler(clock)
    fired: list[int] = []
    pending: dict[int, float] = {}  # payload (doubles as seq) -> deadline
    ids: dict[int, int] = {}
    seq = 0
    for op, arg in ops:
        if op == "schedule":
            deadline = clock.now + arg / 10.0
            ids[seq] = scheduler.at(deadline, fired.append, seq)
            pending[seq] = deadline
            seq += 1
        elif op == "cancel":
            live = sorted(pending)
            if live:
                victim = live[arg % len(live)]
                assert scheduler.cancel(ids[victim]) is True
                assert scheduler.cancel(ids[victim]) is False
                del pending[victim]
        else:
            target = clock.now + arg / 10.0
            fired.clear()
            scheduler.advance(arg / 10.0)
            expect = [
                p
                for p, d in sorted(pending.items(), key=lambda kv: (kv[1], kv[0]))
                if d <= target
            ]
            assert fired == expect
            assert clock.now == target  # lands exactly, even past the last event
            for payload in expect:
                del pending[payload]
        assert scheduler.pending == len(pending)
    return scheduler, pending, fired


class TestAgainstBruteForce:
    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_fires_exactly_the_due_set_in_deadline_seq_order(self, ops):
        run_differential(ops)

    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_no_event_loss(self, ops):
        scheduler, pending, _fired = run_differential(ops)
        assert scheduler.scheduled == scheduler.fired + scheduler.cancelled + len(pending)

    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_run_until_idle_drains_survivors_in_order(self, ops):
        scheduler, pending, fired = run_differential(ops)
        fired.clear()
        scheduler.run_until_idle()
        expected = [
            p for p, _d in sorted(pending.items(), key=lambda kv: (kv[1], kv[0]))
        ]
        assert fired == expected
        assert scheduler.pending == 0

    @settings(**settings_kwargs)
    @given(ops=OPS)
    def test_clock_is_monotone_through_any_drain(self, ops):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        observed: list[float] = []
        for op, arg in ops:
            if op == "schedule":
                scheduler.at(clock.now + arg / 10.0, lambda: observed.append(clock.now))
            elif op == "advance":
                scheduler.advance(arg / 10.0)
        scheduler.run_until_idle()
        assert observed == sorted(observed)


class TestZeroDelay:
    """The fix for "advance(0) accepted but zero-delay fires next tick"."""

    def test_advance_zero_drains_due_now(self):
        clock = VirtualClock(start=5.0)
        scheduler = EventScheduler(clock)
        fired = []
        scheduler.post(fired.append, "now")
        assert scheduler.advance(0) == 1
        assert fired == ["now"]
        assert clock.now == 5.0

    def test_zero_delay_from_inside_a_handler_fires_in_the_same_drain(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        fired = []

        def outer():
            fired.append("outer")
            scheduler.post(lambda: fired.append("inner"))

        scheduler.post(outer)
        assert scheduler.run(until=scheduler.now) == 2
        assert fired == ["outer", "inner"]

    def test_call_later_zero_equals_post(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        fired = []
        scheduler.call_later(0.0, fired.append, "a")
        scheduler.post(fired.append, "b")
        scheduler.advance(0)
        assert fired == ["a", "b"]  # FIFO at the same deadline

    def test_timerwheel_zero_delay_timer_fires_in_the_same_drain(self):
        # Regression: a timer armed exactly at the wheel's current time must
        # fire on a zero advance, not wait overdue for the next tick.
        wheel = TimerWheel(tick=0.5, slots=4, levels=1, start=10.0)
        wheel.schedule(10.0, "due-now")
        assert wheel.advance(10.0) == ["due-now"]

    def test_timerwheel_zero_advance_after_schedule_mixed_deadlines(self):
        wheel = TimerWheel(tick=0.5, slots=4, levels=1, start=3.0)
        wheel.schedule(3.0, "now")
        wheel.schedule(3.5, "later")
        assert wheel.advance(3.0) == ["now"]
        assert wheel.pending == 1
        assert wheel.advance(3.5) == ["later"]

    def test_virtualclock_accepts_zero_advance(self):
        clock = VirtualClock(start=2.0)
        clock.advance(0)
        assert clock.now == 2.0


class TestEdgeSemantics:
    def test_past_deadline_fires_without_rewinding_the_clock(self):
        clock = VirtualClock(start=10.0)
        scheduler = EventScheduler(clock)
        stamps = []
        scheduler.at(3.0, lambda: stamps.append(clock.now))
        scheduler.run_until_idle()
        assert stamps == [10.0]

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler(VirtualClock())
        with pytest.raises(ValueError):
            scheduler.call_later(-0.1, lambda: None)

    def test_negative_advance_rejected(self):
        scheduler = EventScheduler(VirtualClock())
        with pytest.raises(ValueError):
            scheduler.advance(-1.0)

    def test_same_deadline_fires_in_schedule_order(self):
        scheduler = EventScheduler(VirtualClock())
        fired = []
        for name in ("first", "second", "third"):
            scheduler.at(1.0, fired.append, name)
        scheduler.run_until_idle()
        assert fired == ["first", "second", "third"]

    def test_cancel_and_rearm(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        fired = []
        stale = scheduler.at(1.0, fired.append, "stale")
        assert scheduler.cancel(stale) is True
        rearmed = scheduler.at(2.0, fired.append, "rearmed")
        scheduler.run_until_idle()
        assert fired == ["rearmed"]
        assert clock.now == 2.0
        assert scheduler.cancel(rearmed) is False  # already fired

    def test_next_deadline_skips_tombstones(self):
        scheduler = EventScheduler(VirtualClock())
        first = scheduler.at(1.0, lambda: None)
        scheduler.at(2.0, lambda: None)
        scheduler.cancel(first)
        assert scheduler.next_deadline() == 2.0

    def test_step_fires_one_event(self):
        scheduler = EventScheduler(VirtualClock())
        fired = []
        scheduler.at(1.0, fired.append, "a")
        scheduler.at(2.0, fired.append, "b")
        assert scheduler.step() is True
        assert fired == ["a"]
        assert scheduler.step() is True
        assert scheduler.step() is False

    def test_run_limit_bounds_self_posting_loops(self):
        scheduler = EventScheduler(VirtualClock())

        def reproduce():
            scheduler.post(reproduce)

        scheduler.post(reproduce)
        assert scheduler.run(limit=25) == 25
        assert scheduler.pending == 1  # the next generation survives

    def test_reentrant_run_is_a_noop(self):
        scheduler = EventScheduler(VirtualClock())
        inner_counts = []

        def handler():
            inner_counts.append(scheduler.run())

        scheduler.post(handler)
        assert scheduler.run() == 1
        assert inner_counts == [0]

    def test_run_until_is_inclusive(self):
        scheduler = EventScheduler(VirtualClock())
        fired = []
        scheduler.at(1.0, fired.append, "at-horizon")
        scheduler.at(1.0000001, fired.append, "beyond")
        assert scheduler.run(until=1.0) == 1
        assert fired == ["at-horizon"]

    def test_stats_counters(self):
        scheduler = EventScheduler(VirtualClock())
        a = scheduler.at(1.0, lambda: None)
        scheduler.at(2.0, lambda: None)
        scheduler.cancel(a)
        scheduler.run_until_idle()
        assert (scheduler.scheduled, scheduler.fired, scheduler.cancelled) == (2, 1, 1)
        assert scheduler.max_pending == 2


class TestEventCoreSwitch:
    def test_context_manager_sets_and_restores(self):
        import os

        baseline = event_core_enabled()
        with use_event_core():
            assert event_core_enabled() is True
            assert os.environ.get("REPRO_EVENT_CORE") == "1"
        assert event_core_enabled() is baseline

    def test_disable_inside_enable(self):
        with use_event_core():
            with use_event_core(enabled=False):
                assert event_core_enabled() is False
            assert event_core_enabled() is True

    def test_paths_bind_a_scheduler_under_the_switch(self):
        from repro.netsim.path import Path

        with use_event_core():
            path = Path(VirtualClock(), [])
            assert path.scheduler is not None
        assert Path(VirtualClock(), []).scheduler is None
