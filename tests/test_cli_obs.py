"""CLI tests for the observability flags (``--trace``/``--metrics``/``--profile``)."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.obs import metrics as obs_metrics
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace

pytestmark = pytest.mark.obs


class TestObsFlags:
    def test_table3_trace_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "cell.jsonl"
        code = main(
            [
                "table3",
                "--fast",
                "--envs",
                "testbed",
                "--trace",
                "--trace-out",
                str(out),
            ]
        )
        assert code == 0
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "trace.header"
        assert header["schema"] == obs_trace.TRACE_SCHEMA_VERSION
        assert header["events"] == len(lines) - 1 > 0
        kinds = {json.loads(line)["kind"] for line in lines[1:]}
        assert "mbx.rule_match" in kinds
        assert "table3.cell" in kinds

    def test_table3_trace_out_dash_prints_to_stdout(self, capsys):
        code = main(["table3", "--fast", "--envs", "sprint", "--trace-out", "-"])
        assert code == 0
        out = capsys.readouterr().out
        assert '"kind":"trace.header"' in out

    def test_metrics_flag_prints_snapshot(self, capsys):
        code = main(["table3", "--fast", "--envs", "testbed", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mbx.rule_matches" in out
        assert "netsim.packets.propagated" in out

    def test_profile_flag_prints_stage_table(self, capsys):
        code = main(["table3", "--fast", "--envs", "sprint", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "table3.columns" in out
        assert "env.build.sprint" in out

    def test_run_uses_flow_trace_spelling(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        code = main(
            [
                "run",
                "--env",
                "testbed",
                "--host",
                "video.example.com",
                "--fast",
                "--flow-trace",
                "--trace-out",
                str(out),
            ]
        )
        assert code == 0
        kinds = {json.loads(line)["kind"] for line in out.read_text().splitlines()}
        assert "pipeline.phase" in kinds

    def test_obs_state_restored_after_command(self, tmp_path):
        main(
            [
                "table3",
                "--fast",
                "--envs",
                "sprint",
                "--trace",
                "--trace-out",
                str(tmp_path / "t.jsonl"),
                "--metrics",
                "--profile",
            ]
        )
        assert obs_trace.TRACER is None
        assert obs_metrics.METRICS is None
        assert obs_profiling.PROFILER is None

    def test_envs_subset_limits_columns(self, capsys):
        code = main(["table3", "--fast", "--envs", "testbed,gfc"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper agreement" in out
