"""CLI tests for the observability flags and the ``obs`` subcommand group."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli.main import main
from repro.obs import metrics as obs_metrics
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace

pytestmark = pytest.mark.obs

GOLDEN = Path(__file__).parent / "golden"
NEUTRAL = str(GOLDEN / "neutral_cell.jsonl")
THROTTLED = str(GOLDEN / "testbed_throttle_cell.jsonl")


class TestObsFlags:
    def test_table3_trace_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "cell.jsonl"
        code = main(
            [
                "table3",
                "--fast",
                "--envs",
                "testbed",
                "--trace",
                "--trace-out",
                str(out),
            ]
        )
        assert code == 0
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "trace.header"
        assert header["schema"] == obs_trace.TRACE_SCHEMA_VERSION
        assert header["events"] == len(lines) - 1 > 0
        kinds = {json.loads(line)["kind"] for line in lines[1:]}
        assert "mbx.rule_match" in kinds
        assert "table3.cell" in kinds

    def test_table3_trace_out_dash_prints_to_stdout(self, capsys):
        code = main(["table3", "--fast", "--envs", "sprint", "--trace-out", "-"])
        assert code == 0
        out = capsys.readouterr().out
        assert '"kind":"trace.header"' in out

    def test_metrics_flag_prints_snapshot(self, capsys):
        code = main(["table3", "--fast", "--envs", "testbed", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mbx.rule_matches" in out
        assert "netsim.packets.propagated" in out

    def test_profile_flag_prints_stage_table(self, capsys):
        code = main(["table3", "--fast", "--envs", "sprint", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "table3.columns" in out
        assert "env.build.sprint" in out

    def test_run_uses_flow_trace_spelling(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        code = main(
            [
                "run",
                "--env",
                "testbed",
                "--host",
                "video.example.com",
                "--fast",
                "--flow-trace",
                "--trace-out",
                str(out),
            ]
        )
        assert code == 0
        kinds = {json.loads(line)["kind"] for line in out.read_text().splitlines()}
        assert "pipeline.phase" in kinds

    def test_obs_state_restored_after_command(self, tmp_path):
        main(
            [
                "table3",
                "--fast",
                "--envs",
                "sprint",
                "--trace",
                "--trace-out",
                str(tmp_path / "t.jsonl"),
                "--metrics",
                "--profile",
            ]
        )
        assert obs_trace.TRACER is None
        assert obs_metrics.METRICS is None
        assert obs_profiling.PROFILER is None

    def test_envs_subset_limits_columns(self, capsys):
        code = main(["table3", "--fast", "--envs", "testbed,gfc"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper agreement" in out


class TestTraceFlagAliases:
    """``--flow-trace`` is canonical everywhere; ``--trace`` stays an alias
    on experiment subcommands where it isn't already the workload flag."""

    def test_table3_accepts_both_spellings(self, tmp_path):
        for flag in ("--trace", "--flow-trace"):
            out = tmp_path / f"{flag.strip('-')}.jsonl"
            code = main(
                ["table3", "--fast", "--envs", "sprint", flag, "--trace-out", str(out)]
            )
            assert code == 0
            assert out.exists()

    def test_figure4_accepts_flow_trace(self, tmp_path, capsys):
        out = tmp_path / "f4.jsonl"
        code = main(
            ["figure4", "--trials", "1", "--flow-trace", "--trace-out", str(out)]
        )
        assert code == 0
        kinds = {json.loads(line)["kind"] for line in out.read_text().splitlines()}
        assert "figure4.sample" in kinds

    def test_run_keeps_trace_for_workloads(self, tmp_path):
        # On `run`, --trace still loads a recorded workload; tracing there is
        # only reachable via the canonical --flow-trace spelling.
        workload = tmp_path / "workload.json"
        code = main(["trace", "--host", "video.example.com", "--out", str(workload)])
        assert code == 0
        code = main(["run", "--env", "testbed", "--fast", "--trace", str(workload)])
        assert code == 0

    def test_run_report_includes_trace_summary(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--env",
                "testbed",
                "--fast",
                "--flow-trace",
                "--trace-out",
                str(tmp_path / "t.jsonl"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "rule(s) hit" in out


class TestObsQuery:
    def test_query_by_kind(self, capsys):
        code = main(["obs", "query", THROTTLED, "--kind", "mbx.rule_match"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mbx.rule_match" in out
        assert "testbed:video.example.com" in out

    def test_query_json_lines(self, capsys):
        code = main(["obs", "query", THROTTLED, "--kind", "table3.cell", "--json"])
        assert code == 0
        events = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(events) == 1
        assert events[0]["env"] == "testbed"

    def test_query_timeline(self, capsys):
        code = main(["obs", "query", THROTTLED, "--timeline", "203.0.113.50"])
        assert code == 0
        assert "hop.traverse" in capsys.readouterr().out

    def test_query_ambiguous_timeline_exits_two(self, tmp_path, capsys):
        trace_path = tmp_path / "two-flows.jsonl"
        tracer = obs_trace.FlowTracer()
        tracer.emit("x", flow="a:1>c:3/6")
        tracer.emit("x", flow="b:2>c:3/6")
        tracer.export_jsonl(str(trace_path))
        code = main(["obs", "query", str(trace_path), "--timeline", "c:3"])
        assert code == 2
        assert "ambiguous" in capsys.readouterr().err


class TestObsReport:
    def test_report_renders_sections(self, capsys):
        code = main(["obs", "report", THROTTLED])
        assert code == 0
        out = capsys.readouterr().out
        assert "rule hits:" in out
        assert "testbed:video.example.com" in out

    def test_report_json(self, capsys):
        code = main(["obs", "report", NEUTRAL, "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] == 989
        assert summary["rules"] == {}


class TestObsDiff:
    def test_differing_traces_exit_one_and_name_the_rule(self, capsys):
        code = main(["obs", "diff", NEUTRAL, THROTTLED])
        assert code == 1
        out = capsys.readouterr().out
        assert "first diverging decision" in out
        assert "testbed:video.example.com" in out

    def test_identical_traces_exit_zero(self, capsys):
        code = main(["obs", "diff", NEUTRAL, NEUTRAL])
        assert code == 0
        assert "structurally identical" in capsys.readouterr().out

    def test_diff_json(self, capsys):
        code = main(["obs", "diff", NEUTRAL, THROTTLED, "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is False
        assert payload["rule_delta"] == {"testbed:video.example.com": [0, 1]}


class TestObsWatch:
    def test_watch_real_history_passes(self, capsys):
        code = main(
            [
                "obs",
                "watch",
                "--results-dir",
                "benchmarks/results",
                "--threshold",
                "2.0",
            ]
        )
        assert code == 0
        assert "no regressions flagged" in capsys.readouterr().out

    def test_watch_flags_synthetic_slowdown(self, tmp_path, capsys):
        from repro.obs import history as obs_history

        history = tmp_path / "BENCH_history.jsonl"
        obs_history.append_entries(
            history, [{"name": "synthetic", "seconds": 1.0, "rounds": 10}]
        )
        (tmp_path / "BENCH_synthetic.json").write_text(
            json.dumps({"name": "synthetic", "seconds": 1.3, "rounds": 10})
        )
        code = main(
            [
                "obs",
                "watch",
                "--results-dir",
                str(tmp_path),
                "--history",
                str(history),
            ]
        )
        assert code == 1
        assert "regression(s) flagged" in capsys.readouterr().out
