"""Engine reassembly modes, stream desync, windows and fragment handling."""

from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.policy import RulePolicy
from repro.middlebox.rules import MatchRule
from repro.middlebox.validation import MiddleboxValidation
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.shaper import PolicyState
from repro.packets.flow import Direction
from repro.packets.fragment import fragment_packet
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment

from tests.test_engine import CLIENT, SERVER, Driver, GET, make_engine


def split(payload, *cuts):
    bounds = [0, *cuts, len(payload)]
    return [(bounds[i], payload[bounds[i] : bounds[i + 1]]) for i in range(len(bounds) - 1)]


class StreamDriver(Driver):
    """Driver that can emit pieces at explicit offsets."""

    def pieces(self, pieces):
        base = self.seq
        total = max(offset + len(data) for offset, data in pieces)
        for offset, data in pieces:
            self.data(data, seq=base + offset)
        self.seq = base + total


class TestPerPacketMode:
    def test_split_keyword_across_packets_evades(self):
        engine, _ = make_engine(reassembly=ReassemblyMode.PER_PACKET)
        driver = StreamDriver(engine)
        driver.syn()
        cut = GET.find(b"video.example.com") + 5
        driver.pieces(split(GET, cut))
        assert driver.classification() != "video"

    def test_unsplit_keyword_matches(self):
        engine, _ = make_engine(reassembly=ReassemblyMode.PER_PACKET)
        driver = StreamDriver(engine)
        driver.syn()
        driver.data(GET)
        assert driver.classification() == "video"


class TestInOrderMode:
    def make(self, limit=4):
        return make_engine(
            reassembly=ReassemblyMode.IN_ORDER,
            inspect_packet_limit=limit,
            validation=MiddleboxValidation.partial_tmobile(),
        )

    def test_in_order_split_within_window_matches(self):
        engine, _ = self.make()
        driver = StreamDriver(engine)
        driver.syn()
        cut = GET.find(b"video.example.com") + 5
        driver.pieces(split(GET, cut))  # 2 pieces, both in window
        assert driver.classification() == "video"

    def test_split_beyond_window_evades(self):
        engine, _ = self.make(limit=4)
        driver = StreamDriver(engine)
        driver.syn()
        start = GET.find(b"video.example.com")
        cuts = [start + i for i in range(1, 6)]  # field spans 6 pieces
        driver.pieces(split(GET, *cuts))
        assert driver.classification() == "unclassified-final"

    def test_out_of_order_ignored(self):
        engine, _ = self.make()
        driver = StreamDriver(engine)
        driver.syn()
        cut = GET.find(b"video.example.com") + 5
        pieces = split(GET, cut)
        driver.pieces(list(reversed(pieces)))
        assert driver.classification() != "video"

    def test_desync_by_inert_payload(self):
        """A TTL-limited inert packet advances the stream cursor (TMUS, §6.2)."""
        engine, _ = self.make()
        driver = StreamDriver(engine)
        driver.syn()
        driver.data(b"GETX-innocuous-padding-qq", advance=False)  # inert at same seq
        driver.data(GET)  # looks like old data to the middlebox now
        assert driver.classification() != "video"


class TestFullMode:
    def make(self, **overrides):
        return make_engine(
            reassembly=ReassemblyMode.FULL,
            inspect_packet_limit=None,
            validation=MiddleboxValidation.extensive(),
            **overrides,
        )

    def test_out_of_order_reassembled(self):
        engine, _ = self.make()
        driver = StreamDriver(engine)
        driver.syn()
        cut = GET.find(b"video.example.com") + 5
        pieces = split(GET, cut)
        driver.pieces(list(reversed(pieces)))
        assert driver.classification() == "video"

    def test_many_way_split_reassembled(self):
        engine, _ = self.make()
        driver = StreamDriver(engine)
        driver.syn()
        start = GET.find(b"video.example.com")
        cuts = [start + i for i in range(1, 8)]
        driver.pieces(split(GET, *cuts))
        assert driver.classification() == "video"

    def test_one_byte_first_segment_still_matches(self):
        """Deferred anchor: stream classifiers tolerate tiny first segments."""
        engine, _ = self.make()
        driver = StreamDriver(engine)
        driver.syn()
        driver.pieces(split(GET, 1))
        assert driver.classification() == "video"

    def test_dummy_prefix_still_breaks_anchor(self):
        engine, _ = self.make()
        driver = StreamDriver(engine)
        driver.syn()
        driver.data(b"ZZZZZZ")
        driver.data(GET)
        assert driver.classification() == "unclassified-final"

    def test_seq_validation_rejects_wild_inert(self):
        engine, _ = self.make()
        driver = StreamDriver(engine)
        driver.syn()
        driver.data(b"innocuous-junk-payload", seq=driver.seq + 0x30000000)
        driver.data(GET)
        assert driver.classification() == "video"


class TestFragments:
    def fragmented_get(self, driver):
        segment = TCPSegment(
            sport=driver.sport,
            dport=driver.dport,
            seq=driver.seq,
            ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            payload=GET,
        )
        packet = IPPacket(src=CLIENT, dst=SERVER, transport=segment)
        return fragment_packet(packet, 24)

    def test_non_reassembling_engine_misses_fragments(self):
        engine, _ = make_engine(reassemble_ip_fragments=False)
        driver = Driver(engine)
        driver.syn()
        for fragment in self.fragmented_get(driver):
            engine.process(fragment, Direction.CLIENT_TO_SERVER, driver.ctx)
        assert driver.classification() != "video"

    def test_reassembling_engine_sees_fragments(self):
        engine, _ = make_engine(reassemble_ip_fragments=True)
        driver = Driver(engine)
        driver.syn()
        for fragment in self.fragmented_get(driver):
            engine.process(fragment, Direction.CLIENT_TO_SERVER, driver.ctx)
        assert driver.classification() == "video"

    def test_fragments_forwarded_unmodified(self):
        engine, _ = make_engine(reassemble_ip_fragments=True)
        driver = Driver(engine)
        driver.syn()
        outputs = []
        for fragment in self.fragmented_get(driver):
            outputs += engine.process(fragment, Direction.CLIENT_TO_SERVER, driver.ctx)
        assert all(o.is_fragment for o in outputs)


class TestServerSideMatching:
    def test_server_direction_rule(self):
        engine, policy = make_engine(
            rules=[
                MatchRule(
                    name="resp-video",
                    keywords=[b"Content-Type: video"],
                    direction="server",
                    policy=RulePolicy.throttle(1e6),
                )
            ],
            require_protocol_anchor=False,
        )
        driver = Driver(engine)
        driver.syn()
        driver.data(b"GET /v HTTP/1.1\r\n\r\n")
        response = TCPSegment(
            sport=80, dport=driver.sport, seq=9_000, ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            payload=b"HTTP/1.1 200 OK\r\nContent-Type: video/mp4\r\n\r\n",
        )
        engine.process(
            IPPacket(src=SERVER, dst=CLIENT, transport=response),
            Direction.SERVER_TO_CLIENT,
            driver.ctx,
        )
        assert driver.classification() == "resp-video"
