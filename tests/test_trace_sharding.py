"""Shard-and-merge tracing: traced parallel runs must equal traced serial.

The acceptance bar for the sharded tracer is byte identity: a traced
``table3``/``figure4`` run on a process or thread pool must export exactly
the JSONL a serial run exports, because each task's events land in a
per-task shard that the pool merges back in (task index, seq) order — the
order the serial loop would have emitted them in.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.figure4 import run_figure4
from repro.experiments.table3 import run_table3
from repro.obs import trace as obs_trace
from repro.runtime import WorkerPool

pytestmark = [pytest.mark.obs, pytest.mark.slow]

TABLE3_KWARGS = {
    "env_names": ("testbed", "sprint"),
    "include_os_matrix": False,
    "characterize": False,
}


def _traced_table3(tmp_path, backend: str) -> str:
    out = tmp_path / f"table3-{backend}.jsonl"
    with obs_trace.tracing() as tracer:
        rows = run_table3(pool=WorkerPool(backend), **TABLE3_KWARGS)
        tracer.export_jsonl(str(out))
    assert rows  # the run itself must have produced the table
    return out.read_text()


def _traced_figure4(tmp_path, backend: str) -> str:
    out = tmp_path / f"figure4-{backend}.jsonl"
    with obs_trace.tracing() as tracer:
        samples = run_figure4(hours=(3, 12), trials=2, pool=WorkerPool(backend))
        tracer.export_jsonl(str(out))
    assert len(samples) == 4
    return out.read_text()


class TestShardMergeByteIdentity:
    def test_table3_process_pool_matches_serial(self, tmp_path):
        serial = _traced_table3(tmp_path, "serial")
        parallel = _traced_table3(tmp_path, "process")
        assert parallel == serial

    def test_table3_thread_pool_matches_serial(self, tmp_path):
        serial = _traced_table3(tmp_path, "serial")
        parallel = _traced_table3(tmp_path, "thread")
        assert parallel == serial

    def test_figure4_process_pool_matches_serial(self, tmp_path):
        serial = _traced_figure4(tmp_path, "serial")
        parallel = _traced_figure4(tmp_path, "process")
        assert parallel == serial

    def test_merged_trace_is_contiguously_renumbered(self, tmp_path):
        text = _traced_table3(tmp_path, "process")
        lines = text.splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "trace.header"
        assert header["dropped"] == 0
        seqs = [json.loads(line)["seq"] for line in lines[1:]]
        assert seqs == list(range(len(seqs)))


class TestShardScaffolding:
    def test_shard_scope_restores_previous_tracer(self):
        with obs_trace.tracing() as tracer:
            with obs_trace.shard_scope(tracer) as dispatcher:
                assert obs_trace.TRACER is dispatcher
            assert obs_trace.TRACER is tracer

    def test_dispatcher_routes_to_active_shard_even_when_empty(self):
        # Regression: an empty FlowTracer is falsy (__len__ == 0), so the
        # dispatcher must select the shard with an explicit None check or a
        # freshly-begun shard's first event leaks into the parent tracer.
        parent = obs_trace.FlowTracer()
        dispatcher = obs_trace.ShardDispatcher(parent)
        shard = obs_trace.FlowTracer()
        dispatcher.set_shard(shard)
        dispatcher.emit("unit.event", probe=1)
        assert len(shard) == 1
        assert len(parent) == 0
        dispatcher.set_shard(None)
        dispatcher.emit("unit.event", probe=2)
        assert len(parent) == 1

    def test_absorb_renumbers_and_accumulates_drops(self):
        source = obs_trace.FlowTracer()
        source.emit("unit.a", 1.0, detail="x")
        source.emit("unit.b", 2.0)
        records = [event.as_dict() for event in source.events()]
        target = obs_trace.FlowTracer()
        target.emit("unit.pre")
        absorbed = target.absorb(records, dropped=3)
        assert absorbed == 2
        assert target.dropped_events == 3
        merged = [event.as_dict() for event in target.events()]
        assert [event["seq"] for event in merged] == [0, 1, 2]
        assert merged[1]["kind"] == "unit.a"
        assert merged[1]["detail"] == "x"
        assert merged[1]["time"] == 1.0

    def test_merge_shard_dir_orders_by_task_index(self, tmp_path):
        # Write shards out of creation order; the merge must follow index.
        for index, kind in ((1, "unit.second"), (0, "unit.first")):
            shard = obs_trace.FlowTracer()
            shard.emit(kind)
            shard.export_jsonl(str(tmp_path / obs_trace.shard_filename(index)))
        merged = obs_trace.FlowTracer()
        count = obs_trace.merge_shard_dir(merged, str(tmp_path), 2)
        assert count == 2
        kinds = [event.as_dict()["kind"] for event in merged.events()]
        assert kinds == ["unit.first", "unit.second"]

    def test_merge_shard_dir_tolerates_missing_shards(self, tmp_path):
        shard = obs_trace.FlowTracer()
        shard.emit("unit.only")
        shard.export_jsonl(str(tmp_path / obs_trace.shard_filename(2)))
        merged = obs_trace.FlowTracer()
        assert obs_trace.merge_shard_dir(merged, str(tmp_path), 5) == 1

    def test_metered_runs_no_longer_force_serial(self, tmp_path):
        # Metrics used to force the serial backend; now the pool ships each
        # worker's registry dump home and merges it, so a metered process-pool
        # run records the same counters a serial run would.
        from repro.obs import metrics as obs_metrics

        with obs_metrics.collecting() as registry:
            run_table3(pool=WorkerPool("process"), **TABLE3_KWARGS)
            parallel = registry.snapshot()
        with obs_metrics.collecting() as registry:
            run_table3(pool=WorkerPool("serial"), **TABLE3_KWARGS)
            serial = registry.snapshot()
        assert parallel["mbx.rule_matches"] > 0
        assert parallel == serial
