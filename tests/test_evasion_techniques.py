"""Per-technique behaviour tests, anchored to Table 3's key cells."""

import pytest

from repro.core.evasion import ALL_TECHNIQUES, techniques_by_name
from repro.core.evasion.base import EvasionContext
from repro.core.evasion.flushing import (
    PauseAfterMatch,
    PauseBeforeMatch,
    RSTAfterMatch,
    RSTBeforeMatch,
)
from repro.core.evasion.inert import (
    InvalidIPOptions,
    InvalidIPVersion,
    LowTTLInert,
    UDPInvalidChecksum,
    WrongTCPChecksum,
)
from repro.core.evasion.reordering import TCPSegmentReorder, UDPReorder
from repro.core.evasion.splitting import (
    IPFragmentation,
    TCPSegmentSplit,
    pieces_from_cuts,
    split_points,
)
from repro.core.report import MatchingField
from repro.replay.session import ReplaySession


def fields_for(trace, *keywords):
    data = trace.client_bytes()
    fields = []
    for keyword in keywords:
        index = data.find(keyword)
        assert index >= 0
        fields.append(MatchingField(0, index, index + len(keyword), keyword))
    return fields


def context_for(env, trace, *keywords, **overrides):
    defaults = dict(
        matching_fields=fields_for(trace, *keywords),
        middlebox_hops=env.hops_to_middlebox,
        packet_limit=4,
        protocol=trace.protocol,
    )
    defaults.update(overrides)
    return EvasionContext(**defaults)


class TestRegistry:
    def test_26_table3_rows(self):
        assert len(ALL_TECHNIQUES) == 26

    def test_names_unique(self):
        names = [t.name for t in ALL_TECHNIQUES]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert techniques_by_name()["ip-low-ttl"].category == "inert-insertion"

    def test_categories(self):
        categories = {t.category for t in ALL_TECHNIQUES}
        assert categories == {"inert-insertion", "splitting", "reordering", "flushing"}

    def test_udp_applicability(self):
        udp_ctx = EvasionContext(protocol="udp")
        assert UDPInvalidChecksum().applicable(udp_ctx)
        assert not TCPSegmentSplit().applicable(udp_ctx)
        assert LowTTLInert().applicable(udp_ctx)  # protocol "any"


class TestSplitPoints:
    def test_cuts_inside_field(self):
        message = b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"
        field = MatchingField(0, 22, 33, b"example.com")
        cuts = split_points(message, [field], budget=10)
        assert cuts
        assert all(22 < cut < 33 for cut in cuts)

    def test_budget_respected(self):
        message = bytes(200)
        field = MatchingField(0, 10, 150, b"x" * 140)
        cuts = split_points(message, [field], budget=5)
        assert len(cuts) <= 4

    def test_no_fields_isolates_first_byte(self):
        assert split_points(b"abcdef", [], budget=10) == [1]

    def test_pieces_cover_message(self):
        message = b"0123456789"
        pieces = pieces_from_cuts(message, [3, 7])
        assert b"".join(data for _offset, data in pieces) == message
        assert [offset for offset, _data in pieces] == [0, 3, 7]

    def test_budget_minimum(self):
        with pytest.raises(ValueError):
            split_points(b"abc", [], budget=1)


class TestAgainstTestbed:
    """Spot checks of Table 3's testbed column at the technique level."""

    def run(self, env, trace, technique, ctx):
        return ReplaySession(env, trace).run(technique=technique, context=ctx)

    def test_low_ttl_evades_and_stays_inert(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        outcome = self.run(testbed, classified_trace, LowTTLInert(), ctx)
        assert outcome.evaded
        assert outcome.inert_reached_server is False

    def test_invalid_version_fails(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        outcome = self.run(testbed, classified_trace, InvalidIPVersion(), ctx)
        assert not outcome.evaded
        assert outcome.differentiated

    def test_invalid_options_evade_but_break_linux_delivery(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        outcome = self.run(testbed, classified_trace, InvalidIPOptions(), ctx)
        assert not outcome.differentiated  # classification changed...
        assert not outcome.delivered_ok  # ...but Linux delivered the junk

    def test_segment_split_evades(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        outcome = self.run(testbed, classified_trace, TCPSegmentSplit(), ctx)
        assert outcome.evaded

    def test_reorder_evades(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        outcome = self.run(testbed, classified_trace, TCPSegmentReorder(), ctx)
        assert outcome.evaded

    def test_fragmentation_evades(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        outcome = self.run(testbed, classified_trace, IPFragmentation(), ctx)
        assert outcome.evaded
        assert outcome.inert_reached_server  # reassembled en route (footnote 2)

    def test_pause_flushes(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        outcome = self.run(testbed, classified_trace, PauseAfterMatch(), ctx)
        assert outcome.evaded
        assert outcome.overhead_seconds >= 120

    def test_rst_flush(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        outcome = self.run(testbed, classified_trace, RSTAfterMatch(), ctx)
        assert outcome.evaded
        assert outcome.inert_reached_server is False  # TTL-limited RST died

    def test_udp_reorder_evades_stun(self, testbed, skype_trace):
        ctx = EvasionContext(protocol="udp", middlebox_hops=0)
        outcome = self.run(testbed, skype_trace, UDPReorder(), ctx)
        assert outcome.evaded

    def test_udp_bad_checksum_evades(self, testbed, skype_trace):
        ctx = EvasionContext(protocol="udp", middlebox_hops=0)
        outcome = self.run(testbed, skype_trace, UDPInvalidChecksum(), ctx)
        assert outcome.evaded
        assert outcome.inert_reached_server  # reaches, then the OS drops it


class TestAgainstGFC:
    def test_rst_before_match_works(self, gfc, censored_trace):
        ctx = context_for(gfc, censored_trace, b"GET", b"economist.com")
        outcome = ReplaySession(gfc, censored_trace).run(
            technique=RSTBeforeMatch(), context=ctx
        )
        assert outcome.evaded

    def test_rst_after_match_fails(self, gfc, censored_trace):
        ctx = context_for(gfc, censored_trace, b"GET", b"economist.com")
        outcome = ReplaySession(gfc, censored_trace, server_port=8201).run(
            technique=RSTAfterMatch(), context=ctx
        )
        assert outcome.differentiated

    def test_pause_before_match_busy_hours_only(self, censored_trace):
        from repro.envs.gfc import make_gfc

        # Busy hour: flush happens within 150 s.
        busy = make_gfc()
        busy.clock.at_hour(14)
        ctx = context_for(busy, censored_trace, b"GET", b"economist.com", flush_wait_seconds=150.0)
        outcome = ReplaySession(busy, censored_trace).run(
            technique=PauseBeforeMatch(), context=ctx
        )
        assert outcome.evaded
        # Quiet hour: state never flushes within the probe ceiling.
        quiet = make_gfc()
        quiet.clock.at_hour(3)
        ctx = context_for(quiet, censored_trace, b"GET", b"economist.com", flush_wait_seconds=240.0)
        outcome = ReplaySession(quiet, censored_trace).run(
            technique=PauseBeforeMatch(), context=ctx
        )
        assert not outcome.evaded

    def test_wrong_tcp_checksum_changes_classification_but_breaks_flow(
        self, gfc, censored_trace
    ):
        """Footnote 4: the checksum gets corrected en route, so the inert
        packet reaches the server as valid data."""
        ctx = context_for(gfc, censored_trace, b"GET", b"economist.com")
        outcome = ReplaySession(gfc, censored_trace, server_port=8202).run(
            technique=WrongTCPChecksum(), context=ctx
        )
        assert not outcome.differentiated  # CC = Y
        assert outcome.inert_reached_server  # RS = Y (normalized checksum)
        assert not outcome.delivered_ok  # ... which corrupts the stream


class TestAgainstIran:
    def test_split_evades_per_packet_classifier(self, iran, iran_trace):
        ctx = context_for(iran, iran_trace, b"facebook.com", inspects_all_packets=True)
        outcome = ReplaySession(iran, iran_trace).run(technique=TCPSegmentSplit(), context=ctx)
        assert outcome.evaded

    def test_inert_insertion_fails(self, iran, iran_trace):
        ctx = context_for(iran, iran_trace, b"facebook.com", inspects_all_packets=True)
        outcome = ReplaySession(iran, iran_trace).run(technique=LowTTLInert(), context=ctx)
        assert outcome.differentiated

    def test_fragments_dropped_before_classifier(self, iran, iran_trace):
        ctx = context_for(iran, iran_trace, b"facebook.com", inspects_all_packets=True)
        outcome = ReplaySession(iran, iran_trace).run(technique=IPFragmentation(), context=ctx)
        assert not outcome.delivered_ok  # the network eats fragments (§6.6)


class TestOverheadModel:
    def test_inert_overhead_small(self):
        ctx = EvasionContext()
        for name in ("ip-low-ttl", "tcp-wrong-checksum", "ip-invalid-options"):
            overhead = techniques_by_name()[name].estimated_overhead(ctx)
            assert overhead.packets <= 5  # §5.3: k always less than 5

    def test_flushing_overhead_in_paper_range(self):
        ctx = EvasionContext()
        overhead = PauseAfterMatch().estimated_overhead(ctx)
        assert 40 <= overhead.seconds <= 240

    def test_reorder_costs_nothing_extra(self):
        assert UDPReorder().estimated_overhead(EvasionContext()).packets == 0
