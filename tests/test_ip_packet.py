"""Unit tests for IPv4 packet construction, parsing and validity predicates."""

import pytest

from repro.packets.ip import IPPacket, IPProto
from repro.packets.options import deprecated_ip_option, invalid_ip_option, nop_padding
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram


def make_packet(**kwargs):
    defaults = dict(
        src="10.0.0.1",
        dst="10.0.0.2",
        transport=TCPSegment(sport=1234, dport=80, seq=7, payload=b"hello"),
    )
    defaults.update(kwargs)
    return IPPacket(**defaults)


class TestSerialization:
    def test_roundtrip_tcp(self):
        packet = make_packet()
        parsed = IPPacket.from_bytes(packet.to_bytes())
        assert parsed.src == "10.0.0.1"
        assert parsed.dst == "10.0.0.2"
        assert parsed.tcp is not None
        assert parsed.tcp.payload == b"hello"
        assert parsed.effective_protocol == IPProto.TCP

    def test_roundtrip_udp(self):
        packet = make_packet(transport=UDPDatagram(sport=1, dport=53, payload=b"q"))
        parsed = IPPacket.from_bytes(packet.to_bytes())
        assert parsed.udp is not None
        assert parsed.udp.payload == b"q"

    def test_header_checksum_auto(self):
        parsed = IPPacket.from_bytes(make_packet().to_bytes())
        assert parsed.has_valid_checksum()

    def test_tcp_checksum_auto(self):
        parsed = IPPacket.from_bytes(make_packet().to_bytes())
        assert parsed.tcp.verify_checksum(parsed.src, parsed.dst)

    def test_total_length_auto(self):
        packet = make_packet()
        assert packet.effective_total_length == packet.wire_length()

    def test_options_padded_into_ihl(self):
        packet = make_packet(options=nop_padding(3))
        assert packet.effective_ihl == 6  # 20 + 4 bytes of options
        parsed = IPPacket.from_bytes(packet.to_bytes())
        assert parsed.has_valid_ihl()

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            IPPacket.from_bytes(b"\x45\x00")

    def test_ttl_serialized(self):
        parsed = IPPacket.from_bytes(make_packet(ttl=3).to_bytes())
        assert parsed.ttl == 3


class TestValidityPredicates:
    def test_valid_packet_passes_everything(self):
        packet = make_packet()
        assert packet.has_valid_version()
        assert packet.has_valid_ihl()
        assert packet.has_valid_total_length()
        assert packet.has_valid_checksum()
        assert packet.has_wellformed_options()
        assert not packet.has_deprecated_options()
        assert packet.has_known_protocol()

    def test_invalid_version(self):
        assert not make_packet(version=6).has_valid_version()

    def test_invalid_ihl(self):
        assert not make_packet(ihl=3).has_valid_ihl()

    def test_total_length_long(self):
        packet = make_packet()
        packet.total_length = packet.wire_length() + 100
        assert packet.total_length_too_long()
        assert not packet.has_valid_total_length()

    def test_total_length_short(self):
        packet = make_packet()
        packet.total_length = packet.wire_length() - 10
        assert packet.total_length_too_short()

    def test_wrong_checksum(self):
        assert not make_packet(checksum=0xBEEF).has_valid_checksum()

    def test_invalid_options_detected(self):
        assert not make_packet(options=invalid_ip_option()).has_wellformed_options()

    def test_deprecated_options_detected(self):
        packet = make_packet(options=deprecated_ip_option())
        assert packet.has_wellformed_options()
        assert packet.has_deprecated_options()

    def test_unknown_protocol(self):
        assert not make_packet(protocol=0xFD).has_known_protocol()

    def test_protocol_mismatch(self):
        packet = make_packet(protocol=17)  # UDP number on a TCP payload
        assert not packet.protocol_matches_transport()


class TestAccessors:
    def test_tcp_accessor(self):
        assert make_packet().tcp is not None
        assert make_packet().udp is None

    def test_app_payload(self):
        assert make_packet().app_payload == b"hello"

    def test_fragment_flag(self):
        assert make_packet(mf=True).is_fragment
        assert make_packet(frag_offset=10).is_fragment
        assert not make_packet().is_fragment

    def test_copy_is_deep_for_transport(self):
        packet = make_packet()
        clone = packet.copy()
        clone.tcp.payload = b"other"
        assert packet.tcp.payload == b"hello"

    def test_copy_applies_changes(self):
        assert make_packet().copy(ttl=9).ttl == 9
