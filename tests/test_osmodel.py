"""Unit tests for the per-OS validation profiles (Table 3 rightmost columns)."""

import pytest

from repro.endpoint.osmodel import ALL_OS_PROFILES, LINUX, MACOS, WINDOWS, Verdict
from repro.packets.ip import IPPacket
from repro.packets.options import deprecated_ip_option, invalid_ip_option
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram


def ip_packet(**kwargs):
    defaults = dict(
        src="10.0.0.1",
        dst="10.0.0.2",
        transport=TCPSegment(sport=1, dport=80, seq=500, payload=b"x"),
    )
    defaults.update(kwargs)
    return IPPacket(**defaults)


class TestIPVerdicts:
    @pytest.mark.parametrize("profile", ALL_OS_PROFILES, ids=lambda p: p.name)
    def test_clean_packet_delivered(self, profile):
        assert profile.verdict_for_ip(ip_packet()) is Verdict.DELIVER

    @pytest.mark.parametrize("profile", ALL_OS_PROFILES, ids=lambda p: p.name)
    def test_mandatory_drops(self, profile):
        assert profile.verdict_for_ip(ip_packet(version=6)) is Verdict.DROP
        assert profile.verdict_for_ip(ip_packet(ihl=3)) is Verdict.DROP
        assert profile.verdict_for_ip(ip_packet(checksum=0xBEEF)) is Verdict.DROP
        assert profile.verdict_for_ip(ip_packet(protocol=0xFD)) is Verdict.DROP
        long_packet = ip_packet()
        long_packet.total_length = long_packet.wire_length() + 77
        assert profile.verdict_for_ip(long_packet) is Verdict.DROP

    def test_invalid_options_linux_delivers(self):
        packet = ip_packet(options=invalid_ip_option())
        assert LINUX.verdict_for_ip(packet) is Verdict.DELIVER
        assert MACOS.verdict_for_ip(packet) is Verdict.DELIVER

    def test_invalid_options_windows_drops(self):
        packet = ip_packet(options=invalid_ip_option())
        assert WINDOWS.verdict_for_ip(packet) is Verdict.DROP

    @pytest.mark.parametrize("profile", ALL_OS_PROFILES, ids=lambda p: p.name)
    def test_deprecated_options_delivered_everywhere(self, profile):
        packet = ip_packet(options=deprecated_ip_option())
        assert profile.verdict_for_ip(packet) is Verdict.DELIVER


class TestTCPVerdicts:
    def segment(self, **kwargs):
        defaults = dict(sport=1, dport=80, seq=500, flags=TCPFlags.ACK | TCPFlags.PSH, payload=b"x")
        defaults.update(kwargs)
        return TCPSegment(**defaults)

    @pytest.mark.parametrize("profile", ALL_OS_PROFILES, ids=lambda p: p.name)
    def test_bad_checksum_dropped(self, profile):
        segment = self.segment(checksum=0xDEAD)
        packet = ip_packet(transport=segment)
        assert profile.verdict_for_tcp(packet, segment, expected_seq=500) is Verdict.DROP

    @pytest.mark.parametrize("profile", ALL_OS_PROFILES, ids=lambda p: p.name)
    def test_bad_data_offset_dropped(self, profile):
        segment = self.segment(data_offset=15)
        packet = ip_packet(transport=segment)
        assert profile.verdict_for_tcp(packet, segment, expected_seq=500) is Verdict.DROP

    @pytest.mark.parametrize("profile", ALL_OS_PROFILES, ids=lambda p: p.name)
    def test_missing_ack_dropped(self, profile):
        segment = self.segment(flags=TCPFlags.PSH)
        packet = ip_packet(transport=segment)
        assert profile.verdict_for_tcp(packet, segment, expected_seq=500) is Verdict.DROP

    @pytest.mark.parametrize("profile", ALL_OS_PROFILES, ids=lambda p: p.name)
    def test_wild_seq_dropped(self, profile):
        segment = self.segment(seq=500 + 0x30000000)
        packet = ip_packet(transport=segment)
        assert profile.verdict_for_tcp(packet, segment, expected_seq=500) is Verdict.DROP

    def test_invalid_flags_linux_macos_drop(self):
        segment = self.segment(flags=TCPFlags.SYN | TCPFlags.FIN | TCPFlags.ACK)
        packet = ip_packet(transport=segment)
        assert LINUX.verdict_for_tcp(packet, segment, 500) is Verdict.DROP
        assert MACOS.verdict_for_tcp(packet, segment, 500) is Verdict.DROP

    def test_invalid_flags_windows_rsts(self):
        segment = self.segment(flags=TCPFlags.SYN | TCPFlags.FIN | TCPFlags.ACK)
        packet = ip_packet(transport=segment)
        assert WINDOWS.verdict_for_tcp(packet, segment, 500) is Verdict.RST

    @pytest.mark.parametrize("profile", ALL_OS_PROFILES, ids=lambda p: p.name)
    def test_clean_segment_delivered(self, profile):
        segment = self.segment()
        packet = ip_packet(transport=segment)
        assert profile.verdict_for_tcp(packet, segment, expected_seq=500) is Verdict.DELIVER


class TestUDPVerdicts:
    def datagram(self, **kwargs):
        defaults = dict(sport=1, dport=53, payload=b"payload-bytes")
        defaults.update(kwargs)
        return UDPDatagram(**defaults)

    @pytest.mark.parametrize("profile", ALL_OS_PROFILES, ids=lambda p: p.name)
    def test_bad_checksum_dropped(self, profile):
        datagram = self.datagram(checksum=0xDEAD)
        packet = ip_packet(transport=datagram)
        assert profile.verdict_for_udp(packet, datagram) is Verdict.DROP

    @pytest.mark.parametrize("profile", ALL_OS_PROFILES, ids=lambda p: p.name)
    def test_length_long_dropped(self, profile):
        datagram = self.datagram()
        datagram.length = datagram.wire_length() + 9
        packet = ip_packet(transport=datagram)
        assert profile.verdict_for_udp(packet, datagram) is Verdict.DROP

    def test_length_short_linux_truncates(self):
        datagram = self.datagram()
        datagram.length = datagram.wire_length() - 4
        packet = ip_packet(transport=datagram)
        assert LINUX.verdict_for_udp(packet, datagram) is Verdict.DELIVER_TRUNCATED

    def test_length_short_macos_windows_drop(self):
        datagram = self.datagram()
        datagram.length = datagram.wire_length() - 4
        packet = ip_packet(transport=datagram)
        assert MACOS.verdict_for_udp(packet, datagram) is Verdict.DROP
        assert WINDOWS.verdict_for_udp(packet, datagram) is Verdict.DROP

    def test_length_below_header_dropped_even_on_linux(self):
        datagram = self.datagram()
        datagram.length = 4
        packet = ip_packet(transport=datagram)
        assert LINUX.verdict_for_udp(packet, datagram) is Verdict.DROP
