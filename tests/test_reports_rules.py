"""Unit tests for report types, rules, and policy objects."""

import pytest

from repro.core.report import (
    CharacterizationReport,
    DetectionReport,
    EvasionReport,
    LiberateReport,
    MatchingField,
    TechniqueResult,
)
from repro.middlebox.policy import BlockBehavior, PolicyAction, RulePolicy
from repro.middlebox.rules import MatchRule


class TestMatchingField:
    def test_length(self):
        assert len(MatchingField(0, 5, 12, b"example")) == 7

    def test_str_contains_content(self):
        assert "example" in str(MatchingField(0, 5, 12, b"example"))


class TestDetectionReport:
    def test_summary_no_diff(self):
        assert "no differentiation" in DetectionReport(False, False, "rst").summary()

    def test_summary_dpi(self):
        summary = DetectionReport(True, True, "zero-rating").summary()
        assert "content-based" in summary and "zero-rating" in summary

    def test_summary_not_content_based(self):
        assert "not content-based" in DetectionReport(True, False, "rst").summary()


class TestCharacterizationReport:
    def test_summary_fields(self):
        report = CharacterizationReport(
            matching_fields=[MatchingField(0, 0, 3, b"GET")], packet_limit=4
        )
        summary = report.summary()
        assert "GET" in summary and "first 4 packets" in summary

    def test_summary_all_packets(self):
        report = CharacterizationReport(inspects_all_packets=True)
        assert "all packets" in report.summary()
        assert "none found" in report.summary()


class TestEvasionReport:
    def results(self):
        return [
            TechniqueResult("slow-flush", "flushing", True, True, False, overhead_seconds=150),
            TechniqueResult("cheap-inert", "inert-insertion", True, True, False, overhead_packets=1),
            TechniqueResult("broken", "splitting", False, False, True),
        ]

    def test_working(self):
        report = EvasionReport(results=self.results())
        assert {r.technique for r in report.working()} == {"slow-flush", "cheap-inert"}

    def test_best_prefers_no_delay(self):
        report = EvasionReport(results=self.results())
        assert report.best().technique == "cheap-inert"

    def test_best_none_when_nothing_works(self):
        report = EvasionReport(results=[self.results()[2]])
        assert report.best() is None
        assert "0/1" in report.summary()

    def test_summary(self):
        report = EvasionReport(results=self.results())
        assert "2/3" in report.summary()
        assert "cheap-inert" in report.summary()


class TestLiberateReport:
    def test_summary_includes_phases(self):
        report = LiberateReport(
            environment="testbed",
            trace="demo",
            detection=DetectionReport(True, True, "classification"),
            characterization=CharacterizationReport(),
            evasion=EvasionReport(),
            deployed_technique="ip-low-ttl",
        )
        summary = report.summary()
        assert "testbed" in summary
        assert "deployed" in summary and "ip-low-ttl" in summary


class TestMatchRule:
    def test_requires_pattern(self):
        with pytest.raises(ValueError):
            MatchRule(name="empty")

    def test_protocol_validated(self):
        with pytest.raises(ValueError):
            MatchRule(name="x", keywords=[b"k"], protocol="sctp")

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            MatchRule(name="x", keywords=[b"k"], direction="sideways")

    def test_any_keyword_matching(self):
        rule = MatchRule(name="x", keywords=[b"aaa", b"bbb"])
        assert rule.matches_buffer(b"...bbb...")
        assert not rule.matches_buffer(b"...ccc...")

    def test_require_all(self):
        rule = MatchRule(name="x", keywords=[b"GET", b"host.com"], require_all=True)
        assert rule.matches_buffer(b"GET / host.com")
        assert not rule.matches_buffer(b"GET / other.com")

    def test_applies_to(self):
        rule = MatchRule(name="x", keywords=[b"k"], ports=frozenset({80}), direction="client")
        assert rule.applies_to("tcp", 80, "client")
        assert not rule.applies_to("tcp", 443, "client")
        assert not rule.applies_to("udp", 80, "client")
        assert not rule.applies_to("tcp", 80, "server")

    def test_both_direction(self):
        rule = MatchRule(name="x", keywords=[b"k"], direction="both")
        assert rule.applies_to("tcp", 80, "client")
        assert rule.applies_to("tcp", 80, "server")

    def test_stun_rule_without_keywords(self):
        rule = MatchRule(name="stun", stun_attribute=0x8055, protocol="udp")
        from repro.traffic.stun import stun_binding_request

        assert rule.matches_buffer(stun_binding_request())
        assert not rule.matches_buffer(b"not stun")


class TestRulePolicy:
    def test_throttle_factory(self):
        policy = RulePolicy.throttle(2e6)
        assert policy.action is PolicyAction.THROTTLE
        assert policy.throttle_rate_bps == 2e6

    def test_zero_rate_plain(self):
        policy = RulePolicy.zero_rate()
        assert policy.action is PolicyAction.ZERO_RATE
        assert not policy.also_throttle

    def test_zero_rate_with_shaping(self):
        policy = RulePolicy.zero_rate(throttle_rate_bps=1.5e6)
        assert policy.also_throttle
        assert policy.throttle_rate_bps == 1.5e6

    def test_block_factories(self):
        rst = RulePolicy.block_with_rsts(to_client=5)
        assert rst.block.rsts_to_client == 5
        assert rst.block.block_page is None
        page = RulePolicy.block_with_page()
        assert b"403" in page.block.block_page
        assert page.block.rsts_to_client == 2
