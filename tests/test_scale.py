"""Scale churn workload: bounded flow-state under far-over-capacity load.

The counters a churn run reports are seeded-deterministic (endpoints from
flow indices, match decisions from CRC32, time from a virtual clock), so
they are asserted exactly; the memory side ("peak RSS stays flat when
flows grow 10x") is process-lifetime-monotonic and is checked in the slow
suite by running each configuration in its own subprocess — the same
comparison the scale-smoke CI job performs.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.experiments.scale import (
    MATCH_PAYLOAD,
    NEUTRAL_PAYLOAD,
    SERVER,
    SERVER_PORT,
    ScaleConfig,
    _flow_endpoint,
    _is_match_flow,
    build_engine,
    format_scale,
    main,
    run_scale,
)
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.faults import FaultElement, chaos_profile
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.runtime import WorkerPool

SMALL = ScaleConfig(flows=2_000, max_flows=256, idle_every=700, revisit_window=16)


def counters(result):
    """The deterministic payload: everything but the process-noisy RSS."""
    payload = result.as_dict()
    payload.pop("peak_rss_kb")
    return payload


class TestDeterminism:
    def test_same_config_same_counters(self):
        assert counters(run_scale(SMALL)) == counters(run_scale(SMALL))

    def test_shed_coin_is_seeded(self):
        config = ScaleConfig(flows=2_000, max_flows=256, shed=True, idle_every=0)
        first, second = run_scale(config), run_scale(config)
        assert first.sheds == second.sheds > 0
        assert counters(first) == counters(second)
        reseeded = run_scale(
            ScaleConfig(flows=2_000, max_flows=256, shed=True, shed_seed=99, idle_every=0)
        )
        assert reseeded.sheds != first.sheds

    def test_endpoints_unique_within_run(self):
        endpoints = {_flow_endpoint(i) for i in range(50_000)}
        assert len(endpoints) == 50_000

    def test_match_decision_is_pure(self):
        decisions = [_is_match_flow(i, 8) for i in range(4_096)]
        assert decisions == [_is_match_flow(i, 8) for i in range(4_096)]
        assert 0 < sum(decisions) < 4_096


class TestBoundedState:
    def test_tracked_flows_never_exceed_capacity(self):
        result = run_scale(SMALL)
        assert result.peak_tracked_flows <= SMALL.max_flows
        assert result.tracked_flows_end <= SMALL.max_flows

    def test_pure_churn_evicts_exactly_the_overflow(self):
        config = ScaleConfig(
            flows=2_000, max_flows=256, idle_every=0, revisit_window=0, match_every=0
        )
        result = run_scale(config)
        assert result.evictions == config.flows - config.max_flows
        assert result.tracked_flows_end == config.max_flows
        assert result.sheds == 0

    def test_admitted_plus_shed_covers_the_offered_load(self):
        config = ScaleConfig(flows=2_000, max_flows=256, shed=True, idle_every=0)
        result = run_scale(config)
        assert result.flows_admitted + result.sheds == result.flows_offered
        # Fail-open: shed flows still forward every packet uninspected.
        per_flow = 1 + config.packets_per_flow
        assert result.packets >= config.flows * per_flow

    def test_idle_jumps_batch_expire(self):
        result = run_scale(SMALL)
        assert result.expired > 0

    def test_byte_budget_run_stays_bounded(self):
        config = ScaleConfig(
            flows=1_000,
            max_flows=512,
            filler_bytes=600,
            flow_byte_budget=64_000,
            idle_every=0,
        )
        result = run_scale(config)
        assert result.peak_tracked_flows <= config.max_flows
        assert counters(result) == counters(run_scale(config))

    def test_match_log_is_folded_not_grown(self):
        config = ScaleConfig(flows=2_000, max_flows=256, match_every=2, idle_every=0)
        engine_matches = run_scale(config).matches
        expected = sum(_is_match_flow(i, 2) for i in range(config.flows))
        assert engine_matches == expected


class TestCLI:
    def test_module_entry_emits_json(self, capsys):
        assert main(["--flows", "400", "--max-flows", "64", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flows_offered"] == 400
        assert payload["config"]["max_flows"] == 64
        assert payload["evictions"] > 0

    def test_liberate_scale_subcommand(self, capsys):
        from repro.cli.main import main as cli_main

        assert cli_main(["scale", "--flows", "400", "--max-flows", "64", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flows_offered"] == 400

    def test_format_scale_mentions_every_counter(self):
        text = format_scale(run_scale(ScaleConfig(flows=300, max_flows=64)))
        for label in ("flows offered", "evictions", "sheds", "peak tracked"):
            assert label in text


def _strip_rss(payload: dict) -> dict:
    payload = dict(payload)
    payload.pop("peak_rss_kb", None)
    return payload


@pytest.mark.chaos
class TestChurnAcrossBackends:
    """The churn counters are a pure function of config on every backend."""

    CONFIGS = [
        ScaleConfig(flows=800, max_flows=128, idle_every=300, revisit_window=8),
        ScaleConfig(flows=800, max_flows=128, shed=True, idle_every=0),
        ScaleConfig(flows=600, max_flows=64, match_every=2, flow_byte_budget=32_000),
    ]

    def _run(self, backend: str) -> list[str]:
        results = WorkerPool(backend).map(run_scale, self.CONFIGS)
        return [
            json.dumps(_strip_rss(r.as_dict()), sort_keys=True) for r in results
        ]

    def test_thread_pool_matches_serial(self):
        assert self._run("thread") == self._run("serial")

    def test_process_pool_matches_serial(self):
        assert self._run("process") == self._run("serial")


def faulty_churn(seed: int, flows: int = 1_200, max_flows: int = 128) -> dict:
    """Chaos-profile faults + capacity churn; module-level so worker
    processes can pickle it for the cross-backend identity check."""
    config = ScaleConfig(flows=flows, max_flows=max_flows, idle_every=500)
    engine, _policy = build_engine(config)
    fault = FaultElement(chaos_profile(seed))
    clock = VirtualClock()
    sink = []
    ctx = TransitContext(clock=clock, inject_back=sink.append, inject_forward=sink.append)
    matches = 0
    for index in range(config.flows):
        src, sport = _flow_endpoint(index)
        payload = (
            MATCH_PAYLOAD if _is_match_flow(index, config.match_every) else NEUTRAL_PAYLOAD
        )
        for seq, flags, body in (
            (1_000, TCPFlags.SYN, b""),
            (1_001, TCPFlags.ACK | TCPFlags.PSH, payload),
            (1_001 + len(payload), TCPFlags.ACK | TCPFlags.PSH, payload),
        ):
            clock.advance(config.packet_interval)
            segment = TCPSegment(
                sport=sport, dport=SERVER_PORT, seq=seq, ack=1, flags=flags, payload=body
            )
            packet = IPPacket(src=src, dst=SERVER, transport=segment)
            for survivor in fault.process(packet, Direction.CLIENT_TO_SERVER, ctx):
                engine.process(survivor, Direction.CLIENT_TO_SERVER, ctx)
            sink.clear()
        if len(engine.match_log) >= 1_024:
            matches += len(engine.match_log)
            engine.match_log.clear()
        if (index + 1) % config.idle_every == 0:
            clock.advance(config.idle_seconds)
        assert len(engine._flows) <= config.max_flows
    matches += len(engine.match_log)
    return {
        "matches": matches,
        "evictions": engine.evictions,
        "tracked": len(engine._flows),
        "faults": fault.stats.processed,
        "dropped": fault.stats.lost + fault.stats.burst_lost + fault.stats.flap_dropped,
        "corrupted": fault.stats.corrupted,
    }


@pytest.mark.chaos
class TestChurnUnderFaults:
    """Seeded faults + capacity churn: degraded, deterministic, bounded."""

    def test_faulty_churn_is_deterministic(self):
        first = faulty_churn(seed=7)
        assert first == faulty_churn(seed=7)
        assert first["dropped"] > 0  # the profile actually bit

    def test_fault_seed_changes_the_run_not_the_bounds(self):
        a, b = faulty_churn(seed=1), faulty_churn(seed=2)
        assert a != b
        assert a["tracked"] <= 128 and b["tracked"] <= 128

    def test_faulty_churn_identical_across_backends(self):
        seeds = [7, 23]
        runs = {
            backend: [
                json.dumps(r, sort_keys=True)
                for r in WorkerPool(backend).map(faulty_churn, seeds)
            ]
            for backend in ("serial", "thread", "process")
        }
        assert runs["thread"] == runs["serial"]
        assert runs["process"] == runs["serial"]


class TestWheelMatchesScan:
    """Timer-wheel expiry is a drop-in for the per-packet timeout scan.

    Constant timeouts route expiry through the wheel; wrapping the same
    constants in callables forces the legacy per-packet scan.  Driving an
    identical churn (with idle gaps that batch-expire) through both must
    leave identical flow sets and counters.
    """

    def churn(self, engine, flows=900, idle_every=300):
        config = ScaleConfig(flows=flows, max_flows=128)
        clock = VirtualClock()
        sink = []
        ctx = TransitContext(clock=clock, inject_back=sink.append, inject_forward=sink.append)
        for index in range(flows):
            src, sport = _flow_endpoint(index)
            payload = (
                MATCH_PAYLOAD if _is_match_flow(index, config.match_every) else NEUTRAL_PAYLOAD
            )
            for seq, flags, body in (
                (1_000, TCPFlags.SYN, b""),
                (1_001, TCPFlags.ACK | TCPFlags.PSH, payload),
            ):
                clock.advance(config.packet_interval)
                segment = TCPSegment(
                    sport=sport, dport=SERVER_PORT, seq=seq, ack=1, flags=flags, payload=body
                )
                engine.process(
                    IPPacket(src=src, dst=SERVER, transport=segment),
                    Direction.CLIENT_TO_SERVER,
                    ctx,
                )
                sink.clear()
            if (index + 1) % idle_every == 0:
                clock.advance(45.0)  # past pre-match, short of post-match timeout
        return {
            "tracked": sorted(map(str, engine._flows.keys())),
            "evictions": engine.evictions,
            "matches": len(engine.match_log),
        }

    def test_wheel_and_scan_agree_under_churn(self):
        wheel_engine, _ = build_engine(ScaleConfig(max_flows=128, pre_match_timeout=30.0))
        assert not wheel_engine._scan_timeouts
        scan_engine, _ = build_engine(ScaleConfig(max_flows=128))
        scan_engine.pre_match_timeout = lambda now: 30.0
        scan_engine.post_match_timeout = lambda now: 60.0
        scan_engine._scan_timeouts = True
        assert self.churn(wheel_engine) == self.churn(scan_engine)


@pytest.mark.slow
class TestMemoryFlatness:
    """Peak RSS saturates: 2x the flows must not move it beyond noise.

    Each configuration runs in its own interpreter because ``ru_maxrss``
    is process-lifetime-monotonic.  The baseline sits at 100k flows — the
    structures (slab, wheel, caches) are fully warm there; below that the
    allocator is still filling its arenas and ratios mean nothing.
    """

    BASELINE_FLOWS = int(os.environ.get("REPRO_SCALE_BASE_FLOWS", "100000"))
    GROWN_FLOWS = int(os.environ.get("REPRO_SCALE_GROWN_FLOWS", "200000"))

    def run_in_subprocess(self, flows: int) -> dict:
        env = dict(os.environ, PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-m", "repro.experiments.scale", "--flows", str(flows), "--json"],
            capture_output=True,
            text=True,
            check=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        return json.loads(out.stdout)

    def test_peak_rss_flat_at_2x_flows(self):
        base = self.run_in_subprocess(self.BASELINE_FLOWS)
        grown = self.run_in_subprocess(self.GROWN_FLOWS)
        assert base["peak_rss_kb"] and grown["peak_rss_kb"]
        ratio = grown["peak_rss_kb"] / base["peak_rss_kb"]
        assert ratio < 1.25, (
            f"peak RSS grew {ratio:.2f}x when flows grew "
            f"{self.GROWN_FLOWS / self.BASELINE_FLOWS:.0f}x "
            f"({base['peak_rss_kb']} -> {grown['peak_rss_kb']} KiB): "
            "some structure is no longer bounded"
        )
        # The bounded-state counters scale with the offered load instead.
        assert grown["evictions"] > base["evictions"]
