"""Unit tests for the ``repro.obs`` package itself (tracer, metrics, profiler)."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import observability_off
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment

pytestmark = pytest.mark.obs


class TestFlowTracer:
    def test_emit_records_seq_time_kind_fields(self):
        tracer = obs_trace.FlowTracer()
        tracer.emit("hop.traverse", 1.25, element="r1")
        tracer.emit("hop.drop", 2.5, element="r1", reason="ttl")
        events = tracer.events()
        assert [e.seq for e in events] == [0, 1]
        assert events[0].as_dict() == {
            "seq": 0,
            "time": 1.25,
            "kind": "hop.traverse",
            "element": "r1",
        }

    def test_ring_buffer_drops_oldest(self):
        tracer = obs_trace.FlowTracer(capacity=3)
        for i in range(5):
            tracer.emit("k", float(i))
        assert len(tracer) == 3
        assert tracer.dropped_events == 2
        assert [e.time for e in tracer.events()] == [2.0, 3.0, 4.0]

    def test_events_filters_by_kind_prefix(self):
        tracer = obs_trace.FlowTracer()
        tracer.emit("mbx.rule_match")
        tracer.emit("mbx.verdict")
        tracer.emit("mbx")
        tracer.emit("mbxother")
        assert len(tracer.events("mbx")) == 3
        assert len(tracer.events("mbx.rule_match")) == 1

    def test_tally_counts_per_kind(self):
        tracer = obs_trace.FlowTracer()
        for _ in range(3):
            tracer.emit("a")
        tracer.emit("b")
        assert tracer.tally() == {"a": 3, "b": 1}

    def test_span_pairs_enter_and_exit(self):
        tracer = obs_trace.FlowTracer()
        with tracer.span("detect", 1.0, env="testbed"):
            tracer.emit("inner")
        kinds = [e.kind for e in tracer.events()]
        assert kinds == ["span.enter", "inner", "span.exit"]

    def test_clear_restarts_numbering(self):
        tracer = obs_trace.FlowTracer()
        tracer.emit("a")
        tracer.clear()
        tracer.emit("b")
        assert tracer.events()[0].seq == 0

    def test_export_and_load_roundtrip(self, tmp_path):
        tracer = obs_trace.FlowTracer()
        tracer.emit("hop.traverse", 0.5, element="r1", ident=7)
        path = str(tmp_path / "t.jsonl")
        assert tracer.export_jsonl(path) == 1
        first = json.loads(open(path).readline())
        assert first == {
            "kind": "trace.header",
            "schema": obs_trace.TRACE_SCHEMA_VERSION,
            "events": 1,
            "dropped": 0,
        }
        records = obs_trace.load_jsonl(path)
        assert records == [
            {"seq": 0, "time": 0.5, "kind": "hop.traverse", "element": "r1", "ident": 7}
        ]

    def test_export_is_canonical_json(self):
        tracer = obs_trace.FlowTracer()
        tracer.emit("k", 1.0, zebra=1, alpha=2)
        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        line = buffer.getvalue().splitlines()[1]
        assert line == '{"alpha":2,"kind":"k","seq":0,"time":1.0,"zebra":1}'

    def test_structural_view_projects_stable_fields(self):
        events = [
            {"kind": "mbx.rule_match", "rule": "r", "time": 3.5, "sport": 40_001},
            {"kind": "hop.drop", "reason": "ttl", "element": "r1", "verdict": None},
        ]
        assert obs_trace.structural_view(events) == [
            {"kind": "mbx.rule_match", "rule": "r"},
            {"kind": "hop.drop", "element": "r1", "reason": "ttl"},
        ]

    def test_packet_fields_are_deterministic_identity(self):
        segment = TCPSegment(
            sport=40_001, dport=80, seq=1, ack=1, flags=TCPFlags.ACK, payload=b"abc"
        )
        packet = IPPacket(
            src="10.1.0.2", dst="203.0.113.50", transport=segment, identification=9
        )
        fields = obs_trace.packet_fields(packet)
        assert fields["src"] == "10.1.0.2"
        assert fields["sport"] == 40_001
        assert fields["ident"] == 9
        assert fields["plen"] == 3
        assert obs_trace.packet_fields(packet) == fields

    def test_tracing_context_restores_previous(self):
        assert obs_trace.TRACER is None
        with obs_trace.tracing() as outer:
            assert obs_trace.TRACER is outer
            with obs_trace.tracing() as inner:
                assert obs_trace.TRACER is inner
            assert obs_trace.TRACER is outer
        assert obs_trace.TRACER is None


class TestRingBufferWraparound:
    def test_export_header_counts_wrapped_drops(self, tmp_path):
        tracer = obs_trace.FlowTracer(capacity=3)
        for i in range(7):
            tracer.emit("k", float(i))
        path = str(tmp_path / "wrapped.jsonl")
        assert tracer.export_jsonl(path) == 3
        header = json.loads(open(path).readline())
        assert header["events"] == 3
        assert header["dropped"] == 4

    def test_wrapped_events_keep_original_seq(self, tmp_path):
        tracer = obs_trace.FlowTracer(capacity=3)
        for i in range(5):
            tracer.emit("k", float(i))
        path = str(tmp_path / "wrapped.jsonl")
        tracer.export_jsonl(path)
        records = obs_trace.load_jsonl(path)
        # The survivors are the newest three, still carrying their global
        # sequence numbers — the gap tells the reader exactly what was lost.
        assert [r["seq"] for r in records] == [2, 3, 4]

    def test_exact_capacity_drops_nothing(self):
        tracer = obs_trace.FlowTracer(capacity=4)
        for i in range(4):
            tracer.emit("k", float(i))
        assert len(tracer) == 4
        assert tracer.dropped_events == 0

    def test_single_slot_ring_keeps_only_newest(self):
        tracer = obs_trace.FlowTracer(capacity=1)
        for i in range(3):
            tracer.emit("k", float(i))
        events = tracer.events()
        assert len(events) == 1
        assert events[0].time == 2.0
        assert tracer.dropped_events == 2

    def test_clear_resets_drop_accounting(self):
        tracer = obs_trace.FlowTracer(capacity=2)
        for i in range(5):
            tracer.emit("k", float(i))
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped_events == 0
        tracer.emit("fresh")
        assert tracer.events()[0].seq == 0


class TestHistogramEdgeCases:
    def test_empty_histogram_snapshot(self):
        histogram = obs_metrics.Histogram()
        snap = histogram.as_dict()
        assert snap["count"] == 0
        assert snap["sum"] == 0.0
        assert set(snap["buckets"].values()) == {0}

    def test_empty_histogram_percentile_is_zero(self):
        assert obs_metrics.Histogram().percentile(50) == 0.0
        assert obs_metrics.Histogram().percentile(99.9) == 0.0

    def test_single_sample_every_percentile_hits_its_bucket(self):
        histogram = obs_metrics.Histogram()
        histogram.observe(3)  # lands in the <=5 bucket
        for p in (0, 1, 50, 99, 100):
            assert histogram.percentile(p) == 5.0

    def test_bucket_boundary_value_lands_in_its_own_bucket(self):
        histogram = obs_metrics.Histogram()
        histogram.observe(5)  # exactly on a bound: bisect_left -> that bucket
        assert histogram.as_dict()["buckets"]["5"] == 1
        assert histogram.as_dict()["buckets"]["2"] == 0
        assert histogram.percentile(100) == 5.0

    def test_percentile_walks_the_distribution(self):
        histogram = obs_metrics.Histogram()
        for value in (1, 1, 1, 1, 1, 1, 1, 1, 1, 250):
            histogram.observe(value)
        assert histogram.percentile(50) == 1.0
        assert histogram.percentile(90) == 1.0
        assert histogram.percentile(91) == 250.0

    def test_overflow_observation_reports_inf(self):
        histogram = obs_metrics.Histogram()
        histogram.observe(10_001)  # beyond the last default bound
        assert histogram.percentile(100) == float("inf")
        assert histogram.as_dict()["buckets"]["inf"] == 1

    def test_percentile_out_of_range_raises(self):
        histogram = obs_metrics.Histogram()
        with pytest.raises(ValueError):
            histogram.percentile(-1)
        with pytest.raises(ValueError):
            histogram.percentile(100.1)


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = obs_metrics.MetricsRegistry()
        registry.inc("pkts")
        registry.inc("pkts", 4)
        registry.set_gauge("depth", 2)
        registry.set_gauge("depth", 7)
        registry.observe("lat", 3)
        registry.observe("lat", 9_999_999)
        assert registry.counter("pkts") == 5
        assert registry.counter("never") == 0
        snap = registry.snapshot()
        assert snap["depth"] == 7
        assert snap["lat"]["count"] == 2
        assert snap["lat"]["buckets"]["inf"] == 2

    def test_snapshot_is_sorted(self):
        registry = obs_metrics.MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        assert list(registry.snapshot()) == ["a", "z"]

    def test_render_and_reset(self):
        registry = obs_metrics.MetricsRegistry()
        assert registry.render() == "(no metrics recorded)"
        registry.inc("pkts", 2)
        registry.observe("lat", 1)
        rendered = registry.render()
        assert "pkts" in rendered and "count=1" in rendered
        registry.reset()
        assert registry.snapshot() == {}

    def test_collecting_context_restores_previous(self):
        assert obs_metrics.METRICS is None
        with obs_metrics.collecting() as registry:
            assert obs_metrics.METRICS is registry
        assert obs_metrics.METRICS is None


class TestProfiler:
    def test_stage_accumulates(self):
        profiler = obs_profiling.Profiler()
        for _ in range(3):
            with profiler.stage("phase"):
                pass
        snap = profiler.snapshot()
        assert snap["phase"]["calls"] == 3
        assert snap["phase"]["wall_seconds"] >= 0
        assert "phase" in profiler.render()

    def test_module_stage_is_noop_when_disabled(self):
        assert obs_profiling.PROFILER is None
        with obs_profiling.stage("anything"):
            pass  # must not raise, must not record anywhere

    def test_profiled_context_restores_previous(self):
        with obs_profiling.profiled() as profiler:
            with obs_profiling.stage("s"):
                pass
            assert profiler.snapshot()["s"]["calls"] == 1
        assert obs_profiling.PROFILER is None


def test_observability_off_disables_all_three():
    obs_trace.enable_tracing()
    obs_metrics.enable_metrics()
    obs_profiling.enable_profiling()
    observability_off()
    assert obs_trace.TRACER is None
    assert obs_metrics.METRICS is None
    assert obs_profiling.PROFILER is None
