"""Unit tests for the ``repro.obs`` package itself (tracer, metrics, profiler)."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import observability_off
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment

pytestmark = pytest.mark.obs


class TestFlowTracer:
    def test_emit_records_seq_time_kind_fields(self):
        tracer = obs_trace.FlowTracer()
        tracer.emit("hop.traverse", 1.25, element="r1")
        tracer.emit("hop.drop", 2.5, element="r1", reason="ttl")
        events = tracer.events()
        assert [e.seq for e in events] == [0, 1]
        assert events[0].as_dict() == {
            "seq": 0,
            "time": 1.25,
            "kind": "hop.traverse",
            "element": "r1",
        }

    def test_ring_buffer_drops_oldest(self):
        tracer = obs_trace.FlowTracer(capacity=3)
        for i in range(5):
            tracer.emit("k", float(i))
        assert len(tracer) == 3
        assert tracer.dropped_events == 2
        assert [e.time for e in tracer.events()] == [2.0, 3.0, 4.0]

    def test_events_filters_by_kind_prefix(self):
        tracer = obs_trace.FlowTracer()
        tracer.emit("mbx.rule_match")
        tracer.emit("mbx.verdict")
        tracer.emit("mbx")
        tracer.emit("mbxother")
        assert len(tracer.events("mbx")) == 3
        assert len(tracer.events("mbx.rule_match")) == 1

    def test_tally_counts_per_kind(self):
        tracer = obs_trace.FlowTracer()
        for _ in range(3):
            tracer.emit("a")
        tracer.emit("b")
        assert tracer.tally() == {"a": 3, "b": 1}

    def test_span_pairs_enter_and_exit(self):
        tracer = obs_trace.FlowTracer()
        with tracer.span("detect", 1.0, env="testbed"):
            tracer.emit("inner")
        kinds = [e.kind for e in tracer.events()]
        assert kinds == ["span.enter", "inner", "span.exit"]

    def test_clear_restarts_numbering(self):
        tracer = obs_trace.FlowTracer()
        tracer.emit("a")
        tracer.clear()
        tracer.emit("b")
        assert tracer.events()[0].seq == 0

    def test_export_and_load_roundtrip(self, tmp_path):
        tracer = obs_trace.FlowTracer()
        tracer.emit("hop.traverse", 0.5, element="r1", ident=7)
        path = str(tmp_path / "t.jsonl")
        assert tracer.export_jsonl(path) == 1
        first = json.loads(open(path).readline())
        assert first == {
            "kind": "trace.header",
            "schema": obs_trace.TRACE_SCHEMA_VERSION,
            "events": 1,
            "dropped": 0,
        }
        records = obs_trace.load_jsonl(path)
        assert records == [
            {"seq": 0, "time": 0.5, "kind": "hop.traverse", "element": "r1", "ident": 7}
        ]

    def test_export_is_canonical_json(self):
        tracer = obs_trace.FlowTracer()
        tracer.emit("k", 1.0, zebra=1, alpha=2)
        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        line = buffer.getvalue().splitlines()[1]
        assert line == '{"alpha":2,"kind":"k","seq":0,"time":1.0,"zebra":1}'

    def test_structural_view_projects_stable_fields(self):
        events = [
            {"kind": "mbx.rule_match", "rule": "r", "time": 3.5, "sport": 40_001},
            {"kind": "hop.drop", "reason": "ttl", "element": "r1", "verdict": None},
        ]
        assert obs_trace.structural_view(events) == [
            {"kind": "mbx.rule_match", "rule": "r"},
            {"kind": "hop.drop", "element": "r1", "reason": "ttl"},
        ]

    def test_packet_fields_are_deterministic_identity(self):
        segment = TCPSegment(
            sport=40_001, dport=80, seq=1, ack=1, flags=TCPFlags.ACK, payload=b"abc"
        )
        packet = IPPacket(
            src="10.1.0.2", dst="203.0.113.50", transport=segment, identification=9
        )
        fields = obs_trace.packet_fields(packet)
        assert fields["src"] == "10.1.0.2"
        assert fields["sport"] == 40_001
        assert fields["ident"] == 9
        assert fields["plen"] == 3
        assert obs_trace.packet_fields(packet) == fields

    def test_tracing_context_restores_previous(self):
        assert obs_trace.TRACER is None
        with obs_trace.tracing() as outer:
            assert obs_trace.TRACER is outer
            with obs_trace.tracing() as inner:
                assert obs_trace.TRACER is inner
            assert obs_trace.TRACER is outer
        assert obs_trace.TRACER is None


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = obs_metrics.MetricsRegistry()
        registry.inc("pkts")
        registry.inc("pkts", 4)
        registry.set_gauge("depth", 2)
        registry.set_gauge("depth", 7)
        registry.observe("lat", 3)
        registry.observe("lat", 9_999_999)
        assert registry.counter("pkts") == 5
        assert registry.counter("never") == 0
        snap = registry.snapshot()
        assert snap["depth"] == 7
        assert snap["lat"]["count"] == 2
        assert snap["lat"]["buckets"]["inf"] == 2

    def test_snapshot_is_sorted(self):
        registry = obs_metrics.MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        assert list(registry.snapshot()) == ["a", "z"]

    def test_render_and_reset(self):
        registry = obs_metrics.MetricsRegistry()
        assert registry.render() == "(no metrics recorded)"
        registry.inc("pkts", 2)
        registry.observe("lat", 1)
        rendered = registry.render()
        assert "pkts" in rendered and "count=1" in rendered
        registry.reset()
        assert registry.snapshot() == {}

    def test_collecting_context_restores_previous(self):
        assert obs_metrics.METRICS is None
        with obs_metrics.collecting() as registry:
            assert obs_metrics.METRICS is registry
        assert obs_metrics.METRICS is None


class TestProfiler:
    def test_stage_accumulates(self):
        profiler = obs_profiling.Profiler()
        for _ in range(3):
            with profiler.stage("phase"):
                pass
        snap = profiler.snapshot()
        assert snap["phase"]["calls"] == 3
        assert snap["phase"]["wall_seconds"] >= 0
        assert "phase" in profiler.render()

    def test_module_stage_is_noop_when_disabled(self):
        assert obs_profiling.PROFILER is None
        with obs_profiling.stage("anything"):
            pass  # must not raise, must not record anywhere

    def test_profiled_context_restores_previous(self):
        with obs_profiling.profiled() as profiler:
            with obs_profiling.stage("s"):
                pass
            assert profiler.snapshot()["s"]["calls"] == 1
        assert obs_profiling.PROFILER is None


def test_observability_off_disables_all_three():
    obs_trace.enable_tracing()
    obs_metrics.enable_metrics()
    obs_profiling.enable_profiling()
    observability_off()
    assert obs_trace.TRACER is None
    assert obs_metrics.METRICS is None
    assert obs_profiling.PROFILER is None
