"""Tests for the `repro.runtime` worker pool.

The pool's contract is that parallel output is indistinguishable from
serial output: results come back in input order, per-task seeding is
derived (not inherited from ambient RNG state), and the experiment drivers
produce identical matrices on every backend.
"""

import random
from functools import partial

import pytest

from repro.core.evasion import ALL_TECHNIQUES
from repro.experiments import efficiency
from repro.experiments.figure4 import run_figure4
from repro.experiments.table3 import run_table3
from repro.runtime import Backend, WorkerPool, derive_seed, resolve_backend
from repro.runtime.pool import ENV_BACKEND, ENV_WORKERS

BACKENDS = ["serial", "thread", "process"]


def _square(x):
    return x * x


def _draw(_item):
    # Depends entirely on the RNG state the pool establishes for the task.
    return random.random()


class TestBackendResolution:
    def test_explicit_values(self):
        assert resolve_backend(Backend.PROCESS) is Backend.PROCESS
        assert resolve_backend("thread") is Backend.THREAD
        assert resolve_backend(" Serial ") is Backend.SERIAL

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "thread")
        assert resolve_backend() is Backend.THREAD
        assert WorkerPool().backend is Backend.THREAD

    def test_unset_and_unknown_fall_back_to_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend() is Backend.SERIAL
        monkeypatch.setenv(ENV_BACKEND, "gpu-cluster")
        assert resolve_backend() is Backend.SERIAL

    def test_worker_count_env(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert WorkerPool("thread").max_workers == 3
        assert WorkerPool("thread", max_workers=7).max_workers == 7
        monkeypatch.delenv(ENV_WORKERS)
        assert WorkerPool("thread").max_workers >= 1


class TestDeriveSeed:
    def test_stable_and_distinct(self):
        assert derive_seed(42, "figure4", 13, 0) == derive_seed(42, "figure4", 13, 0)
        assert derive_seed(42, "figure4", 13, 0) != derive_seed(42, "figure4", 13, 1)
        assert derive_seed(42, "a") != derive_seed(43, "a")

    def test_fits_in_63_bits(self):
        for i in range(64):
            assert 0 <= derive_seed(i, "x") < 2**63


class TestWorkerPoolMap:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_input_order(self, backend):
        pool = WorkerPool(backend, max_workers=4)
        assert pool.map(_square, range(20)) == [i * i for i in range(20)]

    def test_empty_input(self):
        assert WorkerPool("thread").map(_square, []) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_all_preserves_order(self, backend):
        pool = WorkerPool(backend, max_workers=4)
        thunks = [partial(_square, i) for i in range(8)]
        assert pool.run_all(thunks) == [i * i for i in range(8)]

    def test_seeded_map_identical_on_every_backend(self):
        draws = [
            WorkerPool(backend, max_workers=4).map(_draw, range(6), seed=7)
            for backend in BACKENDS
        ]
        assert draws[0] == draws[1] == draws[2]
        # ...and stable across calls, regardless of ambient RNG state.
        random.seed(999)
        assert WorkerPool("serial").map(_draw, range(6), seed=7) == draws[0]
        # A different base seed gives different draws.
        assert WorkerPool("serial").map(_draw, range(6), seed=8) != draws[0]


class TestParallelMatchesSerial:
    """The acceptance bar: parallel experiment output == serial output."""

    def test_table3_subset(self):
        techniques = ALL_TECHNIQUES[:4]
        kwargs = dict(
            env_names=("testbed", "iran"),
            techniques=techniques,
            include_os_matrix=False,
            characterize=False,
        )
        serial = run_table3(pool=WorkerPool("serial"), **kwargs)
        threaded = run_table3(pool=WorkerPool("thread", max_workers=2), **kwargs)

        def matrix(rows):
            return [
                (row.technique, {env: (c.cc, c.rs) for env, c in row.cells.items()})
                for row in rows
            ]

        assert matrix(serial) == matrix(threaded)

    def test_efficiency_process_pool(self):
        serial = efficiency.run_all(WorkerPool("serial"))
        parallel = efficiency.run_all(WorkerPool("process", max_workers=2))
        assert serial == parallel

    def test_figure4_thread_pool(self):
        kwargs = dict(hours=(3, 13), trials=1)
        serial = run_figure4(pool=WorkerPool("serial"), **kwargs)
        threaded = run_figure4(pool=WorkerPool("thread", max_workers=2), **kwargs)
        assert serial == threaded
