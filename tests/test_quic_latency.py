"""Tests for QUIC traffic (§6.2 footnote 10, §6.5) and the latency element."""

import pytest

from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.latency import LatencyElement
from repro.netsim.shaper import PolicyState
from repro.packets.flow import Direction, FiveTuple
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPSegment
from repro.replay.session import ReplaySession
from repro.traffic.quic import is_quic_initial, quic_initial, quic_video_trace


class TestQUICGeneration:
    def test_initial_is_recognizable(self):
        assert is_quic_initial(quic_initial())

    def test_non_quic_rejected(self):
        assert not is_quic_initial(b"GET / HTTP/1.1")
        assert not is_quic_initial(b"")

    def test_initial_padded(self):
        assert len(quic_initial()) >= 1100

    def test_payload_is_opaque(self):
        """No plaintext keywords — the point of QUIC vs. DPI."""
        packet = quic_initial()
        for keyword in (b"googlevideo", b"youtube", b"GET", b"Host"):
            assert keyword not in packet

    def test_deterministic(self):
        assert quic_initial(seed=5) == quic_initial(seed=5)
        assert quic_initial(seed=5) != quic_initial(seed=6)

    def test_trace_shape(self):
        trace = quic_video_trace(total_bytes=20_000)
        assert trace.protocol == "udp"
        assert trace.server_port == 443
        assert sum(len(p) for p in trace.server_payloads()) >= 20_000


class TestQUICEscapesClassifiers:
    def test_tmobile_does_not_classify_quic(self, tmobile):
        """§6.2: YouTube over QUIC is neither classified nor zero-rated."""
        outcome = ReplaySession(tmobile, quic_video_trace(total_bytes=250_000)).run()
        assert not outcome.differentiated
        assert outcome.delivered_ok
        assert tmobile.dpi().match_log == []

    def test_gfc_does_not_classify_quic(self, gfc):
        """§6.5: "users can view otherwise censored content ... simply by
        using the QUIC protocol"."""
        outcome = ReplaySession(gfc, quic_video_trace(total_bytes=30_000)).run()
        assert not outcome.differentiated
        assert outcome.rst_count == 0
        assert outcome.delivered_ok

    def test_testbed_stun_rule_ignores_quic(self, testbed):
        outcome = ReplaySession(testbed, quic_video_trace(total_bytes=30_000)).run()
        assert not outcome.differentiated


class TestLatencyElement:
    def packet(self):
        return IPPacket(
            src="10.1.0.2",
            dst="203.0.113.50",
            transport=TCPSegment(sport=40_000, dport=80, seq=1, payload=b"x"),
        )

    def ctx(self, clock):
        return TransitContext(clock=clock, inject_back=lambda p: None, inject_forward=lambda p: None)

    def test_base_delay_charged(self):
        clock = VirtualClock()
        element = LatencyElement(base_delay=0.01)
        for _ in range(10):
            element.process(self.packet(), Direction.CLIENT_TO_SERVER, self.ctx(clock))
        assert clock.now == pytest.approx(0.1)
        assert element.packets_delayed == 10

    def test_deprioritized_flows_pay_extra(self):
        clock = VirtualClock()
        policy = PolicyState()
        policy.throttle(FiveTuple.of(self.packet()), 1e6)
        element = LatencyElement(
            base_delay=0.001, deprioritized_extra=0.05, policy_state=policy
        )
        element.process(self.packet(), Direction.CLIENT_TO_SERVER, self.ctx(clock))
        assert clock.now == pytest.approx(0.051)

    def test_unmarked_flows_pay_base_only(self):
        clock = VirtualClock()
        element = LatencyElement(
            base_delay=0.001, deprioritized_extra=0.05, policy_state=PolicyState()
        )
        element.process(self.packet(), Direction.CLIENT_TO_SERVER, self.ctx(clock))
        assert clock.now == pytest.approx(0.001)

    def test_zero_delay_is_free(self):
        clock = VirtualClock()
        element = LatencyElement(base_delay=0.0)
        element.process(self.packet(), Direction.CLIENT_TO_SERVER, self.ctx(clock))
        assert clock.now == 0.0
        assert element.packets_delayed == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyElement(base_delay=-1)

    def test_reset(self):
        clock = VirtualClock()
        element = LatencyElement(base_delay=0.01)
        element.process(self.packet(), Direction.CLIENT_TO_SERVER, self.ctx(clock))
        element.reset()
        assert element.packets_delayed == 0
