"""Tests for the replay session/runner machinery itself."""

import pytest

from repro.core.evasion.base import EvasionContext
from repro.endpoint.rawclient import SegmentPlan
from repro.replay.runner import make_inert_payload
from repro.replay.session import ReplaySession
from repro.traffic.http import http_get_trace
from repro.traffic.stun import stun_trace


class TestOutcomeFields:
    def test_clean_replay_outcome(self, testbed, neutral_trace):
        outcome = ReplaySession(testbed, neutral_trace).run()
        assert outcome.delivered_ok
        assert outcome.server_response_ok
        assert not outcome.blocked
        assert outcome.rst_count == 0
        assert outcome.bytes_used == neutral_trace.total_bytes()
        assert outcome.payload_reached_server
        assert outcome.inert_reached_server is None  # nothing inert sent

    def test_evaded_property(self, testbed, neutral_trace):
        outcome = ReplaySession(testbed, neutral_trace).run()
        assert outcome.evaded  # trivially: no differentiation, intact delivery

    def test_udp_outcome(self, testbed, skype_trace):
        outcome = ReplaySession(testbed, skype_trace).run()
        assert outcome.delivered_ok
        assert outcome.server_response_ok

    def test_ports_unique_across_sessions(self, testbed, neutral_trace):
        s1 = ReplaySession(testbed, neutral_trace)
        s2 = ReplaySession(testbed, neutral_trace)
        s1.run()
        s2.run()
        assert s1.sport != s2.sport

    def test_server_port_override(self, testbed, neutral_trace):
        session = ReplaySession(testbed, neutral_trace, server_port=9999)
        session.run()
        assert session.server_port == 9999

    def test_technique_name_recorded(self, testbed, classified_trace):
        class _Named:
            name = "my-technique"

            def apply(self, runner):
                runner.send_default()

        outcome = ReplaySession(testbed, classified_trace).run(technique=_Named())
        assert outcome.technique == "my-technique"


class TestRunnerPrimitives:
    def make_runner(self, testbed, trace):
        session = ReplaySession(testbed, trace)

        captured = {}

        class _Capture:
            name = "capture"

            def apply(self, runner):
                captured["runner"] = runner
                runner.send_default()

        session.run(technique=_Capture())
        return captured["runner"]

    def test_overhead_accounting_for_inert(self, testbed, classified_trace):
        class _OneInert:
            name = "one-inert"

            def apply(self, runner):
                runner.send_inert(SegmentPlan(payload=make_inert_payload(32)))
                runner.send_default()

        outcome = ReplaySession(testbed, classified_trace).run(technique=_OneInert())
        assert outcome.overhead_packets == 1
        assert outcome.overhead_bytes > 32

    def test_pause_accounting(self, testbed, neutral_trace):
        class _Pause:
            name = "pause"

            def apply(self, runner):
                runner.pause(33.0)
                runner.send_default()

        outcome = ReplaySession(testbed, neutral_trace).run(technique=_Pause())
        assert outcome.overhead_seconds == 33.0
        assert outcome.elapsed >= 33.0

    def test_inert_marker_uniqueness(self):
        first = make_inert_payload(64, "x")
        second = make_inert_payload(64, "x")
        assert first != second
        assert len(first) == 64

    def test_send_pieces_preserves_stream(self, testbed, neutral_trace):
        class _Pieces:
            name = "pieces"

            def apply(self, runner):
                message = runner.client_messages[0]
                runner.send_pieces([(0, message[:10]), (10, message[10:])])

        outcome = ReplaySession(testbed, neutral_trace).run(technique=_Pieces())
        assert outcome.delivered_ok

    def test_tcp_helpers_reject_udp(self, testbed, skype_trace):
        class _Wrong:
            name = "wrong"

            def apply(self, runner):
                runner.send_message(b"x")

        with pytest.raises(TypeError):
            ReplaySession(testbed, skype_trace).run(technique=_Wrong())

    def test_tolerate_prefix_mode(self, testbed, classified_trace):
        """Bilateral deployment: dummy prefix byte plus server support (§6.5)."""

        class _DummyPrefix:
            name = "dummy-prefix"

            def apply(self, runner):
                runner.send_message(b"X")
                runner.send_default()

        outcome = ReplaySession(testbed, classified_trace, tolerate_prefix=True).run(
            technique=_DummyPrefix()
        )
        assert not outcome.differentiated  # the anchor broke
        assert outcome.delivered_ok  # the server skipped the prefix
