"""The flight recorder: sampling, byte budget, once-per-episode dumps, and
dump compatibility with the existing trace analysis machinery."""

import json

import pytest

from repro.cli.main import main as cli_main
from repro.obs import flight as obs_flight
from repro.obs.analyze import TraceIndex
from repro.obs.flight import FlightRecorder

pytestmark = pytest.mark.obs


class TestSampling:
    def test_one_in_n_stride(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_every=4)
        kept = [recorder.note("proxy.flow", flow=i) for i in range(16)]
        assert kept == [True, False, False, False] * 4
        stats = recorder.stats()
        assert stats["offered"] == 16 and stats["sampled"] == 4

    def test_first_offer_is_always_sampled(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_every=1000)
        assert recorder.note("proxy.flow", flow=0)

    def test_capacity_evicts_oldest(self, tmp_path):
        recorder = FlightRecorder(tmp_path, capacity=8, sample_every=1)
        for i in range(50):
            recorder.note("proxy.flow", flow=i)
        stats = recorder.stats()
        assert stats["ring_records"] == 8
        assert stats["evicted"] == 42

    def test_byte_budget_bounds_the_ring(self, tmp_path):
        recorder = FlightRecorder(
            tmp_path, capacity=10_000, sample_every=1, byte_budget=2048
        )
        for i in range(500):
            recorder.note("proxy.flow", flow=i, technique="tcp-segment-reorder")
        stats = recorder.stats()
        assert stats["ring_bytes"] <= 2048
        assert stats["ring_records"] < 500
        assert stats["evicted"] > 0

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path, capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path, sample_every=0)
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path, byte_budget=10)


class TestEpisodes:
    def test_dump_fires_exactly_once_per_episode(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_every=1)
        for i in range(5):
            recorder.note("proxy.flow", flow=i)
        first = recorder.trip("overload_shed", episode="overload", flow=5)
        assert first is not None and first.exists()
        # The storm continues: hundreds more trips, zero more dumps.
        for i in range(200):
            assert recorder.trip("overload_shed", episode="overload", flow=6 + i) is None
        stats = recorder.stats()
        assert stats["dumps"] == 1
        assert stats["suppressed_trips"] == 200
        assert stats["open_episodes"] == ["overload"]

    def test_recover_rearms_the_episode(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_every=1)
        assert recorder.trip("overload_shed", episode="overload") is not None
        recorder.recover("overload")
        second = recorder.trip("overload_shed", episode="overload")
        assert second is not None
        assert recorder.stats()["dumps"] == 2
        assert second.name != "flight-001-overload-shed.jsonl"

    def test_distinct_episodes_dump_independently(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_every=1)
        assert recorder.trip("step_down", episode="step_down:1") is not None
        assert recorder.trip("step_down", episode="step_down:2") is not None
        assert recorder.trip("circuit_open", episode="circuit") is not None
        assert recorder.stats()["dumps"] == 3

    def test_episode_defaults_to_reason(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_every=1)
        assert recorder.trip("slo_p99") is not None
        assert recorder.trip("slo_p99") is None
        recorder.recover()  # blanket recover closes everything
        assert recorder.trip("slo_p99") is not None


class TestDumpFormat:
    def test_dump_is_trace_shaped_jsonl(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_every=1)
        for i in range(3):
            recorder.note("proxy.flow", flow=i, verdict="evaded", time_s=float(i))
        path = recorder.trip("step_down", episode="sd", time_s=3.0, flow=3)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        header, records = lines[0], lines[1:]
        assert header["kind"] == "trace.header"
        assert header["schema"] == 1
        assert header["events"] == len(records) == 4  # 3 notes + the trip
        assert header["flight"]["reason"] == "step_down"
        # Canonical JSON: key-sorted, compact.
        for raw, parsed in zip(path.read_text().splitlines(), lines):
            assert raw == json.dumps(parsed, sort_keys=True, separators=(",", ":"))
        assert records[-1]["kind"] == "flight.trip"
        seqs = [record["seq"] for record in records]
        assert seqs == sorted(seqs)

    def test_trace_index_reads_a_dump(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_every=1)
        for i in range(6):
            recorder.note("proxy.flow", flow=i, verdict="evaded")
        path = recorder.trip("circuit_open", episode="circuit", task=2)
        index = TraceIndex.load(str(path))
        assert index.kinds() == {"flight.trip": 1, "proxy.flow": 6}
        trips = index.query(kind="flight.trip")
        assert trips[0]["reason"] == "circuit_open"
        assert trips[0]["episode"] == "circuit"

    def test_cli_obs_flight_inspects_a_dump(self, tmp_path, capsys):
        recorder = FlightRecorder(tmp_path, sample_every=1)
        recorder.note("proxy.flow", flow=0, verdict="shed")
        path = recorder.trip("overload_shed", episode="overload", fullness=0.97)
        assert cli_main(["obs", "flight", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trip: overload_shed (episode overload)" in out
        assert "proxy.flow" in out

    def test_cli_obs_flight_json_mode(self, tmp_path, capsys):
        recorder = FlightRecorder(tmp_path, sample_every=1)
        recorder.note("proxy.flow", flow=0)
        path = recorder.trip("slo_p99")
        assert cli_main(["obs", "flight", str(path), "--json", "--kind", "flight.trip"]) == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert len(lines) == 1 and lines[0]["reason"] == "slo_p99"

    def test_cli_obs_flight_missing_file(self, tmp_path, capsys):
        assert cli_main(["obs", "flight", str(tmp_path / "nope.jsonl")]) == 2


class TestGlobals:
    def test_enable_disable(self, tmp_path):
        recorder = obs_flight.enable_flight(tmp_path, sample_every=2)
        assert obs_flight.FLIGHT is recorder
        obs_flight.disable_flight()
        assert obs_flight.FLIGHT is None
