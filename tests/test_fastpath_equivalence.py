"""Equivalence tests for the packet fast path.

The vectorized checksum, the memoized wire caches, and the fragment
reassembly shortcut must be observably identical to the original scalar /
recompute-everything implementations.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.packets.checksum import internet_checksum, verify_checksum
from repro.packets.fragment import fragment_packet, reassemble_fragments
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPSegment
from repro.packets.udp import UDPDatagram

payloads = st.binary(min_size=0, max_size=1024)


def scalar_checksum(data: bytes) -> int:
    """The original word-at-a-time RFC 1071 implementation (reference)."""
    if len(data) % 2:
        data = bytes(data) + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class TestVectorizedChecksum:
    @given(payloads)
    def test_matches_scalar(self, data):
        assert internet_checksum(data) == scalar_checksum(data)

    @given(st.binary(min_size=1, max_size=257).filter(lambda d: len(d) % 2 == 1))
    def test_odd_lengths_match_scalar(self, data):
        assert internet_checksum(data) == scalar_checksum(data)

    def test_empty(self):
        assert internet_checksum(b"") == scalar_checksum(b"") == 0xFFFF

    def test_all_zero(self):
        for n in (1, 2, 3, 20, 63):
            assert internet_checksum(b"\x00" * n) == scalar_checksum(b"\x00" * n)

    def test_ffff_residue(self):
        # Sums congruent to 0 mod 0xFFFF exercise the zero-class corner.
        assert internet_checksum(b"\xff\xff") == scalar_checksum(b"\xff\xff")
        assert internet_checksum(b"\xff\xfe\x00\x01") == scalar_checksum(b"\xff\xfe\x00\x01")

    @given(payloads)
    def test_accepts_views_without_copy(self, data):
        assert internet_checksum(memoryview(data)) == scalar_checksum(data)
        assert internet_checksum(bytearray(data)) == scalar_checksum(data)

    @given(payloads)
    def test_round_trip_verify(self, data):
        csum = internet_checksum(data)
        padded = data + b"\x00" if len(data) % 2 else data
        assert verify_checksum(padded + csum.to_bytes(2, "big"))


class TestWireCacheInvalidation:
    def test_tcp_cache_hit_and_invalidation(self):
        seg = TCPSegment(sport=1234, dport=80, seq=7, payload=b"hello")
        first = seg.to_bytes("10.0.0.1", "10.0.0.2")
        assert seg.to_bytes("10.0.0.1", "10.0.0.2") is first  # memoized
        seg.seq = 8
        second = seg.to_bytes("10.0.0.1", "10.0.0.2")
        assert second != first
        assert second == TCPSegment(sport=1234, dport=80, seq=8, payload=b"hello").to_bytes(
            "10.0.0.1", "10.0.0.2"
        )

    def test_tcp_cache_respects_addresses(self):
        seg = TCPSegment(sport=1, dport=2, payload=b"x")
        a = seg.to_bytes("10.0.0.1", "10.0.0.2")
        b = seg.to_bytes("10.0.0.1", "10.0.0.3")
        assert a != b  # pseudo-header differs
        fresh = TCPSegment(sport=1, dport=2, payload=b"x")
        assert b == fresh.to_bytes("10.0.0.1", "10.0.0.3")

    def test_checksum_override_then_clear(self):
        seg = TCPSegment(sport=9, dport=10, payload=b"abc")
        good = seg.to_bytes("1.2.3.4", "5.6.7.8")
        seg.checksum = 0xDEAD
        forged = seg.to_bytes("1.2.3.4", "5.6.7.8")
        assert forged[16:18] == b"\xde\xad"
        seg.checksum = None  # what TCPChecksumNormalizer does
        assert seg.to_bytes("1.2.3.4", "5.6.7.8") == good

    def test_udp_cache_and_invalidation(self):
        dgram = UDPDatagram(sport=53, dport=53, payload=b"query")
        first = dgram.to_bytes("10.0.0.1", "10.0.0.2")
        assert dgram.to_bytes("10.0.0.1", "10.0.0.2") is first
        dgram.payload = b"other"
        assert dgram.to_bytes("10.0.0.1", "10.0.0.2") == UDPDatagram(
            sport=53, dport=53, payload=b"other"
        ).to_bytes("10.0.0.1", "10.0.0.2")

    def test_ip_wire_cache_tracks_transport_mutation(self):
        packet = IPPacket(
            src="10.0.0.1",
            dst="10.0.0.2",
            transport=TCPSegment(sport=5, dport=80, payload=b"GET /"),
        )
        first = packet.to_bytes()
        assert packet.to_bytes() is first
        packet.tcp.payload = b"POST /"  # mutation behind the IP header's back
        second = packet.to_bytes()
        assert second != first
        reference = IPPacket(
            src="10.0.0.1",
            dst="10.0.0.2",
            transport=TCPSegment(sport=5, dport=80, payload=b"POST /"),
        )
        assert second == reference.to_bytes()

    def test_ip_copy_is_independent(self):
        packet = IPPacket(
            src="10.0.0.1",
            dst="10.0.0.2",
            transport=TCPSegment(sport=5, dport=80, payload=b"data"),
            ttl=64,
        )
        packet.to_bytes()  # warm the caches
        hop_copy = packet.copy(ttl=63, checksum=None)
        assert hop_copy.ttl == 63
        assert hop_copy.transport is not packet.transport
        hop_copy.tcp.seq = 999
        assert packet.tcp.seq == 0  # original untouched
        reference = IPPacket(
            src="10.0.0.1",
            dst="10.0.0.2",
            transport=TCPSegment(sport=5, dport=80, payload=b"data"),
            ttl=63,
        )
        assert packet.copy(ttl=63, checksum=None).to_bytes() == reference.to_bytes()

    def test_ip_copy_rejects_unknown_fields(self):
        packet = IPPacket(src="10.0.0.1", dst="10.0.0.2")
        try:
            packet.copy(nonsense=1)
        except TypeError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("expected TypeError for unknown field")

    def test_verify_checksum_equivalence(self):
        seg = TCPSegment(sport=1, dport=2, seq=3, payload=b"payload")
        wire = seg.to_bytes("10.0.0.1", "10.0.0.2")
        parsed = TCPSegment.from_bytes(wire)
        assert parsed.verify_checksum("10.0.0.1", "10.0.0.2")
        assert not parsed.verify_checksum("10.0.0.1", "10.0.0.9")


class TestFragmentShortcut:
    def test_reassembly_matches_wire_round_trip(self):
        packet = IPPacket(
            src="10.0.0.1",
            dst="10.0.0.2",
            transport=TCPSegment(sport=1111, dport=80, seq=100, payload=b"A" * 64),
        )
        fragments = fragment_packet(packet, 24)
        assert len(fragments) > 1
        whole = reassemble_fragments(fragments)
        assert whole is not None
        # The typed transport and the wire bytes must match what the old
        # serialize→parse round-trip produced.
        round_trip = IPPacket.from_bytes(whole.to_bytes())
        assert isinstance(whole.transport, TCPSegment)
        assert whole.transport.payload == b"A" * 64
        assert whole.to_bytes() == round_trip.to_bytes()

    def test_reassembly_udp_and_unparseable(self):
        udp_packet = IPPacket(
            src="10.0.0.1",
            dst="10.0.0.2",
            transport=UDPDatagram(sport=4000, dport=3478, payload=b"B" * 40),
        )
        whole = reassemble_fragments(fragment_packet(udp_packet, 16))
        assert isinstance(whole.transport, UDPDatagram)
        assert whole.transport.payload == b"B" * 40

        raw_packet = IPPacket(
            src="10.0.0.1", dst="10.0.0.2", transport=b"\x01\x02\x03" * 8, protocol=0xFD
        )
        whole = reassemble_fragments(fragment_packet(raw_packet, 8))
        assert whole.transport == b"\x01\x02\x03" * 8
