"""Engine inspection limits: byte windows, UDP windows, scope edge cases."""

from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.rules import MatchRule
from repro.middlebox.policy import RulePolicy

from tests.test_engine import Driver, GET, NEUTRAL, make_engine


class TestByteLimit:
    def make(self, byte_limit):
        return make_engine(
            reassembly=ReassemblyMode.IN_ORDER,
            inspect_packet_limit=None,
            inspect_byte_limit=byte_limit,
            require_protocol_anchor=False,
        )

    def test_match_within_byte_window(self):
        engine, _ = self.make(byte_limit=1024)
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        assert driver.classification() == "video"

    def test_field_beyond_byte_window_missed(self):
        engine, _ = self.make(byte_limit=16)
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)  # "video.example.com" starts past byte 16
        assert driver.classification() != "video"

    def test_byte_window_exhaustion_is_final(self):
        engine, _ = self.make(byte_limit=16)
        driver = Driver(engine)
        driver.syn()
        driver.data(b"A" * 32)
        assert driver.classification() == "unclassified-final"
        driver.data(GET)
        assert driver.classification() == "unclassified-final"


class TestWindowEdges:
    def test_limit_one_only_first_packet(self):
        engine, _ = make_engine(inspect_packet_limit=1, require_protocol_anchor=False)
        driver = Driver(engine)
        driver.syn()
        driver.data(NEUTRAL)
        driver.data(GET)
        assert driver.classification() == "unclassified-final"

    def test_match_on_window_edge(self):
        engine, _ = make_engine(inspect_packet_limit=2, require_protocol_anchor=False)
        driver = Driver(engine)
        driver.syn()
        driver.data(NEUTRAL)
        driver.data(GET)  # exactly the last inspected packet
        assert driver.classification() == "video"

    def test_no_match_and_forget_keeps_looking(self):
        engine, _ = make_engine(
            inspect_packet_limit=None,
            match_and_forget=False,
            require_protocol_anchor=False,
        )
        driver = Driver(engine)
        driver.syn()
        for _ in range(8):
            driver.data(NEUTRAL)
        driver.data(GET)
        assert driver.classification() == "video"

    def test_pure_acks_not_counted(self):
        engine, _ = make_engine(inspect_packet_limit=1, require_protocol_anchor=False)
        driver = Driver(engine)
        driver.syn()
        for _ in range(5):
            driver.data(b"")  # empty segments must not burn the window
        driver.data(GET)
        assert driver.classification() == "video"


class TestScope:
    def test_multiple_rules_first_match_wins(self):
        engine, _ = make_engine(
            rules=[
                MatchRule(name="first", keywords=[b"video.example.com"]),
                MatchRule(name="second", keywords=[b"GET"]),
            ],
        )
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        assert driver.classification() == "first"

    def test_rule_port_scope_vs_engine_port_scope(self):
        engine, _ = make_engine(
            rules=[
                MatchRule(
                    name="video80",
                    keywords=[b"video.example.com"],
                    ports=frozenset({80}),
                )
            ],
        )
        on_80 = Driver(engine, sport=40_500, dport=80)
        on_80.syn()
        on_80.data(GET)
        assert on_80.classification() == "video80"
        on_81 = Driver(engine, sport=40_501, dport=81)
        on_81.syn()
        on_81.data(GET)
        assert on_81.classification() != "video80"

    def test_ever_matched(self):
        engine, _ = make_engine()
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        assert engine.ever_matched("10.1.0.2", driver.sport)
        assert not engine.ever_matched("10.1.0.2", driver.sport + 1)
