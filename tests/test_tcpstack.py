"""Unit tests for the server-side TCP stack."""

import pytest

from repro.endpoint.apps import EchoApp
from repro.endpoint.osmodel import LINUX, WINDOWS
from repro.endpoint.rawclient import SegmentPlan
from repro.endpoint.tcpstack import TCPServerStack
from repro.packets.fragment import fragment_packet
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment

from tests.conftest import CLIENT, SERVER, make_direct_link


class TestHandshakeAndDelivery:
    def test_handshake(self):
        _clock, _path, stack, client = make_direct_link()
        assert client.connect()
        assert stack.connection_count() == 1

    def test_in_order_delivery(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.send_payload(b"hello world")
        assert stack.stream_for(CLIENT, client.sport, 80) == b"hello world"

    def test_echo_response(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.send_payload(b"ping")
        assert client.server_stream() == b"ping"

    def test_multi_segment_delivery(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.send_payload(b"A" * 5000, mss=1460)
        assert stack.stream_for(CLIENT, client.sport, 80) == b"A" * 5000

    def test_out_of_order_reassembly(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        base = client.next_seq
        client.send_plan(SegmentPlan(payload=b"world", seq=base + 5))
        client.send_plan(SegmentPlan(payload=b"hello", seq=base))
        assert stack.stream_for(CLIENT, client.sport, 80) == b"helloworld"

    def test_duplicate_data_ignored(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.send_payload(b"abc")
        base = client.next_seq
        client.send_plan(SegmentPlan(payload=b"abc", seq=base - 3))  # pure retransmit
        assert stack.stream_for(CLIENT, client.sport, 80) == b"abc"

    def test_overlap_trimmed(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.send_payload(b"abcdef")
        base = client.next_seq
        client.send_plan(SegmentPlan(payload=b"defGHI", seq=base - 3))
        assert stack.stream_for(CLIENT, client.sport, 80) == b"abcdefGHI"

    def test_fin_closes(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.send_payload(b"x")
        client.close()
        client.send_plan(SegmentPlan(payload=b"late"))
        assert stack.stream_for(CLIENT, client.sport, 80) == b"x"

    def test_rst_closes(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.abort()
        client.send_plan(SegmentPlan(payload=b"late"))
        assert stack.stream_for(CLIENT, client.sport, 80) == b""


class TestValidationIntegration:
    def test_bad_checksum_segment_ignored(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.send_plan(SegmentPlan(payload=b"junk", tcp_checksum=0xDEAD, advances_seq=False))
        client.send_payload(b"real")
        assert stack.stream_for(CLIENT, client.sport, 80) == b"real"

    def test_windows_rsts_invalid_flags(self):
        _clock, _path, stack, client = make_direct_link(server_os=WINDOWS)
        client.connect()
        client.send_plan(
            SegmentPlan(
                payload=b"junk",
                flags=TCPFlags.SYN | TCPFlags.FIN | TCPFlags.ACK,
                advances_seq=False,
            )
        )
        assert client.received_rst()
        assert stack.rst_sent

    def test_linux_drops_invalid_flags_silently(self):
        _clock, _path, stack, client = make_direct_link(server_os=LINUX)
        client.connect()
        client.send_plan(
            SegmentPlan(
                payload=b"junk",
                flags=TCPFlags.SYN | TCPFlags.FIN | TCPFlags.ACK,
                advances_seq=False,
            )
        )
        assert not client.received_rst()
        client.send_payload(b"real")
        assert stack.stream_for(CLIENT, client.sport, 80) == b"real"

    def test_linux_delivers_invalid_options_payload(self):
        """On Linux the malformed-IP-options inert packet corrupts the stream."""
        from repro.packets.options import invalid_ip_option

        _clock, _path, stack, client = make_direct_link(server_os=LINUX)
        client.connect()
        client.send_plan(
            SegmentPlan(payload=b"JUNK", ip_options=invalid_ip_option(), advances_seq=False)
        )
        client.send_payload(b"real")
        stream = stack.stream_for(CLIENT, client.sport, 80)
        assert stream.startswith(b"JUNK")  # the inert bytes won the seq race

    def test_raw_arrivals_include_dropped(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.send_plan(SegmentPlan(payload=b"junk", tcp_checksum=0xDEAD, advances_seq=False))
        payloads = [p.app_payload for p in stack.raw_arrivals]
        assert b"junk" in payloads

    def test_fragmented_packet_reassembled_by_os(self):
        _clock, path, stack, client = make_direct_link()
        client.connect()
        segment = TCPSegment(
            sport=client.sport,
            dport=80,
            seq=client.next_seq,
            ack=client.server_ack,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            payload=b"F" * 100,
        )
        packet = IPPacket(src=CLIENT, dst=SERVER, transport=segment)
        for fragment in fragment_packet(packet, 40):
            client.send_raw(fragment)
        assert stack.stream_for(CLIENT, client.sport, 80) == b"F" * 100

    def test_port_scoping_rsts_unknown_port(self):
        from repro.netsim.clock import VirtualClock
        from repro.netsim.path import Path
        from repro.endpoint.rawclient import RawTCPClient

        path = Path(VirtualClock(), [])
        stack = TCPServerStack(SERVER, app=EchoApp(), ports={80})
        path.server_endpoint = stack
        client = RawTCPClient(path, CLIENT, SERVER, sport=40_009, dport=8080)
        assert not client.connect()
        assert client.received_rst()

    def test_reset(self):
        _clock, _path, stack, client = make_direct_link()
        client.connect()
        client.send_payload(b"x")
        stack.reset()
        assert stack.connection_count() == 0
        assert stack.raw_arrivals == []
