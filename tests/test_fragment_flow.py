"""Unit tests for IP fragmentation/reassembly and flow keys."""

import pytest

from repro.packets.flow import Direction, FiveTuple
from repro.packets.fragment import fragment_packet, reassemble_fragments
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPSegment
from repro.packets.udp import UDPDatagram


def big_packet(payload=b"x" * 100):
    return IPPacket(
        src="10.0.0.1",
        dst="10.0.0.2",
        transport=TCPSegment(sport=1, dport=80, seq=5, payload=payload),
    )


class TestFragmentation:
    def test_fragments_cover_payload(self):
        packet = big_packet()
        fragments = fragment_packet(packet, 32)
        assert len(fragments) > 1
        total = sum(
            len(f.transport) for f in fragments if isinstance(f.transport, bytes)
        )
        assert total == packet.wire_length() - packet.header_length

    def test_offsets_are_8_byte_units(self):
        for fragment in fragment_packet(big_packet(), 32):
            assert fragment.frag_offset % 1 == 0  # stored in units already
        offsets = [f.frag_offset for f in fragment_packet(big_packet(), 32)]
        assert offsets == sorted(offsets)

    def test_last_fragment_has_no_mf(self):
        fragments = fragment_packet(big_packet(), 32)
        assert not fragments[-1].mf
        assert all(f.mf for f in fragments[:-1])

    def test_small_packet_unfragmented(self):
        packet = big_packet(b"x")
        assert fragment_packet(packet, 1000) == [packet]

    def test_df_refuses(self):
        packet = big_packet()
        packet.df = True
        with pytest.raises(ValueError):
            fragment_packet(packet, 32)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            fragment_packet(big_packet(), 4)


class TestReassembly:
    def test_in_order(self):
        packet = big_packet()
        whole = reassemble_fragments(fragment_packet(packet, 32))
        assert whole is not None
        assert whole.tcp is not None
        assert whole.tcp.payload == packet.tcp.payload

    def test_out_of_order(self):
        packet = big_packet()
        fragments = fragment_packet(packet, 24)
        whole = reassemble_fragments(list(reversed(fragments)))
        assert whole is not None
        assert whole.tcp.payload == packet.tcp.payload

    def test_missing_fragment_returns_none(self):
        fragments = fragment_packet(big_packet(), 24)
        assert reassemble_fragments(fragments[:-1]) is None
        assert reassemble_fragments(fragments[1:]) is None

    def test_empty_returns_none(self):
        assert reassemble_fragments([]) is None

    def test_udp_reassembles_typed(self):
        packet = IPPacket(
            src="10.0.0.1",
            dst="10.0.0.2",
            transport=UDPDatagram(sport=1, dport=53, payload=b"u" * 64),
        )
        whole = reassemble_fragments(fragment_packet(packet, 24))
        assert whole is not None and whole.udp is not None
        assert whole.udp.payload == b"u" * 64


class TestFiveTuple:
    def test_of_tcp_packet(self):
        ft = FiveTuple.of(big_packet())
        assert ft == FiveTuple("10.0.0.1", 1, "10.0.0.2", 80, 6)

    def test_of_non_transport_is_none(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2", transport=b"raw")
        assert FiveTuple.of(packet) is None

    def test_normalized_symmetric(self):
        ft = FiveTuple("10.0.0.9", 999, "10.0.0.2", 80, 6)
        assert ft.normalized() == ft.reversed.normalized()

    def test_reversed(self):
        ft = FiveTuple("a.b.c.d", 1, "e.f.g.h", 2, 17)
        assert ft.reversed.src == "e.f.g.h"
        assert ft.reversed.reversed == ft

    def test_direction_reversed(self):
        assert Direction.CLIENT_TO_SERVER.reversed is Direction.SERVER_TO_CLIENT
        assert Direction.SERVER_TO_CLIENT.reversed is Direction.CLIENT_TO_SERVER

    def test_direction_str(self):
        assert str(Direction.CLIENT_TO_SERVER) == "c2s"
