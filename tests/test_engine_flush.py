"""Engine state retention: timeouts, RST flushing, endpoint blocking."""

from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.policy import RulePolicy
from repro.middlebox.rules import MatchRule
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.shaper import PolicyState
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment

from tests.test_engine import CLIENT, SERVER, Driver, GET, NEUTRAL, make_engine


class TestTimeouts:
    def test_post_match_timeout_flushes_verdict(self):
        engine, policy = make_engine(post_match_timeout=120.0)
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        assert driver.classification() == "video"
        driver.clock.advance(121.0)
        driver.data(b"more")
        assert driver.classification() is None
        assert not policy.throttled_flows  # marks cleared with the state

    def test_verdict_survives_shorter_pause(self):
        engine, _ = make_engine(post_match_timeout=120.0)
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        driver.clock.advance(60.0)
        driver.data(b"more")
        assert driver.classification() == "video"

    def test_pre_match_timeout_unlocks_tracking(self):
        engine, _ = make_engine(pre_match_timeout=120.0)
        driver = Driver(engine)
        driver.syn()
        driver.clock.advance(130.0)
        driver.data(GET)  # flow no longer tracked: not inspected
        assert driver.classification() is None

    def test_no_timeout_retains_forever(self):
        engine, _ = make_engine(pre_match_timeout=None, post_match_timeout=None)
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        driver.clock.advance(100_000.0)
        driver.data(b"more")
        assert driver.classification() == "video"

    def test_callable_timeout(self):
        calls = []

        def timeout(now):
            calls.append(now)
            return 50.0

        engine, _ = make_engine(pre_match_timeout=timeout)
        driver = Driver(engine)
        driver.syn()
        driver.clock.advance(60.0)
        driver.data(GET)
        assert driver.classification() is None
        assert calls


class TestRSTHandling:
    def test_rst_timeout_reduction(self):
        """The testbed shortens its 120 s timeout to 10 s after a RST."""
        engine, _ = make_engine(post_match_timeout=120.0, rst_timeout_reduction=10.0)
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        driver.rst()
        driver.clock.advance(12.0)
        driver.data(b"more")
        assert driver.classification() is None

    def test_rst_flush_post_match_immediate(self):
        """T-Mobile flushes classification immediately on a RST."""
        engine, policy = make_engine(rst_flush_post_match=True)
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        driver.rst()
        assert driver.classification() is None
        assert not policy.zero_rated_flows

    def test_rst_flush_pre_match_only(self):
        """The GFC: a RST before the match flushes; after, nothing changes."""
        engine, _ = make_engine(rst_flush_pre_match=True, rst_flush_post_match=False)
        # before the match:
        driver = Driver(engine)
        driver.syn()
        driver.rst()
        driver.data(GET)
        assert driver.classification() is None
        # after the match:
        driver2 = Driver(engine, sport=40_200)
        driver2.syn()
        driver2.data(GET)
        driver2.rst()
        assert driver2.classification() == "video"

    def test_rst_without_flush_config_is_inert(self):
        engine, _ = make_engine()
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        driver.rst()
        assert driver.classification() == "video"


class TestBlocking:
    def blocking_engine(self, **overrides):
        policy = PolicyState()
        return make_engine(
            rules=[
                MatchRule(
                    name="censored",
                    keywords=[b"video.example.com"],
                    policy=RulePolicy.block_with_rsts(to_client=3, to_server=1),
                )
            ],
            policy_state=policy,
            **overrides,
        )

    def test_match_injects_rsts(self):
        engine, _ = self.blocking_engine()
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        rsts_back = [p for p in driver.injected_back if p.tcp and p.tcp.flags & TCPFlags.RST]
        rsts_fwd = [p for p in driver.injected_forward if p.tcp and p.tcp.flags & TCPFlags.RST]
        assert len(rsts_back) == 3  # toward the client
        assert len(rsts_fwd) == 1  # toward the server

    def test_block_page_injected(self):
        engine, _ = make_engine(
            rules=[
                MatchRule(
                    name="censored",
                    keywords=[b"video.example.com"],
                    policy=RulePolicy.block_with_page(),
                )
            ]
        )
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        pages = [
            p for p in driver.injected_back if p.tcp and b"403 Forbidden" in p.tcp.payload
        ]
        assert len(pages) == 1

    def test_endpoint_blocklist_after_threshold(self):
        engine, policy = self.blocking_engine(
            endpoint_block_threshold=2, endpoint_block_duration=90.0
        )
        for sport in (40_300, 40_301):
            driver = Driver(engine, sport=sport)
            driver.syn()
            driver.data(GET)
        assert (SERVER, 80) in policy.blocked_endpoints
        # a brand new connection (even innocuous) is refused
        fresh = Driver(engine, sport=40_302)
        fresh.syn()
        rsts = [p for p in fresh.injected_back if p.tcp and p.tcp.flags & TCPFlags.RST]
        assert rsts

    def test_endpoint_blocklist_expires(self):
        engine, policy = self.blocking_engine(
            endpoint_block_threshold=2, endpoint_block_duration=90.0
        )
        clockless = None
        for sport in (40_310, 40_311):
            driver = Driver(engine, sport=sport)
            driver.syn()
            driver.data(GET)
            clockless = driver
        clockless.clock.advance(91.0)
        fresh = Driver(engine, sport=40_312)
        fresh.clock = clockless.clock  # share time
        fresh.ctx = TransitContext(
            clock=fresh.clock,
            inject_back=fresh.injected_back.append,
            inject_forward=fresh.injected_forward.append,
        )
        fresh.syn()
        fresh.data(NEUTRAL)
        assert (SERVER, 80) not in policy.blocked_endpoints

    def test_different_port_not_blocked(self):
        engine, policy = self.blocking_engine(endpoint_block_threshold=2)
        for sport in (40_320, 40_321):
            driver = Driver(engine, sport=sport)
            driver.syn()
            driver.data(GET)
        fresh = Driver(engine, sport=40_322, dport=8080)
        fresh.syn()
        assert not [p for p in fresh.injected_back if p.tcp and p.tcp.flags & TCPFlags.RST]


class TestStatelessMode:
    def stateless_engine(self):
        return make_engine(
            rules=[
                MatchRule(
                    name="censored",
                    keywords=[b"video.example.com"],
                    ports=frozenset({80}),
                    policy=RulePolicy.block_with_page(),
                )
            ],
            track_flows=False,
            match_and_forget=False,
            require_protocol_anchor=False,
            ports=frozenset({80}),
        )

    def test_matches_without_syn(self):
        engine, _ = self.stateless_engine()
        driver = Driver(engine)
        driver.data(GET)  # no handshake at all
        assert driver.injected_back  # block page + RSTs

    def test_every_packet_inspected(self):
        engine, _ = self.stateless_engine()
        driver = Driver(engine)
        driver.syn()
        for _ in range(12):
            driver.data(b"padding-padding")
        driver.injected_back.clear()
        driver.data(GET)  # way past any window
        assert driver.injected_back

    def test_inert_packet_with_blocked_content_triggers(self):
        """Table 3 footnote 3: Iran blocks on inert packets too."""
        engine, _ = self.stateless_engine()
        driver = Driver(engine)
        driver.syn()
        driver.data(GET, advance=False, checksum=0xDEAD)  # invalid but inspected
        assert driver.injected_back

    def test_port_scoped(self):
        engine, _ = self.stateless_engine()
        driver = Driver(engine, dport=8080)
        driver.data(GET)
        assert not driver.injected_back
