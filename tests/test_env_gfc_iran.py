"""GFC and Iran environment behaviour (§6.5, §6.6)."""

import pytest

from repro.replay.session import ReplaySession
from repro.traffic.http import http_get_trace


class TestGFC:
    def test_censored_host_blocked_with_rsts(self, gfc, censored_trace):
        outcome = ReplaySession(gfc, censored_trace).run()
        assert outcome.differentiated
        assert 3 <= outcome.rst_count <= 5  # "blocked by 3-5 RST packets"
        assert not outcome.server_response_ok

    def test_harmless_host_untouched(self, gfc):
        outcome = ReplaySession(gfc, http_get_trace("harmless.org")).run()
        assert not outcome.differentiated
        assert outcome.delivered_ok and outcome.server_response_ok

    def test_blocks_on_any_port(self, gfc, censored_trace):
        outcome = ReplaySession(gfc, censored_trace, server_port=9000).run()
        assert outcome.differentiated

    def test_residual_endpoint_blocking(self, gfc, censored_trace):
        """After two blocked flows, even innocuous traffic to that
        server:port is disrupted (§6.5)."""
        for _ in range(2):
            ReplaySession(gfc, censored_trace).run()
        innocuous = ReplaySession(gfc, http_get_trace("harmless.org")).run()
        assert innocuous.differentiated  # connection refused by injected RST

    def test_residual_blocking_is_per_port(self, gfc, censored_trace):
        for _ in range(2):
            ReplaySession(gfc, censored_trace).run()
        other_port = ReplaySession(
            gfc, http_get_trace("harmless.org", server_port=8081)
        ).run()
        assert not other_port.differentiated

    def test_needs_port_rotation_flag(self, gfc):
        assert gfc.needs_port_rotation

    def test_hops_ground_truth(self, gfc):
        assert gfc.hops_to_middlebox == 9

    def test_full_reassembly(self, gfc):
        from repro.middlebox.engine import ReassemblyMode

        assert gfc.dpi().reassembly is ReassemblyMode.FULL

    def test_udp_not_classified(self, gfc, skype_trace):
        outcome = ReplaySession(gfc, skype_trace).run()
        assert not outcome.differentiated


class TestIran:
    def test_blocked_with_403_and_rsts(self, iran, iran_trace):
        outcome = ReplaySession(iran, iran_trace).run()
        assert outcome.differentiated
        assert outcome.block_page_received
        assert outcome.rst_count == 2  # "403 Forbidden ... two RST packets"

    def test_port_8080_escapes(self, iran, iran_trace):
        """Only port 80 is inspected (§6.6)."""
        outcome = ReplaySession(iran, iran_trace, server_port=8080).run()
        assert not outcome.differentiated
        assert outcome.delivered_ok

    def test_harmless_traffic_untouched(self, iran):
        outcome = ReplaySession(iran, http_get_trace("harmless.org")).run()
        assert not outcome.differentiated

    def test_prepending_many_packets_never_helps(self, iran, iran_trace):
        """The classifier checks every packet — up to 1,000 prepends in the
        paper; a representative 20 here."""
        padded = iran_trace.prepend_client_payloads([b"Z" * 1400] * 20)
        outcome = ReplaySession(iran, padded).run()
        assert outcome.differentiated

    def test_stateless_engine(self, iran):
        assert not iran.dpi().track_flows

    def test_hops_ground_truth(self, iran):
        assert iran.hops_to_middlebox == 7

    def test_udp_not_classified(self, iran, skype_trace):
        outcome = ReplaySession(iran, skype_trace).run()
        assert not outcome.differentiated
