"""Direct unit tests for the middlebox validation profiles."""

import pytest

from repro.middlebox.validation import MiddleboxValidation
from repro.packets.ip import IPPacket
from repro.packets.options import deprecated_ip_option, invalid_ip_option
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram

CLIENT, SERVER = "10.1.0.2", "203.0.113.50"


def packet(**kwargs):
    defaults = dict(
        src=CLIENT,
        dst=SERVER,
        transport=TCPSegment(sport=1, dport=80, seq=100, payload=b"x"),
    )
    defaults.update(kwargs)
    return IPPacket(**defaults)


class TestStructuralChecks:
    """Checks every profile enforces — they gate payload extraction."""

    @pytest.mark.parametrize(
        "profile",
        [
            MiddleboxValidation.lax(),
            MiddleboxValidation.extensive(),
            MiddleboxValidation.partial_tmobile(),
            MiddleboxValidation.partial_iran(),
        ],
        ids=["lax", "extensive", "tmobile", "iran"],
    )
    def test_unparseable_ip_never_inspectable(self, profile):
        assert not profile.ip_inspectable(packet(version=6))
        assert not profile.ip_inspectable(packet(ihl=3))
        short = packet()
        short.total_length = short.wire_length() - 8
        assert not profile.ip_inspectable(short)

    @pytest.mark.parametrize(
        "profile",
        [MiddleboxValidation.lax(), MiddleboxValidation.extensive()],
        ids=["lax", "extensive"],
    )
    def test_bad_data_offset_never_inspectable(self, profile):
        segment = TCPSegment(sport=1, dport=80, seq=1, payload=b"x", data_offset=15)
        assert not profile.tcp_inspectable(packet(transport=segment), segment, None)


class TestLaxProfile:
    """The testbed device: almost everything is fed to the matcher."""

    profile = MiddleboxValidation.lax()

    def test_accepts_bad_ip_checksum(self):
        assert self.profile.ip_inspectable(packet(checksum=0xBEEF))

    def test_accepts_length_long(self):
        long_packet = packet()
        long_packet.total_length = long_packet.wire_length() + 100
        assert self.profile.ip_inspectable(long_packet)

    def test_accepts_malformed_options(self):
        assert self.profile.ip_inspectable(packet(options=invalid_ip_option()))
        assert self.profile.ip_inspectable(packet(options=deprecated_ip_option()))

    def test_accepts_bad_tcp(self):
        segment = TCPSegment(sport=1, dport=80, seq=1, payload=b"x", checksum=0xDEAD)
        assert self.profile.tcp_inspectable(packet(transport=segment), segment, 1)
        no_ack = TCPSegment(sport=1, dport=80, seq=1, payload=b"x", flags=TCPFlags.PSH)
        assert self.profile.tcp_inspectable(packet(transport=no_ack), no_ack, 1)

    def test_accepts_bad_udp(self):
        datagram = UDPDatagram(sport=1, dport=2, payload=b"u", checksum=0xDEAD)
        assert self.profile.udp_inspectable(packet(transport=datagram), datagram)


class TestExtensiveProfile:
    """The GFC: everything validated except TCP checksum and ACK flag."""

    profile = MiddleboxValidation.extensive()

    def test_rejects_ip_anomalies(self):
        assert not self.profile.ip_inspectable(packet(checksum=0xBEEF))
        long_packet = packet()
        long_packet.total_length = long_packet.wire_length() + 100
        assert not self.profile.ip_inspectable(long_packet)
        assert not self.profile.ip_inspectable(packet(options=invalid_ip_option()))
        assert not self.profile.ip_inspectable(packet(options=deprecated_ip_option()))

    def test_accepts_bad_tcp_checksum(self):
        """The famous gap: the GFC does not verify TCP checksums."""
        segment = TCPSegment(sport=1, dport=80, seq=100, payload=b"x", checksum=0xDEAD)
        assert self.profile.tcp_inspectable(packet(transport=segment), segment, 100)

    def test_accepts_missing_ack(self):
        segment = TCPSegment(sport=1, dport=80, seq=100, payload=b"x", flags=TCPFlags.PSH)
        assert self.profile.tcp_inspectable(packet(transport=segment), segment, 100)

    def test_rejects_out_of_window(self):
        segment = TCPSegment(sport=1, dport=80, seq=100 + 0x30000000, payload=b"x")
        assert not self.profile.tcp_inspectable(packet(transport=segment), segment, 100)

    def test_rejects_invalid_flags(self):
        segment = TCPSegment(
            sport=1, dport=80, seq=100, payload=b"x", flags=TCPFlags.SYN | TCPFlags.FIN
        )
        assert not self.profile.tcp_inspectable(packet(transport=segment), segment, 100)

    def test_rejects_bad_udp_length_only(self):
        bad_length = UDPDatagram(sport=1, dport=2, payload=b"u")
        bad_length.length = bad_length.wire_length() + 8
        assert not self.profile.udp_inspectable(packet(transport=bad_length), bad_length)
        bad_checksum = UDPDatagram(sport=1, dport=2, payload=b"u", checksum=0xDEAD)
        assert self.profile.udp_inspectable(packet(transport=bad_checksum), bad_checksum)


class TestTMobileProfile:
    """Transport-layer validation, but IP options pass."""

    profile = MiddleboxValidation.partial_tmobile()

    def test_options_pass(self):
        assert self.profile.ip_inspectable(packet(options=invalid_ip_option()))
        assert self.profile.ip_inspectable(packet(options=deprecated_ip_option()))

    def test_transport_validated(self):
        bad = TCPSegment(sport=1, dport=80, seq=100, payload=b"x", checksum=0xDEAD)
        assert not self.profile.tcp_inspectable(packet(transport=bad), bad, 100)
        no_ack = TCPSegment(sport=1, dport=80, seq=100, payload=b"x", flags=TCPFlags.PSH)
        assert not self.profile.tcp_inspectable(packet(transport=no_ack), no_ack, 100)

    def test_ip_checksum_validated(self):
        assert not self.profile.ip_inspectable(packet(checksum=0xBEEF))


class TestIranProfile:
    """Iran inspects whatever it can parse, however corrupt."""

    profile = MiddleboxValidation.partial_iran()

    def test_everything_parseable_is_inspected(self):
        assert self.profile.ip_inspectable(packet(checksum=0xBEEF))
        assert self.profile.ip_inspectable(packet(options=invalid_ip_option()))
        bad = TCPSegment(sport=1, dport=80, seq=100, payload=b"x", checksum=0xDEAD)
        assert self.profile.tcp_inspectable(packet(transport=bad), bad, None)
        combo = TCPSegment(
            sport=1, dport=80, seq=100, payload=b"x", flags=TCPFlags.SYN | TCPFlags.FIN
        )
        assert self.profile.tcp_inspectable(packet(transport=combo), combo, None)
