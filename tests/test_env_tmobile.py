"""T-Mobile environment behaviour (§6.2)."""

import pytest

from repro.replay.session import ReplaySession
from repro.traffic.tls import tls_trace
from repro.traffic.trace import Trace, TracePacket
from repro.traffic.video import video_stream_trace
from repro.packets.flow import Direction


class TestBingeOn:
    def test_video_zero_rated_and_shaped(self, tmobile, video_trace):
        outcome = ReplaySession(tmobile, video_trace).run()
        assert outcome.differentiated
        assert outcome.zero_rated
        assert outcome.throughput_bps is not None
        assert outcome.throughput_bps < 3_000_000  # Binge On "optimization"

    def test_neutral_video_full_speed(self, tmobile):
        trace = video_stream_trace(host="neutral-cdn.org", total_bytes=250_000, name="neutral")
        outcome = ReplaySession(tmobile, trace).run()
        assert not outcome.differentiated
        assert outcome.throughput_bps > 5_000_000

    def test_sni_matching(self, tmobile):
        """Binge On matches .googlevideo.com inside the TLS ClientHello."""
        hello = tls_trace("r4---sn-ab5l6ne7.googlevideo.com")
        # pad the dialogue so the usage counter has enough signal
        hello.packets.append(
            TracePacket(Direction.SERVER_TO_CLIENT, b"\x17\x03\x03" + b"\x00" * 250_000, 0.1)
        )
        outcome = ReplaySession(tmobile, hello).run()
        assert outcome.zero_rated

    def test_udp_never_classified(self, tmobile, skype_trace):
        """QUIC/UDP escapes Binge On entirely (§6.2)."""
        outcome = ReplaySession(tmobile, skype_trace).run()
        assert not outcome.differentiated
        assert tmobile.dpi().match_log == []

    def test_small_replays_unreliable(self, tmobile):
        """Under ~200 KB the usage counter's noise can flip the inference."""
        tiny = video_stream_trace(host="d1.cloudfront.net", total_bytes=2_000, name="tiny")
        readings = [ReplaySession(tmobile, tiny).run().zero_rated for _ in range(6)]
        # not asserting a specific pattern — only that the 250 KB fixture is
        # the reliable one, per the paper's 200 KB threshold
        big = ReplaySession(tmobile, video_stream_trace(total_bytes=250_000)).run()
        assert big.zero_rated

    def test_classification_persists_beyond_240s(self, tmobile):
        assert tmobile.dpi().post_match_timeout is None
        assert tmobile.dpi().rst_flush_post_match

    def test_hops_ground_truth(self, tmobile):
        assert tmobile.hops_to_middlebox == 2

    def test_in_order_only_reassembly(self, tmobile):
        from repro.middlebox.engine import ReassemblyMode

        assert tmobile.dpi().reassembly is ReassemblyMode.IN_ORDER
