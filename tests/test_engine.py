"""Unit tests for the DPI engine: rules, validation, windows, anchors."""

import pytest

from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.policy import PolicyAction, RulePolicy
from repro.middlebox.rules import MatchRule, skype_stun_rule
from repro.middlebox.validation import MiddleboxValidation
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.shaper import PolicyState
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram
from repro.traffic.stun import stun_binding_request

CLIENT, SERVER = "10.1.0.2", "203.0.113.50"


def make_engine(**overrides):
    policy = overrides.pop("policy_state", PolicyState())
    defaults = dict(
        name="dpi",
        rules=[
            MatchRule(
                name="video",
                keywords=[b"video.example.com"],
                policy=RulePolicy.throttle(1_500_000),
            )
        ],
        policy_state=policy,
        validation=MiddleboxValidation.lax(),
        reassembly=ReassemblyMode.PER_PACKET,
        inspect_packet_limit=5,
        match_and_forget=True,
        require_protocol_anchor=True,
        track_flows=True,
    )
    defaults.update(overrides)
    return DPIMiddlebox(**defaults), policy


class Driver:
    """Feeds a synthetic TCP flow through an engine."""

    def __init__(self, engine, sport=40_100, dport=80):
        self.engine = engine
        self.clock = VirtualClock()
        self.injected_back = []
        self.injected_forward = []
        self.sport, self.dport = sport, dport
        self.seq = 1_000
        self.ctx = TransitContext(
            clock=self.clock,
            inject_back=self.injected_back.append,
            inject_forward=self.injected_forward.append,
        )

    def syn(self):
        segment = TCPSegment(sport=self.sport, dport=self.dport, seq=self.seq, flags=TCPFlags.SYN)
        self.engine.process(
            IPPacket(src=CLIENT, dst=SERVER, transport=segment),
            Direction.CLIENT_TO_SERVER,
            self.ctx,
        )
        self.seq += 1

    def data(self, payload, advance=True, **seg_overrides):
        fields = dict(
            sport=self.sport,
            dport=self.dport,
            seq=self.seq,
            ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            payload=payload,
        )
        fields.update(seg_overrides)
        segment = TCPSegment(**fields)
        packet = IPPacket(src=CLIENT, dst=SERVER, transport=segment)
        out = self.engine.process(packet, Direction.CLIENT_TO_SERVER, self.ctx)
        if advance and "seq" not in seg_overrides:
            self.seq += len(payload)
        return out

    def rst(self):
        segment = TCPSegment(sport=self.sport, dport=self.dport, seq=self.seq, flags=TCPFlags.RST)
        self.engine.process(
            IPPacket(src=CLIENT, dst=SERVER, transport=segment),
            Direction.CLIENT_TO_SERVER,
            self.ctx,
        )

    def classification(self):
        return self.engine.classification_of(CLIENT, self.sport, SERVER, self.dport)


GET = b"GET / HTTP/1.1\r\nHost: video.example.com\r\n\r\n"
NEUTRAL = b"GET / HTTP/1.1\r\nHost: plain.example.org\r\n\r\n"


class TestBasicClassification:
    def test_keyword_match(self):
        engine, policy = make_engine()
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        assert driver.classification() == "video"
        assert policy.throttled_flows  # policy applied

    def test_no_match(self):
        engine, _ = make_engine()
        driver = Driver(engine)
        driver.syn()
        driver.data(NEUTRAL)
        assert driver.classification() is None

    def test_match_and_forget_final(self):
        engine, _ = make_engine(inspect_packet_limit=2)
        driver = Driver(engine)
        driver.syn()
        driver.data(NEUTRAL)
        driver.data(b"padding-one")
        driver.data(GET)  # third payload packet: window closed
        assert driver.classification() == "unclassified-final"

    def test_untracked_flow_ignored(self):
        engine, _ = make_engine()
        driver = Driver(engine)
        driver.data(GET)  # no SYN seen
        assert driver.classification() is None

    def test_port_scoping(self):
        engine, _ = make_engine(ports=frozenset({80}))
        driver = Driver(engine, dport=8080)
        driver.syn()
        driver.data(GET)
        assert driver.classification() is None

    def test_forwards_packets(self):
        engine, _ = make_engine()
        driver = Driver(engine)
        driver.syn()
        out = driver.data(GET)
        assert len(out) == 1

    def test_reset(self):
        engine, _ = make_engine()
        driver = Driver(engine)
        driver.syn()
        driver.data(GET)
        engine.reset()
        assert driver.classification() is None
        assert engine.match_log == []


class TestAnchor:
    def test_dummy_first_byte_defeats_anchor(self):
        engine, _ = make_engine()
        driver = Driver(engine)
        driver.syn()
        driver.data(b"X")
        driver.data(GET)
        assert driver.classification() == "unclassified-final"

    def test_tls_anchor_accepted(self):
        from repro.traffic.tls import client_hello

        engine, _ = make_engine(
            rules=[MatchRule(name="sni", keywords=[b".googlevideo.com"])]
        )
        driver = Driver(engine, dport=443)
        driver.syn()
        driver.data(client_hello("r1.googlevideo.com"))
        assert driver.classification() == "sni"

    def test_anchor_disabled(self):
        engine, _ = make_engine(require_protocol_anchor=False)
        driver = Driver(engine)
        driver.syn()
        driver.data(b"X")
        driver.data(GET)
        assert driver.classification() == "video"


class TestValidationIntegration:
    def test_lax_engine_counts_bad_checksum(self):
        engine, _ = make_engine()
        driver = Driver(engine)
        driver.syn()
        driver.data(b"innocuous-junk", advance=False, checksum=0xDEAD)
        driver.data(GET)
        # junk consumed the anchor slot: classification gone
        assert driver.classification() == "unclassified-final"

    def test_strict_engine_ignores_bad_checksum(self):
        engine, _ = make_engine(validation=MiddleboxValidation.partial_tmobile())
        driver = Driver(engine)
        driver.syn()
        driver.data(b"innocuous-junk", advance=False, checksum=0xDEAD)
        driver.data(GET)
        assert driver.classification() == "video"

    def test_structural_damage_always_ignored(self):
        engine, _ = make_engine()  # even the lax testbed can't parse these
        driver = Driver(engine)
        driver.syn()
        packet_seq = driver.seq
        segment = TCPSegment(
            sport=driver.sport, dport=80, seq=packet_seq, ack=1,
            flags=TCPFlags.ACK, payload=b"junk", data_offset=15,
        )
        engine.process(
            IPPacket(src=CLIENT, dst=SERVER, transport=segment),
            Direction.CLIENT_TO_SERVER,
            driver.ctx,
        )
        driver.data(GET)
        assert driver.classification() == "video"

    def test_wrong_protocol_agnostic_keying(self):
        engine, _ = make_engine(protocol_agnostic_flow_keying=True)
        driver = Driver(engine)
        driver.syn()
        segment = TCPSegment(
            sport=driver.sport, dport=80, seq=driver.seq, ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH, payload=b"innocuous-junk",
        )
        packet = IPPacket(src=CLIENT, dst=SERVER, transport=segment, protocol=0xFD)
        engine.process(packet, Direction.CLIENT_TO_SERVER, driver.ctx)
        driver.data(GET)
        assert driver.classification() == "unclassified-final"

    def test_wrong_protocol_strict_keying(self):
        engine, _ = make_engine(protocol_agnostic_flow_keying=False)
        driver = Driver(engine)
        driver.syn()
        segment = TCPSegment(
            sport=driver.sport, dport=80, seq=driver.seq, ack=1,
            flags=TCPFlags.ACK | TCPFlags.PSH, payload=b"innocuous-junk",
        )
        packet = IPPacket(src=CLIENT, dst=SERVER, transport=segment, protocol=0xFD)
        engine.process(packet, Direction.CLIENT_TO_SERVER, driver.ctx)
        driver.data(GET)
        assert driver.classification() == "video"


class TestUDPClassification:
    def drive_udp(self, engine, payloads, sport=41_000, dport=3478):
        clock = VirtualClock()
        ctx = TransitContext(clock=clock, inject_back=lambda p: None, inject_forward=lambda p: None)
        for payload in payloads:
            datagram = UDPDatagram(sport=sport, dport=dport, payload=payload)
            engine.process(
                IPPacket(src=CLIENT, dst=SERVER, transport=datagram),
                Direction.CLIENT_TO_SERVER,
                ctx,
            )
        return engine.classification_of(CLIENT, sport, SERVER, dport)

    def test_stun_rule_position_zero(self):
        engine, _ = make_engine(rules=[skype_stun_rule(RulePolicy.throttle(1e6))])
        assert self.drive_udp(engine, [stun_binding_request(), b"media"]) == "skype-stun"

    def test_stun_rule_misses_when_displaced(self):
        engine, _ = make_engine(
            rules=[skype_stun_rule(RulePolicy.throttle(1e6))], udp_inspect_packet_limit=6
        )
        result = self.drive_udp(engine, [b"media-first", stun_binding_request()])
        assert result != "skype-stun"

    def test_udp_not_classified_when_disabled(self):
        engine, _ = make_engine(
            rules=[skype_stun_rule(RulePolicy.throttle(1e6))], classify_udp=False
        )
        assert self.drive_udp(engine, [stun_binding_request()]) is None
