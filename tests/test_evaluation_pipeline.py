"""Tests for phase 3 (evaluation), phase 4 (deployment) and the pipeline."""

import pytest

from repro.core.cache import RuleCache
from repro.core.evaluation import EvasionEvaluator
from repro.core.evasion.base import EvasionContext
from repro.core.pipeline import Liberate
from repro.core.report import MatchingField
from repro.envs.gfc import make_gfc
from repro.envs.testbed import make_testbed
from repro.traffic.http import http_get_trace

from tests.test_evasion_techniques import context_for


class TestEvaluatorPlan:
    def test_inert_first_for_match_and_forget(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        plan = EvasionEvaluator(testbed, classified_trace, ctx).plan()
        # previously-effective techniques lead, then inert insertion
        assert plan[0].name == "ip-low-ttl"
        categories = [t.category for t in plan]
        assert categories.index("inert-insertion") < categories.index("flushing")

    def test_inspect_all_prunes_inert_and_flushing(self, iran, iran_trace):
        ctx = context_for(iran, iran_trace, b"facebook.com", inspects_all_packets=True)
        plan = EvasionEvaluator(iran, iran_trace, ctx).plan()
        assert plan
        assert all(t.category in ("splitting", "reordering") for t in plan)

    def test_protocol_filtering(self, testbed, skype_trace):
        ctx = EvasionContext(protocol="udp", middlebox_hops=0)
        plan = EvasionEvaluator(testbed, skype_trace, ctx).plan()
        assert all(t.protocol in ("udp", "any") for t in plan)


class TestEvaluatorRun:
    def test_testbed_finds_many_working(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        report = EvasionEvaluator(testbed, classified_trace, ctx).run()
        assert len(report.working()) >= 10
        assert report.best() is not None

    def test_stop_at_first(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        report = EvasionEvaluator(
            testbed, classified_trace, ctx, stop_at_first=True
        ).run()
        assert len(report.results) == 1
        assert report.results[0].evaded

    def test_best_prefers_cheap(self, testbed, classified_trace):
        ctx = context_for(testbed, classified_trace, b"video.example.com")
        report = EvasionEvaluator(testbed, classified_trace, ctx).run()
        best = report.best()
        assert best.overhead_seconds == 0  # flushing never beats packet tricks

    def test_gfc_port_rotation_during_evaluation(self, censored_trace):
        gfc = make_gfc()
        ctx = context_for(gfc, censored_trace, b"GET", b"economist.com")
        report = EvasionEvaluator(gfc, censored_trace, ctx).run()
        # Without rotation the residual blocking would poison later tests;
        # with it, the known-good techniques still come out working.
        working = {r.technique for r in report.working()}
        assert "ip-low-ttl" in working
        assert "flush-rst-before-match" in working
        assert "tcp-segment-split" not in working


class TestPipeline:
    def test_full_run_testbed(self, classified_trace):
        lib = Liberate(make_testbed())
        report = lib.run(classified_trace)
        assert report.detection.content_based
        assert report.characterization is not None
        assert report.evasion is not None
        assert report.deployed_technique is not None
        assert "lib*erate report" in report.summary()

    def test_no_differentiation_short_circuits(self, sprint, video_trace):
        report = Liberate(sprint).run(video_trace)
        assert not report.detection.differentiated
        assert report.characterization is None
        assert report.evasion is None

    def test_localization_feeds_context(self, classified_trace):
        lib = Liberate(make_testbed(), stop_at_first=True)
        report = lib.run(classified_trace)
        assert any("hop" in note for note in report.characterization.notes)

    def test_deploy_returns_proxy(self, classified_trace):
        lib = Liberate(make_testbed(), stop_at_first=True)
        proxy = lib.deploy(classified_trace)
        outcome = proxy.run_flow(classified_trace)
        assert outcome.evaded
        assert proxy.flows_handled == 1
        assert not proxy.rule_change_detected

    def test_deploy_without_working_technique_raises(self, att):
        from repro.traffic.video import video_stream_trace

        trace = video_stream_trace(host="video.nbcsports.com", total_bytes=200_000)
        lib = Liberate(att, stop_at_first=True)
        with pytest.raises(RuntimeError):
            lib.deploy(trace)


class TestRuntimeAdaptation:
    def test_rule_change_triggers_readaptation(self, classified_trace):
        """§4.2: when a deployed technique stops working, lib·erate
        re-characterizes and swaps the technique."""
        env = make_testbed()
        lib = Liberate(env, stop_at_first=True)
        proxy = lib.deploy(classified_trace)
        first_technique = proxy.technique.name

        # The operator "fixes" the classifier: switch to Iran-style
        # stateless per-packet matching, which no inert packet can fool.
        dpi = env.dpi()
        dpi.track_flows = False
        dpi.match_and_forget = False
        dpi.require_protocol_anchor = False

        outcome = proxy.run_flow(classified_trace)
        # the old technique failed once, triggering re-adaptation...
        assert outcome.differentiated or proxy.technique.name != first_technique
        # ...and the next flow evades again with the new technique
        followup = proxy.run_flow(classified_trace)
        assert followup.evaded


class TestRuleCache:
    def test_cache_roundtrip(self, testbed, classified_trace):
        from repro.core.characterization import Characterizer

        report = Characterizer(testbed, classified_trace).run()
        cache = RuleCache()
        cache.put("testbed", classified_trace.name, report)
        restored = RuleCache.from_json(cache.to_json())
        entry = restored.get("testbed", classified_trace.name)
        assert entry is not None
        assert [f.content for f in entry.matching_fields] == [
            f.content for f in report.matching_fields
        ]
        assert entry.packet_limit == report.packet_limit

    def test_cache_skips_characterization(self, classified_trace):
        cache = RuleCache()
        first = Liberate(make_testbed(), cache=cache, stop_at_first=True)
        first.run(classified_trace)
        assert cache.misses == 1 and len(cache) == 1

        second = Liberate(make_testbed(), cache=cache, stop_at_first=True)
        report = second.run(classified_trace)
        assert cache.hits == 1
        assert report.characterization is not None

    def test_invalidate(self):
        from repro.core.report import CharacterizationReport

        cache = RuleCache()
        cache.put("net", "app", CharacterizationReport())
        cache.invalidate("net", "app")
        assert cache.get("net", "app") is None

    def test_save_load(self, tmp_path):
        from repro.core.report import CharacterizationReport, MatchingField

        cache = RuleCache()
        cache.put(
            "net",
            "app",
            CharacterizationReport(
                matching_fields=[MatchingField(0, 1, 4, b"abc")], packet_limit=3
            ),
        )
        target = tmp_path / "cache.json"
        cache.save(target)
        restored = RuleCache.load(target)
        assert restored.get("net", "app").matching_fields[0].content == b"abc"


class TestMasquerade:
    def test_masquerade_as_zero_rated(self, tmobile):
        """§7: a neutral flow gains Binge On treatment via an inert packet."""
        from repro.core.masquerade import MasqueradeAsClass, masquerade_outcome_is_favored
        from repro.replay.session import ReplaySession
        from repro.traffic.http import http_request
        from repro.traffic.video import video_stream_trace

        neutral = video_stream_trace(host="not-zero-rated.org", total_bytes=250_000, name="n")
        baseline = ReplaySession(tmobile, neutral).run()
        assert not baseline.zero_rated

        favored_payload = http_request("d1.cloudfront.net", "/video.mp4")
        technique = MasqueradeAsClass(favored_payload)
        ctx = EvasionContext(middlebox_hops=tmobile.hops_to_middlebox, protocol="tcp")
        outcome = ReplaySession(tmobile, neutral).run(technique=technique, context=ctx)
        assert masquerade_outcome_is_favored(outcome)

    def test_masquerade_requires_payload(self):
        from repro.core.masquerade import MasqueradeAsClass

        with pytest.raises(ValueError):
            MasqueradeAsClass(b"")
