"""AT&T and Sprint environment behaviour (§6.3, §6.4)."""

from repro.replay.session import ReplaySession
from repro.traffic.video import video_stream_trace


def att_video(port=80, name=None):
    return video_stream_trace(
        host="video.nbcsports.com",
        total_bytes=300_000,
        server_port=port,
        name=name or f"nbc-{port}",
    )


class TestStreamSaver:
    def test_http_video_throttled_to_1_5mbps(self, att):
        outcome = ReplaySession(att, att_video()).run()
        assert outcome.differentiated
        assert outcome.throughput_bps == __import__("pytest").approx(1_500_000, rel=0.15)

    def test_delivery_intact_through_proxy(self, att):
        outcome = ReplaySession(att, att_video()).run()
        assert outcome.delivered_ok and outcome.server_response_ok

    def test_port_change_evades(self, att):
        """Stream Saver only proxies port 80 — the paper's trivial escape."""
        outcome = ReplaySession(att, att_video(port=8443)).run()
        assert not outcome.differentiated
        assert outcome.throughput_bps > 5_000_000

    def test_non_video_content_not_throttled(self, att):
        from repro.traffic.http import http_get_trace

        trace = http_get_trace(
            "video.nbcsports.com", response_body=b"<html>" + b"t" * 200_000
        )
        outcome = ReplaySession(att, trace).run()
        assert not outcome.differentiated

    def test_hops_ground_truth(self, att):
        assert att.hops_to_middlebox == 2


class TestSprint:
    def test_video_full_speed(self, sprint):
        outcome = ReplaySession(sprint, att_video()).run()
        assert not outcome.differentiated
        assert outcome.throughput_bps > 5_000_000

    def test_inverted_same_treatment(self, sprint):
        original = ReplaySession(sprint, att_video()).run()
        inverted = ReplaySession(sprint, att_video(name="inv").inverted()).run()
        assert original.differentiated == inverted.differentiated is False

    def test_no_middlebox(self, sprint):
        assert sprint.middlebox is None
        assert sprint.dpi() is None
