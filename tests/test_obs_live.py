"""The telemetry bus: deterministic event logs, cross-process metric merging.

The acceptance bar mirrors the trace sharder's: whatever backend runs a
seeded experiment, the merged telemetry event log and the merged metrics
snapshot must equal what the serial backend records — and two runs of the
same seeded experiment must export byte-identical ``events.jsonl`` files.
"""

from __future__ import annotations

import io

import pytest

from repro.experiments.table3 import run_table3
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace
from repro.runtime import WorkerPool

pytestmark = pytest.mark.obs

TABLE3_KWARGS = {
    "env_names": ("testbed", "sprint"),
    "include_os_matrix": False,
    "characterize": False,
}


# ----------------------------------------------------------------------
# bus unit behaviour
# ----------------------------------------------------------------------
class TestTelemetryBus:
    def test_emit_appends_with_logical_clock(self):
        bus = obs_live.TelemetryBus()
        bus.emit("unit.a", value=1)
        bus.emit("unit.b", value=2)
        assert [e.lclock for e in bus.events] == [0, 1]
        assert [e.kind for e in bus.events] == ["unit.a", "unit.b"]
        assert bus.tally() == {"unit.a": 1, "unit.b": 1}

    def test_subscribers_see_direct_emissions(self):
        bus = obs_live.TelemetryBus()
        seen = []
        bus.subscribe(lambda kind, fields: seen.append((kind, dict(fields))))
        bus.emit("unit.x", n=3)
        assert seen == [("unit.x", {"n": 3})]

    def test_task_buffering_and_absorb_order(self):
        bus = obs_live.TelemetryBus()
        bus.emit("unit.before")
        bus.begin_task()
        bus.emit("unit.task", task=0)
        buffer = bus.end_task()
        assert [e.kind for e in bus.events] == ["unit.before"]  # buffered, not appended
        assert buffer == [("unit.task", {"task": 0})]
        absorbed = bus.absorb([buffer, [("unit.task", {"task": 1})]])
        assert absorbed == 2
        assert [e.fields.get("task") for e in bus.events[1:]] == [0, 1]
        assert [e.lclock for e in bus.events] == [0, 1, 2]

    def test_absorb_notifies_when_not_streaming(self):
        bus = obs_live.TelemetryBus()
        seen = []
        bus.subscribe(lambda kind, fields: seen.append(kind))
        bus.absorb([[("unit.late", {})]])
        assert seen == ["unit.late"]

    def test_export_and_load_round_trip(self, tmp_path):
        bus = obs_live.TelemetryBus()
        bus.emit("unit.a", n=1)
        bus.emit("unit.b", n=2)
        out = tmp_path / "events.jsonl"
        assert bus.export_jsonl(str(out)) == 2
        text = out.read_text()
        assert text.splitlines()[0] == (
            '{"events":2,"kind":"events.header","schema":1}'
        )
        records = obs_live.load_events_jsonl(str(out))
        assert records == [
            {"kind": "unit.a", "lclock": 0, "n": 1},
            {"kind": "unit.b", "lclock": 1, "n": 2},
        ]

    def test_bus_on_scopes_and_restores(self):
        assert obs_live.BUS is None
        with obs_live.bus_on() as bus:
            assert obs_live.BUS is bus
            bus.emit("unit.scoped")
        assert obs_live.BUS is None

    def test_failed_task_buffer_is_discarded(self):
        bus = obs_live.TelemetryBus()
        bus.begin_task()
        bus.emit("unit.doomed")
        bus.end_task()  # the pool discards a failing attempt's buffer
        bus.begin_task()
        bus.emit("unit.retry")
        assert bus.end_task() == [("unit.retry", {})]


# ----------------------------------------------------------------------
# cross-process identity (the tentpole guarantee)
# ----------------------------------------------------------------------
def _seeded_run(backend: str) -> tuple[dict, str, dict]:
    """One traced + metered + telemetered table3 slice on *backend*."""
    with obs_trace.tracing():
        with obs_metrics.collecting() as registry:
            with obs_live.bus_on() as bus:
                rows = run_table3(pool=WorkerPool(backend), **TABLE3_KWARGS)
                assert rows
                out = io.StringIO()
                bus.export_jsonl(out)
                return _portable(registry.snapshot()), out.getvalue(), bus.tally()


def _portable(snapshot: dict) -> dict:
    """The snapshot minus process-local series.

    ``mbx.automaton.*`` counts lookups and memoized builds, and
    ``mbx.rulecache.*`` counts compile-cache hits/misses/invalidations —
    how many of each a process performs depends on worker scheduling and
    intern-cache state, not on the experiment, so those series are excluded
    from the cross-backend identity contract (see
    ``automaton._record_build`` and ``rulecache.DependencyCache``).
    """
    excluded = ("mbx.automaton.", "mbx.rulecache.")
    return {k: v for k, v in snapshot.items() if not k.startswith(excluded)}


@pytest.mark.slow
class TestCrossProcessIdentity:
    def test_process_pool_metrics_snapshot_equals_serial(self):
        serial_snap, _, _ = _seeded_run("serial")
        process_snap, _, _ = _seeded_run("process")
        assert process_snap == serial_snap
        assert serial_snap["table3.cells"] > 0
        assert serial_snap["mbx.rule_matches"] > 0
        # The histogram merged from worker dumps, not just the counters.
        assert serial_snap["mbx.scan.payload_bytes"]["count"] > 0

    def test_thread_pool_metrics_snapshot_equals_serial(self):
        serial_snap, _, _ = _seeded_run("serial")
        thread_snap, _, _ = _seeded_run("thread")
        assert thread_snap == serial_snap

    def test_event_log_identical_across_backends(self):
        _, serial_log, serial_tally = _seeded_run("serial")
        _, process_log, _ = _seeded_run("process")
        assert process_log == serial_log
        assert serial_tally["table3.cell"] == 52  # 26 techniques x 2 envs
        assert serial_tally["exp.start"] == 1
        assert serial_tally["pool.dispatch"] == 2

    def test_seeded_runs_export_byte_identical_events(self, tmp_path):
        paths = []
        for run in range(2):
            with obs_live.bus_on() as bus:
                run_table3(pool=WorkerPool("process"), **TABLE3_KWARGS)
                path = tmp_path / f"events-{run}.jsonl"
                bus.export_jsonl(str(path))
                paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_worker_stage_timings_merge_into_parent_profile(self):
        with obs_profiling.profiled() as profiler:
            run_table3(pool=WorkerPool("process"), **TABLE3_KWARGS)
        stages = profiler.snapshot()
        # The map's envelope is timed in the parent...
        assert "table3.columns" in stages
        # ...and the workers' per-environment stages shipped home and merged.
        assert stages["env.build.testbed"]["calls"] >= 1
        assert stages["env.build.sprint"]["calls"] >= 1
        assert stages["env.build.testbed"]["wall_seconds"] >= 0.0


# ----------------------------------------------------------------------
# profiling merge unit behaviour
# ----------------------------------------------------------------------
class TestProfileMerge:
    def test_merge_dump_sums_stages(self):
        worker = obs_profiling.Profiler()
        with worker.stage("unit.stage"):
            pass
        parent = obs_profiling.Profiler()
        with parent.stage("unit.stage"):
            pass
        before = parent.stages["unit.stage"].calls
        parent.merge_dump(worker.dump())
        assert parent.stages["unit.stage"].calls == before + 1

    def test_metrics_merge_dump_counters_and_histograms(self):
        worker = obs_metrics.MetricsRegistry()
        worker.inc("unit.count", 2)
        worker.observe("unit.hist", 7)
        worker.set_gauge("unit.gauge", 5)
        parent = obs_metrics.MetricsRegistry()
        parent.inc("unit.count", 1)
        parent.observe("unit.hist", 3)
        parent.set_gauge("unit.gauge", 1)
        parent.merge_dump(worker.dump())
        snap = parent.snapshot()
        assert snap["unit.count"] == 3
        assert snap["unit.gauge"] == 5  # last write wins
        assert snap["unit.hist"]["count"] == 2
        assert snap["unit.hist"]["sum"] == 10.0

    def test_histogram_shape_mismatch_rejected(self):
        histogram = obs_metrics.Histogram(bounds=(1, 2))
        with pytest.raises(ValueError, match="shape mismatch"):
            histogram.merge_counts([1, 2], 3.0, 2)


# ----------------------------------------------------------------------
# the live progress view
# ----------------------------------------------------------------------
class TestLiveProgressView:
    def _view(self, times):
        ticks = iter(times)
        return obs_live.LiveProgressView(clock=lambda: next(ticks))

    def test_matrix_fills_as_cells_land(self):
        view = self._view([0.0, 10.0, 20.0])
        view.on_event(
            "exp.start",
            {"experiment": "table3", "envs": ["testbed", "sprint"],
             "techniques": ["t1", "t2"], "cells": 4},
        )
        view.on_event(
            "table3.cell", {"env": "testbed", "technique": "t1", "cc": "Y", "rs": "N"}
        )
        rendered = view.render()
        assert "table3: 1/4 cells" in rendered
        assert "Y/N" in rendered
        assert "·" in rendered  # pending cells

    def test_eta_extrapolates_from_completed_cells(self):
        view = self._view([0.0, 30.0, 60.0])
        view.on_event("exp.start", {"experiment": "table3", "cells": 4})
        view.on_event(
            "table3.cell", {"env": "a", "technique": "t", "cc": "Y", "rs": "Y"}
        )
        view.on_event(
            "table3.cell", {"env": "b", "technique": "t", "cc": "Y", "rs": "Y"}
        )
        # 2 cells in 60s -> 30s/cell -> 2 remaining -> 60s.
        assert view.eta_seconds() == pytest.approx(60.0)

    def test_pool_counters_and_draw(self):
        stream = io.StringIO()
        view = obs_live.LiveProgressView(stream=stream)
        view.on_event("pool.dispatch", {"task": 0})
        view.on_event("pool.task_done", {"task": 0, "ok": True})
        view.on_event("pool.retry", {"task": 0, "attempt": 1})
        assert view.tasks_dispatched == 1
        assert view.tasks_done == 1
        assert view.retries == 1
        assert "pool 1/1" in stream.getvalue()

    def test_attach_subscribes_to_bus(self):
        bus = obs_live.TelemetryBus()
        view = obs_live.LiveProgressView().attach(bus)
        bus.emit("exp.start", experiment="figure4", cells=2)
        bus.emit("figure4.sample", hour=3, trial=0, min_delay=20)
        assert view.experiment == "figure4"
        assert view.completed() == 1


# ----------------------------------------------------------------------
# live streaming (display-only queue)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_streaming_delivers_worker_events_live():
    with obs_live.bus_on() as bus:
        seen = []
        bus.subscribe(lambda kind, fields: seen.append(kind))
        bus.enable_streaming()
        run_table3(
            pool=WorkerPool("process"),
            env_names=("testbed",),
            include_os_matrix=False,
            characterize=False,
        )
        # Worker events reached the subscriber via the stream; the merged
        # log still carries them all, exactly once.
        assert bus.tally()["table3.cell"] == 26
    assert seen.count("exp.start") == 1
    assert seen.count("table3.cell") == 26
