"""Property-based tests of middlebox/classifier invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.middlebox.engine import ReassemblyMode
from repro.replay.session import ReplaySession
from repro.traffic.http import http_get_trace

from tests.test_engine import Driver, GET, make_engine
from tests.test_engine_modes import StreamDriver, split

KEYWORD = b"video.example.com"
settings_kwargs = dict(
    deadline=None, max_examples=30, suppress_health_check=[HealthCheck.too_slow]
)


def cuts_from(spec, message_len):
    return sorted({c % (message_len - 1) + 1 for c in spec})


class TestFullReassemblyInvariant:
    @settings(**settings_kwargs)
    @given(
        st.lists(st.integers(min_value=1, max_value=10_000), max_size=8),
        st.randoms(use_true_random=False),
    )
    def test_gfc_style_classifier_immune_to_split_and_order(self, cut_spec, rng):
        """However the matching message is segmented and reordered, a fully
        reassembling classifier always matches — the invariant behind the
        GFC's N cells in the splitting/reordering rows."""
        from repro.middlebox.validation import MiddleboxValidation

        engine, _ = make_engine(
            reassembly=ReassemblyMode.FULL,
            inspect_packet_limit=None,
            validation=MiddleboxValidation.extensive(),
        )
        driver = StreamDriver(engine)
        driver.syn()
        cuts = cuts_from(cut_spec, len(GET))
        pieces = split(GET, *cuts)
        rng.shuffle(pieces)
        driver.pieces(pieces)
        assert driver.classification() == "video"


class TestPerPacketInvariant:
    @settings(**settings_kwargs)
    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=8))
    def test_per_packet_classifier_matches_iff_keyword_contiguous(self, cut_spec):
        """A per-packet matcher (anchor disabled) classifies exactly when
        some single packet carries the whole keyword."""
        engine, _ = make_engine(
            reassembly=ReassemblyMode.PER_PACKET,
            require_protocol_anchor=False,
            inspect_packet_limit=None,
            match_and_forget=False,
        )
        driver = StreamDriver(engine)
        driver.syn()
        cuts = cuts_from(cut_spec, len(GET))
        pieces = split(GET, *cuts)
        driver.pieces(pieces)
        keyword_intact = any(KEYWORD in data for _offset, data in pieces)
        assert (driver.classification() == "video") == keyword_intact


class TestDeterminism:
    @settings(**settings_kwargs)
    @given(st.binary(min_size=1, max_size=200))
    def test_same_payload_same_verdict(self, payload):
        engine_a, _ = make_engine()
        engine_b, _ = make_engine()
        for engine in (engine_a, engine_b):
            driver = Driver(engine)
            driver.syn()
            driver.data(payload)
        a = engine_a.classification_of("10.1.0.2", 40_100, "203.0.113.50", 80)
        b = engine_b.classification_of("10.1.0.2", 40_100, "203.0.113.50", 80)
        assert a == b


class TestBlindingInvariant:
    @settings(deadline=None, max_examples=15, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=60), st.integers(min_value=1, max_value=30))
    def test_blinding_breaks_iff_region_touches_fields(self, start, width):
        """Blinding a byte range removes classification exactly when the
        range overlaps a matching field — the assumption the bisection's
        round-saving deduction rests on."""
        from repro.envs.testbed import make_testbed
        from repro.traffic.trace import invert_bits

        env = make_testbed()
        trace = http_get_trace("video.example.com")
        payload = trace.client_payloads()[0]
        end = min(start + width, len(payload))
        if end <= start:
            return
        blinded = payload[:start] + invert_bits(payload[start:end]) + payload[end:]
        outcome = ReplaySession(env, trace.with_client_payloads([blinded])).run()
        fields = [
            (payload.find(b"GET"), payload.find(b"GET") + 3),
            (payload.find(b"video.example.com"), payload.find(b"video.example.com") + 17),
        ]
        touches = any(start < f_end and end > f_start for f_start, f_end in fields)
        assert outcome.differentiated == (not touches)
