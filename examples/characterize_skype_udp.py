"""Reverse-engineering a UDP classifier: the Skype/STUN case (§6.1).

The testbed DPI device identifies Skype by binary STUN structure — the
paper's manual analysis traced the rule to the MS-SERVICE-QUALITY attribute
(type 0x8055) in the first client packet.  lib·erate finds exactly those
bytes automatically, via bit-inversion blinding, and discovers the
position sensitivity (one prepended packet breaks classification).

Run:  python examples/characterize_skype_udp.py
"""

from repro.core.characterization import Characterizer
from repro.core.evaluation import EvasionEvaluator
from repro.core.evasion.base import EvasionContext
from repro.envs import make_testbed
from repro.traffic import stun_trace


def main() -> None:
    env = make_testbed()
    trace = stun_trace()

    print("characterizing the UDP/STUN classifier...")
    characterizer = Characterizer(env, trace)
    report = characterizer.run()
    print(f"  replay rounds: {report.rounds} (paper: 115)")
    print(f"  matching fields (binary, not human-readable):")
    for field in report.matching_fields:
        hex_bytes = field.content.hex(" ")
        print(f"    packet {field.packet_index} bytes [{field.start}:{field.end}] = {hex_bytes}")
    cookie = bytes.fromhex("2112a442")
    attribute = bytes.fromhex("8055")
    joined = b"".join(f.content for f in report.matching_fields)
    print(f"  includes STUN magic cookie: {cookie in joined}")
    print(f"  includes MS-SERVICE-QUALITY (0x8055): {attribute in joined}")
    print(f"  position-sensitive: prepend sensitivity = {report.prepend_sensitivity}")

    print()
    print("evaluating UDP evasion techniques...")
    context = EvasionContext(
        matching_fields=report.matching_fields,
        packet_limit=report.packet_limit,
        middlebox_hops=env.hops_to_middlebox,
        protocol="udp",
    )
    evaluation = EvasionEvaluator(env, trace, context).run()
    for result in evaluation.results:
        mark = "works" if result.evaded else "fails"
        print(f"  {result.technique:24s} {mark}")


if __name__ == "__main__":
    main()
