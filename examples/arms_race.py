"""The arms race, played out (§4.3 + §7).

lib·erate "does not end the cat-and-mouse game ... rather, by automating
evasion and adapting to changes in middlebox classifiers quickly, it makes
countermeasures substantially more expensive for network providers."

Three rounds:

1. lib·erate deploys against the testbed classifier and wins cheaply.
2. The operator deploys a norm-style traffic normalizer (the 2001-vintage
   countermeasure the paper found nobody had deployed).  The old technique
   dies — and the proxy's rule-change detection re-runs the pipeline and
   finds a survivor automatically.
3. The operator's last resort is a terminating proxy; lib·erate's unilateral
   arsenal is out, and the bilateral §7 techniques take over.

Run:  python examples/arms_race.py
"""

from repro import Liberate
from repro.core.bilateral import run_bilateral_rotation
from repro.envs import make_att, make_testbed
from repro.middlebox.normalizer import TrafficNormalizer
from repro.traffic import http_get_trace, video_stream_trace


def main() -> None:
    env = make_testbed()
    trace = http_get_trace("video.example.com", response_body=b"stream" * 300)

    print("=== round 1: lib*erate vs. a lenient classifier ===")
    lib = Liberate(env, stop_at_first=True)
    proxy = lib.deploy(trace)
    outcome = proxy.run_flow(trace)
    print(f"deployed {proxy.technique.name}: evaded={outcome.evaded}")

    print()
    print("=== round 2: the operator deploys a traffic normalizer ===")
    env.path.elements.insert(0, TrafficNormalizer())
    old = proxy.technique.name
    outcome = proxy.run_flow(trace)  # fails once, triggering re-adaptation
    print(
        f"{old} against the normalizer: application broke "
        f"(delivered intact: {outcome.delivered_ok}) — the TTL-normalized "
        f"'inert' packet reached the server as real data"
    )
    followup = proxy.run_flow(trace)
    print(
        f"re-adapted to {proxy.technique.name}: evaded={followup.evaded} "
        f"(the normalizer cannot merge segments it has not received, nor make "
        f"the classifier retain state longer)"
    )

    print()
    print("=== round 3: a terminating proxy forces bilateral evasion ===")
    att = make_att()
    video = video_stream_trace(host="video.nbcsports.com", total_bytes=300_000)
    report = Liberate(att).run(video)
    print(f"unilateral techniques that beat the terminating proxy: "
          f"{len(report.evasion.working())}")
    bilateral = run_bilateral_rotation(att, video, key=7)
    print(
        f"bilateral payload rotation: evaded={bilateral.evaded}, "
        f"goodput={bilateral.throughput_bps / 1e6:.1f} Mbps "
        f"(vs the 1.5 Mbps Stream Saver cap)"
    )


if __name__ == "__main__":
    main()
