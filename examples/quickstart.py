"""Quickstart: run the full lib·erate pipeline against the testbed DPI device.

The four phases of the paper (Figure 1) in ~15 lines:

1. detect DPI-based differentiation (original vs. bit-inverted replay),
2. characterize the classifier (binary-search blinding, prepend probes),
3. evaluate the evasion taxonomy against it,
4. deploy the cheapest working technique on live traffic.

Run:  python examples/quickstart.py
"""

from repro import Liberate
from repro.envs import make_testbed
from repro.traffic import http_get_trace


def main() -> None:
    # A network whose middlebox throttles flows matching "video.example.com".
    env = make_testbed()

    # Record the application's traffic once (here: a generated HTTP dialogue).
    trace = http_get_trace("video.example.com", response_body=b"movie-bytes" * 100)

    # Phases 1-3: detect, characterize, evaluate.
    lib = Liberate(env)
    report = lib.run(trace)
    print(report.summary())
    print()
    print("matching fields the classifier uses:")
    for field in report.characterization.matching_fields:
        print(f"  {field}")
    print()
    print("techniques that evade, cheapest first:")
    for result in sorted(report.evasion.working(), key=lambda r: r.overhead_seconds):
        print(
            f"  {result.technique:28s} ({result.category}): "
            f"+{result.overhead_packets} pkt, +{result.overhead_bytes} B, "
            f"+{result.overhead_seconds:.0f} s"
        )

    # Phase 4: deploy and push live traffic through the evasion transform.
    proxy = lib.deploy(trace)
    outcome = proxy.run_flow(trace)
    print()
    print(
        f"deployed {proxy.technique.name}: live flow evaded={outcome.evaded}, "
        f"payload intact={outcome.delivered_ok}"
    )


if __name__ == "__main__":
    main()
