"""Recording live application traffic and exporting it (Figure 3, step 1).

The paper's workflow starts with unmodified applications whose traffic is
recorded once and then replayed for all testing.  This example:

1. runs a real HTTP client/server dialogue over the testbed (via the
   socket-library deployment form of lib·erate),
2. records it off a packet tap into a replayable Trace,
3. verifies the recording classifies identically to the live flow,
4. saves the trace as JSON and the raw capture as a Wireshark-ready pcap.

Run:  python examples/record_and_replay.py
"""

import tempfile
from pathlib import Path

from repro.core.socketlib import LiberateSocket
from repro.endpoint.apps import HTTPServerApp
from repro.endpoint.tcpstack import TCPServerStack
from repro.envs import make_testbed
from repro.netsim.element import PacketTap
from repro.replay.session import ReplaySession
from repro.traffic import Trace, TraceRecorder, read_pcap, tap_to_pcap


def main() -> None:
    env = make_testbed()
    tap = PacketTap("recording-tap")
    env.path.elements.insert(0, tap)

    # A real application dialogue: HTTP over the socket wrapper.
    app = HTTPServerApp()
    app.add_page("video.example.com", "/clip.mp4", "video/mp4", b"\x00CLIP" * 200)
    env.path.server_endpoint = TCPServerStack(env.server_addr, app=app)

    with LiberateSocket(env) as sock:
        sock.sendall(b"GET /clip.mp4 HTTP/1.1\r\nHost: video.example.com\r\n\r\n")
        sock.flush()
        response = sock.recv()
    print(f"live flow fetched {len(response)} bytes")

    # Reconstruct the dialogue from the capture.
    recorder = TraceRecorder(tap)
    flow = recorder.flows()[0]
    trace = recorder.record(flow, name="recorded-clip")
    print(
        f"recorded trace: {len(trace.packets)} messages, "
        f"{trace.total_bytes()} application bytes, server port {trace.server_port}"
    )

    # The recording is a faithful stand-in: it classifies like the original.
    outcome = ReplaySession(env, trace).run()
    print(f"replaying the recording: classified as {outcome.classification!r}")

    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "clip.trace.json"
        pcap_path = Path(tmp) / "clip.pcap"
        trace.save(json_path)
        packets = tap_to_pcap(tap, pcap_path)
        restored = Trace.load(json_path)
        print(f"saved {json_path.name} ({json_path.stat().st_size} bytes) "
              f"and {pcap_path.name} ({packets} packets)")
        print(f"JSON round-trip intact: {restored.client_bytes() == trace.client_bytes()}")
        print(f"pcap readable: {len(read_pcap(pcap_path))} records")


if __name__ == "__main__":
    main()
