"""Runtime adaptation and the shared rule cache (§4.2).

Two of lib·erate's operational features beyond one-shot evasion:

* **adaptation** — when the network operator changes the classifier and a
  deployed technique stops working, the proxy notices (differentiation
  reappears), re-runs characterization + evaluation, and hot-swaps the
  technique;
* **rule cache** — characterization is the expensive phase, but its result
  is the same for every user behind the same middlebox; publishing it in a
  shared cache lets other users skip it entirely.

Run:  python examples/adaptive_rule_change.py
"""

from repro import Liberate
from repro.core.cache import RuleCache
from repro.envs import make_testbed
from repro.traffic import http_get_trace


def main() -> None:
    env = make_testbed()
    trace = http_get_trace("video.example.com", response_body=b"stream" * 200)

    print("=== deploy with a shared rule cache ===")
    cache = RuleCache()
    lib = Liberate(env, cache=cache, stop_at_first=True)
    proxy = lib.deploy(trace)
    print(f"deployed technique: {proxy.technique.name}")
    print(f"cache entries: {len(cache)} (misses: {cache.misses})")

    print()
    print("=== a second user skips characterization via the cache ===")
    second_user = Liberate(make_testbed(), cache=cache, stop_at_first=True)
    report = second_user.run(trace)
    print(f"cache hits: {cache.hits}  — characterization rounds paid: 0 (cached)")
    print(f"second user's technique: {report.deployed_technique}")

    print()
    print("=== the operator hardens the classifier ===")
    dpi = env.dpi()
    dpi.track_flows = False  # switch to Iran-style per-packet matching
    dpi.match_and_forget = False
    dpi.require_protocol_anchor = False
    print("classifier switched to stateless per-packet matching")

    old_technique = proxy.technique.name
    outcome = proxy.run_flow(trace)
    print(
        f"old technique {outcome.technique}: differentiated={outcome.differentiated} "
        f"-> re-adapted: {proxy.technique.name != old_technique}"
    )

    followup = proxy.run_flow(trace)
    print(
        f"after re-adaptation, technique={proxy.technique.name}: "
        f"evaded={followup.evaded}"
    )
    print(f"cache was invalidated and refreshed: entries={len(cache)}")


if __name__ == "__main__":
    main()
