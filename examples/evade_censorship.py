"""Evading nation-scale censorship: the GFC and Iran case studies (§6.5, §6.6).

Shows how the same automated pipeline adapts to two very different censors:

* the Great Firewall injects RSTs, validates packets extensively, reassembles
  streams fully, and blocks a server:port after two offenses — so lib·erate
  rotates ports during characterization, and wins with TTL-limited inert
  packets or pre-match RST flushing;
* Iran's per-packet classifier can't be fooled by inert packets or flushing
  at all — but splitting the keyword across two TCP segments walks right
  through, and so does any port other than 80.

Run:  python examples/evade_censorship.py
"""

from repro import Liberate
from repro.envs import make_gfc, make_iran
from repro.replay.session import ReplaySession
from repro.traffic import http_get_trace


def censored_visit(env, host: str) -> None:
    print(f"=== {env.name}: visiting http://{host} ===")
    trace = http_get_trace(host, response_body=b"<html>the forbidden page</html>" * 20)

    # What happens without lib·erate?
    naked = ReplaySession(env, trace).run()
    print(
        f"without liberate: blocked={naked.blocked} "
        f"(RSTs={naked.rst_count}, block page={naked.block_page_received})"
    )

    # The full pipeline.
    lib = Liberate(env)
    report = lib.run(trace)
    print(f"characterized in {report.characterization.rounds} replay rounds")
    print(f"  {report.characterization.summary()}")
    for note in report.characterization.notes:
        print(f"  note: {note}")
    working = [r.technique for r in report.evasion.working()]
    print(f"working techniques: {', '.join(working) or 'none'}")

    # Deploy and fetch the page for real.
    proxy = lib.deploy(trace)
    outcome = proxy.run_flow(trace)
    print(
        f"with {proxy.technique.name}: blocked={outcome.blocked}, "
        f"page delivered={outcome.server_response_ok}"
    )
    print()


def main() -> None:
    gfc = make_gfc()
    gfc.clock.at_hour(14)  # a busy hour, when even delay-flushing works
    censored_visit(gfc, "economist.com")
    censored_visit(make_iran(), "facebook.com")


if __name__ == "__main__":
    main()
