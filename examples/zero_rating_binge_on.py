"""T-Mobile Binge On: detect zero-rating, break the throttle, or masquerade (§6.2, §7).

Three acts:

1. **Detection** — Binge On is invisible except through the account's data
   usage counter: classified video doesn't count against the quota (and is
   "optimized" to ~1.5 Mbps).
2. **Evasion** — reordering two TCP segments hides the flow from the
   classifier entirely: full line rate, normal billing.
3. **Masquerading** (§7 future work, implemented here) — the dual trick: an
   inert TTL-limited packet carrying a *zero-rated* request makes an
   arbitrary flow ride the zero-rated lane.

Run:  python examples/zero_rating_binge_on.py
"""

from repro.core.evasion.base import EvasionContext
from repro.core.evasion.reordering import TCPSegmentReorder
from repro.core.masquerade import MasqueradeAsClass
from repro.envs import make_tmobile
from repro.replay.session import ReplaySession
from repro.traffic import http_request, video_stream_trace


def mbps(value: float | None) -> str:
    return f"{value / 1e6:5.2f} Mbps" if value else "  n/a"


def main() -> None:
    env = make_tmobile()

    print("=== act 1: what Binge On does to video ===")
    video = video_stream_trace(host="d1.cloudfront.net", total_bytes=2_000_000)
    outcome = ReplaySession(env, video).run()
    print(f"zero-rated: {outcome.zero_rated}   goodput: {mbps(outcome.throughput_bps)}")

    print()
    print("=== act 2: evasion restores line rate ===")
    context = EvasionContext(middlebox_hops=env.hops_to_middlebox, protocol="tcp")
    evaded = ReplaySession(env, video).run(technique=TCPSegmentReorder(), context=context)
    print(f"zero-rated: {evaded.zero_rated}   goodput: {mbps(evaded.throughput_bps)}")
    print(f"payload intact end-to-end: {evaded.delivered_ok}")

    print()
    print("=== act 3: masquerading — free data for any flow ===")
    other = video_stream_trace(
        host="not-a-partner-cdn.org", total_bytes=2_000_000, name="other-cdn"
    )
    plain = ReplaySession(env, other).run()
    print(f"plain replay zero-rated: {plain.zero_rated}")
    favored = http_request("d1.cloudfront.net", "/movie.mp4")
    masqueraded = ReplaySession(env, other).run(
        technique=MasqueradeAsClass(favored), context=context
    )
    print(
        f"masqueraded replay zero-rated: {masqueraded.zero_rated} "
        f"(delivered intact: {masqueraded.delivered_ok})"
    )


if __name__ == "__main__":
    main()
