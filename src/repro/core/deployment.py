"""Phase 4: evasion deployment (§4.4).

Once a working technique is known, lib·erate intercepts the application's
live traffic (here: further replays of its flows) and applies the technique
transparently.  Deployment also owns runtime adaptation: when a previously
working technique stops evading, the classifier rule has probably changed
and the characterization/evaluation phases must rerun (§4.2).
"""

from __future__ import annotations

from typing import Callable

from repro.core.evasion.base import EvasionContext, EvasionTechnique
from repro.envs.base import Environment
from repro.replay.session import ReplayOutcome, ReplaySession
from repro.traffic.trace import Trace


class LiberateProxy:
    """The deployed transparent proxy: applies one technique to app traffic.

    Args:
        env: the network the application runs in.
        technique: the selected (cheapest working) evasion technique.
        context: the evasion context the technique parameterizes on.
        on_rule_change: callback fired when evasion stops working; the
            pipeline wires this to re-characterization.
    """

    def __init__(
        self,
        env: Environment,
        technique: EvasionTechnique,
        context: EvasionContext,
        on_rule_change: Callable[[], None] | None = None,
    ) -> None:
        self.env = env
        self.technique = technique
        self.context = context
        self.on_rule_change = on_rule_change
        self.flows_handled = 0
        self.rule_change_detected = False

    def run_flow(self, trace: Trace, server_port: int | None = None) -> ReplayOutcome:
        """Send one application flow through the evasion transform.

        Detects classifier/network changes two ways: the flow is
        differentiated despite the technique (§4.2: "if differentiation
        occurs even when using a previously successful evasion technique …
        lib·erate repeats the characterization and evasion steps"), or the
        technique started *breaking the application* — e.g. a newly deployed
        TTL-normalizer delivering our formerly-inert packets to the server.
        Either way the pipeline reruns and the technique is swapped.
        """
        session = ReplaySession(self.env, trace, server_port=server_port)
        outcome = session.run(technique=self.technique, context=self.context)
        self.flows_handled += 1
        broke_application = not (outcome.delivered_ok and outcome.server_response_ok)
        if outcome.differentiated or broke_application:
            self.rule_change_detected = True
            if self.on_rule_change is not None:
                self.on_rule_change()
        return outcome

    def overhead_estimate(self):
        """The technique's per-flow cost (Table 2)."""
        return self.technique.estimated_overhead(self.context)
