"""Phase 4: evasion deployment (§4.4).

Once a working technique is known, lib·erate intercepts the application's
live traffic (here: further replays of its flows) and applies the technique
transparently.  Deployment also owns runtime adaptation: when a previously
working technique stops evading, the classifier rule has probably changed
and the characterization/evaluation phases must rerun (§4.2).

On unreliable networks a single failed flow is weak evidence — loss can make
a working technique look broken — so the :class:`FallbackLadder` health-checks
the active technique over a sliding window of recent flows and only steps
down to the next-cheapest known-working technique when the window shows a
persistent failure, degrading gracefully instead of flapping.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.evasion.base import EvasionContext, EvasionTechnique
from repro.envs.base import Environment
from repro.replay.session import ReplayOutcome, ReplaySession
from repro.traffic.trace import Trace

logger = logging.getLogger(__name__)


class LiberateProxy:
    """The deployed transparent proxy: applies one technique to app traffic.

    Args:
        env: the network the application runs in.
        technique: the selected (cheapest working) evasion technique.
        context: the evasion context the technique parameterizes on.
        on_rule_change: callback fired when evasion stops working; the
            pipeline wires this to re-characterization.
    """

    def __init__(
        self,
        env: Environment,
        technique: EvasionTechnique,
        context: EvasionContext,
        on_rule_change: Callable[[], None] | None = None,
    ) -> None:
        self.env = env
        self.technique = technique
        self.context = context
        self.on_rule_change = on_rule_change
        self.flows_handled = 0
        self.rule_change_detected = False

    def run_flow(self, trace: Trace, server_port: int | None = None) -> ReplayOutcome:
        """Send one application flow through the evasion transform.

        Detects classifier/network changes two ways: the flow is
        differentiated despite the technique (§4.2: "if differentiation
        occurs even when using a previously successful evasion technique …
        lib·erate repeats the characterization and evasion steps"), or the
        technique started *breaking the application* — e.g. a newly deployed
        TTL-normalizer delivering our formerly-inert packets to the server.
        Either way the pipeline reruns and the technique is swapped.
        """
        session = ReplaySession(self.env, trace, server_port=server_port)
        outcome = session.run(technique=self.technique, context=self.context)
        self.flows_handled += 1
        broke_application = not (outcome.delivered_ok and outcome.server_response_ok)
        if outcome.differentiated or broke_application:
            self.rule_change_detected = True
            if self.on_rule_change is not None:
                self.on_rule_change()
        return outcome

    def overhead_estimate(self):
        """The technique's per-flow cost (Table 2)."""
        return self.technique.estimated_overhead(self.context)


@dataclass
class StepDown:
    """Record of one fallback transition."""

    flow: int  # flows_handled when the step-down fired
    from_technique: str
    to_technique: str | None  # None when the ladder was exhausted
    failures_in_window: int


class FallbackLadder:
    """Graceful degradation over a ranked list of working techniques.

    The pipeline ranks the techniques that evaded during evaluation by cost,
    cheapest first.  The ladder deploys the cheapest and health-checks every
    flow: a flow is *healthy* when the technique evaded (signal gone, payload
    through).  When at least *failure_threshold* of the last *window* flows
    on the active technique were unhealthy, the ladder steps down to the
    next-cheapest technique and the window resets.  Running off the bottom
    sets :attr:`exhausted` — flows keep being sent (best effort, undisguised
    failure is still better than silence) and every transition is recorded
    in :attr:`step_downs` for diagnostics.

    Args:
        env: the network the application runs in.
        techniques: working techniques, cheapest first (non-empty).
        context: the evasion context all techniques parameterize on.
        window: sliding health window length (flows).
        failure_threshold: unhealthy flows within the window that trigger a
            step-down.
    """

    def __init__(
        self,
        env: Environment,
        techniques: Sequence[EvasionTechnique],
        context: EvasionContext,
        window: int = 5,
        failure_threshold: int = 3,
    ) -> None:
        if not techniques:
            raise ValueError("need at least one working technique")
        if failure_threshold < 1 or failure_threshold > window:
            raise ValueError("failure_threshold must be within the window")
        self.env = env
        self.techniques = list(techniques)
        self.context = context
        self.window = window
        self.failure_threshold = failure_threshold
        self.rung = 0
        self.flows_handled = 0
        self.step_downs: list[StepDown] = []
        self.exhausted = False
        self._health: deque[bool] = deque(maxlen=window)

    @property
    def active_technique(self) -> EvasionTechnique:
        """The technique currently deployed (the last rung when exhausted)."""
        return self.techniques[min(self.rung, len(self.techniques) - 1)]

    def run_flow(self, trace: Trace, server_port: int | None = None) -> ReplayOutcome:
        """Send one flow through the active technique and health-check it."""
        technique = self.active_technique
        session = ReplaySession(self.env, trace, server_port=server_port)
        outcome = session.run(technique=technique, context=self.context)
        self.flows_handled += 1
        self._health.append(outcome.evaded)
        failures = self._health.count(False)
        if not self.exhausted and failures >= self.failure_threshold:
            self._step_down(failures)
        return outcome

    def _step_down(self, failures: int) -> None:
        from_name = self.active_technique.name
        self.rung += 1
        if self.rung >= len(self.techniques):
            self.exhausted = True
            to_name = None
            logger.warning(
                "fallback ladder exhausted after %s failed (%d/%d unhealthy); "
                "continuing best-effort on the last rung",
                from_name,
                failures,
                len(self._health),
            )
        else:
            to_name = self.active_technique.name
            logger.warning(
                "stepping down from %s to %s (%d/%d recent flows unhealthy)",
                from_name,
                to_name,
                failures,
                len(self._health),
            )
        self.step_downs.append(
            StepDown(
                flow=self.flows_handled,
                from_technique=from_name,
                to_technique=to_name,
                failures_in_window=failures,
            )
        )
        self._health.clear()

    def health_snapshot(self) -> dict[str, object]:
        """Current ladder state for reports and diagnostics."""
        return {
            "active_technique": self.active_technique.name,
            "rung": self.rung,
            "flows_handled": self.flows_handled,
            "recent_failures": self._health.count(False),
            "window_fill": len(self._health),
            "step_downs": len(self.step_downs),
            "exhausted": self.exhausted,
        }
