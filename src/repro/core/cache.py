"""Shared characterization cache (§4.2).

Characterization is the expensive phase (tens of minutes and megabytes in
operational networks), but its result is valid until the classifier rule
changes — and is the same for every user behind the same middlebox.  The
paper proposes distributing test results "in a well known public location
(e.g., a server or a DHT) so that all users can identify the matching rules
without running additional tests".  This module provides that store: a
JSON-serializable cache keyed by (network, application).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core.report import CharacterizationReport, MatchingField


def _report_to_dict(report: CharacterizationReport) -> dict:
    data = asdict(report)
    for key in ("matching_fields", "server_side_fields"):
        data[key] = [
            {
                "packet_index": f["packet_index"],
                "start": f["start"],
                "end": f["end"],
                "content": f["content"].hex(),
            }
            for f in data[key]
        ]
    return data


def _report_from_dict(data: dict) -> CharacterizationReport:
    def fields(items: list[dict]) -> list[MatchingField]:
        return [
            MatchingField(
                packet_index=item["packet_index"],
                start=item["start"],
                end=item["end"],
                content=bytes.fromhex(item["content"]),
            )
            for item in items
        ]

    return CharacterizationReport(
        matching_fields=fields(data.get("matching_fields", [])),
        server_side_fields=fields(data.get("server_side_fields", [])),
        packet_limit=data.get("packet_limit"),
        limit_is_packet_based=data.get("limit_is_packet_based", True),
        inspects_all_packets=data.get("inspects_all_packets", False),
        match_and_forget=data.get("match_and_forget", True),
        prepend_sensitivity=data.get("prepend_sensitivity"),
        rounds=data.get("rounds", 0),
        bytes_used=data.get("bytes_used", 0),
        port_rotation_used=data.get("port_rotation_used", False),
        notes=list(data.get("notes", [])),
    )


class RuleCache:
    """A shareable store of characterization results.

    Keys are (network, application) pairs.  The store round-trips through
    JSON so it can live on the "well known public location" of §4.2; users
    who fetch it skip the characterization phase entirely (the efficiency
    benches quantify the savings).
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], CharacterizationReport] = {}
        self.hits = 0
        self.misses = 0

    def get(self, network: str, application: str) -> CharacterizationReport | None:
        """Look up a cached characterization; counts hit/miss statistics."""
        entry = self._entries.get((network, application))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, network: str, application: str, report: CharacterizationReport) -> None:
        """Publish a characterization result for other users."""
        self._entries[(network, application)] = report

    def invalidate(self, network: str, application: str) -> None:
        """Drop a stale entry (the classifier rule changed)."""
        self._entries.pop((network, application), None)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the whole cache."""
        return json.dumps(
            [
                {"network": network, "application": app, "report": _report_to_dict(report)}
                for (network, app), report in self._entries.items()
            ],
            indent=2,
        )

    @classmethod
    def from_json(cls, document: str) -> "RuleCache":
        """Load a cache previously produced by :meth:`to_json`."""
        cache = cls()
        for item in json.loads(document):
            cache.put(item["network"], item["application"], _report_from_dict(item["report"]))
        return cache

    def save(self, path: str | Path) -> None:
        """Write the cache to disk."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "RuleCache":
        """Read a cache from disk."""
        return cls.from_json(Path(path).read_text())
