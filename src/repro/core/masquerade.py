"""Masquerading (§7): be *mis*classified on purpose.

Evasion makes classified traffic look unclassified; masquerading is the
dual — making arbitrary traffic look like a *favored* class (e.g. zero-rated
video under Binge On).  The mechanism is the same inert-packet machinery:
a TTL-limited packet carrying the favored class's matching fields is
inserted at the start of the flow, the match-and-forget classifier locks
onto it, and the policy (zero-rating, prioritization) applies to the real
traffic that follows.  The inert packet dies before the server, so the
application is untouched.

The paper lists this as supported future work ("Our framework supports
masquerading as long as users supply traffic to place in inert packets");
this module implements it.
"""

from __future__ import annotations

from repro.core.evasion.base import EvasionContext, EvasionTechnique, Overhead, ctx_of
from repro.endpoint.rawclient import SegmentPlan
from repro.replay.runner import ReplayRunner


class MasqueradeAsClass(EvasionTechnique):
    """Make a flow classify as a chosen traffic class via an inert packet.

    Args:
        class_payload: bytes that match the favored class's rule — e.g. a
            recorded zero-rated video request.  The user supplies this, as
            §7 describes.
    """

    name = "masquerade-as-class"
    category = "masquerading"
    protocol = "tcp"

    def __init__(self, class_payload: bytes) -> None:
        if not class_payload:
            raise ValueError("masquerading needs the favored class's payload")
        self.class_payload = class_payload

    def apply(self, runner: ReplayRunner) -> None:
        """Send the masquerade probe, then the real traffic unmodified."""
        ctx = ctx_of(runner)
        runner.send_inert(
            SegmentPlan(payload=self.class_payload, ttl=ctx.ttl_to_reach_classifier())
        )
        runner.send_default()

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """One inert packet carrying the class payload."""
        return Overhead(packets=1, bytes=len(self.class_payload) + 40)


def masquerade_outcome_is_favored(outcome) -> bool:
    """Did the middlebox grant the favored treatment (zero-rating) to the flow?"""
    return bool(outcome.zero_rated) and outcome.delivered_ok
