"""Phase 2: classifier characterization (§4.2, §5.1).

Two instruments:

* **blinding** — recursive binary search over payload bytes, inverting the
  bits of candidate regions; a region whose blinding removes differentiation
  contains matching-field bytes.  Recursion continues to byte granularity,
  producing the exact matching fields.
* **prepend probing** — insert random payload packets before the matching
  packet: the smallest count that changes classification reveals the
  classifier's position sensitivity; repeating with 1-byte packets instead
  of MTU-sized ones distinguishes packet-count limits from byte limits.
  Never changing within the threshold (10, from §5.1) means the classifier
  inspects every packet (Iran).
"""

from __future__ import annotations

import random

from repro.core.report import CharacterizationReport, MatchingField
from repro.envs.base import Environment
from repro.replay.session import ReplaySession
from repro.traffic.trace import Trace, invert_bits

MTU = 1460

#: §5.1: stop prepending and conclude "inspects all packets" at this count.
DEFAULT_PREPEND_THRESHOLD = 10


class CharacterizationError(RuntimeError):
    """The baseline behaviour is inconsistent (e.g. no differentiation)."""


class Characterizer:
    """Reverse-engineers the classifier rule affecting *trace* in *env*.

    Args:
        env: the environment under test.
        trace: a recorded dialogue known (or suspected) to be differentiated.
        rotate_ports: use a fresh server port for every replay, dodging
            residual server:port blocking (defaults to the environment's
            known requirement; the GFC needs this — §6.5).
        prepend_threshold: give up on position probing after this many
            prepended packets.
        granularity: smallest blinding region (1 = byte-exact fields).
        trials: replay repetition for noisy (fault-injected) networks.  1
            (the default) replays each probe once — the historical
            behaviour.  Greater than 1 repeats each probe until one verdict
            leads by two trials (re-probing inconsistent rounds), so the
            blinding binary search converges under packet loss.
    """

    def __init__(
        self,
        env: Environment,
        trace: Trace,
        rotate_ports: bool | None = None,
        prepend_threshold: int = DEFAULT_PREPEND_THRESHOLD,
        granularity: int = 1,
        blind_mode: str = "invert",
        trials: int = 1,
    ) -> None:
        if blind_mode not in ("invert", "random"):
            raise ValueError(f"unknown blind mode {blind_mode!r}")
        self.env = env
        self.trace = trace
        self.rotate_ports = env.needs_port_rotation if rotate_ports is None else rotate_ports
        self.prepend_threshold = prepend_threshold
        self.granularity = max(granularity, 1)
        self.blind_mode = blind_mode
        self.trials = max(trials, 1)
        self.rounds = 0
        self.bytes_used = 0
        self.inconsistent_rounds = 0
        self._port_counter = trace.server_port
        self._rng = random.Random(0x11BE7A7E)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, include_server_side: bool = True) -> CharacterizationReport:
        """Full characterization: matching fields plus position limits.

        When *include_server_side* is set, server→client payloads are also
        blinded (packet granularity, then bisection) — this is how the
        paper discovered AT&T matching ``Content-Type: video`` in responses.
        """
        fields = self.find_matching_fields()
        report = self.probe_position_limits()
        report.matching_fields = fields
        if include_server_side:
            server_fields = self.find_server_side_fields()
            if server_fields:
                report.notes.append(
                    "server-to-client payloads also used for classification: "
                    + ", ".join(str(f) for f in server_fields)
                )
                report.server_side_fields = server_fields
        report.rounds = self.rounds
        report.bytes_used = self.bytes_used
        report.port_rotation_used = self.rotate_ports
        if self.inconsistent_rounds:
            report.notes.append(
                f"{self.inconsistent_rounds} probe(s) returned inconsistent "
                "verdicts across trials and were re-probed (lossy path)"
            )
        return report

    def find_server_side_fields(self, scan_limit: int = 3) -> list[MatchingField]:
        """Blind server payloads to find response-side matching fields.

        Only the first *scan_limit* server payloads are scanned — response
        headers (the realistic match surface) arrive first, and scanning a
        whole video body would cost hundreds of replays.
        """
        payloads = self.trace.server_payloads()
        fields: list[MatchingField] = []
        for index, payload in enumerate(payloads[:scan_limit]):
            if not payload:
                continue
            if self._replay(server_blind=[(index, 0, len(payload))]):
                continue
            positions = self._bisect(index, 0, len(payload), side="server")
            fields.extend(self._merge(index, payload, positions))
        return fields

    def find_matching_fields(self) -> list[MatchingField]:
        """Binary-search blinding down to byte-exact matching fields."""
        if not self._replay():
            raise CharacterizationError("baseline replay is not differentiated")
        payloads = self.trace.client_payloads()
        if self._replay([(i, 0, len(p)) for i, p in enumerate(payloads) if p]):
            # §5.1 footnote: bit inversion itself can be detected by an
            # adversarial middlebox — fall back to randomized blinding once
            # before giving up.
            if self.blind_mode == "invert":
                self.blind_mode = "random"
                if not self._replay([(i, 0, len(p)) for i, p in enumerate(payloads) if p]):
                    return self.find_matching_fields()
                self.blind_mode = "invert"
            raise CharacterizationError(
                "fully blinded control is still differentiated; trigger is not "
                "client payload content"
            )
        fields: list[MatchingField] = []
        for index, payload in enumerate(payloads):
            if not payload:
                continue
            if self._replay([(index, 0, len(payload))]):
                continue  # blinding this whole packet changes nothing
            positions = self._bisect(index, 0, len(payload))
            fields.extend(self._merge(index, payload, positions))
        if fields:
            # Verification round: blinding exactly the discovered fields must
            # remove differentiation (guards the bisection's AND-semantics
            # assumption; see _bisect).
            if self._replay([(f.packet_index, f.start, f.end) for f in fields]):
                raise CharacterizationError(
                    "discovered fields do not explain classification "
                    "(redundant alternative rules?)"
                )
        return fields

    def probe_position_limits(self) -> CharacterizationReport:
        """Prepend probing: position sensitivity and packet-vs-byte limits."""
        report = CharacterizationReport()
        sensitivity: int | None = None
        for count in range(1, self.prepend_threshold + 1):
            filler = [self._random_payload(MTU) for _ in range(count)]
            if not self._replay(prepend=filler):
                sensitivity = count
                break
        report.prepend_sensitivity = sensitivity
        if sensitivity is None:
            report.inspects_all_packets = True
            report.match_and_forget = False
            report.packet_limit = None
            report.notes.append(
                f"classification unchanged after {self.prepend_threshold} prepended "
                "packets: the classifier inspects every packet"
            )
            return report
        # Distinguish packet-count limits from byte limits (§5.1): replace the
        # MTU-sized filler with 1-byte packets.
        tiny = [self._random_payload(1) for _ in range(sensitivity)]
        if not self._replay(prepend=tiny):
            report.limit_is_packet_based = True
            report.packet_limit = sensitivity
            report.notes.append(f"packet-based inspection limit at {sensitivity} packet(s)")
        else:
            report.limit_is_packet_based = False
            report.packet_limit = sensitivity
            report.notes.append(f"byte-based limit of at most {sensitivity} * MTU bytes")
        report.inspects_all_packets = False
        report.match_and_forget = True
        return report

    # ------------------------------------------------------------------
    # replay plumbing
    # ------------------------------------------------------------------
    def _replay(
        self,
        blind: list[tuple[int, int, int]] | None = None,
        prepend: list[bytes] | None = None,
        server_blind: list[tuple[int, int, int]] | None = None,
    ) -> bool:
        """One characterization probe; returns whether it was differentiated.

        With ``trials`` > 1 the probe repeats until one verdict leads by two
        trials (within a small budget) — a lost probe packet then reads as a
        one-off disagreement that gets re-probed instead of sending the
        binary search down the wrong branch.
        """
        if self.trials <= 1:
            return self._replay_once(blind, prepend, server_blind)
        votes_true = 0
        votes_false = 0
        budget = self.trials + 4
        while votes_true + votes_false < budget:
            if self._replay_once(blind, prepend, server_blind):
                votes_true += 1
            else:
                votes_false += 1
            done = votes_true + votes_false
            if done >= min(self.trials, 2) and abs(votes_true - votes_false) >= 2:
                break
        if votes_true and votes_false:
            self.inconsistent_rounds += 1
        return votes_true > votes_false

    def _replay_once(
        self,
        blind: list[tuple[int, int, int]] | None = None,
        prepend: list[bytes] | None = None,
        server_blind: list[tuple[int, int, int]] | None = None,
    ) -> bool:
        """One characterization round; returns whether it was differentiated."""
        trace = self.trace
        if blind:
            payloads = list(trace.client_payloads())
            for index, start, end in blind:
                payload = payloads[index]
                payloads[index] = (
                    payload[:start] + self._blind_bytes(payload[start:end]) + payload[end:]
                )
            trace = trace.with_client_payloads(payloads)
        if server_blind:
            payloads = list(trace.server_payloads())
            for index, start, end in server_blind:
                payload = payloads[index]
                payloads[index] = (
                    payload[:start] + self._blind_bytes(payload[start:end]) + payload[end:]
                )
            trace = trace.with_server_payloads(payloads)
        if prepend:
            trace = trace.prepend_client_payloads(prepend)
        port = trace.server_port
        if self.rotate_ports:
            self._port_counter += 1
            port = 8000 + (self._port_counter % 20_000)
        outcome = ReplaySession(self.env, trace, server_port=port).run()
        self.rounds += 1
        self.bytes_used += trace.total_bytes()
        return outcome.differentiated

    def _random_payload(self, size: int) -> bytes:
        return bytes(self._rng.randrange(256) for _ in range(size))

    def _blind_bytes(self, data: bytes) -> bytes:
        """Destroy *data* per the active blinding mode.

        Inversion is deterministic (the default); randomization is the
        fallback when a middlebox detects inverted traffic (§5.1 footnote).
        """
        if self.blind_mode == "random":
            return self._random_payload(len(data))
        return invert_bits(data)

    # ------------------------------------------------------------------
    # bisection
    # ------------------------------------------------------------------
    def _bisect(self, index: int, lo: int, hi: int, side: str = "client") -> list[int]:
        """Byte positions within [lo, hi) whose blinding breaks classification.

        Precondition: blinding the whole of [lo, hi) breaks classification.
        Tests the left half; when it does not break, the right half must
        (saving one replay); when it does, the right half is tested too
        because a field may span the midpoint.
        """
        if hi - lo <= self.granularity:
            return list(range(lo, hi))
        mid = (lo + hi) // 2
        positions: list[int] = []
        left_breaks = not self._blind_replay(side, index, lo, mid)
        if left_breaks:
            positions.extend(self._bisect(index, lo, mid, side))
            right_breaks = not self._blind_replay(side, index, mid, hi)
            if right_breaks:
                positions.extend(self._bisect(index, mid, hi, side))
        else:
            positions.extend(self._bisect(index, mid, hi, side))
        return positions

    def _blind_replay(self, side: str, index: int, lo: int, hi: int) -> bool:
        if side == "server":
            return self._replay(server_blind=[(index, lo, hi)])
        return self._replay([(index, lo, hi)])

    def _merge(self, index: int, payload: bytes, positions: list[int]) -> list[MatchingField]:
        """Coalesce adjacent byte positions into contiguous fields."""
        fields: list[MatchingField] = []
        for position in sorted(set(positions)):
            if fields and fields[-1].end == position:
                last = fields[-1]
                fields[-1] = MatchingField(
                    packet_index=index,
                    start=last.start,
                    end=position + 1,
                    content=payload[last.start : position + 1],
                )
            else:
                fields.append(
                    MatchingField(
                        packet_index=index,
                        start=position,
                        end=position + 1,
                        content=payload[position : position + 1],
                    )
                )
        return fields
