"""Inert packet insertion (Table 3, upper block).

Each technique injects packet(s) carrying innocuous payload immediately
before the matching packet.  A middlebox that processes the inert packet
either locks onto the wrong content (match-and-forget), fails its protocol
anchor, or desynchronizes its stream tracking — while the server never
accepts the inert bytes, so end-to-end integrity is preserved.
"""

from __future__ import annotations

from repro.core.evasion.base import EvasionContext, EvasionTechnique, Overhead, ctx_of
from repro.endpoint.rawclient import SegmentPlan
from repro.packets.options import deprecated_ip_option, invalid_ip_option
from repro.packets.tcp import TCPFlags
from repro.replay.runner import ReplayRunner, make_inert_payload

INERT_PAYLOAD_SIZE = 64


class InertTCPTechnique(EvasionTechnique):
    """Base class: inject inert TCP packets before the matching message."""

    category = "inert-insertion"
    protocol = "tcp"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:
        """Subclasses mutate *plan* to make the packet inert."""
        raise NotImplementedError

    def apply(self, runner: ReplayRunner) -> None:
        """Send the trace with inert packets inserted before the match."""
        ctx = ctx_of(runner)
        target = ctx.target_message_index()
        for index, message in enumerate(runner.client_messages):
            if index == target:
                for _ in range(max(ctx.inert_packet_count, 1)):
                    plan = SegmentPlan(payload=make_inert_payload(INERT_PAYLOAD_SIZE, self.name))
                    self.plan_overrides(ctx, plan)
                    runner.send_inert(plan)
            runner.send_message(message)

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """k inert packets per flow."""
        k = max(ctx.inert_packet_count, 1)
        return Overhead(packets=k, bytes=k * (INERT_PAYLOAD_SIZE + 40))


class LowTTLInert(InertTCPTechnique):
    """IP: TTL large enough to cross the classifier, too small for the server."""

    name = "ip-low-ttl"
    protocol = "any"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.ttl = ctx.ttl_to_reach_classifier()

    def apply(self, runner: ReplayRunner) -> None:
        """TCP and UDP variants share the TTL trick."""
        if runner.trace.protocol == "udp":
            ctx = ctx_of(runner)
            target = ctx.target_message_index()
            for index, message in enumerate(runner.client_messages):
                if index == target:
                    runner.send_inert_datagram(
                        make_inert_payload(INERT_PAYLOAD_SIZE, self.name),
                        ttl=ctx.ttl_to_reach_classifier(),
                    )
                runner.send_datagram(message)
            return
        super().apply(runner)


class InvalidIPVersion(InertTCPTechnique):
    """IP: version field set to 6 on an IPv4 packet."""

    name = "ip-invalid-version"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.ip_version = 6


class InvalidIPHeaderLength(InertTCPTechnique):
    """IP: IHL below the 20-byte minimum."""

    name = "ip-invalid-ihl"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.ip_ihl = 3


class TotalLengthLong(InertTCPTechnique):
    """IP: total length claims more bytes than are on the wire."""

    name = "ip-length-long"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.ip_total_length_delta = 400


class TotalLengthShort(InertTCPTechnique):
    """IP: total length claims fewer bytes than are on the wire."""

    name = "ip-length-short"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.ip_total_length_delta = -24


class WrongProtocol(InertTCPTechnique):
    """IP: an unassigned protocol number wraps a valid TCP payload."""

    name = "ip-wrong-protocol"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.ip_protocol = 0xFD


class WrongIPChecksum(InertTCPTechnique):
    """IP: corrupted header checksum."""

    name = "ip-wrong-checksum"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.ip_checksum = 0xBEEF


class InvalidIPOptions(InertTCPTechnique):
    """IP: structurally malformed option list."""

    name = "ip-invalid-options"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.ip_options = invalid_ip_option()


class DeprecatedIPOptions(InertTCPTechnique):
    """IP: a valid but RFC-6814-deprecated Stream ID option."""

    name = "ip-deprecated-options"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.ip_options = deprecated_ip_option()


class WrongTCPSequence(InertTCPTechnique):
    """TCP: sequence number far outside the window."""

    name = "tcp-wrong-seq"

    def apply(self, runner: ReplayRunner) -> None:
        """Needs the live connection state, so overrides apply()."""
        ctx = ctx_of(runner)
        target = ctx.target_message_index()
        for index, message in enumerate(runner.client_messages):
            if index == target:
                tcp = runner.client
                wild_seq = (tcp.next_seq + 0x30000000) & 0xFFFFFFFF  # type: ignore[union-attr]
                for _ in range(max(ctx.inert_packet_count, 1)):
                    runner.send_inert(
                        SegmentPlan(
                            payload=make_inert_payload(INERT_PAYLOAD_SIZE, self.name),
                            seq=wild_seq,
                        )
                    )
            runner.send_message(message)

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        raise AssertionError("apply() is overridden")


class WrongTCPChecksum(InertTCPTechnique):
    """TCP: corrupted transport checksum."""

    name = "tcp-wrong-checksum"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.tcp_checksum = 0xDEAD


class NoACKFlag(InertTCPTechnique):
    """TCP: established-state data without the ACK flag."""

    name = "tcp-no-ack-flag"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.flags = TCPFlags.PSH


class InvalidDataOffset(InertTCPTechnique):
    """TCP: data offset pointing past the real header."""

    name = "tcp-invalid-data-offset"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.data_offset = 15


class InvalidFlagCombination(InertTCPTechnique):
    """TCP: SYN and FIN lit together."""

    name = "tcp-invalid-flags"

    def plan_overrides(self, ctx: EvasionContext, plan: SegmentPlan) -> None:  # noqa: D102
        plan.flags = TCPFlags.SYN | TCPFlags.FIN | TCPFlags.ACK


class InertUDPTechnique(EvasionTechnique):
    """Base class: inject one inert datagram before the matching datagram."""

    category = "inert-insertion"
    protocol = "udp"
    checksum: int | None = None
    length_delta: int | None = None

    def apply(self, runner: ReplayRunner) -> None:
        """Send the trace with an inert datagram before the match."""
        ctx = ctx_of(runner)
        target = ctx.target_message_index()
        for index, message in enumerate(runner.client_messages):
            if index == target:
                runner.send_inert_datagram(
                    make_inert_payload(INERT_PAYLOAD_SIZE, self.name),
                    checksum=self.checksum,
                    length_delta=self.length_delta,
                )
            runner.send_datagram(message)

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """One inert datagram per flow."""
        return Overhead(packets=1, bytes=INERT_PAYLOAD_SIZE + 28)


class UDPInvalidChecksum(InertUDPTechnique):
    """UDP: corrupted checksum."""

    name = "udp-invalid-checksum"
    checksum = 0xDEAD


class UDPLengthLong(InertUDPTechnique):
    """UDP: declared length exceeds the payload."""

    name = "udp-length-long"
    length_delta = 32


class UDPLengthShort(InertUDPTechnique):
    """UDP: declared length understates the payload."""

    name = "udp-length-short"
    length_delta = -16
