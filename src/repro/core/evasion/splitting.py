"""Payload splitting (Table 3, middle block).

Matching fields are cut across packet boundaries — TCP segments or IP
fragments — so classifiers that match per packet, or that stop reassembling
after a small window, never see the field contiguously.  Every packet is
valid, and the receiving OS reassembles transparently, so end-to-end
integrity is free.
"""

from __future__ import annotations

from repro.core.evasion.base import EvasionContext, EvasionTechnique, Overhead, ctx_of
from repro.core.report import MatchingField
from repro.replay.runner import ReplayRunner


def split_points(message: bytes, fields: list[MatchingField], budget: int) -> list[int]:
    """Cut offsets that slice every matching field across boundaries.

    At most *budget*-1 cuts are produced (so at most *budget* pieces); cuts
    are placed densely inside matching fields, starting with the earliest.
    Without known fields the first byte is isolated — the degenerate split
    the paper found sufficient against the testbed device.
    """
    if budget < 2:
        raise ValueError("need a budget of at least two pieces")
    if not fields:
        return [1] if len(message) > 1 else []
    cuts: list[int] = []
    per_field = max((budget - 1) // len(fields), 1)
    for field in fields:
        width = len(field)
        if width <= 1:
            cuts.append(min(field.start + 1, len(message) - 1))
            continue
        stride = max(width // (per_field + 1), 1)
        position = field.start + stride
        while position < field.end and len(cuts) < budget - 1:
            cuts.append(position)
            position += stride
    unique = sorted({c for c in cuts if 0 < c < len(message)})
    return unique[: budget - 1]


def pieces_from_cuts(message: bytes, cuts: list[int]) -> list[tuple[int, bytes]]:
    """Turn cut offsets into (offset, data) pieces covering the message."""
    bounds = [0, *cuts, len(message)]
    return [
        (bounds[i], message[bounds[i] : bounds[i + 1]])
        for i in range(len(bounds) - 1)
        if bounds[i + 1] > bounds[i]
    ]


class TCPSegmentSplit(EvasionTechnique):
    """TCP: break the matching packet into many small segments (§5.2, n ≤ 10)."""

    name = "tcp-segment-split"
    category = "splitting"
    protocol = "tcp"

    def apply(self, runner: ReplayRunner) -> None:
        """Split the matching message across segment boundaries."""
        ctx = ctx_of(runner)
        target = ctx.target_message_index()
        for index, message in enumerate(runner.client_messages):
            if index != target or len(message) < 2:
                runner.send_message(message)
                continue
            cuts = split_points(message, ctx.fields_in_message(index), ctx.split_pieces)
            runner.send_pieces(pieces_from_cuts(message, cuts))

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """k extra 40-byte headers plus server-side reassembly."""
        return Overhead(packets=ctx.split_pieces - 1, bytes=(ctx.split_pieces - 1) * 40)


class IPFragmentation(EvasionTechnique):
    """IP: fragment the matching packet so the field spans fragments (m = 2)."""

    name = "ip-fragmentation"
    category = "splitting"
    protocol = "tcp"

    def fragment_order(self, count: int) -> list[int]:
        """Transmission order of the fragments (identity here)."""
        return list(range(count))

    def apply(self, runner: ReplayRunner) -> None:
        """Fragment the matching message with the cut inside the field."""
        ctx = ctx_of(runner)
        target = ctx.target_message_index()
        for index, message in enumerate(runner.client_messages):
            if index != target or len(message) < 16:
                runner.send_message(message)
                continue
            size = self._fragment_size(message, ctx.fields_in_message(index))
            count = -(-(len(message) + 20) // size)  # ceil over TCP header + payload
            runner.send_fragmented(message, size, order=self.fragment_order(count))

    def _fragment_size(self, message: bytes, fields: list[MatchingField]) -> int:
        tcp_header = 20
        if fields:
            cut = tcp_header + fields[0].start + max(len(fields[0]) // 2, 1)
        else:
            cut = (tcp_header + len(message)) // 2
        size = (cut // 8) * 8
        upper = ((tcp_header + len(message) - 1) // 8) * 8
        return max(8, min(size, max(upper, 8)))

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """One extra 20-byte IP header per additional fragment."""
        return Overhead(packets=ctx.fragment_count - 1, bytes=(ctx.fragment_count - 1) * 20)
