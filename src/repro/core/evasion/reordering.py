"""Payload reordering (Table 3, middle block).

The same cuts as splitting, transmitted out of order.  Defeats classifiers
that assemble streams strictly in arrival order (T-Mobile ignores
out-of-order segments entirely) while every mainstream OS reassembles
correctly at the endpoint.
"""

from __future__ import annotations

from repro.core.evasion.base import EvasionContext, EvasionTechnique, Overhead, ctx_of
from repro.core.evasion.splitting import IPFragmentation, pieces_from_cuts, split_points
from repro.replay.runner import ReplayRunner


class TCPSegmentReorder(EvasionTechnique):
    """TCP: two segments cut inside the matching field, sent in reverse.

    The paper found reversing the initial pieces reveals an effective order
    "after just one try" (§5.2), so the minimal two-piece reversal is used.
    """

    name = "tcp-segment-reorder"
    category = "reordering"
    protocol = "tcp"

    def apply(self, runner: ReplayRunner) -> None:
        """Send the matching message as two pieces, second piece first."""
        ctx = ctx_of(runner)
        target = ctx.target_message_index()
        for index, message in enumerate(runner.client_messages):
            if index != target or len(message) < 2:
                runner.send_message(message)
                continue
            cuts = split_points(message, ctx.fields_in_message(index), budget=2)
            pieces = pieces_from_cuts(message, cuts)
            runner.send_pieces(list(reversed(pieces)), total_length=len(message))

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """One extra header plus endpoint reassembly."""
        return Overhead(packets=1, bytes=40)


class IPFragmentReorder(IPFragmentation):
    """IP: the fragmentation technique with reversed transmission order."""

    name = "ip-fragment-reorder"
    category = "reordering"

    def fragment_order(self, count: int) -> list[int]:
        """Reverse the fragments on the wire."""
        return list(reversed(range(count)))


class UDPReorder(EvasionTechnique):
    """UDP: swap the matching datagram with its successor.

    Datagram applications tolerate reordering by design; a classifier that
    matches on packet *position* (the testbed's first-packet STUN rule)
    does not.
    """

    name = "udp-reorder"
    category = "reordering"
    protocol = "udp"

    def apply(self, runner: ReplayRunner) -> None:
        """Send the client datagrams with the matching one displaced by one."""
        ctx = ctx_of(runner)
        messages = list(runner.client_messages)
        target = ctx.target_message_index()
        if target + 1 < len(messages):
            messages[target], messages[target + 1] = messages[target + 1], messages[target]
        elif len(messages) >= 2:
            messages[-2], messages[-1] = messages[-1], messages[-2]
        for message in messages:
            runner.send_datagram(message)

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """No extra packets — only reordering."""
        return Overhead()
