"""The classifier-evasion taxonomy (paper §4.3, Tables 2 and 3).

Four categories, each exploiting a different gap between the middlebox's and
the endpoints' views of a flow:

* **inert packet insertion** (:mod:`repro.core.evasion.inert`) — packets the
  classifier processes but the server never sees (TTL-limited) or rejects
  (invalid header fields);
* **payload splitting** (:mod:`repro.core.evasion.splitting`) — matching
  fields cut across TCP segments or IP fragments;
* **payload reordering** (:mod:`repro.core.evasion.reordering`) — valid
  packets delivered out of order;
* **classification flushing** (:mod:`repro.core.evasion.flushing`) — delays
  and inert RSTs that evict classifier state.

:data:`ALL_TECHNIQUES` lists one instance per Table 3 row, in table order.
"""

from repro.core.evasion.base import EvasionContext, EvasionTechnique, Overhead
from repro.core.evasion.flushing import (
    PauseAfterMatch,
    PauseBeforeMatch,
    RSTAfterMatch,
    RSTBeforeMatch,
)
from repro.core.evasion.inert import (
    DeprecatedIPOptions,
    InvalidDataOffset,
    InvalidFlagCombination,
    InvalidIPHeaderLength,
    InvalidIPOptions,
    InvalidIPVersion,
    LowTTLInert,
    NoACKFlag,
    TotalLengthLong,
    TotalLengthShort,
    UDPInvalidChecksum,
    UDPLengthLong,
    UDPLengthShort,
    WrongIPChecksum,
    WrongProtocol,
    WrongTCPChecksum,
    WrongTCPSequence,
)
from repro.core.evasion.reordering import IPFragmentReorder, TCPSegmentReorder, UDPReorder
from repro.core.evasion.splitting import IPFragmentation, TCPSegmentSplit

#: Every technique, in the row order of the paper's Table 3.
ALL_TECHNIQUES: tuple[EvasionTechnique, ...] = (
    LowTTLInert(),
    InvalidIPVersion(),
    InvalidIPHeaderLength(),
    TotalLengthLong(),
    TotalLengthShort(),
    WrongProtocol(),
    WrongIPChecksum(),
    InvalidIPOptions(),
    DeprecatedIPOptions(),
    WrongTCPSequence(),
    WrongTCPChecksum(),
    NoACKFlag(),
    InvalidDataOffset(),
    InvalidFlagCombination(),
    UDPInvalidChecksum(),
    UDPLengthLong(),
    UDPLengthShort(),
    IPFragmentation(),
    TCPSegmentSplit(),
    IPFragmentReorder(),
    TCPSegmentReorder(),
    UDPReorder(),
    PauseAfterMatch(),
    PauseBeforeMatch(),
    RSTAfterMatch(),
    RSTBeforeMatch(),
)


def techniques_by_name() -> dict[str, EvasionTechnique]:
    """Name → technique lookup over :data:`ALL_TECHNIQUES`."""
    return {t.name: t for t in ALL_TECHNIQUES}


__all__ = [
    "EvasionContext",
    "EvasionTechnique",
    "Overhead",
    "ALL_TECHNIQUES",
    "techniques_by_name",
    "LowTTLInert",
    "InvalidIPVersion",
    "InvalidIPHeaderLength",
    "TotalLengthLong",
    "TotalLengthShort",
    "WrongProtocol",
    "WrongIPChecksum",
    "InvalidIPOptions",
    "DeprecatedIPOptions",
    "WrongTCPSequence",
    "WrongTCPChecksum",
    "NoACKFlag",
    "InvalidDataOffset",
    "InvalidFlagCombination",
    "UDPInvalidChecksum",
    "UDPLengthLong",
    "UDPLengthShort",
    "IPFragmentation",
    "TCPSegmentSplit",
    "IPFragmentReorder",
    "TCPSegmentReorder",
    "UDPReorder",
    "PauseAfterMatch",
    "PauseBeforeMatch",
    "RSTAfterMatch",
    "RSTBeforeMatch",
]
