"""Classification flushing (Table 3, bottom block).

Middleboxes do not retain state forever: delays (sometimes time-of-day
dependent — Figure 4) or inert RST packets evict a flow's classifier state,
leaving the remaining traffic unclassified.  The "after match" variants hold
back the tail of the matching message so the bulk transfer only starts once
the state is gone; the "before match" variants flush the (still unmatched)
flow-tracking entry so the matching packet is never inspected at all.
"""

from __future__ import annotations

from repro.core.evasion.base import EvasionContext, EvasionTechnique, Overhead, ctx_of
from repro.replay.runner import ReplayRunner


def _send_with_holdback(runner: ReplayRunner, between: "callable[[], None]") -> None:
    """Send the first message minus its final byte, run *between*, send the rest.

    The withheld byte keeps the replay server from responding until after the
    flush, so the bulk transfer happens against a flushed classifier.
    """
    messages = runner.client_messages
    if not messages:
        between()
        return
    first = messages[0]
    if len(first) > 1:
        runner.send_message(first[:-1])
        between()
        runner.send_message(first[-1:])
    else:
        runner.send_message(first)
        between()
    for message in messages[1:]:
        runner.send_message(message)


class PauseAfterMatch(EvasionTechnique):
    """IP: pause *t* seconds after the matching bytes were sent."""

    name = "flush-pause-after-match"
    category = "flushing"
    protocol = "tcp"

    def apply(self, runner: ReplayRunner) -> None:
        """Match, wait out the classifier's retention, then transfer."""
        ctx = ctx_of(runner)
        _send_with_holdback(runner, lambda: runner.pause(ctx.flush_wait_seconds))

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """t seconds of added latency, no extra packets."""
        return Overhead(seconds=ctx.flush_wait_seconds)


class PauseBeforeMatch(EvasionTechnique):
    """IP: pause *t* seconds after the handshake, before any payload."""

    name = "flush-pause-before-match"
    category = "flushing"
    protocol = "tcp"

    def apply(self, runner: ReplayRunner) -> None:
        """Let the untouched flow-tracking entry expire, then send normally."""
        ctx = ctx_of(runner)
        runner.pause(ctx.flush_wait_seconds)
        runner.send_default()

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """t seconds of added latency, no extra packets."""
        return Overhead(seconds=ctx.flush_wait_seconds)


class RSTAfterMatch(EvasionTechnique):
    """TCP: a TTL-limited RST after the match flushes the verdict.

    Table 3's "TTL-limited RST packet (a)".  The RST crosses the classifier
    but expires before the server, so the connection itself survives.
    """

    name = "flush-rst-after-match"
    category = "flushing"
    protocol = "tcp"

    def apply(self, runner: ReplayRunner) -> None:
        """Match, inject the inert RST, wait briefly, then transfer."""
        ctx = ctx_of(runner)

        def flush() -> None:
            runner.send_inert_rst(ttl=ctx.ttl_to_reach_classifier())
            runner.pause(ctx.rst_flush_wait_seconds)

        _send_with_holdback(runner, flush)

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """One inert packet (plus a short settle delay on some devices)."""
        return Overhead(packets=1, bytes=40, seconds=ctx.rst_flush_wait_seconds)


class RSTBeforeMatch(EvasionTechnique):
    """TCP: a TTL-limited RST before any payload flushes flow tracking.

    Table 3's "TTL-limited RST packet (b)" — the variant that works against
    the GFC, whose state can be flushed only before a match.
    """

    name = "flush-rst-before-match"
    category = "flushing"
    protocol = "tcp"

    def apply(self, runner: ReplayRunner) -> None:
        """Inject the inert RST right after the handshake, then send normally."""
        ctx = ctx_of(runner)
        runner.send_inert_rst(ttl=ctx.ttl_to_reach_classifier())
        runner.pause(ctx.rst_flush_wait_seconds)
        runner.send_default()

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """One inert packet (plus a short settle delay on some devices)."""
        return Overhead(packets=1, bytes=40, seconds=ctx.rst_flush_wait_seconds)
