"""Technique interface, evasion context, and cost model."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.report import MatchingField
from repro.replay.runner import ReplayRunner


@dataclass
class EvasionContext:
    """What the earlier phases learned — techniques parameterize on this.

    Attributes:
        matching_fields: byte regions that trigger classification
            (characterization output); empty means "assume the first
            payload packet matters".
        packet_limit: classifier inspection window, when known.
        inspects_all_packets: Iran-style per-packet classifiers.
        match_and_forget: classification appears final once made.
        middlebox_hops: router hops client-side of the classifier
            (localization output); TTL-limited packets use hops+1.
        protocol: "tcp" or "udp".
        split_pieces: how many pieces splitting techniques aim for (§5.2
            uses a conservative n = 10).
        fragment_count: fragments per packet for IP fragmentation (m = 2).
        flush_wait_seconds: pause length for delay-based flushing.
        rst_flush_wait_seconds: pause after an inert RST (covers the
            testbed's 10 s reduced timeout).
        inert_packet_count: inert packets inserted before the matching
            packet (k; the paper found k < 5 always, usually 1).
    """

    matching_fields: list[MatchingField] = field(default_factory=list)
    packet_limit: int | None = None
    inspects_all_packets: bool = False
    match_and_forget: bool = True
    middlebox_hops: int | None = None
    protocol: str = "tcp"
    split_pieces: int = 10
    fragment_count: int = 2
    flush_wait_seconds: float = 150.0
    rst_flush_wait_seconds: float = 12.0
    inert_packet_count: int = 1

    def target_message_index(self) -> int:
        """The client message containing the first matching field."""
        if not self.matching_fields:
            return 0
        return min(f.packet_index for f in self.matching_fields)

    def fields_in_message(self, index: int) -> list[MatchingField]:
        """Matching fields inside client message *index*, sorted by offset."""
        return sorted(
            (f for f in self.matching_fields if f.packet_index == index),
            key=lambda f: f.start,
        )

    def ttl_to_reach_classifier(self) -> int:
        """A TTL that crosses the classifier but expires before the server."""
        hops = self.middlebox_hops if self.middlebox_hops is not None else 0
        return hops + 1


@dataclass(frozen=True)
class Overhead:
    """Deployment cost of a technique (Table 2)."""

    packets: int = 0
    bytes: int = 0
    seconds: float = 0.0

    def __str__(self) -> str:
        parts = []
        if self.packets:
            parts.append(f"{self.packets} pkt")
        if self.bytes:
            parts.append(f"{self.bytes} B")
        if self.seconds:
            parts.append(f"{self.seconds:.0f} s")
        return " + ".join(parts) if parts else "negligible"


class EvasionTechnique(ABC):
    """One entry in the evasion taxonomy.

    Subclasses define the Table 3 row they reproduce (``name``), their
    taxonomy ``category``, the transport ``protocol`` they apply to, and the
    traffic transformation itself (:meth:`apply`).
    """

    name: str = "technique"
    category: str = "inert-insertion"
    protocol: str = "tcp"  # "tcp", "udp" or "any"

    def applicable(self, ctx: EvasionContext) -> bool:
        """Whether the technique can run against this flow at all."""
        if self.protocol == "any":
            return True
        return self.protocol == ctx.protocol

    @abstractmethod
    def apply(self, runner: ReplayRunner) -> None:
        """Emit the client side of the trace, transformed."""

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """The cost model entry for Table 2 (refined by measured overhead)."""
        return Overhead()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def ctx_of(runner: ReplayRunner) -> EvasionContext:
    """The runner's context, defaulting to a fresh one when absent."""
    if isinstance(runner.context, EvasionContext):
        return runner.context
    return EvasionContext(protocol=runner.trace.protocol)
