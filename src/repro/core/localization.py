"""Middlebox localization via TTL-limited probes (§5.2).

Works like traceroute/Tracebox: probes carrying *matching* content are sent
with increasing TTL; the smallest TTL at which the differentiation signal
fires is where the classifier sits.  The probe packet is inert (it repeats
the current sequence number and dies before the server), and the carrier
flow's payloads are bit-inverted so the carrier itself never matches — only
the probe can trigger classification.
"""

from __future__ import annotations

from repro.endpoint.rawclient import SegmentPlan
from repro.envs.base import Environment
from repro.replay.runner import ReplayRunner
from repro.replay.session import ReplaySession
from repro.traffic.trace import Trace

DEFAULT_MAX_TTL = 24


class _TTLProbe:
    """Replay transform: inert matching-content probe at a fixed TTL."""

    category = "localization"

    def __init__(self, matching_payload: bytes, ttl: int) -> None:
        self.matching_payload = matching_payload
        self.ttl = ttl
        self.name = f"ttl-probe-{ttl}"

    def apply(self, runner: ReplayRunner) -> None:
        """Send the TTL-limited probe, then the (inverted) carrier flow."""
        runner.send_inert(
            SegmentPlan(payload=self.matching_payload, ttl=self.ttl), count_overhead=False
        )
        runner.send_default()


def locate_middlebox(
    env: Environment,
    trace: Trace,
    max_ttl: int = DEFAULT_MAX_TTL,
    server_port: int | None = None,
    trials: int = 1,
) -> tuple[int | None, int]:
    """Find the classifier's hop distance from the client.

    Returns (hops, probe_rounds).  *hops* is the number of TTL-decrementing
    hops client-side of the classifier (a packet needs TTL ≥ hops+1 to reach
    it), or None when no TTL up to *max_ttl* triggered the signal.

    With *trials* > 1 the whole TTL sweep is repeated and the per-sweep hop
    counts majority-voted (smallest wins a tie) — a lost probe inflates one
    sweep's estimate, not the final answer.  One sweep is the historical
    behaviour and the fault-free default.
    """
    rounds = 0
    if trials <= 1:
        return _sweep(env, trace, max_ttl, server_port, sweep_index=0)
    estimates: list[int | None] = []
    for sweep_index in range(trials):
        hops, sweep_rounds = _sweep(env, trace, max_ttl, server_port, sweep_index)
        rounds += sweep_rounds
        estimates.append(hops)
    observed = [h for h in estimates if h is not None]
    if not observed:
        return None, rounds
    counts: dict[int, int] = {}
    for hops in observed:
        counts[hops] = counts.get(hops, 0) + 1
    best = max(counts.values())
    return min(h for h, c in counts.items() if c == best), rounds


def _sweep(
    env: Environment,
    trace: Trace,
    max_ttl: int,
    server_port: int | None,
    sweep_index: int,
) -> tuple[int | None, int]:
    """One linear TTL sweep (the original single-trial localization)."""
    matching = trace.client_payloads()[0] if trace.client_payloads() else b""
    carrier = trace.inverted()
    rounds = 0
    port_base = server_port if server_port is not None else trace.server_port
    for ttl in range(1, max_ttl + 1):
        port = port_base
        if env.needs_port_rotation:
            port = 8000 + ((port_base + ttl + sweep_index * 101) % 20_000)
        probe = _TTLProbe(matching, ttl)
        outcome = ReplaySession(env, carrier, server_port=port).run(technique=probe)
        rounds += 1
        if outcome.differentiated:
            return ttl - 1, rounds
    return None, rounds
