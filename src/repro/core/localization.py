"""Middlebox localization via TTL-limited probes (§5.2).

Works like traceroute/Tracebox: probes carrying *matching* content are sent
with increasing TTL; the smallest TTL at which the differentiation signal
fires is where the classifier sits.  The probe packet is inert (it repeats
the current sequence number and dies before the server), and the carrier
flow's payloads are bit-inverted so the carrier itself never matches — only
the probe can trigger classification.
"""

from __future__ import annotations

from repro.endpoint.rawclient import SegmentPlan
from repro.envs.base import Environment
from repro.replay.runner import ReplayRunner
from repro.replay.session import ReplaySession
from repro.traffic.trace import Trace

DEFAULT_MAX_TTL = 24


class _TTLProbe:
    """Replay transform: inert matching-content probe at a fixed TTL."""

    category = "localization"

    def __init__(self, matching_payload: bytes, ttl: int) -> None:
        self.matching_payload = matching_payload
        self.ttl = ttl
        self.name = f"ttl-probe-{ttl}"

    def apply(self, runner: ReplayRunner) -> None:
        """Send the TTL-limited probe, then the (inverted) carrier flow."""
        runner.send_inert(
            SegmentPlan(payload=self.matching_payload, ttl=self.ttl), count_overhead=False
        )
        runner.send_default()


def locate_middlebox(
    env: Environment,
    trace: Trace,
    max_ttl: int = DEFAULT_MAX_TTL,
    server_port: int | None = None,
) -> tuple[int | None, int]:
    """Find the classifier's hop distance from the client.

    Returns (hops, probe_rounds).  *hops* is the number of TTL-decrementing
    hops client-side of the classifier (a packet needs TTL ≥ hops+1 to reach
    it), or None when no TTL up to *max_ttl* triggered the signal.
    """
    matching = trace.client_payloads()[0] if trace.client_payloads() else b""
    carrier = trace.inverted()
    rounds = 0
    port_base = server_port if server_port is not None else trace.server_port
    for ttl in range(1, max_ttl + 1):
        port = port_base
        if env.needs_port_rotation:
            port = 8000 + ((port_base + ttl) % 20_000)
        probe = _TTLProbe(matching, ttl)
        outcome = ReplaySession(env, carrier, server_port=port).run(technique=probe)
        rounds += 1
        if outcome.differentiated:
            return ttl - 1, rounds
    return None, rounds
