"""Live transparent-proxy front-end: real sockets into the evasion engine.

The paper's §8 deployment mode runs lib·erate as a proxy serving actual
application traffic.  :class:`ProxyServer` is that front-end: an asyncio
server that accepts loopback TCP connections, treats each connection's
bytes as one application flow, pushes the flow through a
:class:`~repro.core.deployment.FallbackLadder` (the graceful-degradation
deployment shape from the simulated pipeline) and answers with a one-line
JSON verdict.  The engine underneath is the same deterministic simulator
the experiments run on — same environments, same techniques, same
classifier — so a payload served over a live socket gets *exactly* the
verdict the simulated path gives it (``tests/test_proxy_server.py`` pins
this equivalence).

Wire protocol (line-oriented, trivially scriptable)::

    client:  <payload bytes> EOF            # shutdown(SHUT_WR)
    server:  {"flow": 7, "technique": "...", "evaded": true, ...}\n

Flow-state is bounded by construction: the server keeps verdict *counters*
and a fixed-depth recent-outcome window, never per-flow state, and above a
fullness watermark the PR 7 :class:`~repro.middlebox.overload.LoadShedder`
sheds new flows deterministically (they are answered ``{"shed": true}``
and forwarded fail-open, exactly like an untracked mid-flow at a saturated
middlebox).  Telemetry rides along: when the bus/metrics/tracer are
enabled the proxy emits ``proxy.flow`` / ``proxy.overload`` /
``proxy.step_down`` events like any other pipeline stage.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.deployment import FallbackLadder
from repro.obs import flight as obs_flight
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import ops as obs_ops
from repro.middlebox.overload import LoadShedder, OverloadPolicy
from repro.packets.flow import Direction
from repro.traffic.trace import Trace, TracePacket

__all__ = [
    "ProxyServer",
    "ProxyStats",
    "payload_trace",
    "drive_clients",
    "request_verdict",
]

#: Server response body attached to every live flow's dialogue.  The replay
#: needs a server→client leg to judge ``server_response_ok``; live clients
#: only send the client half, so the proxy completes the dialogue with this
#: canonical acknowledgement (same for every flow — verdicts must be a pure
#: function of the client payload).
_SERVER_ACK = b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok"


def payload_trace(payload: bytes, name: str, server_port: int) -> Trace:
    """The canonical one-request dialogue for a live client payload.

    Both the proxy and the differential tests build flows through this
    function, which is what makes "the live verdict matches the simulated
    path" a well-defined claim: same payload → same :class:`Trace` → same
    deterministic replay.
    """
    return Trace(
        name=name,
        protocol="tcp",
        server_port=server_port,
        packets=[
            TracePacket(direction=Direction.CLIENT_TO_SERVER, payload=payload, time=0.0),
            TracePacket(direction=Direction.SERVER_TO_CLIENT, payload=_SERVER_ACK, time=0.01),
        ],
    )


@dataclass
class ProxyStats:
    """Bounded aggregate state — everything the server remembers.

    Attributes:
        flows: connections accepted (including shed ones).
        evaded / differentiated / broken: verdict tallies.
        shed: flows refused tracking by the overload policy.
        step_downs: fallback-ladder transitions observed so far.
        overload_transitions: shed-watermark crossings (enter + exit edges).
        peak_active: high-water mark of concurrent connections.
        recent: sliding window of the last few verdict strings.
    """

    flows: int = 0
    evaded: int = 0
    differentiated: int = 0
    broken: int = 0
    shed: int = 0
    step_downs: int = 0
    overload_transitions: int = 0
    peak_active: int = 0
    recent: deque = field(default_factory=lambda: deque(maxlen=64))

    def verdict_counts(self) -> dict[str, int]:
        return dict(Counter(self.recent))

    def as_dict(self) -> dict[str, int]:
        return {
            "flows": self.flows,
            "evaded": self.evaded,
            "differentiated": self.differentiated,
            "broken": self.broken,
            "shed": self.shed,
            "step_downs": self.step_downs,
            "overload_transitions": self.overload_transitions,
            "peak_active": self.peak_active,
        }


class ProxyServer:
    """Asyncio front-end bridging loopback sockets onto a fallback ladder.

    Args:
        ladder: the deployed technique ladder (from
            :meth:`repro.core.pipeline.Liberate.deploy_ladder`); each
            connection's payload becomes one health-checked flow on it.
        host / port: bind address; port 0 picks a free port (see
            :attr:`bound_port` after :meth:`start`).
        max_active: concurrent-connection capacity used as the overload
            denominator — fullness is ``active / max_active``.
        overload: admission-shedding policy; None disables shedding (every
            flow is tracked, as in the simulated experiments).
        max_payload: per-connection read cap in bytes; longer payloads are
            truncated rather than buffered without bound.
        server_port: destination port stamped on each live flow's dialogue
            (what the classifier sees as the application port).
        mbx_flow_bound: flow-table capacity imposed on every DPI engine on
            the ladder's path at :meth:`start`.  Simulated Table 3 cells
            run a handful of flows, so environments default to unbounded
            tables; a live proxy pushes an open-ended flow population
            through the same engines, so serving without a bound leaks
            ~KBs of classifier state per flow.  Completed flows never
            influence later verdicts (``run_flow`` is synchronous and every
            live flow gets a fresh source port), so the default — matching
            :attr:`max_active` — is already generous.  ``None`` keeps the
            environment untouched.
    """

    def __init__(
        self,
        ladder: FallbackLadder,
        host: str = "127.0.0.1",
        port: int = 0,
        max_active: int = 512,
        overload: OverloadPolicy | None = None,
        max_payload: int = 1 << 20,
        server_port: int = 80,
        mbx_flow_bound: int | None = 512,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be at least 1")
        if mbx_flow_bound is not None and mbx_flow_bound < 1:
            raise ValueError("mbx_flow_bound must be at least 1")
        self.ladder = ladder
        self.host = host
        self.port = port
        self.max_active = max_active
        self.max_payload = max_payload
        self.server_port = server_port
        self.shedder = LoadShedder(overload) if overload is not None else None
        self.mbx_flow_bound = mbx_flow_bound
        self.stats = ProxyStats()
        self._active = 0
        self._next_flow = 0
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def bound_port(self) -> int:
        """The actual listening port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ProxyServer":
        """Bind and start accepting connections (does not block)."""
        if self.mbx_flow_bound is not None:
            for element in self.ladder.env.path.elements:
                bound = getattr(element, "bound_flow_state", None)
                if bound is not None:
                    bound(self.mbx_flow_bound, match_log_bound=self.mbx_flow_bound)
        self._server = await asyncio.start_server(
            self._handle,
            self.host,
            self.port,
            # The default backlog (100) silently stalls connect bursts below
            # the server's own concurrency capacity; size it to max_active.
            backlog=max(self.max_active, 128),
        )
        self._emit_bus(
            "proxy.serve",
            host=self.host,
            port=self.bound_port,
            technique=self.ladder.active_technique.name,
            env=self.ladder.env.name,
        )
        return self

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``liberate serve`` foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        accepted = time.perf_counter()
        flow_id = self._next_flow
        self._next_flow += 1
        self._active += 1
        self.stats.flows += 1
        if self._active > self.stats.peak_active:
            self.stats.peak_active = self._active
        try:
            verdict = await self._verdict_for(flow_id, reader)
            writer.write(json.dumps(verdict, sort_keys=True).encode("ascii") + b"\n")
            await writer.drain()
            ops = obs_ops.OPS
            if ops is not None:
                # End-to-end: accept → verdict line flushed.
                ops.record("proxy.verdict", time.perf_counter() - accepted)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-flow; nothing to answer
        finally:
            self._active -= 1
            self._note_watermark()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_payload(self, reader: asyncio.StreamReader) -> bytes:
        """Read the flow's full payload: until client EOF, capped at max_payload.

        ``StreamReader.read(n)`` returns on the *first* available chunk, not
        at EOF — judging that prefix would mis-verdict any payload split
        across TCP segments, and closing with unread bytes in the receive
        queue turns the close into an RST at the client.  So: loop to EOF,
        and when the cap is hit keep draining (discarding) so the verdict
        is computed on the truncated payload but the socket still closes
        cleanly.
        """
        chunks: list[bytes] = []
        remaining = self.max_payload
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                break
            if remaining > 0:
                chunks.append(chunk[:remaining])
                remaining -= len(chunk)
        return b"".join(chunks)

    async def _verdict_for(self, flow_id: int, reader: asyncio.StreamReader) -> dict:
        ops = obs_ops.OPS
        flight = obs_flight.FLIGHT
        fullness = self._active / self.max_active
        if self.shedder is not None and not self.shedder.admit(("proxy", flow_id), fullness):
            # Fail-open: drain the payload so the client's write completes,
            # but spend no engine work and keep no state for the flow.
            await self._read_payload(reader)
            self.stats.shed += 1
            self.stats.recent.append("shed")
            self._inc("proxy.flows.shed")
            self._emit_bus("proxy.flow", flow=flow_id, verdict="shed")
            if ops is not None:
                ops.inc("proxy.shed")
            if flight is not None:
                flight.note("proxy.flow", flow=flow_id, verdict="shed")
                flight.trip(
                    "overload_shed",
                    episode="overload",
                    flow=flow_id,
                    fullness=round(fullness, 4),
                    shed_total=self.stats.shed,
                )
            return {"flow": flow_id, "shed": True}
        started = time.perf_counter()
        payload = await self._read_payload(reader)
        read_done = time.perf_counter()
        trace = payload_trace(payload, f"live-{flow_id}", self.server_port)
        before_rung = self.ladder.rung
        outcome = self.ladder.run_flow(trace)
        if ops is not None:
            # Stage splits: socket read (accept → client EOF) and the
            # synchronous ladder judgement.
            ops.record("proxy.read", read_done - started)
            ops.record("proxy.judge", time.perf_counter() - read_done)
        verdict_kind = (
            "evaded"
            if outcome.evaded
            else ("differentiated" if outcome.differentiated else "broken")
        )
        setattr(self.stats, verdict_kind, getattr(self.stats, verdict_kind) + 1)
        self.stats.recent.append(verdict_kind)
        self._inc(f"proxy.flows.{verdict_kind}")
        self._emit_bus(
            "proxy.flow",
            flow=flow_id,
            verdict=verdict_kind,
            technique=outcome.technique or "",
        )
        if flight is not None:
            flight.note(
                "proxy.flow",
                flow=flow_id,
                verdict=verdict_kind,
                technique=outcome.technique or "",
                rung=self.ladder.rung,
            )
        if self.ladder.rung != before_rung:
            self.stats.step_downs += 1
            step = self.ladder.step_downs[-1]
            self._inc("proxy.step_downs")
            if ops is not None:
                ops.inc("proxy.step_downs")
            self._emit_bus(
                "proxy.step_down",
                flow=flow_id,
                from_technique=step.from_technique,
                to_technique=step.to_technique or "",
                exhausted=self.ladder.exhausted,
            )
            if flight is not None:
                # Each rung transition is its own anomaly episode: stepping
                # 0→1 dumps once, a later 1→2 dumps again.
                flight.trip(
                    "step_down",
                    episode=f"step_down:{self.ladder.rung}",
                    flow=flow_id,
                    from_technique=step.from_technique,
                    to_technique=step.to_technique or "",
                    exhausted=self.ladder.exhausted,
                )
        return {
            "flow": flow_id,
            "technique": outcome.technique,
            "evaded": outcome.evaded,
            "differentiated": outcome.differentiated,
            "delivered_ok": outcome.delivered_ok,
            "rung": self.ladder.rung,
        }

    def _note_watermark(self) -> None:
        if self.shedder is None:
            return
        transition = self.shedder.crossed(self._active / self.max_active)
        if transition is not None:
            self.stats.overload_transitions += 1
            self._emit_bus("proxy.overload", edge=transition, active=self._active)
            if transition == "exit" and obs_flight.FLIGHT is not None:
                # The overload episode is over: re-arm the shed trigger so
                # the *next* storm produces its own dump.
                obs_flight.FLIGHT.recover("overload")

    # ------------------------------------------------------------------
    # telemetry plumbing (all no-ops when obs is off)
    # ------------------------------------------------------------------
    @staticmethod
    def _emit_bus(kind: str, **fields: object) -> None:
        if obs_live.BUS is not None:
            obs_live.BUS.emit(kind, **fields)

    @staticmethod
    def _inc(name: str) -> None:
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc(name)

    def snapshot(self) -> dict[str, object]:
        """Aggregate server + ladder state for reports and the CLI.

        Includes the full overload/ladder tally (shed, step-downs,
        watermark transitions, shedder stats) plus — when the ops layer or
        flight recorder are enabled — live latency percentiles and flight
        state, so ``serve-*.json`` artifacts show degradation, not just
        verdict counts.
        """
        report: dict[str, object] = dict(self.stats.as_dict())
        report["active"] = self._active
        report["max_active"] = self.max_active
        report["verdict_window"] = self.stats.verdict_counts()
        report["ladder"] = self.ladder.health_snapshot()
        if self.shedder is not None:
            report["shedder"] = self.shedder.stats()
        ops = obs_ops.OPS
        if ops is not None:
            report["latency"] = ops.latency_summaries(prefix="proxy.")
        flight = obs_flight.FLIGHT
        if flight is not None:
            report["flight"] = flight.stats()
        return report


# ----------------------------------------------------------------------
# client-side helpers (tests, --selfcheck, external scripts)
# ----------------------------------------------------------------------
async def request_verdict(host: str, port: int, payload: bytes) -> dict:
    """One protocol round-trip: send *payload*, EOF, read the verdict line."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        if writer.can_write_eof():
            writer.write_eof()
        await writer.drain()
        line = await reader.readline()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    if not line:
        raise ConnectionError("proxy closed the connection without a verdict")
    return json.loads(line)


async def drive_clients(
    host: str,
    port: int,
    payloads: list[bytes],
    concurrency: int = 64,
    on_verdict: "Callable[[int, dict], None] | None" = None,
) -> list[dict]:
    """Run every payload through the proxy with bounded concurrency.

    Returns the verdicts in payload order.  This is the loop behind
    ``liberate serve --selfcheck`` and the CI proxy-smoke job.

    The driver's footprint is bounded by *concurrency*, not by the payload
    count: at most *concurrency* connection coroutines exist at any moment
    (a worker pool over a shared iterator, not one task per payload).  With
    *on_verdict* set, each ``(index, verdict)`` is handed to the callback
    as it completes and **not** accumulated — the return value is an empty
    list — so a million-flow smoke run keeps O(concurrency) driver state.
    """
    if on_verdict is None:
        results: list[dict | None] = [None] * len(payloads)
    else:
        results = []
    jobs = iter(enumerate(payloads))

    async def worker() -> None:
        # Plain shared iterator: next() happens synchronously between
        # awaits, so each job is claimed by exactly one worker.
        for index, payload in jobs:
            verdict = await request_verdict(host, port, payload)
            if on_verdict is None:
                results[index] = verdict
            else:
                on_verdict(index, verdict)

    workers = max(1, min(concurrency, len(payloads)))
    await asyncio.gather(*(worker() for _ in range(workers)))
    return results  # type: ignore[return-value]
