"""The linked-library deployment form (§3.1).

The paper offers lib·erate either as a transparent proxy
(:class:`~repro.core.deployment.LiberateProxy`) or as "a library that can be
wrapped around existing socket libraries".  :class:`LiberateSocket` is that
wrapper: a minimal socket-style API (connect / sendall / recv / close) whose
sends flow through a selected evasion technique without the application
knowing.

Buffered sends matter: evasion techniques operate on *messages* (they need
the whole matching field to place cuts and inert packets), so bytes are
staged in :meth:`sendall` and transformed as one message per :meth:`flush`
— mirroring how the real library would hook the socket's write path.
"""

from __future__ import annotations

from repro.core.evasion.base import EvasionContext, EvasionTechnique
from repro.endpoint.rawclient import RawTCPClient
from repro.envs.base import Environment
from repro.replay.runner import ReplayRunner
from repro.traffic.trace import Trace, TracePacket
from repro.packets.flow import Direction


class LiberateSocket:
    """A socket-like TCP client that transparently applies evasion.

    Args:
        env: the network environment to connect through.
        technique: the evasion technique to apply to outgoing messages
            (None sends plainly).
        context: the technique's parameters (matching fields, hops, ...).
        dport: destination port.
    """

    def __init__(
        self,
        env: Environment,
        technique: EvasionTechnique | None = None,
        context: EvasionContext | None = None,
        dport: int = 80,
    ) -> None:
        self.env = env
        self.technique = technique
        self.context = context if context is not None else EvasionContext(
            middlebox_hops=env.hops_to_middlebox
        )
        self.dport = dport
        self._client: RawTCPClient | None = None
        self._send_buffer = bytearray()
        self._recv_cursor = 0
        self.connected = False

    # ------------------------------------------------------------------
    # socket-style API
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Open the connection (three-way handshake)."""
        self._client = RawTCPClient(
            self.env.path,
            self.env.client_addr,
            self.env.server_addr,
            sport=self.env.next_sport(),
            dport=self.dport,
        )
        if not self._client.connect():
            raise ConnectionError("connection refused (RST or no answer)")
        self.connected = True

    def sendall(self, data: bytes) -> None:
        """Stage application bytes for the next flush."""
        if not self.connected:
            raise ConnectionError("not connected")
        self._send_buffer.extend(data)

    def flush(self) -> None:
        """Emit the staged bytes as one message, through the technique."""
        if not self.connected or self._client is None:
            raise ConnectionError("not connected")
        if not self._send_buffer:
            return
        message = bytes(self._send_buffer)
        self._send_buffer.clear()
        trace = Trace(
            name="socket-message",
            protocol="tcp",
            server_port=self.dport,
            packets=[TracePacket(Direction.CLIENT_TO_SERVER, message)],
        )
        runner = ReplayRunner(
            trace=trace, client=self._client, clock=self.env.clock, context=self.context
        )
        if self.technique is not None:
            self.technique.apply(runner)
        else:
            runner.send_default()

    def recv(self) -> bytes:
        """Bytes the server has sent since the last recv call."""
        if self._client is None:
            return b""
        stream = self._client.server_stream()
        fresh = stream[self._recv_cursor :]
        self._recv_cursor = len(stream)
        return fresh

    def close(self) -> None:
        """Flush pending data and close the connection."""
        if self._client is not None and self.connected:
            self.flush()
            self._client.close()
        self.connected = False

    def __enter__(self) -> "LiberateSocket":
        self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
