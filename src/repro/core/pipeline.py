"""The four-phase lib·erate orchestrator (Figure 1)."""

from __future__ import annotations

from repro.core.cache import RuleCache
from repro.core.characterization import CharacterizationError, Characterizer
from repro.core.deployment import FallbackLadder, LiberateProxy
from repro.core.detection import detect_differentiation
from repro.core.evaluation import EvasionEvaluator
from repro.core.evasion import ALL_TECHNIQUES, techniques_by_name
from repro.core.evasion.base import EvasionContext, EvasionTechnique
from repro.core.localization import locate_middlebox
from repro.core.report import CharacterizationReport, LiberateReport
from repro.envs.base import Environment
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace
from repro.traffic.trace import Trace


class Liberate:
    """Automatic, adaptive, unilateral evasion of DPI differentiation.

    Typical use::

        lib = Liberate(env)
        report = lib.run(trace)          # detect → characterize → evaluate
        proxy = lib.deploy(trace)        # apply the best technique at runtime

    Args:
        env: the network environment the application runs in.
        techniques: the evasion taxonomy (defaults to all of Table 3).
        stop_at_first: during evaluation, stop at the first working
            technique (fast deployment mode) instead of trying everything
            (the paper's study mode).
        trials: per-probe repetition for noisy (fault-injected) networks;
            flows through detection/characterization/localization voting.
            ``None`` picks 3 when the environment has faults installed and 1
            (the historical single-shot path) otherwise.
        seed: the fault/RNG seed this run was performed under; recorded in
            every report for reproducibility.  ``None`` falls back to the
            environment's fault-profile seed when faults are installed.
    """

    def __init__(
        self,
        env: Environment,
        techniques: tuple[EvasionTechnique, ...] = ALL_TECHNIQUES,
        stop_at_first: bool = False,
        cache: "RuleCache | None" = None,
        trials: int | None = None,
        seed: int | None = None,
    ) -> None:
        self.env = env
        self.techniques = techniques
        self.stop_at_first = stop_at_first
        self.cache = cache
        if trials is None:
            trials = 3 if env.reliable_mode else 1
        self.trials = max(trials, 1)
        if seed is None and env.fault_profile is not None:
            seed = env.fault_profile.seed
        self.seed = seed
        self.last_report: LiberateReport | None = None

    # ------------------------------------------------------------------
    # the four phases
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> LiberateReport:
        """Execute detection, characterization, localization and evaluation."""
        with self._phase("detect", trace):
            detection = detect_differentiation(self.env, trace, trials=self.trials)
        report = LiberateReport(
            environment=self.env.name, trace=trace.name, detection=detection, seed=self.seed
        )
        if not detection.differentiated:
            return self._finish(report)
        if not detection.content_based:
            detection.notes.append("differentiation is not content-based; out of scope")
            return self._finish(report)

        with self._phase("characterize", trace):
            characterization = self.characterize(trace)
        report.characterization = characterization

        with self._phase("localize", trace):
            hops, probe_rounds = locate_middlebox(self.env, trace, trials=self.trials)
        characterization.notes.append(
            f"middlebox located {hops} hop(s) out"
            if hops is not None
            else "middlebox not locatable by TTL probing"
        )
        characterization.rounds += probe_rounds

        context = self.build_context(characterization, hops, trace)
        evaluator = EvasionEvaluator(
            self.env,
            trace,
            context,
            techniques=self.techniques,
            stop_at_first=self.stop_at_first,
        )
        with self._phase("evaluate", trace):
            report.evasion = evaluator.run()
        best = report.evasion.best()
        report.deployed_technique = best.technique if best else None
        return self._finish(report)

    def _phase(self, name: str, trace: Trace):
        """Time one pipeline phase and mark its boundaries in the trace."""
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "pipeline.phase",
                self.env.clock.now,
                env=self.env.name,
                trace_name=trace.name,
                phase_name=name,
            )
        if obs_live.BUS is not None:
            obs_live.BUS.emit(
                "pipeline.phase", env=self.env.name, phase_name=name
            )
        return obs_profiling.stage(f"pipeline.{name}")

    def _finish(self, report: LiberateReport) -> LiberateReport:
        """Attach observability snapshots (when collecting) and store the report."""
        if obs_metrics.METRICS is not None:
            report.metrics = obs_metrics.METRICS.snapshot()
        if obs_profiling.PROFILER is not None:
            report.profile = obs_profiling.PROFILER.snapshot()
        if isinstance(obs_trace.TRACER, obs_trace.FlowTracer):
            from repro.obs.analyze import summarize_tracer

            report.trace_summary = summarize_tracer(obs_trace.TRACER)
        self.last_report = report
        return report

    def characterize(self, trace: Trace) -> CharacterizationReport:
        """Phase 2, consulting the shared rule cache (§4.2) when present."""
        if self.cache is not None:
            cached = self.cache.get(self.env.name, trace.name)
            if cached is not None:
                return cached
        report = Characterizer(self.env, trace, trials=self.trials).run()
        if self.cache is not None:
            self.cache.put(self.env.name, trace.name, report)
        return report

    def build_context(
        self,
        characterization: CharacterizationReport,
        hops: int | None,
        trace: Trace,
    ) -> EvasionContext:
        """Translate phase-2/localization results into technique parameters."""
        return EvasionContext(
            matching_fields=characterization.matching_fields,
            packet_limit=characterization.packet_limit,
            inspects_all_packets=characterization.inspects_all_packets,
            match_and_forget=characterization.match_and_forget,
            middlebox_hops=hops,
            protocol=trace.protocol,
        )

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def deploy(self, trace: Trace) -> LiberateProxy:
        """Run the pipeline if needed, then deploy the best technique.

        Raises RuntimeError when no technique evades (e.g. AT&T's
        transparent proxy — the paper's one unbeatable middlebox).
        """
        if self.last_report is None or self.last_report.trace != trace.name:
            self.run(trace)
        report = self.last_report
        assert report is not None
        if report.evasion is None or report.evasion.best() is None:
            raise RuntimeError(f"no working evasion technique for {trace.name} in {self.env.name}")
        best = report.evasion.best()
        assert best is not None
        technique = techniques_by_name()[best.technique]
        assert report.characterization is not None
        hops = None
        context = EvasionContext(
            matching_fields=report.characterization.matching_fields,
            packet_limit=report.characterization.packet_limit,
            inspects_all_packets=report.characterization.inspects_all_packets,
            match_and_forget=report.characterization.match_and_forget,
            middlebox_hops=self.env.hops_to_middlebox,
            protocol=trace.protocol,
        )
        proxy = LiberateProxy(self.env, technique, context)
        proxy.on_rule_change = lambda: self._readapt(proxy, trace)
        return proxy

    def deploy_ladder(
        self, trace: Trace, window: int = 5, failure_threshold: int = 3
    ) -> FallbackLadder:
        """Deploy all working techniques as a graceful-degradation ladder.

        The evaluation phase's working techniques are ranked cheapest first
        (delay, then packets, then bytes — the same order :meth:`deploy`
        picks its single best from) and wrapped in a
        :class:`~repro.core.deployment.FallbackLadder` that health-checks the
        active technique and steps down when it persistently stops evading.
        The right deployment shape for faulty networks, where a single
        technique's probes can be eaten by loss.
        """
        if self.last_report is None or self.last_report.trace != trace.name:
            self.run(trace)
        report = self.last_report
        assert report is not None
        if report.evasion is None or not report.evasion.working():
            raise RuntimeError(
                f"no working evasion technique for {trace.name} in {self.env.name}"
            )
        ranked = sorted(
            report.evasion.working(),
            key=lambda r: (r.overhead_seconds, r.overhead_packets, r.overhead_bytes),
        )
        by_name = techniques_by_name()
        assert report.characterization is not None
        context = EvasionContext(
            matching_fields=report.characterization.matching_fields,
            packet_limit=report.characterization.packet_limit,
            inspects_all_packets=report.characterization.inspects_all_packets,
            match_and_forget=report.characterization.match_and_forget,
            middlebox_hops=self.env.hops_to_middlebox,
            protocol=trace.protocol,
        )
        return FallbackLadder(
            self.env,
            [by_name[r.technique] for r in ranked],
            context,
            window=window,
            failure_threshold=failure_threshold,
        )

    def _readapt(self, proxy: LiberateProxy, trace: Trace) -> None:
        """Runtime adaptation: rerun the pipeline and swap the technique."""
        if self.cache is not None:
            self.cache.invalidate(self.env.name, trace.name)  # the rule changed
        try:
            report = self.run(trace)
        except CharacterizationError:
            return
        if report.evasion is None:
            return
        best = report.evasion.best()
        if best is None:
            return
        proxy.technique = techniques_by_name()[best.technique]
        assert report.characterization is not None
        proxy.context = EvasionContext(
            matching_fields=report.characterization.matching_fields,
            packet_limit=report.characterization.packet_limit,
            inspects_all_packets=report.characterization.inspects_all_packets,
            match_and_forget=report.characterization.match_and_forget,
            middlebox_hops=self.env.hops_to_middlebox,
            protocol=trace.protocol,
        )
        proxy.rule_change_detected = False
