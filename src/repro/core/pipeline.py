"""The four-phase lib·erate orchestrator (Figure 1)."""

from __future__ import annotations

from repro.core.cache import RuleCache
from repro.core.characterization import CharacterizationError, Characterizer
from repro.core.deployment import LiberateProxy
from repro.core.detection import detect_differentiation
from repro.core.evaluation import EvasionEvaluator
from repro.core.evasion import ALL_TECHNIQUES, techniques_by_name
from repro.core.evasion.base import EvasionContext, EvasionTechnique
from repro.core.localization import locate_middlebox
from repro.core.report import CharacterizationReport, LiberateReport
from repro.envs.base import Environment
from repro.traffic.trace import Trace


class Liberate:
    """Automatic, adaptive, unilateral evasion of DPI differentiation.

    Typical use::

        lib = Liberate(env)
        report = lib.run(trace)          # detect → characterize → evaluate
        proxy = lib.deploy(trace)        # apply the best technique at runtime

    Args:
        env: the network environment the application runs in.
        techniques: the evasion taxonomy (defaults to all of Table 3).
        stop_at_first: during evaluation, stop at the first working
            technique (fast deployment mode) instead of trying everything
            (the paper's study mode).
    """

    def __init__(
        self,
        env: Environment,
        techniques: tuple[EvasionTechnique, ...] = ALL_TECHNIQUES,
        stop_at_first: bool = False,
        cache: "RuleCache | None" = None,
    ) -> None:
        self.env = env
        self.techniques = techniques
        self.stop_at_first = stop_at_first
        self.cache = cache
        self.last_report: LiberateReport | None = None

    # ------------------------------------------------------------------
    # the four phases
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> LiberateReport:
        """Execute detection, characterization, localization and evaluation."""
        detection = detect_differentiation(self.env, trace)
        report = LiberateReport(
            environment=self.env.name, trace=trace.name, detection=detection
        )
        if not detection.differentiated:
            self.last_report = report
            return report
        if not detection.content_based:
            detection.notes.append("differentiation is not content-based; out of scope")
            self.last_report = report
            return report

        characterization = self.characterize(trace)
        report.characterization = characterization

        hops, probe_rounds = locate_middlebox(self.env, trace)
        characterization.notes.append(
            f"middlebox located {hops} hop(s) out"
            if hops is not None
            else "middlebox not locatable by TTL probing"
        )
        characterization.rounds += probe_rounds

        context = self.build_context(characterization, hops, trace)
        evaluator = EvasionEvaluator(
            self.env,
            trace,
            context,
            techniques=self.techniques,
            stop_at_first=self.stop_at_first,
        )
        report.evasion = evaluator.run()
        best = report.evasion.best()
        report.deployed_technique = best.technique if best else None
        self.last_report = report
        return report

    def characterize(self, trace: Trace) -> CharacterizationReport:
        """Phase 2, consulting the shared rule cache (§4.2) when present."""
        if self.cache is not None:
            cached = self.cache.get(self.env.name, trace.name)
            if cached is not None:
                return cached
        report = Characterizer(self.env, trace).run()
        if self.cache is not None:
            self.cache.put(self.env.name, trace.name, report)
        return report

    def build_context(
        self,
        characterization: CharacterizationReport,
        hops: int | None,
        trace: Trace,
    ) -> EvasionContext:
        """Translate phase-2/localization results into technique parameters."""
        return EvasionContext(
            matching_fields=characterization.matching_fields,
            packet_limit=characterization.packet_limit,
            inspects_all_packets=characterization.inspects_all_packets,
            match_and_forget=characterization.match_and_forget,
            middlebox_hops=hops,
            protocol=trace.protocol,
        )

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def deploy(self, trace: Trace) -> LiberateProxy:
        """Run the pipeline if needed, then deploy the best technique.

        Raises RuntimeError when no technique evades (e.g. AT&T's
        transparent proxy — the paper's one unbeatable middlebox).
        """
        if self.last_report is None or self.last_report.trace != trace.name:
            self.run(trace)
        report = self.last_report
        assert report is not None
        if report.evasion is None or report.evasion.best() is None:
            raise RuntimeError(f"no working evasion technique for {trace.name} in {self.env.name}")
        best = report.evasion.best()
        assert best is not None
        technique = techniques_by_name()[best.technique]
        assert report.characterization is not None
        hops = None
        context = EvasionContext(
            matching_fields=report.characterization.matching_fields,
            packet_limit=report.characterization.packet_limit,
            inspects_all_packets=report.characterization.inspects_all_packets,
            match_and_forget=report.characterization.match_and_forget,
            middlebox_hops=self.env.hops_to_middlebox,
            protocol=trace.protocol,
        )
        proxy = LiberateProxy(self.env, technique, context)
        proxy.on_rule_change = lambda: self._readapt(proxy, trace)
        return proxy

    def _readapt(self, proxy: LiberateProxy, trace: Trace) -> None:
        """Runtime adaptation: rerun the pipeline and swap the technique."""
        if self.cache is not None:
            self.cache.invalidate(self.env.name, trace.name)  # the rule changed
        try:
            report = self.run(trace)
        except CharacterizationError:
            return
        if report.evasion is None:
            return
        best = report.evasion.best()
        if best is None:
            return
        proxy.technique = techniques_by_name()[best.technique]
        assert report.characterization is not None
        proxy.context = EvasionContext(
            matching_fields=report.characterization.matching_fields,
            packet_limit=report.characterization.packet_limit,
            inspects_all_packets=report.characterization.inspects_all_packets,
            match_and_forget=report.characterization.match_and_forget,
            middlebox_hops=self.env.hops_to_middlebox,
            protocol=trace.protocol,
        )
        proxy.rule_change_detected = False
