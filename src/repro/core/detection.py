"""Phase 1: differentiation detection (§4.1, §5.1).

Replay the recorded trace, then replay a bit-inverted control.  If the
original is differentiated and the control is not, the trigger is the
*content* — a DPI classifier.  Bit inversion (rather than randomization) is
deterministic and guarantees every classification bit pattern is removed; the
paper switched to it after random payloads occasionally matched rules by
accident.

On lossy networks a single replay pair is noisy (a dropped probe can read as
"not differentiated"), so detection supports repeated trials with majority
voting — the same trial repetition the paper's deployments use to separate
differentiation from congestion.
"""

from __future__ import annotations

from repro.core.report import DetectionReport
from repro.envs.base import Environment
from repro.replay.session import ReplaySession
from repro.traffic.trace import Trace


def detect_differentiation(
    env: Environment,
    trace: Trace,
    server_port: int | None = None,
    trials: int = 1,
) -> DetectionReport:
    """Run the original + bit-inverted control replays and compare treatment.

    On networks with residual server:port blocking (the GFC), each replay
    targets a fresh port so earlier tests can't contaminate the comparison
    (§6.5's methodology).

    With *trials* > 1, the replay pair is repeated and the verdicts decided
    by majority vote (a tie votes one extra pair); disagreeing trials are
    noted in the report so callers can see the confidence behind the verdict.
    """
    if trials <= 1:
        return _detect_once(env, trace, server_port)

    votes_diff: list[bool] = []
    votes_content: list[bool] = []
    notes: list[str] = []
    pairs = 0
    max_pairs = trials + (1 - trials % 2)  # room for one tie-break pair
    while pairs < trials or (pairs < max_pairs and _tied(votes_diff)):
        report = _detect_once(env, trace, server_port)
        votes_diff.append(report.differentiated)
        votes_content.append(report.content_based)
        for note in report.notes:
            if note not in notes:
                notes.append(note)
        pairs += 1

    differentiated = _majority(votes_diff)
    content_based = _majority(votes_content)
    result = DetectionReport(
        differentiated=differentiated,
        content_based=content_based,
        signal=env.signal.value,
        rounds=2 * pairs,
        bytes_used=2 * pairs * trace.total_bytes(),
    )
    disagreements = min(sum(votes_diff), pairs - sum(votes_diff))
    if disagreements:
        result.notes.append(
            f"inconsistent trials: {disagreements}/{pairs} replay pairs "
            f"disagreed with the majority verdict (lossy path)"
        )
    result.notes.extend(notes)
    return result


def _detect_once(
    env: Environment, trace: Trace, server_port: int | None
) -> DetectionReport:
    original_port = server_port
    control_port = server_port
    if env.needs_port_rotation:
        original_port = 8000 + (env.next_sport() % 20_000)
        control_port = 8000 + (env.next_sport() % 20_000)
    original = ReplaySession(env, trace, server_port=original_port).run()
    control = ReplaySession(env, trace.inverted(), server_port=control_port).run()
    report = DetectionReport(
        differentiated=original.differentiated,
        content_based=original.differentiated and not control.differentiated,
        signal=env.signal.value,
        rounds=2,
        bytes_used=2 * trace.total_bytes(),
    )
    if original.differentiated and control.differentiated:
        report.notes.append(
            "control replay also differentiated: trigger is not payload content "
            "(header-space or endpoint-based policy)"
        )
    if original.content_modified:
        report.notes.append(
            "server responses were modified in flight (content-modification "
            "differentiation)"
        )
    return report


def _majority(votes: list[bool]) -> bool:
    return sum(votes) * 2 > len(votes)


def _tied(votes: list[bool]) -> bool:
    return sum(votes) * 2 == len(votes)
