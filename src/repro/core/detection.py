"""Phase 1: differentiation detection (§4.1, §5.1).

Replay the recorded trace, then replay a bit-inverted control.  If the
original is differentiated and the control is not, the trigger is the
*content* — a DPI classifier.  Bit inversion (rather than randomization) is
deterministic and guarantees every classification bit pattern is removed; the
paper switched to it after random payloads occasionally matched rules by
accident.
"""

from __future__ import annotations

from repro.core.report import DetectionReport
from repro.envs.base import Environment
from repro.replay.session import ReplaySession
from repro.traffic.trace import Trace


def detect_differentiation(
    env: Environment, trace: Trace, server_port: int | None = None
) -> DetectionReport:
    """Run the original + bit-inverted control replays and compare treatment.

    On networks with residual server:port blocking (the GFC), each replay
    targets a fresh port so earlier tests can't contaminate the comparison
    (§6.5's methodology).
    """
    original_port = server_port
    control_port = server_port
    if env.needs_port_rotation:
        original_port = 8000 + (env.next_sport() % 20_000)
        control_port = 8000 + (env.next_sport() % 20_000)
    original = ReplaySession(env, trace, server_port=original_port).run()
    control = ReplaySession(env, trace.inverted(), server_port=control_port).run()
    report = DetectionReport(
        differentiated=original.differentiated,
        content_based=original.differentiated and not control.differentiated,
        signal=env.signal.value,
        rounds=2,
        bytes_used=2 * trace.total_bytes(),
    )
    if original.differentiated and control.differentiated:
        report.notes.append(
            "control replay also differentiated: trigger is not payload content "
            "(header-space or endpoint-based policy)"
        )
    if original.content_modified:
        report.notes.append(
            "server responses were modified in flight (content-modification "
            "differentiation)"
        )
    return report
