"""lib·erate's core: detection, characterization, evasion, deployment.

The four automated phases from the paper (Figure 1):

1. :mod:`repro.core.detection` — does a middlebox differentiate this
   application's traffic based on its content?
2. :mod:`repro.core.characterization` — which bytes trigger classification,
   and how much of the flow does the classifier look at?
3. :mod:`repro.core.evaluation` — which evasion techniques from the taxonomy
   (:mod:`repro.core.evasion`) actually work here?
4. :mod:`repro.core.deployment` — apply the cheapest working technique to
   live application traffic.

:class:`repro.core.pipeline.Liberate` orchestrates all four.
"""

from repro.core.report import (
    CharacterizationReport,
    DetectionReport,
    EvasionReport,
    LiberateReport,
    MatchingField,
    TechniqueResult,
)

__all__ = [
    "Liberate",
    "CharacterizationReport",
    "DetectionReport",
    "EvasionReport",
    "LiberateReport",
    "MatchingField",
    "TechniqueResult",
]


def __getattr__(name: str):
    """Lazily expose Liberate to avoid import cycles during partial builds."""
    if name == "Liberate":
        from repro.core.pipeline import Liberate

        return Liberate
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
