"""Phase 3: evasion evaluation (§4.3, §5.2).

Run candidate techniques against the live classifier and record which ones
work.  The taxonomy lets us prune efficiently: a classifier that inspects
*every* packet (Iran) cannot be fooled by inert insertion or flushing, so
those tests are skipped; match-and-forget classifiers get the cheap inert
techniques first; previously-effective techniques are tried before exotic
ones.
"""

from __future__ import annotations

from repro.core.evasion import ALL_TECHNIQUES
from repro.core.evasion.base import EvasionContext, EvasionTechnique
from repro.core.report import EvasionReport, TechniqueResult
from repro.envs.base import Environment
from repro.replay.session import ReplayOutcome, ReplaySession
from repro.traffic.trace import Trace

#: Techniques that were effective across our study, tried first (§5.2:
#: "lib·erate tests evasion techniques that were effective in our study
#: first, based on the assumption that such classifier implementations are
#: also deployed elsewhere").
PREVIOUSLY_EFFECTIVE = (
    "ip-low-ttl",
    "tcp-segment-reorder",
    "tcp-segment-split",
    "udp-reorder",
    "flush-rst-before-match",
)

#: Rank of each previously-effective technique (lower sorts first).
EFFECTIVE_RANK = {name: i for i, name in enumerate(PREVIOUSLY_EFFECTIVE)}

#: Category order for match-and-forget classifiers: cheap inert insertion
#: first, then splitting/reordering, then the slow flushing probes.
CATEGORY_RANK_FORGETFUL = {
    "inert-insertion": 0,
    "splitting": 1,
    "reordering": 1,
    "flushing": 3,
}

#: Category order when the classifier keeps re-evaluating: inert insertion
#: is demoted behind splitting/reordering.
CATEGORY_RANK_PERSISTENT = {**CATEGORY_RANK_FORGETFUL, "inert-insertion": 2}


class EvasionEvaluator:
    """Evaluates the taxonomy against one (environment, trace) pair.

    Args:
        env: the environment under test.
        trace: the differentiated dialogue.
        context: characterization + localization results.
        techniques: candidate techniques (defaults to the full taxonomy).
        stop_at_first: stop once one technique works (deployment mode);
            False exercises everything (the paper's study mode).
    """

    def __init__(
        self,
        env: Environment,
        trace: Trace,
        context: EvasionContext,
        techniques: tuple[EvasionTechnique, ...] = ALL_TECHNIQUES,
        stop_at_first: bool = False,
    ) -> None:
        self.env = env
        self.trace = trace
        self.context = context
        self.techniques = techniques
        self.stop_at_first = stop_at_first
        self._port_counter = trace.server_port

    # ------------------------------------------------------------------
    # test-plan construction
    # ------------------------------------------------------------------
    def plan(self) -> list[EvasionTechnique]:
        """The ordered, pruned list of techniques to try."""
        candidates = [t for t in self.techniques if t.applicable(self.context)]
        if self.context.inspects_all_packets:
            # §5.2: against inspect-everything classifiers, inert insertion
            # cannot change the verdict and there is no state to flush —
            # only splitting/reordering remain.
            candidates = [
                t for t in candidates if t.category in ("splitting", "reordering")
            ]
        category_rank = (
            CATEGORY_RANK_FORGETFUL
            if self.context.match_and_forget
            else CATEGORY_RANK_PERSISTENT
        )
        default_rank = len(EFFECTIVE_RANK)
        return sorted(
            candidates,
            key=lambda t: (
                EFFECTIVE_RANK.get(t.name, default_rank),
                category_rank.get(t.category, 9),
            ),
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def run(self) -> EvasionReport:
        """Try the planned techniques, recording results (and costs)."""
        report = EvasionReport()
        for technique in self.plan():
            outcome = self.evaluate(technique)
            result = TechniqueResult(
                technique=technique.name,
                category=technique.category,
                evaded=outcome.evaded,
                delivered_ok=outcome.delivered_ok,
                differentiated=outcome.differentiated,
                inert_reached_server=outcome.inert_reached_server,
                overhead_packets=outcome.overhead_packets,
                overhead_bytes=outcome.overhead_bytes,
                overhead_seconds=outcome.overhead_seconds,
            )
            report.results.append(result)
            report.rounds += 1
            report.bytes_used += outcome.bytes_used
            if self.stop_at_first and outcome.evaded:
                break
        return report

    def evaluate(self, technique: EvasionTechnique) -> ReplayOutcome:
        """One technique, one replay."""
        port = self.trace.server_port
        if self.env.needs_port_rotation:
            self._port_counter += 1
            port = 8000 + (self._port_counter % 20_000)
        session = ReplaySession(self.env, self.trace, server_port=port)
        return session.run(technique=technique, context=self.context)
