"""Result types produced by lib·erate's four phases."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MatchingField:
    """One classifier matching field found by characterization.

    Attributes:
        packet_index: which client payload (by trace order) contains it.
        start / end: byte range [start, end) within that payload.
        content: the bytes of the field, for human inspection.
    """

    packet_index: int
    start: int
    end: int
    content: bytes

    def __len__(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:
        preview = self.content.decode("latin-1", "replace")
        return f"pkt{self.packet_index}[{self.start}:{self.end}]={preview!r}"


@dataclass
class DetectionReport:
    """Phase 1: is traffic differentiated, and is the trigger content-based?

    Attributes:
        differentiated: the original replay received differential treatment.
        content_based: the bit-inverted control did *not*, implicating DPI.
        signal: the environment's differentiation signal type.
        rounds: replays consumed.
        bytes_used: application bytes consumed across those replays.
    """

    differentiated: bool
    content_based: bool
    signal: str
    rounds: int = 0
    bytes_used: int = 0
    notes: list[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human summary."""
        if not self.differentiated:
            return "no differentiation detected"
        kind = "content-based (DPI)" if self.content_based else "not content-based"
        return f"differentiation detected via {self.signal}: {kind}"


@dataclass
class CharacterizationReport:
    """Phase 2: the reverse-engineered classifier rule.

    Attributes:
        matching_fields: byte regions that trigger classification.
        packet_limit: classifier inspection window in payload packets, or
            None when it inspects the whole flow.
        limit_is_packet_based: the window counts packets (vs. bytes).
        inspects_all_packets: prepending up to the threshold never changed
            classification (Iran-style per-packet classifiers).
        match_and_forget: classification seems final once made.
        prepend_sensitivity: smallest number of prepended packets that
            changed classification (None = never within threshold).
        rounds: replays consumed.
        bytes_used: application bytes consumed across those replays.
        port_rotation_used: replays were spread over server ports to dodge
            residual blocking (GFC).
    """

    matching_fields: list[MatchingField] = field(default_factory=list)
    server_side_fields: list[MatchingField] = field(default_factory=list)
    packet_limit: int | None = None
    limit_is_packet_based: bool = True
    inspects_all_packets: bool = False
    match_and_forget: bool = True
    prepend_sensitivity: int | None = None
    rounds: int = 0
    bytes_used: int = 0
    port_rotation_used: bool = False
    notes: list[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human summary."""
        fields = ", ".join(str(f) for f in self.matching_fields) or "none found"
        scope = (
            "all packets"
            if self.inspects_all_packets
            else f"first {self.packet_limit} packets"
            if self.packet_limit is not None
            else "unknown window"
        )
        return f"{len(self.matching_fields)} matching field(s) [{fields}]; inspects {scope}"


@dataclass
class TechniqueResult:
    """Phase 3: the outcome of trying one evasion technique.

    Attributes:
        technique: technique name.
        category: taxonomy category (inert-insertion / splitting /
            reordering / flushing).
        evaded: classification changed AND the payload was delivered intact.
        delivered_ok: server application received the exact payload.
        differentiated: the differentiation signal still fired.
        inert_reached_server: the crafted packets physically arrived at the
            server (the RS? column), None when not applicable.
        overhead_packets / overhead_bytes / overhead_seconds: deployment
            cost of the technique (Table 2).
        rounds: replays it took to evaluate (1 unless retried).
    """

    technique: str
    category: str
    evaded: bool
    delivered_ok: bool
    differentiated: bool
    inert_reached_server: bool | None = None
    overhead_packets: int = 0
    overhead_bytes: int = 0
    overhead_seconds: float = 0.0
    rounds: int = 1
    notes: str = ""


@dataclass
class EvasionReport:
    """Phase 3 aggregate: every technique tried, ordered by the test plan."""

    results: list[TechniqueResult] = field(default_factory=list)
    rounds: int = 0
    bytes_used: int = 0

    def working(self) -> list[TechniqueResult]:
        """The techniques that evaded classification."""
        return [r for r in self.results if r.evaded]

    def best(self) -> TechniqueResult | None:
        """The cheapest working technique (packets, then bytes, then delay)."""
        candidates = self.working()
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (r.overhead_seconds, r.overhead_packets, r.overhead_bytes),
        )

    def summary(self) -> str:
        """One-line human summary."""
        ok = self.working()
        if not ok:
            return f"0/{len(self.results)} techniques evade"
        best = self.best()
        assert best is not None
        return f"{len(ok)}/{len(self.results)} techniques evade; best: {best.technique}"


@dataclass
class LiberateReport:
    """The full four-phase run.

    *seed* records the fault-injection / RNG seed the run was performed
    under (None for a deterministic fault-free run) so every reported result
    can be reproduced bit-for-bit.
    """

    environment: str
    trace: str
    detection: DetectionReport
    characterization: CharacterizationReport | None = None
    evasion: EvasionReport | None = None
    deployed_technique: str | None = None
    seed: int | None = None
    #: Observability snapshot (counter/gauge/histogram values) taken when the
    #: pipeline finished, present only when metrics collection was enabled.
    metrics: dict[str, object] | None = None
    #: Aggregated flow-trace summary (event/flow counts, rule hits, drops,
    #: verdicts — :meth:`repro.obs.analyze.TraceIndex.summary`), present only
    #: when the run was traced.
    trace_summary: dict[str, object] | None = None
    #: Per-stage wall/CPU profile (:meth:`repro.obs.profiling.Profiler.snapshot`)
    #: taken when the pipeline finished, present only when profiling was
    #: enabled.  Under a process pool the parent merges worker stage timings
    #: before this snapshot, so it covers the whole run's work.
    profile: dict[str, object] | None = None

    def summary(self) -> str:
        """Multi-line human summary of the whole run."""
        lines = [f"lib*erate report — {self.trace} over {self.environment}"]
        if self.seed is not None:
            lines.append(f"  seed:             {self.seed}")
        lines.append(f"  detection:        {self.detection.summary()}")
        if self.characterization is not None:
            lines.append(f"  characterization: {self.characterization.summary()}")
        if self.evasion is not None:
            lines.append(f"  evasion:          {self.evasion.summary()}")
        if self.deployed_technique is not None:
            lines.append(f"  deployed:         {self.deployed_technique}")
        if self.metrics is not None:
            lines.append(f"  metrics:          {len(self.metrics)} series collected")
        if self.profile is not None:
            lines.append(f"  profile:          {len(self.profile)} stage(s) timed")
        if self.trace_summary is not None:
            lines.append(
                f"  trace:            {self.trace_summary['events']} events over "
                f"{self.trace_summary['flows']} flow(s), "
                f"{len(self.trace_summary['rules'])} rule(s) hit"
            )
        return "\n".join(lines)
