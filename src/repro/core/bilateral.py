"""Bilateral evasion (§7): techniques that assume server-side support.

Unilateral evasion exploits middlebox implementation gaps, so every
technique in Table 3 has a countermeasure.  With *both* endpoints running
lib·erate, two far stronger moves open up:

* **dummy prefix** — one packet of dummy payload at the start of the flow,
  ignored by the cooperating server, breaks every protocol-anchored
  classifier.  The paper measured this working against the testbed,
  T-Mobile, AT&T and the GFC ("inserting even one packet carrying dummy
  traffic ... evades classification in our testbed, T-Mobile, AT&T, and
  the GFC").
* **payload rotation** — transform the application bytes with a shared key
  and undo it server-side.  The classifier sees content "not publicly known
  by the differentiating ISP a priori" (§7); even a terminating proxy can
  only pass it through unclassified.

Neither is deployable unilaterally; both are implemented here to complete
the paper's outlook section.
"""

from __future__ import annotations

from repro.core.evasion.base import EvasionContext, EvasionTechnique, Overhead
from repro.envs.base import Environment
from repro.replay.runner import ReplayRunner
from repro.replay.session import ReplayOutcome, ReplaySession
from repro.traffic.trace import Trace


class BilateralDummyPrefix(EvasionTechnique):
    """One dummy payload packet before the real dialogue (server ignores it).

    Run it through a :class:`~repro.replay.session.ReplaySession` constructed
    with ``tolerate_prefix=True`` — that models the cooperating server; the
    :func:`run_bilateral_dummy_prefix` helper wires this up.
    """

    name = "bilateral-dummy-prefix"
    category = "bilateral"
    protocol = "tcp"
    requires_server_support = True

    def __init__(self, prefix: bytes = b"\x00") -> None:
        if not prefix:
            raise ValueError("the dummy prefix must be at least one byte")
        self.prefix = prefix

    def apply(self, runner: ReplayRunner) -> None:
        """Send the dummy bytes as real stream data, then the dialogue."""
        runner.send_message(self.prefix)
        runner.overhead_packets += 1
        runner.overhead_bytes += len(self.prefix) + 40
        runner.send_default()

    def estimated_overhead(self, ctx: EvasionContext) -> Overhead:
        """One extra packet carrying the prefix."""
        return Overhead(packets=1, bytes=len(self.prefix) + 40)


def run_bilateral_dummy_prefix(
    env: Environment,
    trace: Trace,
    prefix: bytes = b"\x00",
    server_port: int | None = None,
) -> ReplayOutcome:
    """Replay *trace* with a dummy prefix against a cooperating server."""
    session = ReplaySession(env, trace, server_port=server_port, tolerate_prefix=True)
    context = EvasionContext(protocol="tcp", middlebox_hops=env.hops_to_middlebox)
    return session.run(technique=BilateralDummyPrefix(prefix), context=context)


def rotate_payload(payload: bytes, key: int) -> bytes:
    """Byte-wise additive rotation with *key* (undone by rotating with -key)."""
    return bytes((b + key) & 0xFF for b in payload)


def unrotate_payload(payload: bytes, key: int) -> bytes:
    """Invert :func:`rotate_payload`."""
    return bytes((b - key) & 0xFF for b in payload)


def encoded_wire_trace(trace: Trace, key: int) -> Trace:
    """What the wire carries under payload rotation.

    Client payloads travel rotated (the cooperating server decodes them
    before interpreting); server responses are unchanged, and the replay
    server's count-based triggering is oblivious to the transform.
    """
    rotated = [rotate_payload(p, key) for p in trace.client_payloads()]
    return trace.with_client_payloads(rotated, name=f"{trace.name}:rot{key}")


def run_bilateral_rotation(
    env: Environment,
    trace: Trace,
    key: int = 7,
    server_port: int | None = None,
) -> ReplayOutcome:
    """Replay *trace* with payload rotation against a cooperating server.

    The outcome's delivery checks compare wire bytes against the rotated
    expectation, which (rotation being a bijection) is equivalent to the
    decoded stream matching the original application bytes.
    """
    if not 1 <= key <= 255:
        raise ValueError("key must be in 1..255")
    wire_trace = encoded_wire_trace(trace, key)
    return ReplaySession(env, wire_trace, server_port=server_port).run()
