"""Distributed characterization (§4.2).

"An alternative approach to reduce runtimes is to distribute disjoint
subsets of the tests among multiple users in the same network, and aggregate
the results."  The replay rounds of a characterization run are independent
given the bisection's control flow, so spreading them round-robin over N
cooperating users divides each user's measurement load (and wall-clock
time, since users run concurrently) by ~N.

The paper also notes the drawback: the aggregated results sit in a public
place where the adversary can read them — which is the same trade-off as
:mod:`repro.core.cache`, where the results land afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import logging

from repro.core.characterization import Characterizer
from repro.core.report import CharacterizationReport
from repro.envs.base import Environment
from repro.obs import live as obs_live
from repro.runtime import RetryPolicy, TaskFailure, WorkerPool
from repro.traffic.trace import Trace

logger = logging.getLogger(__name__)


@dataclass
class UserLoad:
    """Measurement load carried by one cooperating user."""

    user: int
    rounds: int = 0
    bytes_used: int = 0


class DistributedCharacterizer(Characterizer):
    """A characterizer whose replay rounds are spread over N users.

    Rounds are assigned round-robin — what the disjoint-subsets scheme
    degenerates to when tests execute in bisection order.  Every replay
    already uses a fresh client port, so the middlebox sees each user's
    probes as unrelated flows.

    Args:
        users: number of cooperating users (≥1).
    """

    def __init__(self, env: Environment, trace: Trace, users: int = 4, **kwargs: object) -> None:
        if users < 1:
            raise ValueError("need at least one user")
        super().__init__(env, trace, **kwargs)  # type: ignore[arg-type]
        self.users = [UserLoad(user=i) for i in range(users)]
        self._next_user = 0

    def _replay(self, blind=None, prepend=None, server_blind=None) -> bool:  # type: ignore[override]
        user = self.users[self._next_user]
        self._next_user = (self._next_user + 1) % len(self.users)
        before_rounds, before_bytes = self.rounds, self.bytes_used
        result = super()._replay(blind=blind, prepend=prepend, server_blind=server_blind)
        user.rounds += self.rounds - before_rounds
        user.bytes_used += self.bytes_used - before_bytes
        return result

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def max_user_rounds(self) -> int:
        """The per-user measurement load (the quantity distribution reduces)."""
        return max(user.rounds for user in self.users)

    def run_distributed(self) -> tuple[CharacterizationReport, list[UserLoad]]:
        """Characterize and return the report plus the per-user loads."""
        report = self.run()
        return report, list(self.users)


def _solo_task(task: tuple[object, Trace]) -> int:
    """Single-user characterization: the round count (a worker-pool task)."""
    env_factory, trace = task
    solo = Characterizer(env_factory(), trace)
    solo.run()
    return solo.rounds


def _distributed_task(task: tuple[object, Trace, int]) -> tuple[int, list[int], list[str]]:
    """N-user characterization: totals, per-user loads, matched fields."""
    env_factory, trace, users = task
    distributed = DistributedCharacterizer(env_factory(), trace, users=users)
    report, loads = distributed.run_distributed()
    fields = [f.content for f in report.matching_fields]
    return distributed.rounds, [load.rounds for load in loads], fields


def _reference_fields_task(task: tuple[object, Trace]) -> list[str]:
    """Reference single-user matching fields (a worker-pool task)."""
    env_factory, trace = task
    return [f.content for f in Characterizer(env_factory(), trace).find_matching_fields()]


def speedup_from_distribution(
    env_factory,
    trace: Trace,
    users: int = 4,
    pool: WorkerPool | None = None,
    retry: RetryPolicy | None = None,
) -> dict[str, float]:
    """Compare single-user vs. N-user characterization load.

    Returns total rounds, the busiest user's rounds, and the effective
    speedup (wall-clock divides by it when users run concurrently).  The
    three characterization runs (solo, distributed, reference fields) each
    build their own environment from *env_factory*, so a parallel *pool*
    runs them concurrently with identical results.  With a *retry* policy,
    tasks that die on the pool (crashed worker, timeout) are retried there
    and, as a last resort, re-run serially in-process — every task is pure,
    so a re-run computes the same result.
    """
    if pool is None:
        pool = WorkerPool()
    thunks = [
        partial(_solo_task, (env_factory, trace)),
        partial(_distributed_task, (env_factory, trace, users)),
        partial(_reference_fields_task, (env_factory, trace)),
    ]
    if obs_live.BUS is not None:
        obs_live.BUS.emit(
            "exp.start", experiment="distribution", users=users, tasks=len(thunks)
        )
    results = pool.run_all(thunks, retry=retry)
    for index, result in enumerate(results):
        if isinstance(result, TaskFailure):
            logger.warning(
                "distribution task %d failed on the pool (%s after %d attempt(s)); "
                "re-running serially in-process",
                index,
                result.error_type,
                result.attempts,
            )
            if obs_live.BUS is not None:
                obs_live.BUS.emit(
                    "pool.serial_fallback", task=index, error_type=result.error_type
                )
            results[index] = thunks[index]()
    if obs_live.BUS is not None:
        obs_live.BUS.emit("exp.finish", experiment="distribution", tasks=len(results))
    solo_rounds, (total_rounds, user_rounds, dist_fields), reference_fields = results
    busiest = max(user_rounds)
    return {
        "solo_rounds": float(solo_rounds),
        "distributed_total_rounds": float(total_rounds),
        "busiest_user_rounds": float(busiest),
        "speedup": solo_rounds / busiest if busiest else float("inf"),
        "fields_agree": float(dist_fields == reference_fields),
    }
