"""Streaming-video trace generation (the Binge On / Stream Saver workloads)."""

from __future__ import annotations

from repro.packets.flow import Direction
from repro.traffic.http import http_request, http_response
from repro.traffic.trace import Trace, TracePacket

CHUNK = 1460


def video_stream_trace(
    host: str = "d1.cloudfront.net",
    path: str = "/movies/segment-001.mp4",
    total_bytes: int = 200_000,
    server_port: int = 80,
    name: str | None = None,
) -> Trace:
    """An HTTP video stream: one GET, then *total_bytes* of MP4-ish payload.

    The body arrives as many server→client payloads so shaping has packets
    to act on, like the Amazon Prime Video replay from §6.2.
    """
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    request = http_request(host, path, extra_headers={"Range": "bytes=0-"})
    body = (b"\x00\x00\x00\x18ftypmp42" + bytes(range(248))) * (total_bytes // 256 + 1)
    body = body[:total_bytes]
    header = http_response(b"", content_type="video/mp4")
    header = header.replace(b"Content-Length: 0", f"Content-Length: {total_bytes}".encode())
    packets = [
        TracePacket(Direction.CLIENT_TO_SERVER, request, time=0.0),
        TracePacket(Direction.SERVER_TO_CLIENT, header, time=0.05),
    ]
    t = 0.05
    for offset in range(0, len(body), CHUNK):
        t += 0.001
        packets.append(
            TracePacket(Direction.SERVER_TO_CLIENT, body[offset : offset + CHUNK], time=t)
        )
    return Trace(
        name=name or f"video:{host}",
        protocol="tcp",
        server_port=server_port,
        packets=packets,
        metadata={"application": "video", "host": host},
    )
