"""Application traffic generation and the trace record/replay format.

The classifiers in the paper key on HTTP Host headers, TLS Server Name
Indication, and STUN message attributes; the generators here produce
wire-accurate bytes for all three, wrapped in :class:`~repro.traffic.trace.Trace`
objects that the replay machinery and lib·erate itself consume.
"""

from repro.traffic.http import (
    http_get_trace,
    http_request,
    http_response,
)
from repro.traffic.pcap import read_pcap, tap_to_pcap, write_pcap
from repro.traffic.quic import quic_initial, quic_video_trace
from repro.traffic.recorder import TraceRecorder
from repro.traffic.stun import stun_binding_request, stun_binding_response, stun_trace
from repro.traffic.tls import client_hello, extract_sni, tls_trace
from repro.traffic.trace import Trace, TracePacket, invert_bits
from repro.traffic.video import video_stream_trace

__all__ = [
    "http_get_trace",
    "http_request",
    "http_response",
    "stun_binding_request",
    "stun_binding_response",
    "stun_trace",
    "client_hello",
    "extract_sni",
    "tls_trace",
    "Trace",
    "TracePacket",
    "invert_bits",
    "video_stream_trace",
    "read_pcap",
    "tap_to_pcap",
    "write_pcap",
    "TraceRecorder",
    "quic_initial",
    "quic_video_trace",
]
