"""HTTP request/response generation.

The operational classifiers matched human-readable strings in HTTP traffic:
hostnames in the Host header (``cloudfront.net``, ``economist.com``,
``facebook.com``), standard request tokens (``GET``, ``HTTP/1.1``) and the
``Content-Type: video`` response header (AT&T Stream Saver).
"""

from __future__ import annotations

from repro.packets.flow import Direction
from repro.traffic.trace import Trace, TracePacket

DEFAULT_USER_AGENT = "Mozilla/5.0 (X11; Linux x86_64) repro-liberate/1.0"


def http_request(
    host: str,
    path: str = "/",
    user_agent: str = DEFAULT_USER_AGENT,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Build a GET request for *host* *path*."""
    lines = [
        f"GET {path} HTTP/1.1",
        f"Host: {host}",
        f"User-Agent: {user_agent}",
        "Accept: */*",
        "Connection: keep-alive",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def http_response(
    body: bytes,
    status: str = "200 OK",
    content_type: str = "text/html",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Build an HTTP/1.1 response carrying *body*."""
    lines = [
        f"HTTP/1.1 {status}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: keep-alive",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def http_get_trace(
    host: str,
    path: str = "/",
    response_body: bytes = b"<html>hello</html>",
    content_type: str = "text/html",
    server_port: int = 80,
    name: str | None = None,
) -> Trace:
    """A one-request HTTP dialogue: GET from the client, 200 from the server."""
    request = http_request(host, path)
    response = http_response(response_body, content_type=content_type)
    return Trace(
        name=name or host,
        protocol="tcp",
        server_port=server_port,
        packets=[
            TracePacket(direction=Direction.CLIENT_TO_SERVER, payload=request, time=0.0),
            TracePacket(direction=Direction.SERVER_TO_CLIENT, payload=response, time=0.05),
        ],
        metadata={"application": "http", "host": host},
    )
