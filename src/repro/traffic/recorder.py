"""Recording application traffic into replayable traces (Figure 3, step 1).

The paper's workflow starts by recording the unmodified application's
dialogue.  :class:`TraceRecorder` wraps a :class:`~repro.netsim.element.PacketTap`
placed on a path and reconstructs, per flow, the ordered application
payloads in both directions — producing exactly the :class:`Trace` objects
the rest of lib·erate consumes.
"""

from __future__ import annotations

from repro.netsim.element import PacketTap
from repro.packets.flow import Direction, FiveTuple
from repro.traffic.trace import Trace, TracePacket


class TraceRecorder:
    """Reconstructs application dialogues from a packet tap's capture.

    TCP payloads are deduplicated and ordered by sequence number per
    direction (retransmissions collapse); UDP datagrams are taken in
    arrival order.
    """

    def __init__(self, tap: PacketTap) -> None:
        self.tap = tap

    # ------------------------------------------------------------------
    # flow discovery
    # ------------------------------------------------------------------
    def flows(self) -> list[FiveTuple]:
        """Client-oriented five-tuples observed, in first-seen order.

        The client side is whoever sent the first packet of the flow (the
        SYN for TCP).
        """
        seen: dict[FiveTuple, FiveTuple] = {}
        for record in self.tap.records:
            key = FiveTuple.of(record.packet)
            if key is None:
                continue
            normalized = key.normalized()
            if normalized not in seen:
                seen[normalized] = key
        return list(seen.values())

    # ------------------------------------------------------------------
    # reconstruction
    # ------------------------------------------------------------------
    def record(self, flow: FiveTuple, name: str = "recorded") -> Trace:
        """Build the replayable trace of one flow."""
        protocol = "udp" if flow.protocol == 17 else "tcp"
        if protocol == "tcp":
            packets = self._tcp_dialogue(flow)
        else:
            packets = self._udp_dialogue(flow)
        return Trace(
            name=name,
            protocol=protocol,
            server_port=flow.dport,
            packets=packets,
            metadata={"recorded": "true"},
        )

    def _tcp_dialogue(self, flow: FiveTuple) -> list[TracePacket]:
        chunks: dict[Direction, dict[int, tuple[float, bytes]]] = {
            Direction.CLIENT_TO_SERVER: {},
            Direction.SERVER_TO_CLIENT: {},
        }
        for record in self.tap.records:
            packet = record.packet
            tcp = packet.tcp
            if tcp is None or not tcp.payload:
                continue
            key = FiveTuple.of(packet)
            if key is None or key.normalized() != flow.normalized():
                continue
            direction = (
                Direction.CLIENT_TO_SERVER
                if key.src == flow.src and key.sport == flow.sport
                else Direction.SERVER_TO_CLIENT
            )
            chunks[direction].setdefault(tcp.seq, (record.time, tcp.payload))
        events: list[tuple[float, Direction, bytes]] = []
        for direction, per_seq in chunks.items():
            for seq in sorted(per_seq):
                time, payload = per_seq[seq]
                events.append((time, direction, payload))
        events.sort(key=lambda item: item[0])
        return self._coalesce(events)

    def _udp_dialogue(self, flow: FiveTuple) -> list[TracePacket]:
        events: list[tuple[float, Direction, bytes]] = []
        for record in self.tap.records:
            packet = record.packet
            udp = packet.udp
            if udp is None or not udp.payload:
                continue
            key = FiveTuple.of(packet)
            if key is None or key.normalized() != flow.normalized():
                continue
            direction = (
                Direction.CLIENT_TO_SERVER
                if key.src == flow.src and key.sport == flow.sport
                else Direction.SERVER_TO_CLIENT
            )
            events.append((record.time, direction, udp.payload))
        return [
            TracePacket(direction=direction, payload=payload, time=time)
            for time, direction, payload in events
        ]

    def _coalesce(self, events: list[tuple[float, Direction, bytes]]) -> list[TracePacket]:
        """Merge consecutive same-direction TCP chunks into one message."""
        packets: list[TracePacket] = []
        for time, direction, payload in events:
            if packets and packets[-1].direction is direction:
                packets[-1] = TracePacket(
                    direction=direction,
                    payload=packets[-1].payload + payload,
                    time=packets[-1].time,
                )
            else:
                packets.append(TracePacket(direction=direction, payload=payload, time=time))
        return packets
