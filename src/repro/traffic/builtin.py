"""Built-in application traces (§5: "we can provide built-in traces that are
distributed with the tool").

One canonical recording per application the paper tested, keyed by the
names used in §6.  Traces are generated deterministically on first access
and can be exported to a directory of JSON files for distribution.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.traffic.http import http_get_trace
from repro.traffic.quic import quic_video_trace
from repro.traffic.stun import stun_trace
from repro.traffic.tls import tls_trace
from repro.traffic.trace import Trace
from repro.traffic.video import video_stream_trace


def _youtube_http() -> Trace:
    return video_stream_trace(
        host="r4---sn-p5qlsnz6.googlevideo.com",
        path="/videoplayback?id=dQw4w9",
        total_bytes=400_000,
        name="youtube-http",
    )


def _youtube_tls() -> Trace:
    return tls_trace("r4---sn-p5qlsnz6.googlevideo.com", name="youtube-tls")


def _youtube_quic() -> Trace:
    return quic_video_trace(total_bytes=400_000, name="youtube-quic")


def _prime_video() -> Trace:
    return video_stream_trace(
        host="d1.cloudfront.net",
        path="/prime/ep01/segment-000.mp4",
        total_bytes=400_000,
        name="prime-video",
    )


def _spotify() -> Trace:
    return http_get_trace(
        "audio-fa.spotify.com",
        path="/audio/track-01.ogg",
        response_body=b"OggS" + bytes(200_000),
        content_type="audio/ogg",
        name="spotify",
    )


def _skype() -> Trace:
    return stun_trace(name="skype")


def _economist() -> Trace:
    return http_get_trace(
        "economist.com",
        path="/news/leaders/latest",
        response_body=b"<html>this week</html>" * 100,
        name="economist",
    )


def _facebook() -> Trace:
    return http_get_trace(
        "facebook.com",
        path="/feed",
        response_body=b"<html>feed</html>" * 80,
        name="facebook",
    )


def _nbcsports() -> Trace:
    return video_stream_trace(
        host="video.nbcsports.com",
        path="/highlights/clip.mp4",
        total_bytes=400_000,
        name="nbcsports",
    )


BUILTIN_BUILDERS: dict[str, Callable[[], Trace]] = {
    "youtube-http": _youtube_http,
    "youtube-tls": _youtube_tls,
    "youtube-quic": _youtube_quic,
    "prime-video": _prime_video,
    "spotify": _spotify,
    "skype": _skype,
    "economist": _economist,
    "facebook": _facebook,
    "nbcsports": _nbcsports,
}


def builtin_trace_names() -> list[str]:
    """The names of the distributed trace set."""
    return sorted(BUILTIN_BUILDERS)


def builtin_trace(name: str) -> Trace:
    """Build the named trace (deterministic; a fresh object each call)."""
    try:
        return BUILTIN_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"no built-in trace {name!r}; available: {', '.join(builtin_trace_names())}"
        ) from None


def export_builtin_traces(directory: str | Path) -> list[Path]:
    """Write every built-in trace to *directory* as JSON; returns the paths."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for name in builtin_trace_names():
        path = target / f"{name}.trace.json"
        builtin_trace(name).save(path)
        written.append(path)
    return written
