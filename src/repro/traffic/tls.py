"""TLS ClientHello generation and SNI extraction.

T-Mobile's Binge On classifier matched ``.googlevideo.com`` in the Server
Name Indication extension of the TLS handshake (§6.2), so we generate
wire-accurate ClientHello records and provide the extraction routine the
DPI engine uses.
"""

from __future__ import annotations

import struct

from repro.packets.flow import Direction
from repro.traffic.trace import Trace, TracePacket

TLS_HANDSHAKE = 0x16
TLS_CLIENT_HELLO = 0x01
TLS_SERVER_HELLO = 0x02
TLS_VERSION_1_2 = 0x0303
SNI_EXTENSION = 0x0000

_CIPHER_SUITES = bytes.fromhex("c02bc02fc02cc030cca9cca8c013c014009c009d002f0035")


def _sni_extension(server_name: str) -> bytes:
    name_bytes = server_name.encode("ascii")
    entry = struct.pack("!BH", 0, len(name_bytes)) + name_bytes  # type 0 = host_name
    server_name_list = struct.pack("!H", len(entry)) + entry
    return struct.pack("!HH", SNI_EXTENSION, len(server_name_list)) + server_name_list


def client_hello(server_name: str, session_id: bytes = b"") -> bytes:
    """Build a TLS 1.2 ClientHello record carrying an SNI for *server_name*."""
    random = bytes(range(32))
    body = struct.pack("!H", TLS_VERSION_1_2)
    body += random
    body += struct.pack("!B", len(session_id)) + session_id
    body += struct.pack("!H", len(_CIPHER_SUITES)) + _CIPHER_SUITES
    body += b"\x01\x00"  # one compression method: null
    extensions = _sni_extension(server_name)
    extensions += struct.pack("!HH", 0x000A, 4) + struct.pack("!H", 2) + b"\x00\x17"  # groups
    body += struct.pack("!H", len(extensions)) + extensions
    handshake = struct.pack("!B", TLS_CLIENT_HELLO) + struct.pack("!I", len(body))[1:] + body
    record = struct.pack("!BHH", TLS_HANDSHAKE, TLS_VERSION_1_2, len(handshake)) + handshake
    return record


def server_hello() -> bytes:
    """Build a minimal, structurally plausible ServerHello record."""
    random = bytes(reversed(range(32)))
    body = struct.pack("!H", TLS_VERSION_1_2) + random + b"\x00"  # empty session id
    body += bytes.fromhex("c02b") + b"\x00"  # chosen suite, null compression
    handshake = struct.pack("!B", TLS_SERVER_HELLO) + struct.pack("!I", len(body))[1:] + body
    return struct.pack("!BHH", TLS_HANDSHAKE, TLS_VERSION_1_2, len(handshake)) + handshake


def extract_sni(stream: bytes) -> str | None:
    """Extract the SNI hostname from the start of a TLS byte stream.

    Returns None when the stream does not begin with a parseable ClientHello
    carrying an SNI extension.  Tolerates truncated streams (returns None)
    rather than raising — DPI engines must not crash on partial handshakes.
    """
    if len(stream) < 9 or stream[0] != TLS_HANDSHAKE:
        return None
    record_len = struct.unpack("!H", stream[3:5])[0]
    record = stream[5 : 5 + record_len]
    if len(record) < 4 or record[0] != TLS_CLIENT_HELLO:
        return None
    body = record[4:]
    try:
        pos = 2 + 32  # version + random
        session_len = body[pos]
        pos += 1 + session_len
        suites_len = struct.unpack("!H", body[pos : pos + 2])[0]
        pos += 2 + suites_len
        compression_len = body[pos]
        pos += 1 + compression_len
        if pos + 2 > len(body):
            return None
        ext_total = struct.unpack("!H", body[pos : pos + 2])[0]
        pos += 2
        end = min(pos + ext_total, len(body))
        while pos + 4 <= end:
            ext_type, ext_len = struct.unpack("!HH", body[pos : pos + 4])
            pos += 4
            if ext_type == SNI_EXTENSION:
                if pos + 2 > len(body):
                    return None
                entry_pos = pos + 2
                if entry_pos + 3 > len(body):
                    return None
                name_len = struct.unpack("!H", body[entry_pos + 1 : entry_pos + 3])[0]
                name = body[entry_pos + 3 : entry_pos + 3 + name_len]
                if len(name) != name_len:
                    return None
                return name.decode("ascii", errors="replace")
            pos += ext_len
    except (IndexError, struct.error):
        return None
    return None


def tls_trace(server_name: str, server_port: int = 443, name: str | None = None) -> Trace:
    """A TLS handshake dialogue: ClientHello then ServerHello."""
    return Trace(
        name=name or server_name,
        protocol="tcp",
        server_port=server_port,
        packets=[
            TracePacket(
                direction=Direction.CLIENT_TO_SERVER, payload=client_hello(server_name), time=0.0
            ),
            TracePacket(direction=Direction.SERVER_TO_CLIENT, payload=server_hello(), time=0.04),
        ],
        metadata={"application": "tls", "sni": server_name},
    )
