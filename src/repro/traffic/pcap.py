"""PCAP export/import for simulated captures.

A :class:`~repro.netsim.element.PacketTap` placed on a path records every
packet with virtual-clock timestamps; this module serializes those captures
to standard pcap files (LINKTYPE_RAW — raw IPv4) so they can be opened in
Wireshark/tcpdump for debugging, and reads them back for tests.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.netsim.element import PacketTap
from repro.packets.batch import serialize_batch

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_RAW = 101  # raw IP packets, no link-layer header
DEFAULT_SNAPLEN = 65_535


def write_pcap(path: str | Path, records: list[tuple[float, bytes]]) -> int:
    """Write (timestamp, raw-IP-bytes) records to *path*; returns the count.

    Timestamps are virtual-clock seconds; they land in the pcap as seconds +
    microseconds since the epoch, preserving relative timing.
    """
    out = bytearray()
    out += struct.pack(
        "!IHHiIII",
        PCAP_MAGIC,
        PCAP_VERSION[0],
        PCAP_VERSION[1],
        0,  # thiszone
        0,  # sigfigs
        DEFAULT_SNAPLEN,
        LINKTYPE_RAW,
    )
    for timestamp, raw in records:
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        captured = raw[:DEFAULT_SNAPLEN]
        out += struct.pack("!IIII", seconds, micros, len(captured), len(raw))
        out += captured
    Path(path).write_bytes(bytes(out))
    return len(records)


def read_pcap(path: str | Path) -> list[tuple[float, bytes]]:
    """Read a pcap written by :func:`write_pcap` (big-endian, raw-IP)."""
    data = Path(path).read_bytes()
    if len(data) < 24:
        raise ValueError("truncated pcap header")
    magic, major, minor, _zone, _sigfigs, _snaplen, linktype = struct.unpack(
        "!IHHiIII", data[:24]
    )
    if magic != PCAP_MAGIC:
        raise ValueError(f"unsupported pcap magic {magic:#x}")
    if linktype != LINKTYPE_RAW:
        raise ValueError(f"unsupported linktype {linktype}")
    records = []
    position = 24
    while position + 16 <= len(data):
        seconds, micros, captured_len, _original_len = struct.unpack(
            "!IIII", data[position : position + 16]
        )
        position += 16
        payload = data[position : position + captured_len]
        if len(payload) != captured_len:
            raise ValueError("truncated pcap record")
        position += captured_len
        records.append((seconds + micros / 1_000_000, payload))
    return records


def tap_to_pcap(tap: PacketTap, path: str | Path) -> int:
    """Serialize everything a :class:`PacketTap` saw into a pcap file."""
    tap_records = tap.records
    wires = serialize_batch([record.packet for record in tap_records], lenient=True)
    records = [
        (record.time, wire)
        for record, wire in zip(tap_records, wires)
        if wire is not None  # a deliberately unserializable crafted packet
    ]
    return write_pcap(path, records)
