"""The recorded-traffic format lib·erate replays and transforms.

A :class:`Trace` is an application-layer dialogue: a sequence of payloads
with directions and relative timestamps, plus the transport protocol and
server port.  This corresponds to step (1) of the paper's implementation
(Figure 3): application traffic is recorded once, then replayed — verbatim,
bit-inverted, blinded, or transformed by an evasion technique.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field, replace
from pathlib import Path as FilePath

from repro.endpoint.apps import ReplayStep
from repro.packets.flow import Direction


def invert_bits(payload: bytes) -> bytes:
    """Invert every bit of *payload*.

    This is lib·erate's "control" transformation (§5.1): deterministic,
    guaranteed to differ from the recorded trace at every bit, and free of
    the accidental keyword matches random payloads can produce.
    """
    return bytes((~b) & 0xFF for b in payload)


@dataclass(slots=True)
class TracePacket:
    """One application payload in a recorded dialogue.

    Attributes:
        direction: who sent it (client→server or server→client).
        payload: the application bytes.
        time: seconds since the start of the dialogue.
    """

    direction: Direction
    payload: bytes
    time: float = 0.0

    def inverted(self) -> "TracePacket":
        """A copy with every payload bit inverted."""
        return replace(self, payload=invert_bits(self.payload))


@dataclass
class Trace:
    """A recorded application dialogue ready for replay.

    Attributes:
        name: human-readable label ("youtube", "economist.com", ...).
        protocol: "tcp" or "udp".
        server_port: the destination port the application used.
        packets: the dialogue, in time order.
        metadata: free-form annotations (e.g. which program zero-rates it).
    """

    name: str
    protocol: str
    server_port: int
    packets: list[TracePacket] = field(default_factory=list)
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.protocol not in ("tcp", "udp"):
            raise ValueError(f"unsupported protocol {self.protocol!r}")
        if not 0 < self.server_port <= 0xFFFF:
            raise ValueError(f"invalid server port {self.server_port}")

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def client_payloads(self) -> list[bytes]:
        """The client→server payloads, in order."""
        return [
            p.payload for p in self.packets if p.direction is Direction.CLIENT_TO_SERVER
        ]

    def server_payloads(self) -> list[bytes]:
        """The server→client payloads, in order."""
        return [
            p.payload for p in self.packets if p.direction is Direction.SERVER_TO_CLIENT
        ]

    def client_bytes(self) -> bytes:
        """The concatenated client→server byte stream."""
        return b"".join(self.client_payloads())

    def server_bytes(self) -> bytes:
        """The concatenated server→client byte stream."""
        return b"".join(self.server_payloads())

    def total_bytes(self) -> int:
        """Total application bytes in both directions."""
        return sum(len(p.payload) for p in self.packets)

    def replay_steps(self) -> list[ReplayStep]:
        """Derive the server-side script: respond after N client bytes.

        Each server payload fires once the cumulative client byte count
        reaches what the recording saw before that payload — the same
        content-independent trigger the paper's replay servers use.
        """
        steps: list[ReplayStep] = []
        client_total = 0
        for packet in self.packets:
            if packet.direction is Direction.CLIENT_TO_SERVER:
                client_total += len(packet.payload)
            else:
                steps.append(
                    ReplayStep(client_bytes_threshold=client_total, response=packet.payload)
                )
        return steps

    def udp_response_script(self) -> dict[int, list[bytes]]:
        """Derive the UDP server script: responses keyed by client-datagram index."""
        script: dict[int, list[bytes]] = {}
        client_count = 0
        for packet in self.packets:
            if packet.direction is Direction.CLIENT_TO_SERVER:
                client_count += 1
            else:
                script.setdefault(max(client_count - 1, 0), []).append(packet.payload)
        return script

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def inverted(self) -> "Trace":
        """The bit-inverted control trace (both directions inverted)."""
        return replace(
            self,
            name=f"{self.name}:inverted",
            packets=[p.inverted() for p in self.packets],
        )

    def with_client_payloads(self, payloads: list[bytes], name: str | None = None) -> "Trace":
        """A copy whose client→server payloads are replaced positionally.

        Used by the characterization phase to replay blinded variants; the
        number of client payloads must match the original.
        """
        originals = [
            i for i, p in enumerate(self.packets) if p.direction is Direction.CLIENT_TO_SERVER
        ]
        if len(payloads) != len(originals):
            raise ValueError("payload count mismatch")
        new_packets = list(self.packets)
        for index, payload in zip(originals, payloads):
            new_packets[index] = replace(new_packets[index], payload=payload)
        return replace(self, name=name or f"{self.name}:blinded", packets=new_packets)

    def with_server_payloads(self, payloads: list[bytes], name: str | None = None) -> "Trace":
        """A copy whose server→client payloads are replaced positionally.

        Characterization uses this to blind server-side content — AT&T's
        classifier matches ``Content-Type: video`` in responses (§6.3).
        """
        originals = [
            i for i, p in enumerate(self.packets) if p.direction is Direction.SERVER_TO_CLIENT
        ]
        if len(payloads) != len(originals):
            raise ValueError("payload count mismatch")
        new_packets = list(self.packets)
        for index, payload in zip(originals, payloads):
            new_packets[index] = replace(new_packets[index], payload=payload)
        return replace(self, name=name or f"{self.name}:server-blinded", packets=new_packets)

    def with_server_port(self, port: int) -> "Trace":
        """A copy aimed at a different server port (the port-change evasion)."""
        return replace(self, server_port=port)

    def prepend_client_payloads(self, payloads: list[bytes], name: str | None = None) -> "Trace":
        """A copy with extra client payloads inserted before the dialogue.

        This is the §4.2 probe that reveals packet-position-limited
        classifiers and match-and-forget behaviour.
        """
        prefix = [
            TracePacket(direction=Direction.CLIENT_TO_SERVER, payload=p, time=0.0)
            for p in payloads
        ]
        return replace(
            self, name=name or f"{self.name}:prepended", packets=prefix + list(self.packets)
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON document."""
        return json.dumps(
            {
                "name": self.name,
                "protocol": self.protocol,
                "server_port": self.server_port,
                "metadata": self.metadata,
                "packets": [
                    {
                        "direction": str(p.direction),
                        "time": p.time,
                        "payload": base64.b64encode(p.payload).decode("ascii"),
                    }
                    for p in self.packets
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, document: str) -> "Trace":
        """Parse a trace previously produced by :meth:`to_json`."""
        data = json.loads(document)
        return cls(
            name=data["name"],
            protocol=data["protocol"],
            server_port=data["server_port"],
            metadata=data.get("metadata", {}),
            packets=[
                TracePacket(
                    direction=Direction(p["direction"]),
                    time=p.get("time", 0.0),
                    payload=base64.b64decode(p["payload"]),
                )
                for p in data["packets"]
            ],
        )

    def save(self, path: str | FilePath) -> None:
        """Write the trace to *path* as JSON."""
        FilePath(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | FilePath) -> "Trace":
        """Read a trace from a JSON file."""
        return cls.from_json(FilePath(path).read_text())
