"""QUIC-shaped UDP traffic (§6.2 footnote 10).

"YouTube flows using QUIC (an application-layer transport built atop UDP)
are not classified or zero rated by T-Mobile" — and the GFC did not classify
UDP either, so "users can view otherwise censored content on YouTube simply
by using the QUIC protocol" (§6.5).  This module generates structurally
plausible QUIC Initial packets (long header, version 1) so those findings
can be demonstrated: the SNI equivalent hides inside an encrypted CRYPTO
payload no keyword rule can see.
"""

from __future__ import annotations

import struct

from repro.packets.flow import Direction
from repro.traffic.trace import Trace, TracePacket

QUIC_VERSION_1 = 0x00000001
LONG_HEADER_INITIAL = 0xC0  # long header form + fixed bit, type Initial


def quic_initial(
    dcid: bytes = b"\x11\x22\x33\x44\x55\x66\x77\x88",
    scid: bytes = b"\xaa\xbb\xcc\xdd",
    payload_size: int = 1200,
    seed: int = 0x51,
) -> bytes:
    """A QUIC v1 Initial packet with an opaque (encrypted-looking) payload.

    Real QUIC Initials are padded to at least 1200 bytes; the payload here
    is a deterministic pseudo-random byte stream — exactly what a DPI
    keyword matcher sees in genuine QUIC, since even the Initial's CRYPTO
    frames are encrypted with connection-derived keys.
    """
    header = bytes([LONG_HEADER_INITIAL])
    header += struct.pack("!I", QUIC_VERSION_1)
    header += bytes([len(dcid)]) + dcid
    header += bytes([len(scid)]) + scid
    header += b"\x00"  # token length (varint 0)
    body_len = max(payload_size - len(header) - 2, 16)
    header += struct.pack("!H", 0x4000 | body_len)  # 2-byte varint length
    state = seed or 1
    body = bytearray()
    for _ in range(body_len):
        state = (state * 1_103_515_245 + 12_345) & 0x7FFFFFFF
        body.append(state & 0xFF)
    return header + bytes(body)


def is_quic_initial(payload: bytes) -> bool:
    """Structural check: does this datagram look like a QUIC v1 Initial?"""
    if len(payload) < 7:
        return False
    if payload[0] & 0xC0 != 0xC0:
        return False
    version = struct.unpack("!I", payload[1:5])[0]
    return version == QUIC_VERSION_1


def quic_video_trace(
    total_bytes: int = 100_000, server_port: int = 443, name: str = "youtube-quic"
) -> Trace:
    """A QUIC video session: Initial exchange, then opaque media datagrams."""
    packets = [
        TracePacket(Direction.CLIENT_TO_SERVER, quic_initial(seed=0x51), 0.0),
        TracePacket(Direction.SERVER_TO_CLIENT, quic_initial(seed=0x52), 0.02),
    ]
    t = 0.02
    sent = 0
    chunk_index = 0
    while sent < total_bytes:
        t += 0.002
        chunk = quic_initial(payload_size=1200, seed=0x100 + chunk_index)
        chunk_index += 1
        packets.append(TracePacket(Direction.SERVER_TO_CLIENT, chunk, t))
        sent += len(chunk)
    return Trace(
        name=name,
        protocol="udp",
        server_port=server_port,
        packets=packets,
        metadata={"application": "quic-video"},
    )
