"""STUN message generation (the Skype/UDP workload).

The testbed classifier identified Skype by the ``MS-SERVICE-QUALITY``
attribute (type 0x8055) in the first STUN packet from the client (§6.1).
We build RFC 5389 binding requests carrying that Microsoft vendor attribute.
"""

from __future__ import annotations

import struct

from repro.packets.flow import Direction
from repro.traffic.trace import Trace, TracePacket

STUN_BINDING_REQUEST = 0x0001
STUN_BINDING_RESPONSE = 0x0101
STUN_MAGIC_COOKIE = 0x2112A442
ATTR_MS_SERVICE_QUALITY = 0x8055
ATTR_SOFTWARE = 0x8022
ATTR_XOR_MAPPED_ADDRESS = 0x0020


def _attribute(attr_type: int, value: bytes) -> bytes:
    padded = value + b"\x00" * ((4 - len(value) % 4) % 4)
    return struct.pack("!HH", attr_type, len(value)) + padded


def stun_message(message_type: int, attributes: bytes, transaction_id: bytes) -> bytes:
    """Assemble a STUN message with the RFC 5389 magic cookie."""
    if len(transaction_id) != 12:
        raise ValueError("STUN transaction id must be 12 bytes")
    header = struct.pack("!HHI", message_type, len(attributes), STUN_MAGIC_COOKIE)
    return header + transaction_id + attributes


def stun_binding_request(
    transaction_id: bytes = b"liberate-txn",
    include_service_quality: bool = True,
) -> bytes:
    """A binding request, optionally carrying MS-SERVICE-QUALITY (0x8055)."""
    attributes = _attribute(ATTR_SOFTWARE, b"Skype")
    if include_service_quality:
        # stream kind (audio=1), quality level (best-effort=1)
        attributes += _attribute(ATTR_MS_SERVICE_QUALITY, struct.pack("!HH", 1, 1))
    return stun_message(STUN_BINDING_REQUEST, attributes, transaction_id)


def stun_binding_response(transaction_id: bytes = b"liberate-txn") -> bytes:
    """A binding response echoing the transaction id."""
    mapped = _attribute(ATTR_XOR_MAPPED_ADDRESS, struct.pack("!BBH4s", 0, 1, 0, b"\x00" * 4))
    return stun_message(STUN_BINDING_RESPONSE, mapped, transaction_id)


def parse_stun_attributes(payload: bytes) -> dict[int, bytes] | None:
    """Parse the attributes of a STUN message, or None when not STUN.

    Used by the DPI engine — recognition requires the magic cookie, matching
    how the testbed device keyed on STUN structure.
    """
    if len(payload) < 20:
        return None
    _mtype, length, cookie = struct.unpack("!HHI", payload[:8])
    if cookie != STUN_MAGIC_COOKIE:
        return None
    attributes: dict[int, bytes] = {}
    body = payload[20 : 20 + length]
    pos = 0
    while pos + 4 <= len(body):
        attr_type, attr_len = struct.unpack("!HH", body[pos : pos + 4])
        pos += 4
        value = body[pos : pos + attr_len]
        if len(value) != attr_len:
            break
        attributes[attr_type] = value
        pos += attr_len + ((4 - attr_len % 4) % 4)
    return attributes


def stun_trace(server_port: int = 3478, name: str = "skype") -> Trace:
    """A Skype-like UDP dialogue: STUN binding plus media-ish packets.

    The classified attribute sits in the first client packet, matching the
    testbed finding that matching fields lie within the first six packets.
    """
    media = [bytes([0x80, 0x60 + i, 0, i]) + bytes(range(i, i + 24)) for i in range(4)]
    packets = [
        TracePacket(Direction.CLIENT_TO_SERVER, stun_binding_request(), time=0.0),
        TracePacket(Direction.SERVER_TO_CLIENT, stun_binding_response(), time=0.02),
        TracePacket(Direction.CLIENT_TO_SERVER, media[0], time=0.05),
        TracePacket(Direction.SERVER_TO_CLIENT, media[1], time=0.07),
        TracePacket(Direction.CLIENT_TO_SERVER, media[2], time=0.09),
        TracePacket(Direction.CLIENT_TO_SERVER, media[3], time=0.11),
    ]
    return Trace(
        name=name,
        protocol="udp",
        server_port=server_port,
        packets=packets,
        metadata={"application": "skype"},
    )
