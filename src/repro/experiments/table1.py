"""Table 1 — comparison between lib·erate and other classifier-evasion methods.

The related-work rows are literature facts (paper Table 1); the lib·erate
row is *derived from the implementation*: the harness checks which
capabilities the taxonomy actually provides (per-category technique
presence, O(1) per-flow overhead, client-only deployment) so the row stays
honest as the code evolves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evasion import ALL_TECHNIQUES
from repro.core.evasion.base import EvasionContext
from repro.experiments.paper_expectations import TABLE1_ROWS

COLUMNS = (
    "method",
    "overhead",
    "client_only",
    "app_agnostic",
    "rule_detection",
    "split_reorder",
    "inert_injection",
    "flushing",
    "validated_in_wild",
)


@dataclass
class Table1Row:
    """One comparison row."""

    method: str
    overhead: str
    client_only: bool
    app_agnostic: bool
    rule_detection: bool
    split_reorder: bool
    inert_injection: bool
    flushing: bool
    validated_in_wild: bool | None


def liberate_row() -> Table1Row:
    """Derive lib·erate's row from the implemented taxonomy."""
    categories = {t.category for t in ALL_TECHNIQUES}
    ctx = EvasionContext()
    overheads = [t.estimated_overhead(ctx) for t in ALL_TECHNIQUES]
    constant_overhead = all(o.packets <= 16 for o in overheads)  # O(1), not O(n)
    return Table1Row(
        method="liberate",
        overhead="O(1)" if constant_overhead else "O(n)",
        client_only=True,  # the raw client transforms traffic unilaterally
        app_agnostic=True,  # transforms operate below the application layer
        rule_detection=True,  # repro.core.characterization exists and works
        split_reorder={"splitting", "reordering"} <= categories,
        inert_injection="inert-insertion" in categories,
        flushing="flushing" in categories,
        validated_in_wild=True,  # §6's operational-network case studies
    )


def run_table1() -> list[Table1Row]:
    """The full comparison matrix: literature rows plus the derived one."""
    rows = [
        Table1Row(*values)
        for values in TABLE1_ROWS
        if values[0] != "liberate"
    ]
    rows.append(liberate_row())
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render the matrix in the paper's layout."""

    def mark(value: bool | None) -> str:
        if value is None:
            return "n/a"
        return "yes" if value else "no"

    header = (
        f"{'Method':18s} {'Ovh':5s} {'Client':7s} {'AppAgn':7s} {'Rules':6s} "
        f"{'Split':6s} {'Inert':6s} {'Flush':6s} {'Wild':5s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.method:18s} {row.overhead:5s} {mark(row.client_only):7s} "
            f"{mark(row.app_agnostic):7s} {mark(row.rule_detection):6s} "
            f"{mark(row.split_reorder):6s} {mark(row.inert_injection):6s} "
            f"{mark(row.flushing):6s} {mark(row.validated_in_wild):5s}"
        )
    return "\n".join(lines)
