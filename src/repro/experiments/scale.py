"""Million-flow churn workload: bounded flow-state under sustained load.

Figure 4's busy-hour flushing is the paper's visible symptom of classifier
resource pressure ("classification results being flushed due to scarce
resources").  This experiment drives that regime directly: a seeded
generator churns far more flows through a :class:`DPIMiddlebox` than its
flow table can hold, so every bounded-state mechanism runs hot —

* slab/LRU capacity eviction (``max_flows``),
* byte-budget shedding (``flow_byte_budget``),
* timer-wheel batch expiry (idle flows aged past their flush timeout),
* admission load-shedding (an :class:`OverloadPolicy`, when enabled).

Everything is deterministic: flow endpoints derive from the flow index,
match/no-match alternation from a seeded hash, and time from a
:class:`VirtualClock`.  The same config always produces the same counters.

The module doubles as a standalone script so memory-flatness checks can run
each configuration in its *own process*::

    PYTHONPATH=src python -m repro.experiments.scale --flows 200000 --json

Peak RSS (``ru_maxrss``) is process-lifetime-monotonic, so "RSS stays flat
when flows grow 10x" is only measurable across separate processes; the
JSON output exists for exactly that comparison (see the scale-smoke CI job
and ``tests/test_scale.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import zlib
from dataclasses import asdict, dataclass

from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.overload import OverloadPolicy
from repro.middlebox.policy import RulePolicy
from repro.middlebox.rules import MatchRule
from repro.middlebox.validation import MiddleboxValidation
from repro.netsim.clock import VirtualClock
from repro.netsim.element import TransitContext
from repro.netsim.shaper import PolicyState
from repro.obs import profiling as obs_profiling
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment

SERVER = "203.0.113.50"
SERVER_PORT = 80

#: The keyword carried by matching flows (same shape as the testbed rule).
MATCH_KEYWORD = b"video.example.com"

#: Matching flows send this request head; the keyword sits mid-payload as
#: an HTTP Host header would.
MATCH_PAYLOAD = b"GET /stream HTTP/1.1\r\nHost: " + MATCH_KEYWORD + b"\r\n\r\n"
NEUTRAL_PAYLOAD = b"GET /other HTTP/1.1\r\nHost: cdn.example.net\r\n\r\n"


@dataclass(frozen=True)
class ScaleConfig:
    """One churn run, fully determined by its fields.

    Attributes:
        flows: distinct flows pushed through the engine.
        packets_per_flow: payload packets per flow after its SYN.
        filler_bytes: extra payload padding per data packet (drives the
            byte budget when one is set).
        match_every: one flow in this many carries :data:`MATCH_KEYWORD`.
        revisit_window: after creating flow *i*, flow ``i - window`` gets
            one more packet — keeps the LRU chain genuinely reordered
            instead of pure FIFO.
        max_flows: engine flow-table capacity.
        flow_byte_budget: optional scan-buffer byte bound across flows.
        shed: enable the engine's :class:`OverloadPolicy` admission shedding.
        shed_seed: deterministic coin seed for the shedder.
        pre_match_timeout / post_match_timeout: engine flush timeouts; both
            constant, so expiry runs on the timer wheel.
        packet_interval: virtual seconds between packets.
        idle_every / idle_seconds: every *idle_every* flows the clock jumps
            *idle_seconds* forward, batch-expiring everything idle past its
            timeout (the timer wheel's busy/quiet rhythm).
    """

    flows: int = 100_000
    packets_per_flow: int = 2
    filler_bytes: int = 0
    match_every: int = 8
    revisit_window: int = 64
    max_flows: int = 8_192
    flow_byte_budget: int | None = None
    shed: bool = False
    shed_seed: int = 0x5EED
    pre_match_timeout: float = 30.0
    post_match_timeout: float = 60.0
    packet_interval: float = 0.0005
    idle_every: int = 50_000
    idle_seconds: float = 120.0


@dataclass
class ScaleResult:
    """Counters from one churn run (all seeded-deterministic but RSS)."""

    config: ScaleConfig
    packets: int
    flows_offered: int
    flows_admitted: int
    matches: int
    evictions: int
    sheds: int
    expired: int
    peak_tracked_flows: int
    tracked_flows_end: int
    virtual_seconds: float
    peak_rss_kb: int | None

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["config"] = asdict(self.config)
        return payload


def _flow_endpoint(index: int) -> tuple[str, int]:
    """The (src, sport) for flow *index* — unique across 2**26 flows."""
    third = (index >> 9) & 0xFF
    second = (index >> 17) & 0xFF
    host = 2 + (index & 0x1FF) % 250
    sport = 10_000 + (index * 7) % 50_000
    return f"10.{second}.{third}.{host}", sport


def _is_match_flow(index: int, every: int) -> bool:
    """Seeded decision: does flow *index* carry the keyword?"""
    if every <= 0:
        return False
    return zlib.crc32(index.to_bytes(8, "big")) % every == 0


def build_engine(config: ScaleConfig) -> tuple[DPIMiddlebox, PolicyState]:
    """The engine under test, configured from *config*."""
    policy = PolicyState()
    overload = (
        OverloadPolicy(seed=config.shed_seed) if config.shed else None
    )
    engine = DPIMiddlebox(
        name="scale-dpi",
        rules=[
            MatchRule(
                name="video",
                keywords=[MATCH_KEYWORD],
                policy=RulePolicy.throttle(1_500_000),
            )
        ],
        policy_state=policy,
        validation=MiddleboxValidation.lax(),
        reassembly=ReassemblyMode.PER_PACKET,
        inspect_packet_limit=4,
        match_and_forget=True,
        require_protocol_anchor=True,
        track_flows=True,
        pre_match_timeout=config.pre_match_timeout,
        post_match_timeout=config.post_match_timeout,
        max_flows=config.max_flows,
        flow_byte_budget=config.flow_byte_budget,
        overload=overload,
    )
    return engine, policy


def run_scale(config: ScaleConfig) -> ScaleResult:
    """Run the churn workload; returns the deterministic counter summary."""
    engine, _policy = build_engine(config)
    # Diagnostics stay bounded too: the match log becomes a fixed-size ring
    # (old entries fall off) while `matches_logged` keeps the exact total.
    engine.bound_flow_state(config.max_flows, match_log_bound=4_096)
    clock = VirtualClock()
    sink: list[IPPacket] = []
    ctx = TransitContext(clock=clock, inject_back=sink.append, inject_forward=sink.append)

    packets = 0
    expired_base = 0
    peak_tracked = 0
    data_flags = TCPFlags.ACK | TCPFlags.PSH
    filler = b"x" * config.filler_bytes

    def send(src: str, sport: int, seq: int, flags: TCPFlags, payload: bytes = b"") -> None:
        nonlocal packets
        segment = TCPSegment(
            sport=sport, dport=SERVER_PORT, seq=seq, ack=1, flags=flags, payload=payload
        )
        clock.advance(config.packet_interval)
        engine.process(
            IPPacket(src=src, dst=SERVER, transport=segment), Direction.CLIENT_TO_SERVER, ctx
        )
        packets += 1
        sink.clear()

    with obs_profiling.stage("scale.churn"):
        for index in range(config.flows):
            src, sport = _flow_endpoint(index)
            payload = (
                MATCH_PAYLOAD if _is_match_flow(index, config.match_every) else NEUTRAL_PAYLOAD
            )
            if filler:
                payload = payload + filler
            send(src, sport, 1_000, TCPFlags.SYN)
            for step in range(config.packets_per_flow):
                send(src, sport, 1_001 + step * len(payload), data_flags, payload)
            if config.revisit_window and index >= config.revisit_window:
                back_src, back_sport = _flow_endpoint(index - config.revisit_window)
                send(back_src, back_sport, 5_000_000, data_flags, b"tail")
            tracked = len(engine._flows)
            if tracked > peak_tracked:
                peak_tracked = tracked
            if config.idle_every and (index + 1) % config.idle_every == 0:
                before = len(engine._flows)
                clock.advance(config.idle_seconds)
                send(*_flow_endpoint(index + config.flows), 1_000, TCPFlags.SYN)
                expired_base += max(0, before - len(engine._flows) + 1)

    matches = engine.matches_logged

    return ScaleResult(
        config=config,
        packets=packets,
        flows_offered=config.flows,
        flows_admitted=config.flows - engine.sheds,
        matches=matches,
        evictions=engine.evictions,
        sheds=engine.sheds,
        expired=expired_base,
        peak_tracked_flows=peak_tracked,
        tracked_flows_end=len(engine._flows),
        virtual_seconds=round(clock.now, 6),
        peak_rss_kb=obs_profiling.peak_rss_kb(),
    )


def format_scale(result: ScaleResult) -> str:
    """A terminal summary table of one churn run."""
    cfg = result.config
    lines = [
        "scale: bounded flow-state churn",
        f"  flows offered     {result.flows_offered:>12,}",
        f"  flows admitted    {result.flows_admitted:>12,}",
        f"  packets           {result.packets:>12,}",
        f"  matches           {result.matches:>12,}",
        f"  evictions         {result.evictions:>12,}",
        f"  sheds             {result.sheds:>12,}",
        f"  batch-expired     {result.expired:>12,}",
        f"  peak tracked      {result.peak_tracked_flows:>12,}  (capacity {cfg.max_flows:,})",
        f"  tracked at end    {result.tracked_flows_end:>12,}",
        f"  virtual time      {result.virtual_seconds:>12,.1f}s",
    ]
    if result.peak_rss_kb is not None:
        lines.append(f"  peak RSS          {result.peak_rss_kb:>12,} KiB")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point for per-process memory measurements."""
    parser = argparse.ArgumentParser(
        prog="scale", description="bounded flow-state churn workload"
    )
    parser.add_argument("--flows", type=int, default=ScaleConfig.flows)
    parser.add_argument("--packets-per-flow", type=int, default=ScaleConfig.packets_per_flow)
    parser.add_argument("--filler-bytes", type=int, default=ScaleConfig.filler_bytes)
    parser.add_argument("--max-flows", type=int, default=ScaleConfig.max_flows)
    parser.add_argument("--byte-budget", type=int, default=None)
    parser.add_argument("--shed", action="store_true")
    parser.add_argument("--seed", type=int, default=ScaleConfig.shed_seed)
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    args = parser.parse_args(argv)
    config = ScaleConfig(
        flows=args.flows,
        packets_per_flow=args.packets_per_flow,
        filler_bytes=args.filler_bytes,
        max_flows=args.max_flows,
        flow_byte_budget=args.byte_budget,
        shed=args.shed,
        shed_seed=args.seed,
    )
    result = run_scale(config)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_scale(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
