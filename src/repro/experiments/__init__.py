"""Experiment harnesses that regenerate every table and figure in the paper.

| Module | Paper artifact |
|---|---|
| :mod:`repro.experiments.table1` | Table 1 — comparison with related evasion methods |
| :mod:`repro.experiments.table2` | Table 2 — technique overhead model |
| :mod:`repro.experiments.table3` | Table 3 — per-technique effectiveness matrix |
| :mod:`repro.experiments.figure4` | Figure 4 — GFC flushing vs. time of day |
| :mod:`repro.experiments.efficiency` | §6.1–6.6 — characterization efficiency |
| :mod:`repro.experiments.throughput` | §6.2 — T-Mobile throughput with/without lib·erate |
| :mod:`repro.experiments.sprint` | §6.4 — Sprint shows no DPI |
| :mod:`repro.experiments.ablation` | DESIGN.md §6 — design-choice ablations |

Each module exposes a ``run_*`` function returning plain data plus a
``format_*`` helper that renders the paper-style table; the pytest-benchmark
suite under ``benchmarks/`` wraps these.
"""

from repro.experiments import paper_expectations

__all__ = ["paper_expectations"]
