"""Congestion: many flows interleaved on one path in virtual-time order.

Figure 4 measures one flow at a time — the nested-call driver could not do
anything else, because a send ran its whole frame (and every response) to
completion before the next send could start.  With the event-scheduler
core, flows are *scheduled*: each packet is an event with a virtual-time
deadline, and the drain interleaves thousands of flows exactly as their
arrival times dictate.  This experiment is the first workload written
natively against that API: N staggered flows share one environment's path,
every packet scheduled via :meth:`~repro.netsim.path.Path.schedule_from_client`,
and the drain delivers them in global ``(deadline, seq)`` order.

The headline metric is the *interleaving ratio*: the fraction of adjacent
server-side deliveries that belong to different flows.  The per-packet
driver is structurally stuck at ~0 (one flow fully delivered, then the
next); an event-core run with overlapping schedules approaches 1.  The
report also carries per-flow completion spread and the scheduler's own
counters, so regressions in drain fairness are visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.scheduler import EventScheduler
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPSegment

__all__ = [
    "CongestionConfig",
    "CongestionResult",
    "run_congestion",
    "format_congestion",
]


@dataclass(frozen=True)
class CongestionConfig:
    """Shape of the interleaved-flow workload.

    Attributes:
        flows: concurrent client flows sharing the path.
        packets_per_flow: payload packets each flow sends.
        payload_bytes: padding appended to every request (drives shapers).
        spacing: virtual seconds between one flow's consecutive packets.
        stagger: arrival offset between consecutive flows' first packets.
            ``stagger < spacing`` forces flows to overlap in time.
        env_name: environment to congest (its classifier/shaper apply).
        host: hostname carried in every request (classified hosts exercise
            the throttle path on THROUGHPUT-signal environments).
    """

    flows: int = 50
    packets_per_flow: int = 4
    payload_bytes: int = 400
    spacing: float = 0.004
    stagger: float = 0.001
    env_name: str = "tmobile"
    host: str = "video.example.com"

    def __post_init__(self) -> None:
        if self.flows < 1 or self.packets_per_flow < 1:
            raise ValueError("need at least one flow and one packet per flow")
        if self.spacing < 0 or self.stagger < 0:
            raise ValueError("spacing and stagger cannot be negative")


@dataclass
class CongestionResult:
    """What one congestion run observed."""

    config: CongestionConfig
    packets_scheduled: int = 0
    packets_delivered: int = 0
    flows_completed: int = 0
    interleavings: int = 0
    virtual_duration: float = 0.0
    first_completion: float = 0.0
    last_completion: float = 0.0
    scheduler_fired: int = 0
    scheduler_max_pending: int = 0
    per_flow_delivered: dict[int, int] = field(default_factory=dict)

    @property
    def interleave_ratio(self) -> float:
        """Adjacent server deliveries from *different* flows, 0..1."""
        if self.packets_delivered < 2:
            return 0.0
        return self.interleavings / (self.packets_delivered - 1)

    def as_dict(self) -> dict[str, object]:
        return {
            "flows": self.config.flows,
            "packets_per_flow": self.config.packets_per_flow,
            "env": self.config.env_name,
            "packets_scheduled": self.packets_scheduled,
            "packets_delivered": self.packets_delivered,
            "flows_completed": self.flows_completed,
            "interleave_ratio": round(self.interleave_ratio, 4),
            "virtual_duration": round(self.virtual_duration, 6),
            "completion_spread": round(self.last_completion - self.first_completion, 6),
            "scheduler_fired": self.scheduler_fired,
            "scheduler_max_pending": self.scheduler_max_pending,
        }


class _FlowJournal:
    """Server endpoint recording (flow, time) per delivery, keeping no payloads."""

    def __init__(self, scheduler: EventScheduler) -> None:
        self.scheduler = scheduler
        self.deliveries: list[tuple[int, float]] = []

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        sport = packet.tcp.sport if packet.tcp is not None else 0
        self.deliveries.append((sport, self.scheduler.now))
        return []


def _request(flow_port: int, seq: int, config: CongestionConfig, client: str, server: str) -> IPPacket:
    body = (
        f"GET /chunk{seq} HTTP/1.1\r\nHost: {config.host}\r\n\r\n".encode("ascii")
        + b"x" * config.payload_bytes
    )
    return IPPacket(
        src=client,
        dst=server,
        transport=TCPSegment(sport=flow_port, dport=80, payload=body),
    )


def run_congestion(config: CongestionConfig | None = None) -> CongestionResult:
    """Schedule every flow's packets at staggered virtual times and drain.

    Deterministic end to end: the schedule is a pure function of the
    config, and the drain order is the scheduler's ``(deadline, seq)``
    contract — reruns produce identical results.
    """
    from repro.envs import ENVIRONMENT_FACTORIES

    config = config or CongestionConfig()
    env = ENVIRONMENT_FACTORIES[config.env_name]()
    scheduler = env.path.bind_scheduler(
        EventScheduler(env.clock, arm_timeouts=True)
    )
    journal = _FlowJournal(scheduler)
    env.path.server_endpoint = journal

    result = CongestionResult(config=config)
    start = scheduler.now
    for flow in range(config.flows):
        flow_port = env.next_sport()
        result.per_flow_delivered[flow_port] = 0
        arrival = start + flow * config.stagger
        for seq in range(config.packets_per_flow):
            env.path.schedule_from_client(
                _request(flow_port, seq, config, env.client_addr, env.server_addr),
                at=arrival + seq * config.spacing,
            )
            result.packets_scheduled += 1
    env.path.run()

    previous_flow: int | None = None
    for flow_port, when in journal.deliveries:
        result.packets_delivered += 1
        if flow_port in result.per_flow_delivered:
            result.per_flow_delivered[flow_port] += 1
        if previous_flow is not None and flow_port != previous_flow:
            result.interleavings += 1
        previous_flow = flow_port
    result.flows_completed = sum(
        1
        for count in result.per_flow_delivered.values()
        if count == config.packets_per_flow
    )
    if journal.deliveries:
        times = [when for _flow, when in journal.deliveries]
        result.first_completion = min(times)
        result.last_completion = max(times)
    result.virtual_duration = scheduler.now - start
    result.scheduler_fired = scheduler.fired
    result.scheduler_max_pending = scheduler.max_pending
    return result


def format_congestion(result: CongestionResult) -> str:
    """Human-readable congestion report."""
    summary = result.as_dict()
    lines = [
        f"congestion: {summary['flows']} flows x {summary['packets_per_flow']} packets "
        f"through {summary['env']}",
        f"  delivered        {summary['packets_delivered']}/{summary['packets_scheduled']} "
        f"({summary['flows_completed']} flows complete)",
        f"  interleave ratio {summary['interleave_ratio']} "
        "(0 = flows serialized, 1 = fully interleaved)",
        f"  virtual duration {summary['virtual_duration']}s "
        f"(completion spread {summary['completion_spread']}s)",
        f"  scheduler        {summary['scheduler_fired']} events fired, "
        f"max {summary['scheduler_max_pending']} pending",
    ]
    return "\n".join(lines)
