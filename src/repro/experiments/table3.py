"""Table 3 — effectiveness of every evasion technique, everywhere.

For each technique × environment the harness replays the environment's
canonical workload with the technique applied and reports:

* **CC?** — did classification change?  (signal gone, and the payload
  actually traversed the network; for AT&T's terminating proxy, full
  end-to-end integrity is additionally required — breaking the flow is not
  evasion);
* **RS?** — did the crafted packets physically reach the server?

The per-OS "Server Response" columns are produced against the neutral
environment: inert rows report the OS verdict on the crafted packet
(dropped = safe), splitting/reordering/flushing rows report whether the
payload was delivered intact.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.core.evasion import ALL_TECHNIQUES
from repro.core.evasion.base import EvasionContext, EvasionTechnique
from repro.core.evasion.inert import (
    INERT_PAYLOAD_SIZE,
    InertTCPTechnique,
    InertUDPTechnique,
    WrongTCPSequence,
)
from repro.endpoint.osmodel import ALL_OS_PROFILES, OSProfile, Verdict
from repro.endpoint.rawclient import SegmentPlan, packet_from_plan
from repro.envs import ENVIRONMENT_FACTORIES, make_neutral
from repro.envs.base import Environment
from repro.experiments import paper_expectations
from repro.experiments.workloads import PreparedEnvironment, prepare
from repro.netsim.faults import FaultProfile
from repro.obs import coverage as obs_coverage
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace
from repro.packets.udp import UDPDatagram
from repro.packets.ip import IPPacket
from repro.replay.runner import make_inert_payload
from repro.replay.session import ReplayOutcome, ReplaySession
from repro.runtime import RetryPolicy, TaskFailure, WorkerPool

logger = logging.getLogger(__name__)

TABLE3_ENVS = ("testbed", "tmobile", "gfc", "iran", "att")

#: Flushing rows are hour-sensitive on the GFC (Figure 4); the harness pins
#: the clock to a busy hour so the paper's ✓(7) cell is reproducible.
BUSY_HOUR = 13.0


@dataclass
class Table3Cell:
    """One (environment, technique) measurement."""

    cc: str  # "Y", "N", or "-" (baseline not differentiated)
    rs: str  # "Y", "N", or "-"
    outcome: ReplayOutcome | None = None


@dataclass
class Table3Row:
    """One technique across all environments plus the OS columns."""

    technique: str
    category: str
    cells: dict[str, Table3Cell] = field(default_factory=dict)
    os_cells: tuple[str, str, str] | None = None


# ----------------------------------------------------------------------
# main matrix
# ----------------------------------------------------------------------
def run_table3(
    env_names: tuple[str, ...] = TABLE3_ENVS,
    techniques: tuple[EvasionTechnique, ...] = ALL_TECHNIQUES,
    include_os_matrix: bool = True,
    characterize: bool = True,
    pool: WorkerPool | None = None,
    faults: FaultProfile | None = None,
    cell_trials: int | None = None,
    retry: RetryPolicy | None = None,
) -> list[Table3Row]:
    """Measure the full Table 3 matrix.

    The matrix decomposes per environment: each environment's column —
    characterization plus every technique cell, in technique order — is one
    self-contained task (each environment has its own simulator, clock and
    port sequence), so columns run concurrently on a parallel *pool* while
    every per-environment replay sequence stays identical to a serial run.

    *faults* injects a fault profile into every measured environment (the
    neutral OS matrix stays clean — it measures endpoint stacks, not the
    network).  *cell_trials* repeats each technique cell and majority-votes
    the CC/RS verdicts; it defaults to 5 on a faulted run and 1 (the
    historical single replay) otherwise.  *retry* makes column tasks
    resilient: a crashed or timed-out worker is retried by the pool and, if
    it still fails, the column is re-measured serially in-process so one bad
    worker can never sink the whole table.
    """
    if pool is None:
        pool = WorkerPool()
    # Metered runs no longer force the serial backend: the pool ships each
    # worker's metrics-registry snapshot home with its result and merges the
    # dumps in (task index, key) order, so a process-pool run's snapshot is
    # identical to a serial run's (see runtime/pool.py, same guarantee the
    # trace sharder gives).
    if cell_trials is None:
        cell_trials = 5 if faults is not None and not faults.is_zero() else 1
    tasks = [(name, techniques, characterize, faults, cell_trials) for name in env_names]
    if obs_live.BUS is not None:
        obs_live.BUS.emit(
            "exp.start",
            experiment="table3",
            envs=list(env_names),
            techniques=[t.name for t in techniques],
            cells=len(env_names) * len(techniques),
            characterize=characterize,
            fault_seed=faults.seed if faults is not None else None,
        )
    with obs_profiling.stage("table3.columns"):
        results = pool.map(_measure_env_column, tasks, retry=retry)
    columns = []
    for task, result in zip(tasks, results):
        if isinstance(result, TaskFailure):
            logger.warning(
                "column task for %s failed on the pool (%s after %d attempt(s)); "
                "re-measuring serially in-process",
                task[0],
                result.error_type,
                result.attempts,
            )
            try:
                result = _measure_env_column(task)
            except Exception:
                logger.exception("serial re-measure of %s failed; column degraded", task[0])
                result = (task[0], [Table3Cell(cc="?", rs="?") for _ in techniques])
        columns.append(result)
    rows = [Table3Row(technique=t.name, category=t.category) for t in techniques]
    for name, cells in columns:
        for row, cell in zip(rows, cells):
            row.cells[name] = cell
    if include_os_matrix:
        with obs_profiling.stage("table3.os_matrix"):
            os_rows = run_os_matrix(techniques)
        for row in rows:
            row.os_cells = os_rows[row.technique]
    if obs_live.BUS is not None:
        obs_live.BUS.emit(
            "exp.finish",
            experiment="table3",
            cells=sum(len(row.cells) for row in rows),
        )
    return rows


def _measure_env_column(
    task: tuple[str, tuple[EvasionTechnique, ...], bool, FaultProfile | None, int],
) -> tuple[str, list[Table3Cell]]:
    """One environment's full Table 3 column (a worker-pool task)."""
    name, techniques, characterize, faults, cell_trials = task
    if obs_live.BUS is not None:
        obs_live.BUS.emit("cell.start", env=name, phase="prepare")
    prep = prepare(ENVIRONMENT_FACTORIES[name](faults=faults), characterize=characterize)
    cells = []
    for technique in techniques:
        coverage = obs_coverage.COVERAGE
        if coverage is not None:
            # Attribute this cell's rule hits to the (env, technique) matrix
            # slot; the context is thread-local, so parallel env columns on
            # the thread backend cannot cross-attribute.
            with coverage.cell_context(name, technique.name):
                cell = _measure_cell(prep, technique, trials=cell_trials)
        else:
            cell = _measure_cell(prep, technique, trials=cell_trials)
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "table3.cell",
                prep.env.clock.now,
                env=name,
                technique=technique.name,
                cc=cell.cc,
                rs=cell.rs,
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("table3.cells")
        if obs_live.BUS is not None:
            obs_live.BUS.emit(
                "table3.cell",
                env=name,
                technique=technique.name,
                category=technique.category,
                cc=cell.cc,
                rs=cell.rs,
            )
        cells.append(cell)
    if obs_live.BUS is not None:
        obs_live.BUS.emit("cell.finish", env=name, cells=len(cells))
    return name, cells


def _measure_cell(
    prep: PreparedEnvironment, technique: EvasionTechnique, trials: int = 1
) -> Table3Cell:
    """One (environment, technique) cell, majority-voted when *trials* > 1.

    Each trial is a full independent replay (fresh ports, so fresh fault RNG
    streams); the CC and RS verdicts are voted separately over an odd trial
    count, absorbing the occasional trial where loss ate an inert probe.
    """
    if trials <= 1:
        return _measure_cell_once(prep, technique)
    protocol = "udp" if technique.protocol == "udp" else "tcp"
    context = prep.udp_context if protocol == "udp" else prep.tcp_context
    if not technique.applicable(context):
        return Table3Cell(cc="-", rs="-")
    count = trials if trials % 2 else trials + 1
    budget = count + 6
    cells = [_measure_cell_once(prep, technique) for _ in range(count)]
    # Close votes get extra trials until one verdict leads by 3 (or the
    # budget runs out, at an odd total so plurality still decides): a 3-2
    # split is weak evidence under 5% loss, a 3-lead is decisive.
    while len(cells) < budget and (
        _contested([c.cc for c in cells]) or _contested([c.rs for c in cells])
    ):
        cells.append(_measure_cell_once(prep, technique))
    cc = _vote([cell.cc for cell in cells])
    rs = _vote([cell.rs for cell in cells])
    outcome = next(
        (c.outcome for c in reversed(cells) if c.cc == cc and c.rs == rs),
        cells[-1].outcome,
    )
    return Table3Cell(cc=cc, rs=rs, outcome=outcome)


def _vote(values: list[str]) -> str:
    """Plurality winner; ties break deterministically ("Y" over "N" over "-")."""
    return max(sorted(set(values), reverse=True), key=values.count)


def _contested(values: list[str]) -> bool:
    """Is the vote still close (plurality lead under 3)?"""
    counts = sorted((values.count(v) for v in set(values)), reverse=True)
    if len(counts) < 2:
        return False
    return counts[0] - counts[1] < 3


def _measure_cell_once(prep: PreparedEnvironment, technique: EvasionTechnique) -> Table3Cell:
    env = prep.env
    protocol = "udp" if technique.protocol == "udp" else "tcp"
    trace = prep.udp_trace if protocol == "udp" else prep.tcp_trace
    context = prep.udp_context if protocol == "udp" else prep.tcp_context
    if not technique.applicable(context):
        return Table3Cell(cc="-", rs="-")
    if protocol == "udp" and env.name not in ("testbed",):
        # No operational network classified UDP: there is nothing to evade,
        # but RS? is still measurable.
        outcome = _replay(env, trace, technique, context)
        return Table3Cell(cc="-", rs=_rs_of(technique, outcome), outcome=outcome)
    if technique.category == "flushing":
        env.clock.at_hour(BUSY_HOUR)
    outcome = _replay(env, trace, technique, context)
    return Table3Cell(
        cc=_cc_of(env, outcome), rs=_rs_of(technique, outcome), outcome=outcome
    )


def _replay(
    env: Environment, trace, technique: EvasionTechnique, context: EvasionContext
) -> ReplayOutcome:
    port = trace.server_port
    if env.needs_port_rotation:
        port = 8000 + (env.next_sport() % 20_000)
    return ReplaySession(env, trace, server_port=port).run(
        technique=technique, context=context
    )


def _cc_of(env: Environment, outcome: ReplayOutcome) -> str:
    if env.name == "att":
        # A terminating proxy can only be *beaten*, not merely confused:
        # breaking the stream is failure, not evasion.
        return "Y" if outcome.evaded else "N"
    changed = not outcome.differentiated and outcome.payload_reached_server
    return "Y" if changed else "N"


def _rs_of(technique: EvasionTechnique, outcome: ReplayOutcome) -> str:
    if outcome.inert_reached_server is not None:
        return "Y" if outcome.inert_reached_server else "N"
    return "Y" if outcome.payload_reached_server else "N"


# ----------------------------------------------------------------------
# per-OS server-response matrix
# ----------------------------------------------------------------------
def run_os_matrix(
    techniques: tuple[EvasionTechnique, ...] = ALL_TECHNIQUES,
) -> dict[str, tuple[str, str, str]]:
    """The rightmost Table 3 columns: how each OS treats each technique."""
    result: dict[str, tuple[str, str, str]] = {}
    for technique in techniques:
        cells = tuple(_os_cell(technique, profile) for profile in ALL_OS_PROFILES)
        result[technique.name] = cells  # type: ignore[assignment]
    return result


def _os_cell(technique: EvasionTechnique, profile: OSProfile) -> str:
    if technique.name == "ip-low-ttl":
        return "-"  # TTL-limited packets never reach the server at all
    if technique.category == "flushing" and "rst" in technique.name:
        return "Y"  # a stray out-of-context RST is dropped by every OS
    if isinstance(technique, InertUDPTechnique):
        datagram = UDPDatagram(sport=40_000, dport=3478, payload=make_inert_payload(32))
        if technique.checksum is not None:
            datagram.checksum = technique.checksum
        if technique.length_delta is not None:
            datagram.length = datagram.wire_length() + technique.length_delta
        packet = IPPacket(src="10.1.0.2", dst="203.0.113.50", transport=datagram)
        verdict = profile.verdict_for_ip(packet)
        if verdict is Verdict.DELIVER:
            verdict = profile.verdict_for_udp(packet, datagram)
        return _verdict_label(verdict)
    if isinstance(technique, InertTCPTechnique) and not isinstance(technique, WrongTCPSequence):
        plan = SegmentPlan(payload=make_inert_payload(INERT_PAYLOAD_SIZE, technique.name))
        technique.plan_overrides(EvasionContext(), plan)
        packet = packet_from_plan(
            plan,
            src="10.1.0.2",
            dst="203.0.113.50",
            sport=40_000,
            dport=80,
            default_seq=1_000,
            ack=2_000,
        )
        verdict = profile.verdict_for_ip(packet)
        if verdict is Verdict.DELIVER and packet.tcp is not None:
            verdict = profile.verdict_for_tcp(packet, packet.tcp, expected_seq=1_000)
        return _verdict_label(verdict)
    if isinstance(technique, WrongTCPSequence):
        return "Y"  # far-out-of-window data: every measured OS drops it
    # Splitting / reordering / pause rows: replay over a clean path per OS and
    # require intact delivery.
    from repro.experiments.workloads import tcp_workload
    from repro.traffic.stun import stun_trace

    env = make_neutral(profile)
    protocol = "udp" if technique.protocol == "udp" else "tcp"
    trace = stun_trace() if protocol == "udp" else tcp_workload("testbed")
    context = EvasionContext(protocol=protocol, middlebox_hops=0, flush_wait_seconds=5.0)
    outcome = ReplaySession(env, trace).run(technique=technique, context=context)
    return "Y" if outcome.delivered_ok and outcome.server_response_ok else "N"


def _verdict_label(verdict: Verdict) -> str:
    if verdict is Verdict.DROP:
        return "Y"
    if verdict is Verdict.DELIVER_TRUNCATED:
        return "Y5"
    if verdict is Verdict.RST:
        return "N6"
    return "N"


# ----------------------------------------------------------------------
# rendering and paper comparison
# ----------------------------------------------------------------------
def format_table3(rows: list[Table3Row]) -> str:
    """Render the measured matrix in the paper's layout."""
    header = (
        f"{'Technique':26s} | "
        + " | ".join(f"{name:>11s}" for name in TABLE3_ENVS[:4])
        + " | att | Lin Mac Win"
    )
    lines = [header, "-" * len(header)]
    mark = {"Y": "+", "N": ".", "-": " "}
    for row in rows:
        cells = []
        for name in TABLE3_ENVS[:4]:
            cell = row.cells.get(name)
            cells.append(f"CC={cell.cc:1s} RS={cell.rs:1s}" if cell else "       ")
        att = row.cells.get("att")
        os_part = " ".join(f"{c:>3s}" for c in (row.os_cells or ("?", "?", "?")))
        lines.append(
            f"{row.technique:26s} | "
            + " | ".join(cells)
            + f" |  {att.cc if att else '?':2s} | {os_part}"
        )
    return "\n".join(lines)


def compare_with_paper(rows: list[Table3Row]) -> tuple[int, int, list[str]]:
    """Compare measured CC/RS cells against the paper's Table 3.

    Footnote digits in the paper's notation are ignored for matching ("Y2"
    counts as "Y", "N3" as "N").  Returns (matching cells, total cells,
    mismatch descriptions).
    """
    matches, total = 0, 0
    mismatches: list[str] = []
    for row in rows:
        expected = paper_expectations.TABLE3.get(row.technique)
        if expected is None:
            continue
        for name in TABLE3_ENVS[:4]:
            cell = row.cells.get(name)
            if cell is None:
                continue
            exp_cc, exp_rs = expected[name]
            for label, got, want in (("CC", cell.cc, exp_cc), ("RS", cell.rs, exp_rs)):
                total += 1
                if got.rstrip("1234567") == want.rstrip("1234567"):
                    matches += 1
                else:
                    mismatches.append(
                        f"{row.technique}/{name}/{label}: measured {got}, paper {want}"
                    )
        att_cell = row.cells.get("att")
        if att_cell is not None:
            total += 1
            want = expected["att"][0]
            if att_cell.cc.rstrip("1234567") == want.rstrip("1234567") or (
                att_cell.cc == "-" and want == "N"
            ):
                matches += 1
            else:
                mismatches.append(
                    f"{row.technique}/att/CC: measured {att_cell.cc}, paper {want}"
                )
        if row.os_cells is not None:
            for os_name, got, want in zip(("linux", "macos", "windows"), row.os_cells, expected["os"]):
                total += 1
                if got == want or (got == "-" and want == "-"):
                    matches += 1
                else:
                    mismatches.append(
                        f"{row.technique}/os-{os_name}: measured {got}, paper {want}"
                    )
    return matches, total, mismatches
