"""§6.2 — T-Mobile video throughput with and without lib·erate.

The paper replays a 10 MB Amazon Prime Video trace over Binge On: without
lib·erate it averages 1.48 Mbps (peak 4.8), with lib·erate's evasion it
averages 4.1 Mbps (peak 11.2).  The shape to reproduce: classified video is
pinned near the "optimized" rate, evasion restores roughly the line rate —
a ~3x average improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evasion.base import EvasionContext
from repro.core.evasion.reordering import TCPSegmentReorder
from repro.envs.tmobile import make_tmobile
from repro.experiments.workloads import prepare
from repro.replay.session import ReplaySession
from repro.traffic.video import video_stream_trace

DEFAULT_VIDEO_BYTES = 10_000_000


@dataclass
class ThroughputResult:
    """Average/peak goodput for one replay, in Mbps."""

    label: str
    average_mbps: float
    peak_mbps: float
    zero_rated: bool | None


def run_tmus_throughput(video_bytes: int = DEFAULT_VIDEO_BYTES) -> tuple[ThroughputResult, ThroughputResult]:
    """Replay the video trace without and with lib·erate over T-Mobile."""
    env = make_tmobile()
    trace = video_stream_trace(
        host="d1.cloudfront.net", total_bytes=video_bytes, name="prime-video"
    )

    baseline = ReplaySession(env, trace).run()
    without = ThroughputResult(
        label="without liberate",
        average_mbps=(baseline.throughput_bps or 0.0) / 1e6,
        peak_mbps=(baseline.peak_throughput_bps or 0.0) / 1e6,
        zero_rated=baseline.zero_rated,
    )

    prep = prepare(env, characterize=False)
    evaded = ReplaySession(env, trace).run(
        technique=TCPSegmentReorder(), context=prep.tcp_context
    )
    with_liberate = ThroughputResult(
        label="with liberate",
        average_mbps=(evaded.throughput_bps or 0.0) / 1e6,
        peak_mbps=(evaded.peak_throughput_bps or 0.0) / 1e6,
        zero_rated=evaded.zero_rated,
    )
    return without, with_liberate


def format_throughput(results: tuple[ThroughputResult, ThroughputResult]) -> str:
    """Render measured vs. paper throughput."""
    from repro.experiments.paper_expectations import TMOBILE_THROUGHPUT as paper

    without, with_lib = results
    return "\n".join(
        [
            f"{'':18s} {'avg Mbps':>9s} {'peak Mbps':>10s} {'paper avg':>10s} {'paper peak':>11s}",
            f"{without.label:18s} {without.average_mbps:9.2f} {without.peak_mbps:10.2f} "
            f"{paper['without_liberate_avg']:10.2f} {paper['without_liberate_peak']:11.2f}",
            f"{with_lib.label:18s} {with_lib.average_mbps:9.2f} {with_lib.peak_mbps:10.2f} "
            f"{paper['with_liberate_avg']:10.2f} {paper['with_liberate_peak']:11.2f}",
            f"speedup: {with_lib.average_mbps / max(without.average_mbps, 1e-9):.1f}x "
            f"(paper: {paper['with_liberate_avg'] / paper['without_liberate_avg']:.1f}x)",
        ]
    )
