"""Figure 4 — GFC delay-based evasion success varies with time of day (§6.5).

For each hour of the day and several trials per hour, find the minimum delay
(10–240 s, the paper's probe range) whose pause-before-match flush evades
the GFC.  Busy hours flush quickly (short delays work); quiet hours retain
state beyond the probe ceiling (no delay works — the paper's red dots).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evasion.base import EvasionContext
from repro.core.evasion.flushing import PauseBeforeMatch
from repro.envs.gfc import make_gfc
from repro.netsim.faults import FaultProfile
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace
from repro.replay.session import ReplaySession
from repro.runtime import WorkerPool, derive_seed
from repro.traffic.http import http_get_trace

#: The paper probed delays from 10 to 240 seconds.
DELAY_LADDER = (10, 20, 40, 60, 90, 120, 180, 240)
TRIALS_PER_HOUR = 6


@dataclass
class FlushSample:
    """One (hour, trial) measurement."""

    hour: int
    trial: int
    min_successful_delay: int | None  # None = even 240 s failed (red dot)


def _probe(hour: int, trial: int, delay: int, faults: FaultProfile | None = None) -> bool:
    """One probe: does a *delay*-second pause evade the GFC at this time?"""
    env = make_gfc(faults=faults)
    env.clock.at_hour(hour)
    env.clock.advance(trial * 523.0 % 3000.0)
    trace = http_get_trace("economist.com")
    context = EvasionContext(
        protocol="tcp", middlebox_hops=env.hops_to_middlebox, flush_wait_seconds=float(delay)
    )
    port = 8000 + (hour * 100 + trial * 10 + delay) % 20_000
    outcome = ReplaySession(env, trace, server_port=port).run(
        technique=PauseBeforeMatch(), context=context
    )
    return outcome.evaded


def _sample_task(
    task: tuple[int, int, tuple[int, ...], FaultProfile | None],
) -> FlushSample:
    """One (hour, trial) delay-ladder sweep (a worker-pool task)."""
    hour, trial, delays, faults = task
    found: int | None = None
    for delay in delays:
        if _probe(hour, trial, delay, faults):
            found = delay
            break
    if obs_trace.TRACER is not None:
        obs_trace.TRACER.emit(
            "figure4.sample", hour=hour, trial=trial, min_delay=found
        )
    if obs_metrics.METRICS is not None:
        obs_metrics.METRICS.inc("figure4.samples")
    if obs_live.BUS is not None:
        obs_live.BUS.emit("figure4.sample", hour=hour, trial=trial, min_delay=found)
    return FlushSample(hour=hour, trial=trial, min_successful_delay=found)


def run_figure4(
    hours: tuple[int, ...] = tuple(range(24)),
    trials: int = TRIALS_PER_HOUR,
    delays: tuple[int, ...] = DELAY_LADDER,
    pool: WorkerPool | None = None,
    faults: FaultProfile | None = None,
    seed: int | None = None,
) -> list[FlushSample]:
    """Sweep (hour, trial) and record the minimum working delay for each.

    Every probe builds a fresh GFC simulator pinned to its (hour, trial), so
    the samples are independent and run concurrently on a parallel *pool*,
    returned in (hour, trial) order.

    With *faults*, each sample's environment carries the fault profile,
    reseeded per (hour, trial) from *seed* (default: the profile's own seed)
    so the trials within an hour see independent fault streams while the
    whole sweep stays reproducible from one number.
    """
    if pool is None:
        pool = WorkerPool()
    # Metered runs parallelize like traced ones: process workers snapshot
    # their registries at task end and the pool merges the dumps back into
    # the parent in (task index, key) order (see runtime/pool.py).
    tasks = [
        (hour, trial, tuple(delays), _task_faults(faults, seed, hour, trial))
        for hour in hours
        for trial in range(trials)
    ]
    if obs_live.BUS is not None:
        obs_live.BUS.emit(
            "exp.start",
            experiment="figure4",
            hours=list(hours),
            trials=trials,
            samples=len(tasks),
            fault_seed=faults.seed if faults is not None else None,
        )
    with obs_profiling.stage("figure4.sweep"):
        samples = pool.map(_sample_task, tasks)
    if obs_live.BUS is not None:
        obs_live.BUS.emit("exp.finish", experiment="figure4", samples=len(samples))
    return samples


def _task_faults(
    faults: FaultProfile | None, seed: int | None, hour: int, trial: int
) -> FaultProfile | None:
    if faults is None:
        return None
    base = faults.seed if seed is None else seed
    return faults.with_seed(derive_seed(base, "figure4", hour, trial))


def busy_and_quiet_summary(samples: list[FlushSample]) -> dict[str, float]:
    """Aggregate statistics matching the paper's reading of Figure 4."""
    busy = [s for s in samples if 9 <= s.hour < 23]
    quiet = [s for s in samples if not 9 <= s.hour < 23]
    busy_ok = [s.min_successful_delay for s in busy if s.min_successful_delay is not None]
    return {
        "busy_success_rate": len(busy_ok) / len(busy) if busy else 0.0,
        "quiet_success_rate": (
            sum(1 for s in quiet if s.min_successful_delay is not None) / len(quiet)
            if quiet
            else 0.0
        ),
        "busy_min_delay": min(busy_ok) if busy_ok else float("nan"),
        "busy_max_delay": max(busy_ok) if busy_ok else float("nan"),
    }


def format_figure4(samples: list[FlushSample]) -> str:
    """Render the figure as an hour × trial text raster (paper-style dots).

    Digits give the minimal successful delay bucket; '#' marks trials where
    even the longest delay failed (the paper's red dots).
    """
    lines = ["hour | trials (min successful delay, '#'=never)"]
    by_hour: dict[int, list[FlushSample]] = {}
    for sample in samples:
        by_hour.setdefault(sample.hour, []).append(sample)
    for hour in sorted(by_hour):
        cells = []
        for sample in sorted(by_hour[hour], key=lambda s: s.trial):
            if sample.min_successful_delay is None:
                cells.append("   #")
            else:
                cells.append(f"{sample.min_successful_delay:4d}")
        lines.append(f"  {hour:02d} | {' '.join(cells)}")
    return "\n".join(lines)
