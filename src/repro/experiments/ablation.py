"""Ablations of lib·erate's design choices (DESIGN.md §6).

Four knobs the paper's design fixes, measured here with the knob flipped:

* **evaluation pruning** (§5.2) — skipping inert/flushing tests against
  inspect-everything classifiers, and ordering previously-effective
  techniques first, cuts replays-to-first-success;
* **bisection granularity** — byte-exact fields vs. coarse 4-byte regions
  trade rounds against splitting precision;
* **GFC port rotation** (§6.5) — without it, residual server:port blocking
  corrupts characterization;
* **prepend threshold** (§5.1's 10) — a lower ceiling misclassifies
  Iran-style inspect-everything classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.characterization import CharacterizationError, Characterizer
from repro.core.evaluation import EvasionEvaluator
from repro.envs.gfc import make_gfc
from repro.envs.iran import make_iran
from repro.envs.testbed import make_testbed
from repro.experiments.workloads import prepare, tcp_workload


@dataclass
class AblationResult:
    """One knob, measured both ways."""

    name: str
    with_choice: float
    without_choice: float
    unit: str
    comment: str


def ablate_evaluation_pruning() -> AblationResult:
    """Replays until first working technique, with and without pruning."""
    prep = prepare(make_iran(), characterize=True)
    pruned = EvasionEvaluator(
        prep.env, prep.tcp_trace, prep.tcp_context, stop_at_first=True
    )
    pruned_report = pruned.run()

    unpruned_context = prep.tcp_context
    # Disable the knowledge that lets the evaluator prune: pretend we know
    # nothing about inspection scope.
    from dataclasses import replace

    naive_context = replace(unpruned_context, inspects_all_packets=False, match_and_forget=True)
    naive = EvasionEvaluator(prep.env, prep.tcp_trace, naive_context, stop_at_first=True)
    naive_report = naive.run()
    return AblationResult(
        name="evaluation-pruning",
        with_choice=pruned_report.rounds,
        without_choice=naive_report.rounds,
        unit="replays to first success (Iran)",
        comment="pruning skips inert/flushing tests that cannot work per-packet",
    )


def ablate_bisection_granularity() -> AblationResult:
    """Characterization rounds at byte granularity vs. 4-byte regions."""
    fine = Characterizer(make_testbed(), tcp_workload("testbed"), granularity=1)
    fine.find_matching_fields()
    coarse = Characterizer(make_testbed(), tcp_workload("testbed"), granularity=4)
    coarse.find_matching_fields()
    return AblationResult(
        name="bisection-granularity",
        with_choice=fine.rounds,
        without_choice=coarse.rounds,
        unit="characterization rounds (testbed)",
        comment="byte-exact fields cost more rounds than 4-byte regions",
    )


def ablate_gfc_port_rotation() -> AblationResult:
    """GFC characterization with rotation succeeds; without it, it derails."""
    rotated = Characterizer(make_gfc(), tcp_workload("gfc"), rotate_ports=True)
    rotated_fields = rotated.find_matching_fields()
    rotated_ok = 1.0 if rotated_fields else 0.0

    fixed = Characterizer(make_gfc(), tcp_workload("gfc"), rotate_ports=False)
    try:
        fixed_fields = fixed.find_matching_fields()
        # Residual blocking makes *everything* look classified, which either
        # raises or smears fields across the payload.
        fixed_ok = (
            1.0
            if [f.content for f in fixed_fields] == [f.content for f in rotated_fields]
            else 0.0
        )
    except CharacterizationError:
        fixed_ok = 0.0
    return AblationResult(
        name="gfc-port-rotation",
        with_choice=rotated_ok,
        without_choice=fixed_ok,
        unit="characterization correct (1=yes)",
        comment="the GFC blocks a server:port after 2 matches; rotation dodges it",
    )


def ablate_prepend_threshold() -> AblationResult:
    """Iran needs the full threshold to be recognized as inspect-everything."""
    generous = Characterizer(make_iran(), tcp_workload("iran"), prepend_threshold=10)
    generous_report = generous.probe_position_limits()
    stingy = Characterizer(make_iran(), tcp_workload("iran"), prepend_threshold=2)
    stingy_report = stingy.probe_position_limits()
    return AblationResult(
        name="prepend-threshold",
        with_choice=1.0 if generous_report.inspects_all_packets else 0.0,
        without_choice=1.0 if stingy_report.inspects_all_packets else 0.0,
        unit="Iran classified as inspect-everything (1=yes)",
        comment="both should agree here; the threshold guards against false limits",
    )


def run_all_ablations() -> list[AblationResult]:
    """All four ablations."""
    return [
        ablate_evaluation_pruning(),
        ablate_bisection_granularity(),
        ablate_gfc_port_rotation(),
        ablate_prepend_threshold(),
    ]


def format_ablations(results: list[AblationResult]) -> str:
    """Render the ablation outcomes."""
    lines = [f"{'ablation':24s} {'with':>8s} {'without':>8s}  unit", "-" * 90]
    for result in results:
        lines.append(
            f"{result.name:24s} {result.with_choice:8.1f} {result.without_choice:8.1f}  "
            f"{result.unit} — {result.comment}"
        )
    return "\n".join(lines)
