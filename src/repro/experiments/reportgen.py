"""Regenerate the measured side of EXPERIMENTS.md from live runs.

``liberate report --out measured.md`` (or :func:`generate_report`) runs the
fast experiment battery and renders a single markdown document — the
repository's reproducibility artifact, rebuilt from scratch on demand.
"""

from __future__ import annotations

from pathlib import Path


def generate_report(
    include_table3: bool = True,
    include_figure4: bool = True,
    include_efficiency: bool = True,
    include_bilateral: bool = True,
    include_countermeasures: bool = True,
    figure4_trials: int = 3,
) -> str:
    """Run the selected experiments and render one markdown report."""
    sections: list[str] = ["# lib·erate reproduction — measured results\n"]

    if include_table3:
        from repro.experiments.table3 import compare_with_paper, format_table3, run_table3

        rows = run_table3(characterize=False)
        matches, total, mismatches = compare_with_paper(rows)
        sections.append("## Table 3 — technique effectiveness\n")
        sections.append("```\n" + format_table3(rows) + "\n```\n")
        sections.append(f"Paper agreement: **{matches}/{total}** cells.\n")
        for mismatch in mismatches:
            sections.append(f"* mismatch: {mismatch}\n")

    if include_figure4:
        from repro.experiments.figure4 import (
            busy_and_quiet_summary,
            format_figure4,
            run_figure4,
        )

        samples = run_figure4(trials=figure4_trials)
        summary = busy_and_quiet_summary(samples)
        sections.append("## Figure 4 — GFC flushing vs. time of day\n")
        sections.append("```\n" + format_figure4(samples) + "\n```\n")
        sections.append(
            f"Busy-hour success rate {summary['busy_success_rate']:.0%}, "
            f"quiet-hour {summary['quiet_success_rate']:.0%}; busy-hour delays "
            f"{summary['busy_min_delay']:.0f}-{summary['busy_max_delay']:.0f} s.\n"
        )

    if include_efficiency:
        from repro.experiments.efficiency import format_efficiency, run_all

        sections.append("## §6 characterization efficiency\n")
        sections.append("```\n" + format_efficiency(run_all()) + "\n```\n")

    if include_bilateral:
        from repro.experiments.bilateral import format_bilateral, run_bilateral_matrix

        sections.append("## Bilateral evasion (§6.5 + §7)\n")
        sections.append("```\n" + format_bilateral(run_bilateral_matrix()) + "\n```\n")

    if include_countermeasures:
        from repro.experiments.countermeasures import (
            format_countermeasures,
            run_countermeasure_study,
        )

        sections.append("## Countermeasures (§4.3)\n")
        sections.append("```\n" + format_countermeasures(run_countermeasure_study()) + "\n```\n")

    return "\n".join(sections)


def write_report(path: str | Path, **kwargs: object) -> Path:
    """Generate the report and write it to *path*."""
    target = Path(path)
    target.write_text(generate_report(**kwargs))  # type: ignore[arg-type]
    return target
