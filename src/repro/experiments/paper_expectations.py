"""The values the paper reports, for side-by-side comparison.

These are *expectations to compare against*, never inputs to the simulation:
the environments encode mechanisms (validation strictness, reassembly modes,
port scoping) described in the paper's prose, and the experiment harnesses
measure outcomes.  This module is the paper's half of the comparison printed
in EXPERIMENTS.md.

Cell notation for Table 3 follows the paper: "Y" = ✓, "N" = ×, "-" = not
applicable, and digit suffixes reference the paper's footnotes ("Y2" = ✓
with footnote 2, etc.).
"""

from __future__ import annotations

#: Table 3 — (CC?, RS?) per environment, plus the AT&T single column and the
#: per-OS server responses (Linux, macOS, Windows).
TABLE3: dict[str, dict[str, tuple[str, ...]]] = {
    # technique:            testbed      tmobile      gfc          iran         att    linux  mac    win
    "ip-low-ttl": {
        "testbed": ("Y", "N"), "tmobile": ("Y", "N"), "gfc": ("Y", "N"),
        "iran": ("N3", "N"), "att": ("N",), "os": ("-", "-", "-"),
    },
    "ip-invalid-version": {
        "testbed": ("N", "N"), "tmobile": ("N", "N"), "gfc": ("N", "N"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "ip-invalid-ihl": {
        "testbed": ("N", "N"), "tmobile": ("N", "N"), "gfc": ("N", "N"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "ip-length-long": {
        "testbed": ("Y", "N"), "tmobile": ("N", "N"), "gfc": ("N", "N"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "ip-length-short": {
        "testbed": ("N", "N"), "tmobile": ("N", "N"), "gfc": ("N", "N"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "ip-wrong-protocol": {
        "testbed": ("Y1", "Y"), "tmobile": ("N", "Y"), "gfc": ("N", "Y"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "ip-wrong-checksum": {
        "testbed": ("Y", "N"), "tmobile": ("N", "N"), "gfc": ("N", "N"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "ip-invalid-options": {
        "testbed": ("Y", "Y"), "tmobile": ("Y", "N"), "gfc": ("N", "N"),
        "iran": ("N3", "N"), "att": ("N",), "os": ("N", "N", "Y"),
    },
    "ip-deprecated-options": {
        "testbed": ("Y", "Y"), "tmobile": ("Y", "N"), "gfc": ("N", "N"),
        "iran": ("N3", "N"), "att": ("N",), "os": ("N", "N", "N"),
    },
    "tcp-wrong-seq": {
        "testbed": ("Y", "Y"), "tmobile": ("N", "N"), "gfc": ("N", "Y"),
        "iran": ("N3", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "tcp-wrong-checksum": {
        "testbed": ("Y", "Y"), "tmobile": ("N", "N"), "gfc": ("Y", "Y4"),
        "iran": ("N3", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "tcp-no-ack-flag": {
        "testbed": ("Y", "N"), "tmobile": ("N", "N"), "gfc": ("Y", "Y"),
        "iran": ("N3", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "tcp-invalid-data-offset": {
        "testbed": ("N", "Y"), "tmobile": ("N", "N"), "gfc": ("N", "Y"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "tcp-invalid-flags": {
        "testbed": ("Y", "Y"), "tmobile": ("N", "N"), "gfc": ("N", "Y"),
        "iran": ("N3", "N"), "att": ("N",), "os": ("Y", "Y", "N6"),
    },
    "udp-invalid-checksum": {
        "testbed": ("Y", "Y"), "tmobile": ("-", "N"), "gfc": ("-", "Y"),
        "iran": ("-", "Y"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "udp-length-long": {
        "testbed": ("Y", "Y"), "tmobile": ("-", "N"), "gfc": ("-", "N"),
        "iran": ("-", "Y"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "udp-length-short": {
        "testbed": ("Y", "Y"), "tmobile": ("-", "N"), "gfc": ("-", "N"),
        "iran": ("-", "Y"), "att": ("N",), "os": ("Y5", "Y", "Y"),
    },
    "ip-fragmentation": {
        "testbed": ("Y", "Y2"), "tmobile": ("N", "Y2"), "gfc": ("N", "Y2"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "tcp-segment-split": {
        "testbed": ("Y", "Y"), "tmobile": ("Y", "Y"), "gfc": ("N", "Y"),
        "iran": ("Y", "Y"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "ip-fragment-reorder": {
        "testbed": ("Y", "Y2"), "tmobile": ("N", "Y2"), "gfc": ("N", "Y2"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "tcp-segment-reorder": {
        "testbed": ("Y", "Y"), "tmobile": ("Y", "Y"), "gfc": ("N", "Y"),
        "iran": ("Y", "Y"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "udp-reorder": {
        "testbed": ("Y", "Y"), "tmobile": ("-", "Y"), "gfc": ("-", "Y"),
        "iran": ("-", "Y"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "flush-pause-after-match": {
        "testbed": ("Y", "Y"), "tmobile": ("N", "Y"), "gfc": ("N", "Y"),
        "iran": ("N", "Y"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "flush-pause-before-match": {
        "testbed": ("Y", "Y"), "tmobile": ("N", "Y"), "gfc": ("Y7", "Y"),
        "iran": ("N", "Y"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "flush-rst-after-match": {
        "testbed": ("Y", "N"), "tmobile": ("Y", "N"), "gfc": ("N", "N"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
    "flush-rst-before-match": {
        "testbed": ("Y", "N"), "tmobile": ("Y", "N"), "gfc": ("Y", "N"),
        "iran": ("N", "N"), "att": ("N",), "os": ("Y", "Y", "Y"),
    },
}

#: §6.1–6.6 — characterization efficiency per environment.
EFFICIENCY: dict[str, dict[str, object]] = {
    "testbed-http": {"rounds_max": 70, "minutes_max": 10, "bytes_per_round_max": 2_000},
    "testbed-skype": {"rounds": 115, "fields_within_packets": 6},
    "tmobile": {"rounds_range": (80, 95), "minutes": 23, "megabytes": 18},
    "att": {"rounds": 71},
    "gfc": {"rounds": 86, "minutes_max": 15, "kilobytes_max": 400},
    "iran": {"rounds": 75, "minutes": 10, "kilobytes": 300},
}

#: §6.2 — Amazon Prime Video replay over T-Mobile, Mbps.
TMOBILE_THROUGHPUT = {
    "without_liberate_avg": 1.48,
    "without_liberate_peak": 4.8,
    "with_liberate_avg": 4.1,
    "with_liberate_peak": 11.2,
}

#: §5.3 — evasion overhead bounds.
OVERHEAD = {
    "inert_max_packets": 5,
    "flush_delay_range_seconds": (40, 240),
    "testbed_flush_timeout": 120,
    "testbed_rst_timeout": 10,
}

#: Table 1 — comparison with other evasion approaches (qualitative).
TABLE1_ROWS = [
    # method, overhead, client-only, app-agnostic, rule-detect, split/reorder,
    # inert-injection, flushing, validated-in-wild
    ("VPN", "O(n)", False, True, False, False, False, False, None),
    ("Covert channels", "O(n)", False, False, False, False, False, False, False),
    ("Obfuscation", "O(n)", False, False, False, False, False, False, True),
    ("Domain fronting", "O(1)", False, False, False, False, False, False, True),
    ("Kreibich et al.", "O(1)", True, True, False, False, True, False, False),
    ("liberate", "O(1)", True, True, True, True, True, True, True),
]
