"""Bilateral evasion across all environments (§6.5 finding + §7 outlook).

The paper measured one bilateral trick — a single dummy packet at flow
start, ignored by a cooperating server — evading the testbed, T-Mobile,
AT&T and the GFC (not Iran, whose per-packet classifier keeps matching).
The §7 outlook adds payload modification "not publicly known by the
differentiating ISP a priori"; payload rotation is its minimal instance and
beats *everything*, including Iran and AT&T's terminating proxy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bilateral import run_bilateral_dummy_prefix, run_bilateral_rotation
from repro.envs import ENVIRONMENT_FACTORIES
from repro.experiments.workloads import tcp_workload
from repro.replay.session import ReplaySession

BILATERAL_ENVS = ("testbed", "tmobile", "gfc", "iran", "att")


@dataclass
class BilateralResult:
    """One environment's outcome for both bilateral techniques."""

    env: str
    baseline_differentiated: bool
    dummy_prefix_evades: bool
    rotation_evades: bool


def run_bilateral_matrix(env_names: tuple[str, ...] = BILATERAL_ENVS) -> list[BilateralResult]:
    """Measure both bilateral techniques against every environment."""
    results = []
    for name in env_names:
        env = ENVIRONMENT_FACTORIES[name]()
        trace = tcp_workload(name)
        port = 8000 + env.next_sport() % 20_000 if env.needs_port_rotation else None
        baseline = ReplaySession(env, trace, server_port=port).run()

        port = 8000 + env.next_sport() % 20_000 if env.needs_port_rotation else None
        prefix = run_bilateral_dummy_prefix(env, trace, server_port=port)

        port = 8000 + env.next_sport() % 20_000 if env.needs_port_rotation else None
        rotation = run_bilateral_rotation(env, trace, key=7, server_port=port)

        results.append(
            BilateralResult(
                env=name,
                baseline_differentiated=baseline.differentiated,
                dummy_prefix_evades=prefix.evaded,
                rotation_evades=rotation.evaded,
            )
        )
    return results


def format_bilateral(results: list[BilateralResult]) -> str:
    """Render the bilateral matrix."""
    lines = [
        f"{'env':10s} {'baseline diff':>14s} {'dummy prefix':>13s} {'rotation':>9s}",
        "-" * 50,
    ]
    for result in results:
        lines.append(
            f"{result.env:10s} {str(result.baseline_differentiated):>14s} "
            f"{str(result.dummy_prefix_evades):>13s} {str(result.rotation_evades):>9s}"
        )
    return "\n".join(lines)
