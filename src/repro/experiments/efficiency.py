"""Characterization efficiency (§6.1–§6.6): rounds, data, and time per network.

The paper reports, for every environment, how many replay rounds lib·erate
needed to identify the classifier's matching fields, how much data the tests
consumed, and how long they took.  Wall-clock time in the real system is
dominated by the per-replay wait for a classification signal, so the
estimate here is rounds x the per-round test time the paper states for each
network (5 s in the testbed, ~15 s on T-Mobile's usage counter, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.characterization import Characterizer
from repro.envs import ENVIRONMENT_FACTORIES
from repro.experiments import paper_expectations
from repro.experiments.workloads import tcp_workload, udp_workload
from repro.obs import live as obs_live
from repro.runtime import WorkerPool

#: Seconds per replay round, from the paper's per-environment methodology.
SECONDS_PER_ROUND = {
    "testbed-http": 5.0,
    "testbed-skype": 5.0,
    "tmobile": 15.0,
    "att": 30.0,
    "gfc": 10.0,
    "iran": 8.0,
}


@dataclass
class EfficiencyResult:
    """One environment's characterization efficiency measurement."""

    case: str
    rounds: int
    bytes_used: int
    estimated_minutes: float
    matching_fields: list[str] = field(default_factory=list)
    server_side_fields: list[str] = field(default_factory=list)
    inspects_all_packets: bool = False
    packet_limit: int | None = None
    notes: list[str] = field(default_factory=list)


def _characterize(case: str, env_name: str, trace) -> EfficiencyResult:
    env = ENVIRONMENT_FACTORIES[env_name]()
    characterizer = Characterizer(env, trace)
    report = characterizer.run(include_server_side=(env_name == "att"))
    minutes = report.rounds * SECONDS_PER_ROUND.get(case, 10.0) / 60.0
    return EfficiencyResult(
        case=case,
        rounds=report.rounds,
        bytes_used=report.bytes_used,
        estimated_minutes=minutes,
        matching_fields=[str(f) for f in report.matching_fields],
        server_side_fields=[str(f) for f in report.server_side_fields],
        inspects_all_packets=report.inspects_all_packets,
        packet_limit=report.packet_limit,
        notes=list(report.notes),
    )


def run_testbed_http() -> EfficiencyResult:
    """§6.1: HTTP over the testbed — at most 70 rounds, <2 KB per round."""
    return _characterize("testbed-http", "testbed", tcp_workload("testbed"))


def run_testbed_skype() -> EfficiencyResult:
    """§6.1: Skype/STUN UDP over the testbed — 115 replays in the paper."""
    return _characterize("testbed-skype", "testbed", udp_workload("testbed"))


def run_tmobile() -> EfficiencyResult:
    """§6.2: Binge On — 80–95 rounds, 18 MB, ~23 minutes in the paper."""
    return _characterize("tmobile", "tmobile", tcp_workload("tmobile"))


def run_att() -> EfficiencyResult:
    """§6.3: Stream Saver — 71 replays, including server-side fields."""
    return _characterize("att", "att", tcp_workload("att"))


def run_gfc() -> EfficiencyResult:
    """§6.5: the GFC — 86 replays, <400 KB, with server-port rotation."""
    return _characterize("gfc", "gfc", tcp_workload("gfc"))


def run_iran() -> EfficiencyResult:
    """§6.6: Iran — 75 replays, ~300 KB, and per-packet inspection detected."""
    return _characterize("iran", "iran", tcp_workload("iran"))


ALL_CASES = {
    "testbed-http": run_testbed_http,
    "testbed-skype": run_testbed_skype,
    "tmobile": run_tmobile,
    "att": run_att,
    "gfc": run_gfc,
    "iran": run_iran,
}


def _run_case(case: str) -> EfficiencyResult:
    """One named efficiency case (a worker-pool task)."""
    return ALL_CASES[case]()


def run_all(pool: WorkerPool | None = None) -> list[EfficiencyResult]:
    """Every efficiency case in §6 order.

    Each case characterizes its own freshly built environment, so the cases
    run concurrently on a parallel *pool* with results in §6 order.
    """
    if pool is None:
        pool = WorkerPool()
    if obs_live.BUS is not None:
        obs_live.BUS.emit(
            "exp.start", experiment="efficiency", cases=list(ALL_CASES)
        )
    results = pool.map(_run_case, list(ALL_CASES))
    if obs_live.BUS is not None:
        obs_live.BUS.emit("exp.finish", experiment="efficiency", cases=len(results))
    return results


def format_efficiency(results: list[EfficiencyResult]) -> str:
    """Render measured-vs-paper efficiency numbers."""
    lines = [
        f"{'case':15s} {'rounds':>7s} {'paper':>12s} {'KB used':>9s} {'~min':>6s}  fields",
        "-" * 110,
    ]
    for result in results:
        paper = paper_expectations.EFFICIENCY.get(result.case, {})
        paper_rounds = (
            paper.get("rounds")
            or paper.get("rounds_max")
            or "-".join(str(x) for x in paper.get("rounds_range", ()) or ())
            or "?"
        )
        fields = ", ".join(result.matching_fields + result.server_side_fields)
        lines.append(
            f"{result.case:15s} {result.rounds:7d} {str(paper_rounds):>12s} "
            f"{result.bytes_used / 1000:9.1f} {result.estimated_minutes:6.1f}  {fields}"
        )
    return "\n".join(lines)
