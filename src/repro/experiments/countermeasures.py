"""The countermeasure study (§4.3 "Evasion countermeasures").

Deploy a norm-style traffic normalizer in front of the testbed classifier
and re-run the evasion taxonomy.  The paper predicts: filtering kills the
inert class; TTL normalization defeats TTL-limiting (at the cost of
un-inerting the packets); reassembly + re-segmentation defeats splitting
and reordering; only classification flushing — which attacks the
classifier's *state retention*, not its packet view — survives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evasion import ALL_TECHNIQUES
from repro.envs.testbed import make_testbed
from repro.experiments.workloads import prepare
from repro.middlebox.normalizer import TrafficNormalizer
from repro.replay.session import ReplaySession


@dataclass
class CountermeasureResult:
    """One technique with and without the normalizer deployed."""

    technique: str
    category: str
    evades_plain: bool
    evades_normalized: bool


def run_countermeasure_study() -> list[CountermeasureResult]:
    """Run every TCP technique against the bare and the normalized testbed."""
    plain = prepare(make_testbed(), characterize=False)
    hardened_env = make_testbed()
    hardened_env.path.elements.insert(0, TrafficNormalizer())
    hardened = prepare(hardened_env, characterize=False)

    results = []
    for technique in ALL_TECHNIQUES:
        if technique.protocol == "udp":
            continue  # the normalizer study follows the paper's TCP focus
        if not technique.applicable(plain.tcp_context):
            continue
        before = ReplaySession(plain.env, plain.tcp_trace).run(
            technique=technique, context=plain.tcp_context
        )
        after = ReplaySession(hardened.env, hardened.tcp_trace).run(
            technique=technique, context=hardened.tcp_context
        )
        results.append(
            CountermeasureResult(
                technique=technique.name,
                category=technique.category,
                evades_plain=before.evaded,
                evades_normalized=after.evaded,
            )
        )
    return results


def survivors(results: list[CountermeasureResult]) -> list[str]:
    """Techniques that still evade once the normalizer is deployed."""
    return [r.technique for r in results if r.evades_normalized]


def neutralized(results: list[CountermeasureResult]) -> list[str]:
    """Techniques the normalizer kills (worked plain, fail normalized)."""
    return [r.technique for r in results if r.evades_plain and not r.evades_normalized]


def format_countermeasures(results: list[CountermeasureResult]) -> str:
    """Render the before/after matrix."""
    lines = [
        f"{'technique':28s} {'category':16s} {'plain':>6s} {'normalized':>11s}",
        "-" * 66,
    ]
    for result in results:
        lines.append(
            f"{result.technique:28s} {result.category:16s} "
            f"{str(result.evades_plain):>6s} {str(result.evades_normalized):>11s}"
        )
    lines.append("")
    lines.append(f"survivors: {', '.join(survivors(results)) or 'none'}")
    return "\n".join(lines)
