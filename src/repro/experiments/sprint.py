"""§6.4 — Sprint: probing finds no DPI-based differentiation.

The paper tried different ports, streaming flows, replays to its own
servers, originals and bit-inverted variants — and found no pattern of
differential bandwidth.  The harness runs the same probe battery and
verifies that lib·erate correctly concludes "no differentiation".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detection import detect_differentiation
from repro.envs.sprint import make_sprint
from repro.replay.session import ReplaySession
from repro.traffic.http import http_get_trace
from repro.traffic.video import video_stream_trace


@dataclass
class SprintProbe:
    """One probe flow's observed treatment."""

    label: str
    throughput_mbps: float | None
    differentiated: bool


def run_sprint_probes() -> list[SprintProbe]:
    """The §6.4 probe battery: varied ports, content, and inversions."""
    env = make_sprint()
    probes = []
    flows = [
        ("video port 80", video_stream_trace(host="video.example.com", total_bytes=200_000)),
        (
            "video port 8080",
            video_stream_trace(
                host="video.example.com", total_bytes=200_000, server_port=8080, name="v8080"
            ),
        ),
        (
            "music stream",
            video_stream_trace(host="spotify.example.com", total_bytes=200_000, name="music"),
        ),
        (
            "inverted video",
            video_stream_trace(host="video.example.com", total_bytes=200_000).inverted(),
        ),
        ("plain web page", http_get_trace("news.example.org", response_body=b"n" * 100_000)),
    ]
    for label, trace in flows:
        outcome = ReplaySession(env, trace).run()
        probes.append(
            SprintProbe(
                label=label,
                throughput_mbps=(outcome.throughput_bps or 0.0) / 1e6
                if outcome.throughput_bps
                else None,
                differentiated=outcome.differentiated,
            )
        )
    return probes


def run_sprint_detection() -> bool:
    """lib·erate's own verdict: True when (correctly) nothing is detected."""
    env = make_sprint()
    report = detect_differentiation(
        env, video_stream_trace(host="video.example.com", total_bytes=200_000)
    )
    return not report.differentiated


def format_sprint(probes: list[SprintProbe]) -> str:
    """Render the probe battery results."""
    lines = [f"{'probe':18s} {'Mbps':>7s} {'differentiated':>15s}", "-" * 44]
    for probe in probes:
        rate = f"{probe.throughput_mbps:.1f}" if probe.throughput_mbps else "n/a"
        lines.append(f"{probe.label:18s} {rate:>7s} {str(probe.differentiated):>15s}")
    return "\n".join(lines)
