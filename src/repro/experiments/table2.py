"""Table 2 — measured per-flow overhead of each technique category.

The paper's cost model: inert insertion costs k extra packets (k < 5),
splitting/reordering cost k*40 bytes of extra headers plus reassembly,
flushing costs t seconds (or one packet for the RST variant).  The harness
runs every technique against the testbed and aggregates the *measured*
overhead per category, checking it against those bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evasion import ALL_TECHNIQUES
from repro.envs import make_testbed
from repro.experiments.workloads import prepare
from repro.replay.session import ReplaySession


@dataclass
class OverheadRow:
    """Measured cost envelope for one taxonomy category."""

    category: str
    techniques: int
    max_packets: int
    max_bytes: int
    max_seconds: float
    description: str


CATEGORY_DESCRIPTIONS = {
    "inert-insertion": "Inject packet that either does not reach the server, or reaches but is dropped.",
    "splitting": "Divide a flow's payload into packets of different sizes from the original.",
    "reordering": "Reorder packets relative to the original flow.",
    "flushing": "Cause a classifier to flush its classification result.",
}


def run_table2(characterize: bool = False) -> list[OverheadRow]:
    """Measure every technique's overhead on the testbed workloads."""
    prep = prepare(make_testbed(), characterize=characterize)
    per_category: dict[str, list[tuple[int, int, float]]] = {}
    for technique in ALL_TECHNIQUES:
        protocol = "udp" if technique.protocol == "udp" else "tcp"
        trace = prep.udp_trace if protocol == "udp" else prep.tcp_trace
        context = prep.udp_context if protocol == "udp" else prep.tcp_context
        if not technique.applicable(context):
            continue
        outcome = ReplaySession(prep.env, trace).run(technique=technique, context=context)
        per_category.setdefault(technique.category, []).append(
            (outcome.overhead_packets, outcome.overhead_bytes, outcome.overhead_seconds)
        )
    rows = []
    for category, samples in per_category.items():
        rows.append(
            OverheadRow(
                category=category,
                techniques=len(samples),
                max_packets=max(p for p, _b, _s in samples),
                max_bytes=max(b for _p, b, _s in samples),
                max_seconds=max(s for _p, _b, s in samples),
                description=CATEGORY_DESCRIPTIONS.get(category, ""),
            )
        )
    order = ["inert-insertion", "splitting", "reordering", "flushing"]
    rows.sort(key=lambda r: order.index(r.category) if r.category in order else 9)
    return rows


def format_table2(rows: list[OverheadRow]) -> str:
    """Render the overhead table."""
    header = f"{'Technique':18s} {'#':>2s} {'pkts':>5s} {'bytes':>7s} {'secs':>7s}  Description"
    lines = [header, "-" * 100]
    for row in rows:
        lines.append(
            f"{row.category:18s} {row.techniques:2d} {row.max_packets:5d} "
            f"{row.max_bytes:7d} {row.max_seconds:7.1f}  {row.description}"
        )
    return "\n".join(lines)
