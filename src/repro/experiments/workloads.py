"""Canonical workloads and evasion contexts for the experiment harnesses.

One TCP trace and one UDP trace per environment, mirroring the recordings
the paper used (§6): HTTP video over the testbed/T-Mobile/AT&T, censored
websites for the GFC/Iran, and Skype/STUN for UDP.  Contexts are produced by
actually running lib·erate's characterization and localization phases — the
experiments measure the whole system, not hand-fed parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.characterization import CharacterizationError, Characterizer
from repro.core.evasion.base import EvasionContext
from repro.core.localization import locate_middlebox
from repro.core.report import CharacterizationReport
from repro.envs.base import Environment
from repro.traffic.http import http_get_trace
from repro.traffic.stun import stun_trace
from repro.traffic.trace import Trace
from repro.traffic.video import video_stream_trace

#: Environments whose middlebox classifies UDP traffic at all.
UDP_CLASSIFYING_ENVS = frozenset({"testbed"})


def tcp_workload(env_name: str) -> Trace:
    """The canonical TCP dialogue for one environment."""
    if env_name == "testbed":
        return http_get_trace("video.example.com", response_body=b"v" * 900)
    if env_name == "tmobile":
        return video_stream_trace(host="d1.cloudfront.net", total_bytes=250_000)
    if env_name == "gfc":
        return http_get_trace("economist.com", response_body=b"<html>news</html>" * 60)
    if env_name == "iran":
        return http_get_trace("facebook.com", response_body=b"<html>feed</html>" * 40)
    if env_name == "att":
        return video_stream_trace(
            host="video.nbcsports.com", total_bytes=300_000, name="nbcsports"
        )
    if env_name == "sprint":
        return video_stream_trace(host="d1.cloudfront.net", total_bytes=250_000)
    raise KeyError(env_name)


def udp_workload(env_name: str) -> Trace:
    """The canonical UDP dialogue (Skype/STUN) — identical everywhere."""
    return stun_trace()


@dataclass
class PreparedEnvironment:
    """An environment plus the phase-2/localization results for its workloads."""

    env: Environment
    tcp_trace: Trace
    udp_trace: Trace
    tcp_context: EvasionContext
    udp_context: EvasionContext
    characterization: CharacterizationReport | None
    hops: int | None


def prepare(
    env: Environment, characterize: bool = True, trials: int | None = None
) -> PreparedEnvironment:
    """Characterize + localize an environment's workloads, build contexts.

    With ``characterize=False`` (fast mode for unit tests) the contexts fall
    back to the environment's ground-truth hop count and a keyword guess
    from the trace, skipping the replay-heavy phases.

    *trials* is the per-probe repetition for noisy networks; it defaults to
    3 on a fault-injected environment and 1 (the historical single-shot
    path) otherwise.  On a noisy network a failed characterization degrades
    gracefully: it is retried with more trials and, failing that, falls back
    to the trace-derived context with a diagnostic note instead of raising.
    """
    if trials is None:
        trials = 3 if env.reliable_mode else 1
    tcp = tcp_workload(env.name)
    udp = udp_workload(env.name)
    characterization: CharacterizationReport | None = None
    hops: int | None = env.hops_to_middlebox

    if characterize and env.middlebox is not None:
        if trials > 1:
            characterization = _characterize_noisy(env, tcp, trials)
        else:
            characterization = Characterizer(env, tcp).run()
        located, _rounds = locate_middlebox(env, tcp, trials=trials)
        if located is not None:
            hops = located
        if characterization is not None:
            tcp_context = EvasionContext(
                matching_fields=characterization.matching_fields,
                packet_limit=characterization.packet_limit,
                inspects_all_packets=characterization.inspects_all_packets,
                match_and_forget=characterization.match_and_forget,
                middlebox_hops=hops,
                protocol="tcp",
            )
        else:
            tcp_context = _fallback_context(env, tcp, "tcp", hops)
    else:
        tcp_context = _fallback_context(env, tcp, "tcp", hops)

    udp_context = EvasionContext(
        matching_fields=[],  # the STUN rule is positional: packet 0
        packet_limit=6 if env.name in UDP_CLASSIFYING_ENVS else None,
        inspects_all_packets=False,
        match_and_forget=True,
        middlebox_hops=hops,
        protocol="udp",
    )
    return PreparedEnvironment(
        env=env,
        tcp_trace=tcp,
        udp_trace=udp,
        tcp_context=tcp_context,
        udp_context=udp_context,
        characterization=characterization,
        hops=hops,
    )


def _characterize_noisy(
    env: Environment, trace: Trace, trials: int
) -> CharacterizationReport | None:
    """Characterize on a lossy network, degrading gracefully on failure.

    A :class:`CharacterizationError` under faults usually means noise beat
    the vote; one retry with a larger trial count follows, and a second
    failure returns None so the caller falls back to the trace-derived
    context (with the failure surfaced as a diagnostic, never a crash).
    """
    try:
        return Characterizer(env, trace, trials=trials).run()
    except CharacterizationError:
        pass
    try:
        return Characterizer(env, trace, trials=trials + 2).run()
    except CharacterizationError as exc:
        import logging

        logging.getLogger(__name__).warning(
            "characterization failed twice on %s under faults (%s); "
            "falling back to the trace-derived context",
            env.name,
            exc,
        )
        return None


def _fallback_context(
    env: Environment, trace: Trace, protocol: str, hops: int | None
) -> EvasionContext:
    from repro.core.report import MatchingField

    fields = []
    payload = trace.client_payloads()[0] if trace.client_payloads() else b""
    host = trace.metadata.get("host", "")
    if host:
        index = payload.find(host.encode("ascii"))
        if index >= 0:
            fields.append(MatchingField(0, index, index + len(host), host.encode("ascii")))
    return EvasionContext(
        matching_fields=fields,
        packet_limit=4,
        inspects_all_packets=(env.name == "iran"),
        match_and_forget=(env.name != "iran"),
        middlebox_hops=hops,
        protocol=protocol,
    )
