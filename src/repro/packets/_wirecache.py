"""Invalidation-on-mutation serialization caches for packet dataclasses.

Packets traverse many simulated elements (routers, filters, shapers, the DPI
middlebox, endpoint stacks) and several of them need the packet's wire bytes
— for length/checksum validation, throughput accounting, or reassembly.
Re-serializing at every hop dominated the profile, so the packet dataclasses
memoize their serialized forms and drop the memo the moment any header field
is assigned.

The mechanism is a ``__setattr__`` override installed by
:func:`install_wire_cache`: assignments to declared dataclass fields clear
the named cache slots, while cache slots themselves (and any private
attribute) pass through untouched.  Caches default to ``None`` at class
level, so ``dataclasses.replace``-style copies start cold and can never
observe a stale value.
"""

from __future__ import annotations

from dataclasses import fields


def install_wire_cache(cls: type, cache_attrs: tuple[str, ...]) -> None:
    """Wire mutation-invalidated cache slots into dataclass *cls*.

    Args:
        cls: a dataclass whose instances cache serialized bytes.
        cache_attrs: attribute names used as cache slots; they are created
            as class-level ``None`` defaults and reset to ``None`` whenever
            any declared field of *cls* is assigned.
    """
    field_names = frozenset(f.name for f in fields(cls))

    def __setattr__(
        self,
        name: str,
        value: object,
        _fields: frozenset[str] = field_names,
        _caches: tuple[str, ...] = cache_attrs,
    ) -> None:
        # Caches live in the instance dict only once populated (the class
        # holds the None default), so invalidation is a conditional delete —
        # field assignment during __init__ stays nearly free.
        d = self.__dict__
        d[name] = value
        if name in _fields:
            for attr in _caches:
                if attr in d:
                    del d[attr]

    cls.__setattr__ = __setattr__  # type: ignore[method-assign]
    for attr in cache_attrs:
        setattr(cls, attr, None)
