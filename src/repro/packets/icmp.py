"""Minimal ICMP support: Time Exceeded and Destination Unreachable.

Routers in :mod:`repro.netsim` emit Time Exceeded messages when a packet's
TTL expires, which lib·erate's localization phase (traceroute-style probing,
§5.2 of the paper) relies on to find the middlebox hop distance.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.packets._wirecache import install_wire_cache
from repro.packets.checksum import internet_checksum

ICMP_PROTO = 1
ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACHABLE = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11


@dataclass
class ICMPMessage:
    """An ICMP message.

    Attributes:
        icmp_type: ICMP type number.
        code: ICMP code.
        rest: the 4 bytes following the checksum (identifier/sequence, unused
            for errors).
        payload: for error messages, the offending IP header + 8 bytes of its
            payload, as required by RFC 792.
    """

    icmp_type: int = ICMP_ECHO_REQUEST
    code: int = 0
    rest: bytes = b"\x00\x00\x00\x00"
    payload: bytes = b""

    def __post_init__(self) -> None:
        if len(self.rest) != 4:
            raise ValueError("ICMP 'rest of header' must be exactly 4 bytes")

    def to_bytes(self, src: str | None = None, dst: str | None = None) -> bytes:
        """Serialize with a correct checksum (src/dst accepted for API symmetry).

        ICMP checksums do not involve a pseudo-header, so the full wire form
        is memoized directly (invalidated on field mutation).
        """
        cached = self._wire_cache
        if cached is not None:
            return cached
        body = struct.pack("!BBH", self.icmp_type, self.code, 0) + self.rest + self.payload
        csum = internet_checksum(body)
        wire = body[:2] + struct.pack("!H", csum) + body[4:]
        object.__setattr__(self, "_wire_cache", wire)
        return wire

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ICMPMessage":
        """Parse an ICMP message from wire bytes."""
        if len(raw) < 8:
            raise ValueError("truncated ICMP message")
        icmp_type, code, _checksum = struct.unpack("!BBH", raw[:4])
        return cls(icmp_type=icmp_type, code=code, rest=raw[4:8], payload=raw[8:])

    @property
    def is_time_exceeded(self) -> bool:
        """True for TTL-expired notifications."""
        return self.icmp_type == ICMP_TIME_EXCEEDED

    def wire_length(self) -> int:
        """Serialized length in bytes."""
        return 8 + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ICMP(type={self.icmp_type} code={self.code})"


install_wire_cache(ICMPMessage, ("_wire_cache",))


def icmp_time_exceeded(original_header: bytes) -> ICMPMessage:
    """Build a Time Exceeded (TTL expired in transit) error for a dropped packet.

    *original_header* should be the first bytes of the offending packet
    (IP header + 8 payload bytes), per RFC 792.
    """
    return ICMPMessage(
        icmp_type=ICMP_TIME_EXCEEDED,
        code=0,
        rest=b"\x00\x00\x00\x00",
        payload=original_header[:28],
    )
