"""Batched wire serialization for packet collections.

Replay observation, pcap export and path delivery all serialize *many*
packets at once — usually long runs of plain TCP/UDP packets that share the
same (src, dst) pair.  :func:`serialize_batch` exploits that shape: the
pseudo-header prefix and address bytes are computed once per endpoint pair,
checksums are folded over memo-warm zero-wires, and every result is written
back into the per-object wire caches so later ``to_bytes()`` calls hit.

Exact-equivalence contract: for every packet, the produced bytes are
byte-identical to ``packet.to_bytes()`` — anything whose shape the fast path
does not cover (header overrides, IP options, fragments, raw/ICMP
transports, explicit checksums) falls back to ``to_bytes()`` itself.
"""

from __future__ import annotations

import struct

from repro.obs import metrics as obs_metrics
from repro.packets.checksum import internet_checksum, ip_to_bytes
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCP_PROTO, TCPSegment
from repro.packets.udp import UDP_PROTO, UDPDatagram

_PACK_BBH = struct.Struct("!BBH").pack
_PACK_H = struct.Struct("!H").pack
_PACK_IP = struct.Struct("!BBHHHBBH").pack


def _plain_shape(packet: IPPacket) -> bool:
    """True when the fast path reproduces ``to_bytes()`` exactly.

    Pristine IP header (every override field at its auto-computed default,
    no options) wrapping a typed TCP/UDP transport whose checksum is
    computed, not frozen.  A UDP length override is fine: both the
    pseudo-header and the IP total length use the actual serialized size,
    exactly as ``to_bytes()`` does.
    """
    if (
        packet.version != 4
        or packet.ihl is not None
        or packet.total_length is not None
        or packet.protocol is not None
        or packet.checksum is not None
        or packet.options
    ):
        return False
    transport = packet.transport
    if type(transport) is TCPSegment:
        return transport.checksum is None
    if type(transport) is UDPDatagram:
        return transport.checksum is None
    return False


def serialize_batch(
    packets: list[IPPacket], *, lenient: bool = False
) -> list[bytes | None]:
    """Serialize *packets* to wire bytes, sharing work across the batch.

    Returns one entry per input packet, in order.  With ``lenient=True``,
    packets that cannot be serialized (deliberately malformed crafted
    packets) yield ``None`` instead of raising.

    Every produced byte string equals the packet's own ``to_bytes()``
    result, and both the transport's and the packet's wire memos are warmed,
    so interleaved per-packet serialization stays consistent.
    """
    if obs_metrics.METRICS is not None:
        # The per-packet path counts wirecache hits/misses; bypassing it
        # would skew those metrics, so batch mode defers when they're live.
        return _fallback_batch(packets, lenient)

    out: list[bytes | None] = []
    # Shared per-(src, dst) state: address bytes and pseudo-header prefix.
    pair_key: tuple[str, str] | None = None
    addr_bytes = b""
    for packet in packets:
        if not _plain_shape(packet):
            out.append(_serialize_one(packet, lenient))
            continue
        src = packet.src
        dst = packet.dst
        transport = packet.transport
        proto = TCP_PROTO if type(transport) is TCPSegment else UDP_PROTO
        try:
            if (src, dst) != pair_key:
                addr_bytes = ip_to_bytes(src) + ip_to_bytes(dst)
                pair_key = (src, dst)
            # Transport bytes: reuse the per-(src, dst) memo, else compute
            # over the shared pseudo-header prefix and warm the memo.
            cached = transport._wire_cache
            if cached is not None and cached[0] == pair_key:
                seg = cached[1]
            else:
                zero = transport._wire_zero()
                csum = internet_checksum(
                    addr_bytes + _PACK_BBH(0, proto, len(zero)) + zero
                )
                if proto == TCP_PROTO:
                    seg = zero[:16] + _PACK_H(csum) + zero[18:]
                else:
                    if csum == 0:
                        csum = 0xFFFF  # RFC 768: zero means "no checksum"
                    seg = zero[:6] + _PACK_H(csum) + zero[8:]
                object.__setattr__(transport, "_wire_cache", (pair_key, seg))
        except (ValueError, OverflowError):
            if not lenient:
                raise
            out.append(None)
            continue
        # IP header: pristine shape means IHL 5, version 4, derived
        # protocol, computed total length and checksum.
        flags_frag = (0x4000 if packet.df else 0) | (0x2000 if packet.mf else 0)
        flags_frag |= packet.frag_offset & 0x1FFF
        header0 = (
            _PACK_IP(
                0x45,
                packet.tos,
                (20 + len(seg)) & 0xFFFF,
                packet.identification,
                flags_frag,
                packet.ttl & 0xFF,
                proto,
                0,
            )
            + addr_bytes
        )
        wire = header0[:10] + _PACK_H(internet_checksum(header0)) + header0[12:] + seg
        object.__setattr__(packet, "_wire_cache", (seg, wire))
        out.append(wire)
    return out


def _serialize_one(packet: IPPacket, lenient: bool) -> bytes | None:
    try:
        return packet.to_bytes()
    except (ValueError, OverflowError):
        if not lenient:
            raise
        return None


def _fallback_batch(packets: list[IPPacket], lenient: bool) -> list[bytes | None]:
    return [_serialize_one(p, lenient) for p in packets]


def concat_wire_bytes(packets: list[IPPacket]) -> bytes:
    """All serializable packets' wire bytes, concatenated in order.

    Unserializable crafted packets are skipped — the marker-scan and
    replay-progress checks that call this only care about the byte stream
    that actually made it onto the wire.
    """
    return b"".join(wire for wire in serialize_batch(packets, lenient=True) if wire)
