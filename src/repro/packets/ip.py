"""IPv4 packet construction and parsing.

``IPPacket`` is the unit that travels through the simulated network.  Header
fields that default to ``None`` (``ihl``, ``total_length``, ``protocol``,
``checksum``) are computed on serialization; explicit values freeze arbitrary
— possibly invalid — numbers on the wire.  That override mechanism is the
foundation of the *inert packet insertion* taxonomy (paper §4.3, Table 3).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, fields, replace

from repro.obs import metrics as obs_metrics
from repro.packets._wirecache import install_wire_cache
from repro.packets.checksum import bytes_to_ip, internet_checksum, ip_to_bytes
from repro.packets.icmp import ICMP_PROTO, ICMPMessage
from repro.packets.options import options_are_wellformed, options_contain_deprecated
from repro.packets.tcp import TCP_PROTO, TCPSegment
from repro.packets.udp import UDP_PROTO, UDPDatagram

IP_HEADER_MIN = 20

Transport = TCPSegment | UDPDatagram | ICMPMessage | bytes


class IPProto(enum.IntEnum):
    """IP protocol numbers used in this reproduction."""

    ICMP = ICMP_PROTO
    TCP = TCP_PROTO
    UDP = UDP_PROTO


_PROTO_FOR_TYPE: dict[type, int] = {
    TCPSegment: TCP_PROTO,
    UDPDatagram: UDP_PROTO,
    ICMPMessage: ICMP_PROTO,
}


@dataclass
class IPPacket:
    """An IPv4 packet wrapping a transport-layer payload.

    Attributes:
        src: dotted-quad source address.
        dst: dotted-quad destination address.
        transport: a :class:`TCPSegment`, :class:`UDPDatagram`,
            :class:`ICMPMessage`, or raw ``bytes`` (used for fragments).
        ttl: time-to-live; decremented by each router hop in the simulator.
        version: IP version field; 4 unless crafting an invalid packet.
        ihl: header length in 32-bit words; ``None`` computes it.
        tos: type-of-service byte.
        total_length: header+payload length field; ``None`` computes it.
        identification: fragment identification.
        df / mf: Don't Fragment / More Fragments flags.
        frag_offset: fragment offset in 8-byte units.
        protocol: protocol number; ``None`` derives it from *transport*.
        checksum: header checksum; ``None`` computes it.
        options: raw IP option bytes (padded to 4-byte multiple on wire).
    """

    src: str
    dst: str
    transport: Transport = b""
    ttl: int = 64
    version: int = 4
    ihl: int | None = None
    tos: int = 0
    total_length: int | None = None
    identification: int = 0
    df: bool = False
    mf: bool = False
    frag_offset: int = 0
    protocol: int | None = None
    checksum: int | None = None
    options: bytes = b""

    # ------------------------------------------------------------------
    # derived header fields
    # ------------------------------------------------------------------
    @property
    def padded_options(self) -> bytes:
        """IP options padded with zero bytes to a 4-byte boundary."""
        remainder = len(self.options) % 4
        if remainder:
            return self.options + b"\x00" * (4 - remainder)
        return self.options

    @property
    def header_length(self) -> int:
        """Actual serialized header length in bytes (ignores IHL override)."""
        length = len(self.options)
        return IP_HEADER_MIN + length + (-length % 4)

    @property
    def effective_ihl(self) -> int:
        """The IHL field value that will appear on the wire."""
        if self.ihl is not None:
            return self.ihl
        return self.header_length // 4

    @property
    def effective_protocol(self) -> int:
        """The protocol field value that will appear on the wire."""
        if self.protocol is not None:
            return self.protocol
        number = _PROTO_FOR_TYPE.get(type(self.transport))
        if number is not None:
            return number
        for klass, proto in _PROTO_FOR_TYPE.items():  # transport subclasses
            if isinstance(self.transport, klass):
                return proto
        return 0xFF  # raw bytes with no declared protocol

    @property
    def payload_bytes(self) -> bytes:
        """The serialized transport payload (checksums computed in context)."""
        if isinstance(self.transport, bytes):
            return self.transport
        return self.transport.to_bytes(self.src, self.dst)

    @property
    def effective_total_length(self) -> int:
        """The total-length field value that will appear on the wire."""
        if self.total_length is not None:
            return self.total_length
        return self.wire_length()

    def wire_length(self) -> int:
        """Actual number of bytes the packet occupies on the wire.

        Computed arithmetically — every transport knows its serialized
        length without serializing, which keeps the per-hop validation and
        shaping paths free of wire encoding.
        """
        length = len(self.options)
        header = IP_HEADER_MIN + length + (-length % 4)
        transport = self.transport
        if isinstance(transport, bytes):
            return header + len(transport)
        return header + transport.wire_length()

    # ------------------------------------------------------------------
    # typed transport accessors
    # ------------------------------------------------------------------
    @property
    def tcp(self) -> TCPSegment | None:
        """The TCP segment, or None if the payload is not parsed TCP."""
        return self.transport if isinstance(self.transport, TCPSegment) else None

    @property
    def udp(self) -> UDPDatagram | None:
        """The UDP datagram, or None if the payload is not parsed UDP."""
        return self.transport if isinstance(self.transport, UDPDatagram) else None

    @property
    def icmp(self) -> ICMPMessage | None:
        """The ICMP message, or None if the payload is not parsed ICMP."""
        return self.transport if isinstance(self.transport, ICMPMessage) else None

    @property
    def is_fragment(self) -> bool:
        """True when the packet is one fragment of a larger datagram."""
        return self.mf or self.frag_offset > 0

    @property
    def app_payload(self) -> bytes:
        """Application bytes carried by the transport layer (empty for ICMP/raw)."""
        if isinstance(self.transport, (TCPSegment, UDPDatagram)):
            return self.transport.payload
        return b""

    # ------------------------------------------------------------------
    # validity predicates — used by middlebox/OS validation models
    # ------------------------------------------------------------------
    def has_valid_version(self) -> bool:
        """True when the version field is 4."""
        return self.version == 4

    def has_valid_ihl(self) -> bool:
        """True when the IHL matches the actual header length."""
        if self.ihl is None:
            return True  # computed IHL is header_length // 4, always consistent
        return self.ihl * 4 == self.header_length and self.ihl >= 5

    def has_valid_total_length(self) -> bool:
        """True when the total-length field matches the actual wire length."""
        if self.total_length is None:
            return True  # computed on serialization, always consistent
        return self.total_length == self.wire_length()

    def total_length_too_long(self) -> bool:
        """True when the declared total length exceeds the actual bytes."""
        if self.total_length is None:
            return False
        return self.total_length > self.wire_length()

    def total_length_too_short(self) -> bool:
        """True when the declared total length understates the actual bytes."""
        if self.total_length is None:
            return False
        return self.total_length < self.wire_length()

    def has_valid_checksum(self) -> bool:
        """True when the header checksum is correct (or auto-computed)."""
        if self.checksum is None:
            return True
        expected = internet_checksum(self._header_zero())
        return expected == self.checksum

    def has_wellformed_options(self) -> bool:
        """True when the IP option list is structurally valid."""
        return options_are_wellformed(self.padded_options)

    def has_deprecated_options(self) -> bool:
        """True when the option list contains RFC 6814-deprecated options."""
        return options_contain_deprecated(self.padded_options)

    def has_known_protocol(self) -> bool:
        """True when the declared protocol is ICMP, TCP or UDP."""
        return self.effective_protocol in (ICMP_PROTO, TCP_PROTO, UDP_PROTO)

    def protocol_matches_transport(self) -> bool:
        """True when the declared protocol agrees with the parsed transport."""
        if isinstance(self.transport, bytes):
            return True  # nothing to contradict
        return self.effective_protocol == _PROTO_FOR_TYPE[type(self.transport)]

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def _header_bytes(self, checksum: int) -> bytes:
        flags_frag = (0x4000 if self.df else 0) | (0x2000 if self.mf else 0)
        flags_frag |= self.frag_offset & 0x1FFF
        return (
            struct.pack(
                "!BBHHHBBH",
                ((self.version & 0xF) << 4) | (self.effective_ihl & 0xF),
                self.tos,
                self.effective_total_length & 0xFFFF,
                self.identification & 0xFFFF,
                flags_frag,
                self.ttl & 0xFF,
                self.effective_protocol & 0xFF,
                checksum,
            )
            + ip_to_bytes(self.src)
            + ip_to_bytes(self.dst)
            + self.padded_options
        )

    def _header_zero(self) -> bytes:
        """Serialized header with a zero checksum field (memoized).

        IP header fields live on this object (mutations invalidate via
        ``__setattr__``), but the total-length field also depends on the
        transport object, which can be mutated behind our back.  The memo is
        therefore keyed on the identity of the transport's serialized bytes:
        the transport's own cache returns the same object until it is
        mutated, so a stale header can never be observed.
        """
        payload = self.payload_bytes
        cached = self._hdr0_cache
        if cached is not None and cached[0] is payload:
            return cached[1]
        header0 = self._header_bytes(checksum=0)
        object.__setattr__(self, "_hdr0_cache", (payload, header0))
        return header0

    def to_bytes(self) -> bytes:
        """Serialize the full packet (header + transport) to wire bytes."""
        payload = self.payload_bytes
        cached = self._wire_cache
        metrics = obs_metrics.METRICS
        if cached is not None and cached[0] is payload:
            if metrics is not None:
                metrics.inc("wirecache.hits")
            return cached[1]
        if metrics is not None:
            metrics.inc("wirecache.misses")
        header0 = self._header_zero()
        if self.checksum is not None:
            csum = self.checksum
        else:
            csum = internet_checksum(header0)
        wire = header0[:10] + struct.pack("!H", csum) + header0[12:] + payload
        object.__setattr__(self, "_wire_cache", (payload, wire))
        return wire

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IPPacket":
        """Parse a packet from wire bytes.

        The transport layer is parsed into a typed object only for complete
        (non-fragmented) TCP/UDP/ICMP datagrams; anything else stays raw.
        """
        if len(raw) < IP_HEADER_MIN:
            raise ValueError("truncated IP header")
        ver_ihl, tos, total_length, identification, flags_frag, ttl, protocol, checksum = (
            struct.unpack("!BBHHHBBH", raw[:12])
        )
        version = ver_ihl >> 4
        ihl = ver_ihl & 0xF
        header_len = max(ihl * 4, IP_HEADER_MIN)
        if header_len > len(raw):
            raise ValueError("IHL overruns packet")
        src = bytes_to_ip(raw[12:16])
        dst = bytes_to_ip(raw[16:20])
        options = raw[IP_HEADER_MIN:header_len]
        body = raw[header_len:]
        mf = bool(flags_frag & 0x2000)
        frag_offset = flags_frag & 0x1FFF
        transport: Transport = body
        if not mf and frag_offset == 0:
            try:
                if protocol == TCP_PROTO:
                    transport = TCPSegment.from_bytes(body)
                elif protocol == UDP_PROTO:
                    transport = UDPDatagram.from_bytes(body)
                elif protocol == ICMP_PROTO:
                    transport = ICMPMessage.from_bytes(body)
            except ValueError:
                transport = body
        return cls(
            src=src,
            dst=dst,
            transport=transport,
            ttl=ttl,
            version=version,
            ihl=ihl,
            tos=tos,
            total_length=total_length,
            identification=identification,
            df=bool(flags_frag & 0x4000),
            mf=mf,
            frag_offset=frag_offset,
            protocol=protocol,
            checksum=checksum,
            options=options,
        )

    def copy(self, **changes: object) -> "IPPacket":
        """Return a copy with *changes* applied.

        The transport object is also copied when it is a dataclass, so the
        copy can be mutated independently.  This is the per-hop hot path, so
        the copy is a direct instance-dict clone rather than
        ``dataclasses.replace`` (``IPPacket`` has no ``__post_init__``, and
        the source's fields already satisfy every invariant).  Cloning the
        dict also carries the transport's memoized wire bytes — valid on a
        field-identical copy — while the IP-level header/wire caches are
        dropped (a copy almost always changes header fields).
        """
        if changes and not _FIELD_NAMES.issuperset(changes):
            bad = ", ".join(sorted(set(changes) - _FIELD_NAMES))
            raise TypeError(f"unknown IPPacket field(s): {bad}")
        new = object.__new__(IPPacket)
        d = new.__dict__
        d.update(self.__dict__)
        d.pop("_hdr0_cache", None)
        d.pop("_wire_cache", None)
        d.update(changes)
        transport = d["transport"]
        if "transport" not in changes and not isinstance(transport, bytes):
            fresh = object.__new__(type(transport))
            fresh.__dict__.update(transport.__dict__)
            d["transport"] = fresh
        flow = d.get("_flow_cache")
        if flow is not None:
            # The memoized flow key survives copies that leave the flow
            # identity alone (the per-hop TTL decrement), re-keyed onto the
            # cloned transport; any flow-identity change drops it.
            if changes and not _FLOW_FIELDS.isdisjoint(changes):
                del d["_flow_cache"]
            elif d["transport"] is not flow[0]:
                d["_flow_cache"] = (d["transport"], flow[1])
        return new

    def decremented(self, hops: int = 1) -> "IPPacket":
        """The packet *hops* router hops later: TTL − hops, checksum recomputed.

        Dedicated clone for the router-hop fast path — the single most
        frequent packet operation in the simulator.  Unlike :meth:`copy`
        the transport object is *shared*, not cloned: no element mutates a
        transport in place (mutators like ``TCPChecksumNormalizer`` take a
        :meth:`copy`, which clones, first), and sharing keeps one set of
        memoized wire bytes per transport across the whole path.
        """
        new = object.__new__(IPPacket)
        d = self.__dict__.copy()
        d.pop("_hdr0_cache", None)
        d.pop("_wire_cache", None)
        d["ttl"] = self.ttl - hops
        d["checksum"] = None
        object.__setattr__(new, "__dict__", d)
        return new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IP({self.src}->{self.dst} ttl={self.ttl} proto={self.effective_protocol} {self.transport!r})"


install_wire_cache(IPPacket, ("_hdr0_cache", "_wire_cache", "_flow_cache"))

_FIELD_NAMES = frozenset(f.name for f in fields(IPPacket))
#: Fields that participate in flow identity (see FiveTuple.of's packet memo).
_FLOW_FIELDS = frozenset({"src", "dst", "transport", "protocol"})


def fast_packet(src: str, dst: str, transport: Transport, ttl: int = 64) -> IPPacket:
    """Build a pristine IPv4 packet without ``__init__``/validation overhead.

    For hot paths that wrap already-validated transports (endpoint stacks
    emitting ACKs and data): one dict display instead of the dataclass
    constructor's per-field ``__setattr__`` walk.  Every header field takes
    its auto-computed default; callers needing overrides use the
    constructor or copy().
    """
    packet = object.__new__(IPPacket)
    object.__setattr__(packet, "__dict__", {
        "src": src,
        "dst": dst,
        "transport": transport,
        "ttl": ttl,
        "version": 4,
        "ihl": None,
        "tos": 0,
        "total_length": None,
        "identification": 0,
        "df": False,
        "mf": False,
        "frag_offset": 0,
        "protocol": None,
        "checksum": None,
        "options": b"",
    })
    return packet


# fast_packet's dict display must cover exactly the dataclass fields;
# this trips at import time if a field is ever added or renamed.
assert set(fast_packet("0.0.0.0", "0.0.0.0", b"").__dict__) == _FIELD_NAMES
