"""TCP segment construction and parsing.

``TCPSegment`` keeps header fields as attributes and serializes bit-exactly.
Fields whose default is ``None`` (``data_offset``, ``checksum``) are computed
on serialization; setting them explicitly freezes an arbitrary — possibly
invalid — value, which is how the TCP inert-packet techniques are crafted.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, fields

from repro.packets._wirecache import install_wire_cache
from repro.packets.checksum import internet_checksum, pseudo_header

TCP_PROTO = 6
TCP_HEADER_MIN = 20

_EXPLICIT = object()  # _wire_cache key for serializations with an overridden checksum


class TCPFlags(enum.IntFlag):
    """TCP control flags (RFC 793 plus ECN bits)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80

    def is_valid_combination(self) -> bool:
        """Return False for nonsensical flag combinations (e.g. SYN|FIN).

        The check mirrors what strict stacks and NIDS normalizers reject:
        SYN together with FIN or RST, a segment with no flags at all, or the
        "christmas tree" pattern with every flag lit.
        """
        # Plain int arithmetic: this runs per packet in strict-carrier
        # filters, and IntFlag operators re-wrap every result.
        value = int(self)
        if not value:
            return False
        if value & 0x02 and value & 0x05:  # SYN with FIN or RST
            return False
        if value & 0x04 and value & 0x01:  # RST with FIN
            return False
        if value & 0x3F == 0x3F:  # FIN|SYN|RST|PSH|ACK|URG all lit
            return False
        return True


@dataclass
class TCPSegment:
    """A TCP segment.

    Attributes:
        sport: source port.
        dport: destination port.
        seq: sequence number.
        ack: acknowledgment number.
        flags: :class:`TCPFlags` combination.
        window: receive window.
        urgent: urgent pointer.
        options: raw TCP option bytes (padded to 4-byte multiple on wire).
        payload: application bytes carried by the segment.
        data_offset: header length in 32-bit words; ``None`` computes the
            correct value, an explicit value may declare an invalid offset.
        checksum: ``None`` computes the correct value against the enclosing
            IP pseudo-header; an explicit value is emitted verbatim.
    """

    sport: int = 0
    dport: int = 0
    seq: int = 0
    ack: int = 0
    flags: TCPFlags = TCPFlags.ACK
    window: int = 65535
    urgent: int = 0
    options: bytes = b""
    payload: bytes = b""
    data_offset: int | None = None
    checksum: int | None = None

    def __post_init__(self) -> None:
        if type(self.flags) is not TCPFlags:
            self.flags = TCPFlags(self.flags)
        for name in ("sport", "dport"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"{name} out of range: {value}")
        self.seq &= 0xFFFFFFFF
        self.ack &= 0xFFFFFFFF

    @property
    def padded_options(self) -> bytes:
        """Options padded with zero bytes to a 4-byte boundary."""
        remainder = len(self.options) % 4
        if remainder:
            return self.options + b"\x00" * (4 - remainder)
        return self.options

    @property
    def effective_data_offset(self) -> int:
        """The data offset that will appear on the wire."""
        if self.data_offset is not None:
            return self.data_offset
        return (TCP_HEADER_MIN + len(self.padded_options)) // 4

    @property
    def header_length(self) -> int:
        """Actual serialized header length in bytes (ignores overrides)."""
        length = len(self.options)
        return TCP_HEADER_MIN + length + (-length % 4)

    def wire_length(self) -> int:
        """Total serialized length: header plus payload.

        Inlined arithmetic rather than going through ``header_length``:
        shapers call this once per packet per hop.
        """
        length = len(self.options)
        return TCP_HEADER_MIN + length + (-length % 4) + len(self.payload)

    def has_valid_data_offset(self) -> bool:
        """True when the declared data offset matches the actual header."""
        return self.effective_data_offset * 4 == self.header_length

    def _wire_zero(self) -> bytes:
        """Serialized segment with a zero checksum field (memoized)."""
        cached = self._wire0_cache
        if cached is not None:
            return cached
        header = struct.pack(
            "!HHIIHHHH",
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            (self.effective_data_offset & 0xF) << 12 | (int(self.flags) & 0xFF),
            self.window,
            0,
            self.urgent,
        )
        segment = header + self.padded_options + self.payload
        object.__setattr__(self, "_wire0_cache", segment)
        return segment

    def to_bytes(self, src: str | None = None, dst: str | None = None) -> bytes:
        """Serialize the segment.

        When *src* and *dst* are given and ``checksum`` is ``None`` the
        correct checksum is computed over the pseudo-header; otherwise a
        checksum of zero (or the explicit override) is emitted.  The result
        is memoized per (src, dst) and invalidated on field mutation.
        """
        if self.checksum is not None:
            cached = self._wire_cache
            if cached is not None and cached[0] is _EXPLICIT:
                return cached[1]
            segment = self._wire_zero()
            wire = segment[:16] + struct.pack("!H", self.checksum) + segment[18:]
            object.__setattr__(self, "_wire_cache", (_EXPLICIT, wire))
            return wire
        if src is not None and dst is not None:
            cached = self._wire_cache
            if cached is not None and cached[0] == (src, dst):
                return cached[1]
            segment = self._wire_zero()
            pseudo = pseudo_header(src, dst, TCP_PROTO, len(segment))
            csum = internet_checksum(pseudo + segment)
            wire = segment[:16] + struct.pack("!H", csum) + segment[18:]
            object.__setattr__(self, "_wire_cache", ((src, dst), wire))
            return wire
        return self._wire_zero()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "TCPSegment":
        """Parse a segment from wire bytes.

        The declared data offset is honored when splitting header from
        payload; a declared offset that overruns the buffer raises
        ``ValueError`` (matching what a stack would reject).
        """
        if len(raw) < TCP_HEADER_MIN:
            raise ValueError("truncated TCP header")
        sport, dport, seq, ack, off_flags, window, checksum, urgent = struct.unpack(
            "!HHIIHHHH", raw[:TCP_HEADER_MIN]
        )
        data_offset = off_flags >> 12
        flags = TCPFlags(off_flags & 0xFF)
        header_len = data_offset * 4
        if header_len < TCP_HEADER_MIN or header_len > len(raw):
            raise ValueError(f"invalid data offset {data_offset}")
        options = raw[TCP_HEADER_MIN:header_len]
        payload = raw[header_len:]
        return cls(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            options=options,
            payload=payload,
            data_offset=data_offset,
            checksum=checksum,
        )

    def verify_checksum(self, src: str, dst: str) -> bool:
        """Check whether the segment's checksum is correct for *src*/*dst*.

        A ``None`` checksum (not yet serialized) counts as correct since
        serialization would fill in the right value.
        """
        if self.checksum is None:
            return True
        cached = self._csum_cache
        if cached is not None and cached[0] == (src, dst):
            return cached[1]
        segment = self._wire_zero()
        pseudo = pseudo_header(src, dst, TCP_PROTO, len(segment))
        ok = internet_checksum(pseudo + segment) == self.checksum
        object.__setattr__(self, "_csum_cache", ((src, dst), ok))
        return ok

    def copy(self, **changes: object) -> "TCPSegment":
        """Return a copy with *changes* applied.

        Equivalent to ``dataclasses.replace`` but built as a direct
        instance-dict clone (this is the per-packet construction hot path):
        unchanged fields already satisfy every ``__post_init__`` invariant,
        so only the changed ones are re-validated.
        """
        if changes and not _FIELD_NAMES.issuperset(changes):
            bad = ", ".join(sorted(set(changes) - _FIELD_NAMES))
            raise TypeError(f"unknown TCPSegment field(s): {bad}")
        new = object.__new__(TCPSegment)
        d = new.__dict__
        d.update(self.__dict__)
        d.pop("_wire0_cache", None)
        d.pop("_wire_cache", None)
        d.pop("_csum_cache", None)
        if changes:
            d.update(changes)
            if "flags" in changes and type(d["flags"]) is not TCPFlags:
                d["flags"] = TCPFlags(d["flags"])
            for name in ("sport", "dport"):
                if name in changes and not 0 <= d[name] <= 0xFFFF:
                    raise ValueError(f"{name} out of range: {d[name]}")
            if "seq" in changes:
                d["seq"] &= 0xFFFFFFFF
            if "ack" in changes:
                d["ack"] &= 0xFFFFFFFF
        return new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TCP({self.sport}->{self.dport} seq={self.seq} ack={self.ack} "
            f"flags={self.flags!r} len={len(self.payload)})"
        )


install_wire_cache(TCPSegment, ("_wire0_cache", "_wire_cache", "_csum_cache"))

_FIELD_NAMES = frozenset(f.name for f in fields(TCPSegment))


def fast_segment(
    sport: int,
    dport: int,
    seq: int,
    ack: int,
    flags: TCPFlags = TCPFlags.ACK,
    payload: bytes = b"",
) -> TCPSegment:
    """Build a plain segment without ``__init__``/validation overhead.

    For hot paths that construct segments from already-validated values
    (established connections): one dict display instead of the dataclass
    constructor's per-field ``__setattr__`` walk.  Every other field takes
    its default; callers needing overrides use the constructor or copy().
    """
    segment = object.__new__(TCPSegment)
    object.__setattr__(segment, "__dict__", {
        "sport": sport,
        "dport": dport,
        "seq": seq,
        "ack": ack,
        "flags": flags,
        "window": 65535,
        "urgent": 0,
        "options": b"",
        "payload": payload,
        "data_offset": None,
        "checksum": None,
    })
    return segment


# fast_segment's dict display must cover exactly the dataclass fields;
# this trips at import time if a field is ever added or renamed.
assert set(fast_segment(0, 0, 0, 0).__dict__) == _FIELD_NAMES
