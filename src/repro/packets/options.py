"""IPv4 option encoding, including the invalid/deprecated options lib·erate injects.

The *IP Invalid Options* and *IP Deprecated Options* rows of the paper's
Table 3 rely on options that middleboxes and server OSes treat differently
(Honda et al. showed middleboxes often mishandle header options).  We provide
constructors for well-formed, deprecated and outright malformed options.
"""

from __future__ import annotations

import struct

# Option type numbers (copied flag << 7 | class << 5 | number).
IPOPT_EOL = 0
IPOPT_NOP = 1
IPOPT_SECURITY = 130  # deprecated (RFC 791 security option, obsoleted by RFC 1108)
IPOPT_LSRR = 131
IPOPT_STREAM_ID = 136  # deprecated by RFC 6814
IPOPT_SSRR = 137
IPOPT_RECORD_ROUTE = 7
IPOPT_TIMESTAMP = 68

#: Option numbers formally deprecated by RFC 6814.
DEPRECATED_OPTION_TYPES = frozenset({IPOPT_SECURITY, IPOPT_STREAM_ID})


def pad_options(options: bytes) -> bytes:
    """Pad *options* with EOL bytes to a multiple of four, as the IHL requires."""
    remainder = len(options) % 4
    if remainder:
        options += b"\x00" * (4 - remainder)
    return options


def nop_padding(count: int = 4) -> bytes:
    """Return *count* NOP option bytes — valid, innocuous options."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return bytes([IPOPT_NOP]) * count


def record_route_option(slots: int = 3) -> bytes:
    """Return a valid Record Route option with *slots* empty address slots."""
    if not 1 <= slots <= 9:
        raise ValueError("record route supports 1-9 slots")
    length = 3 + 4 * slots
    return pad_options(struct.pack("!BBB", IPOPT_RECORD_ROUTE, length, 4) + b"\x00" * (4 * slots))


def deprecated_ip_option() -> bytes:
    """Return a syntactically valid but deprecated Stream ID option (RFC 6814)."""
    return pad_options(struct.pack("!BBH", IPOPT_STREAM_ID, 4, 0x1234))


def invalid_ip_option() -> bytes:
    """Return a malformed option: unknown type with a length that overruns.

    The declared length (40) exceeds the actual option bytes present, which is
    exactly the kind of inconsistency the paper found middleboxes fail to
    validate while most server OSes drop the packet.
    """
    return pad_options(struct.pack("!BB", 0x99, 40) + b"\x00\x00")


def options_are_wellformed(options: bytes) -> bool:
    """Walk an option list and check structural validity.

    Returns False for unknown option types with bad lengths, lengths that
    overrun the option area, or lengths below the 2-byte minimum.
    """
    i = 0
    n = len(options)
    while i < n:
        opt_type = options[i]
        if opt_type == IPOPT_EOL:
            return True
        if opt_type == IPOPT_NOP:
            i += 1
            continue
        if i + 1 >= n:
            return False
        length = options[i + 1]
        if length < 2 or i + length > n:
            return False
        i += length
    return True


def options_contain_deprecated(options: bytes) -> bool:
    """Return True when the option list contains an RFC 6814 deprecated option."""
    i = 0
    n = len(options)
    while i < n:
        opt_type = options[i]
        if opt_type == IPOPT_EOL:
            return False
        if opt_type == IPOPT_NOP:
            i += 1
            continue
        if opt_type in DEPRECATED_OPTION_TYPES:
            return True
        if i + 1 >= n:
            return False
        length = options[i + 1]
        if length < 2:
            return False
        i += length
    return False
