"""UDP datagram construction and parsing.

The ``length`` and ``checksum`` fields accept explicit overrides so callers
can craft the *UDP Length longer/shorter than payload* and *UDP Invalid
Checksum* inert packets from the paper's Table 3.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, fields

from repro.packets._wirecache import install_wire_cache
from repro.packets.checksum import internet_checksum, pseudo_header

UDP_PROTO = 17
UDP_HEADER_LEN = 8

_EXPLICIT = object()  # _wire_cache key for serializations with an overridden checksum


@dataclass
class UDPDatagram:
    """A UDP datagram.

    Attributes:
        sport: source port.
        dport: destination port.
        payload: application bytes.
        length: ``None`` computes header+payload; an explicit value is
            emitted verbatim (possibly inconsistent with the payload).
        checksum: ``None`` computes the correct value against the enclosing
            IP pseudo-header; an explicit value is emitted verbatim.
    """

    sport: int = 0
    dport: int = 0
    payload: bytes = b""
    length: int | None = None
    checksum: int | None = None

    def __post_init__(self) -> None:
        for name in ("sport", "dport"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"{name} out of range: {value}")

    @property
    def effective_length(self) -> int:
        """The length field value that will appear on the wire."""
        if self.length is not None:
            return self.length
        return UDP_HEADER_LEN + len(self.payload)

    def wire_length(self) -> int:
        """Actual serialized length (header + payload, ignoring overrides)."""
        return UDP_HEADER_LEN + len(self.payload)

    def has_valid_length(self) -> bool:
        """True when the declared length matches header + payload exactly."""
        return self.effective_length == self.wire_length()

    def _wire_zero(self) -> bytes:
        """Serialized datagram with a zero checksum field (memoized)."""
        cached = self._wire0_cache
        if cached is not None:
            return cached
        header = struct.pack("!HHHH", self.sport, self.dport, self.effective_length & 0xFFFF, 0)
        datagram = header + self.payload
        object.__setattr__(self, "_wire0_cache", datagram)
        return datagram

    def to_bytes(self, src: str | None = None, dst: str | None = None) -> bytes:
        """Serialize the datagram, computing the checksum when possible.

        The result is memoized per (src, dst) and invalidated when any field
        is assigned.
        """
        if self.checksum is not None:
            cached = self._wire_cache
            if cached is not None and cached[0] is _EXPLICIT:
                return cached[1]
            datagram = self._wire_zero()
            wire = datagram[:6] + struct.pack("!H", self.checksum) + datagram[8:]
            object.__setattr__(self, "_wire_cache", (_EXPLICIT, wire))
            return wire
        if src is not None and dst is not None:
            cached = self._wire_cache
            if cached is not None and cached[0] == (src, dst):
                return cached[1]
            datagram = self._wire_zero()
            pseudo = pseudo_header(src, dst, UDP_PROTO, len(datagram))
            csum = internet_checksum(pseudo + datagram)
            if csum == 0:
                csum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
            wire = datagram[:6] + struct.pack("!H", csum) + datagram[8:]
            object.__setattr__(self, "_wire_cache", ((src, dst), wire))
            return wire
        return self._wire_zero()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "UDPDatagram":
        """Parse a datagram from wire bytes (declared length preserved)."""
        if len(raw) < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        sport, dport, length, checksum = struct.unpack("!HHHH", raw[:UDP_HEADER_LEN])
        return cls(
            sport=sport,
            dport=dport,
            payload=raw[UDP_HEADER_LEN:],
            length=length,
            checksum=checksum,
        )

    def verify_checksum(self, src: str, dst: str) -> bool:
        """Check the datagram checksum against the pseudo-header for src/dst."""
        if self.checksum is None or self.checksum == 0:
            return True  # zero means "checksum not used" in UDP over IPv4
        cached = self._csum_cache
        if cached is not None and cached[0] == (src, dst):
            return cached[1]
        datagram = self._wire_zero()
        pseudo = pseudo_header(src, dst, UDP_PROTO, len(datagram))
        expected = internet_checksum(pseudo + datagram)
        if expected == 0:
            expected = 0xFFFF
        ok = expected == self.checksum
        object.__setattr__(self, "_csum_cache", ((src, dst), ok))
        return ok

    def copy(self, **changes: object) -> "UDPDatagram":
        """Return a copy with *changes* applied (validating changed ports)."""
        if changes and not _FIELD_NAMES.issuperset(changes):
            bad = ", ".join(sorted(set(changes) - _FIELD_NAMES))
            raise TypeError(f"unknown UDPDatagram field(s): {bad}")
        new = object.__new__(UDPDatagram)
        d = new.__dict__
        d.update(self.__dict__)
        d.pop("_wire0_cache", None)
        d.pop("_wire_cache", None)
        d.pop("_csum_cache", None)
        if changes:
            d.update(changes)
            for name in ("sport", "dport"):
                if name in changes and not 0 <= d[name] <= 0xFFFF:
                    raise ValueError(f"{name} out of range: {d[name]}")
        return new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UDP({self.sport}->{self.dport} len={len(self.payload)})"


install_wire_cache(UDPDatagram, ("_wire0_cache", "_wire_cache", "_csum_cache"))

_FIELD_NAMES = frozenset(f.name for f in fields(UDPDatagram))
