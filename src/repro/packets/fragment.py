"""IP fragmentation and reassembly.

The *payload splitting/reordering via IP fragments* techniques (Table 3)
split one IP datagram into several fragments.  Fragments carry raw transport
bytes (a receiver cannot parse half a TCP header), so reassembly restores the
original typed packet.
"""

from __future__ import annotations

from repro.packets.icmp import ICMP_PROTO, ICMPMessage
from repro.packets.ip import IPPacket, Transport
from repro.packets.tcp import TCP_PROTO, TCPSegment
from repro.packets.udp import UDP_PROTO, UDPDatagram

FRAGMENT_UNIT = 8  # fragment offsets are expressed in 8-byte units


def fragment_packet(
    packet: IPPacket, fragment_size: int, identification: int | None = None
) -> list[IPPacket]:
    """Split *packet* into fragments of at most *fragment_size* payload bytes.

    *fragment_size* is rounded down to a multiple of 8 (the fragment-offset
    unit); it must be at least 8.  Returns the fragments in order.  A packet
    whose payload fits in one fragment is returned unchanged (as a one-element
    list).
    """
    if fragment_size < FRAGMENT_UNIT:
        raise ValueError("fragment_size must be at least 8 bytes")
    fragment_size -= fragment_size % FRAGMENT_UNIT
    body = packet.payload_bytes
    if len(body) <= fragment_size:
        return [packet]
    if packet.df:
        raise ValueError("cannot fragment a packet with DF set")
    ident = identification if identification is not None else packet.identification or 0x4242
    fragments: list[IPPacket] = []
    offset = 0
    while offset < len(body):
        chunk = body[offset : offset + fragment_size]
        last = offset + len(chunk) >= len(body)
        fragments.append(
            packet.copy(
                transport=chunk,
                protocol=packet.effective_protocol,
                identification=ident,
                mf=not last,
                frag_offset=offset // FRAGMENT_UNIT,
                total_length=None,
                checksum=None,
            )
        )
        offset += len(chunk)
    return fragments


def reassemble_fragments(fragments: list[IPPacket]) -> IPPacket | None:
    """Reassemble fragments (any order) into the original packet.

    Returns None when the fragment set is incomplete (holes, missing last
    fragment) or inconsistent.  On success the transport layer is re-parsed
    into its typed form.
    """
    if not fragments:
        return None
    ordered = sorted(fragments, key=lambda p: p.frag_offset)
    # Duplicated fragments (retransmission or a lossy link emitting copies)
    # must not read as an overlap: keep the first arrival at each offset.
    deduped: list[IPPacket] = []
    seen_offsets: set[int] = set()
    for frag in ordered:
        if frag.frag_offset in seen_offsets:
            continue
        seen_offsets.add(frag.frag_offset)
        deduped.append(frag)
    ordered = deduped
    first = ordered[0]
    if first.frag_offset != 0:
        return None
    body = bytearray()
    expected_offset = 0
    saw_last = False
    for frag in ordered:
        if frag.frag_offset * FRAGMENT_UNIT != expected_offset:
            return None  # hole or overlap
        chunk = frag.transport if isinstance(frag.transport, bytes) else frag.payload_bytes
        body.extend(chunk)
        expected_offset += len(chunk)
        if not frag.mf:
            saw_last = True
            break
    if not saw_last:
        return None
    # Parse the reassembled body straight into its typed transport instead of
    # serializing the whole packet and re-parsing it (the header fields are
    # already in hand; only the transport needs re-typing).
    body_bytes = bytes(body)
    protocol = first.effective_protocol
    transport: Transport = body_bytes
    try:
        if protocol == TCP_PROTO:
            transport = TCPSegment.from_bytes(body_bytes)
        elif protocol == UDP_PROTO:
            transport = UDPDatagram.from_bytes(body_bytes)
        elif protocol == ICMP_PROTO:
            transport = ICMPMessage.from_bytes(body_bytes)
    except ValueError:
        transport = body_bytes
    return first.copy(
        transport=transport,
        protocol=protocol,
        mf=False,
        frag_offset=0,
        total_length=None,
        checksum=None,
    )
