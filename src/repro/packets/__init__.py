"""Packet layer: IPv4, TCP, UDP and ICMP construction, parsing and mangling.

The evasion techniques in lib·erate operate purely on wire-format header
fields, so this package provides bit-exact serialization together with
*override* hooks (``checksum``, ``total_length``, ``data_offset`` …) that let
callers craft deliberately malformed packets — the raw material of the inert
packet insertion taxonomy.
"""

from repro.packets.checksum import internet_checksum, pseudo_header
from repro.packets.flow import Direction, FiveTuple
from repro.packets.fragment import fragment_packet, reassemble_fragments
from repro.packets.icmp import ICMPMessage, icmp_time_exceeded
from repro.packets.ip import IPPacket, IPProto
from repro.packets.options import (
    deprecated_ip_option,
    invalid_ip_option,
    nop_padding,
    record_route_option,
)
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram

__all__ = [
    "internet_checksum",
    "pseudo_header",
    "Direction",
    "FiveTuple",
    "fragment_packet",
    "reassemble_fragments",
    "ICMPMessage",
    "icmp_time_exceeded",
    "IPPacket",
    "IPProto",
    "deprecated_ip_option",
    "invalid_ip_option",
    "nop_padding",
    "record_route_option",
    "TCPFlags",
    "TCPSegment",
    "UDPDatagram",
]
