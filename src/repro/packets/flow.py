"""Flow identification: five-tuples, bidirectional keys, directions."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.packets.ip import IPPacket


class Direction(enum.Enum):
    """The direction a packet travels relative to the lib·erate client."""

    CLIENT_TO_SERVER = "c2s"
    SERVER_TO_CLIENT = "s2c"

    @property
    def reversed(self) -> "Direction":
        """The opposite direction."""
        if self is Direction.CLIENT_TO_SERVER:
            return Direction.SERVER_TO_CLIENT
        return Direction.CLIENT_TO_SERVER

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """A unidirectional flow identifier (src, sport, dst, dport, protocol)."""

    src: str
    sport: int
    dst: str
    dport: int
    protocol: int

    @classmethod
    def of(cls, packet: IPPacket) -> "FiveTuple | None":
        """Extract the five-tuple of *packet*, or None for non-TCP/UDP packets."""
        transport = packet.transport
        sport = getattr(transport, "sport", None)
        dport = getattr(transport, "dport", None)
        if sport is None or dport is None:
            return None
        return cls(
            src=packet.src,
            sport=sport,
            dst=packet.dst,
            dport=dport,
            protocol=packet.effective_protocol,
        )

    @property
    def reversed(self) -> "FiveTuple":
        """The five-tuple of the reverse direction."""
        return FiveTuple(
            src=self.dst, sport=self.dport, dst=self.src, dport=self.sport, protocol=self.protocol
        )

    def normalized(self) -> "FiveTuple":
        """A direction-independent key: the lexicographically smaller endpoint first.

        Both directions of the same connection normalize to the same value,
        which is what middlebox flow tables key on.
        """
        a = (self.src, self.sport)
        b = (self.dst, self.dport)
        if a <= b:
            return self
        return self.reversed

    def __str__(self) -> str:
        return f"{self.src}:{self.sport}->{self.dst}:{self.dport}/{self.protocol}"
