"""Flow identification: five-tuples, bidirectional keys, directions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPSegment
from repro.packets.udp import UDPDatagram


class Direction(enum.Enum):
    """The direction a packet travels relative to the lib·erate client."""

    CLIENT_TO_SERVER = "c2s"
    SERVER_TO_CLIENT = "s2c"

    @property
    def reversed(self) -> "Direction":
        """The opposite direction."""
        if self is Direction.CLIENT_TO_SERVER:
            return Direction.SERVER_TO_CLIENT
        return Direction.CLIENT_TO_SERVER

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """A unidirectional flow identifier (src, sport, dst, dport, protocol)."""

    src: str
    sport: int
    dst: str
    dport: int
    protocol: int
    # Memoized normalized() / hash() results; excluded from equality/repr.
    _norm: "FiveTuple | None" = field(default=None, init=False, repr=False, compare=False)
    _hash: int | None = field(default=None, init=False, repr=False, compare=False)

    @classmethod
    def of(cls, packet: IPPacket) -> "FiveTuple | None":
        """Extract the five-tuple of *packet*, or None for non-TCP/UDP packets.

        The result is memoized on the packet (every element along a path
        asks for the same packet's flow key).  The memo is keyed on the
        transport object's identity and re-checked against its ports, so
        replacing or mutating the transport can never surface a stale key;
        any IP-level field assignment clears it via ``__setattr__``.
        """
        transport = packet.transport
        cached = packet._flow_cache
        if cached is not None and cached[0] is transport:
            hit = cached[1]
            if hit is None or (hit.sport == transport.sport and hit.dport == transport.dport):
                return hit
        sport = getattr(transport, "sport", None)
        dport = getattr(transport, "dport", None)
        if sport is None or dport is None:
            key = None
        else:
            # Inline effective_protocol for the typed-transport common case
            # (the property costs a descriptor call per packet per element).
            proto = packet.protocol
            if proto is None:
                ttype = type(transport)
                if ttype is TCPSegment:
                    proto = 6
                elif ttype is UDPDatagram:
                    proto = 17
                else:
                    proto = packet.effective_protocol
            # Intern on the raw field tuple: every packet of a flow then
            # shares one FiveTuple whose normalized()/hash memos are already
            # warm, instead of re-deriving them per packet chain.
            tup = (packet.src, sport, packet.dst, dport, proto)
            key = _KEY_INTERN.get(tup)
            if key is None:
                key = cls(tup[0], sport, tup[2], dport, tup[4])
                _KEY_INTERN[tup] = key
                if len(_KEY_INTERN) > _INTERN_LIMIT:
                    del _KEY_INTERN[next(iter(_KEY_INTERN))]
        object.__setattr__(packet, "_flow_cache", (transport, key))
        return key

    @property
    def reversed(self) -> "FiveTuple":
        """The five-tuple of the reverse direction."""
        return FiveTuple(
            src=self.dst, sport=self.dport, dst=self.src, dport=self.sport, protocol=self.protocol
        )

    def normalized(self) -> "FiveTuple":
        """A direction-independent key: the lexicographically smaller endpoint first.

        Both directions of the same connection normalize to the same value,
        which is what middlebox flow tables key on.  Memoized per instance,
        and interned process-wide: every packet of a connection then maps to
        the *same object*, so flow-table probes take the dict's identity
        fast path instead of calling the generated ``__eq__``.
        """
        norm = self._norm
        if norm is None:
            if (self.src, self.sport) <= (self.dst, self.dport):
                norm = self
            else:
                norm = self.reversed
            interned = _NORMALIZED_INTERN.setdefault(norm, norm)
            if interned is norm and len(_NORMALIZED_INTERN) > _INTERN_LIMIT:
                del _NORMALIZED_INTERN[next(iter(_NORMALIZED_INTERN))]
            norm = interned
            # The normalized tuple is its own normalization.
            object.__setattr__(norm, "_norm", norm)
            object.__setattr__(self, "_norm", norm)
        return norm

    def __hash__(self) -> int:
        # Flow tables hash the same tuples on every packet; the generated
        # dataclass __hash__ rebuilds the field tuple each time, so memoize.
        value = self._hash
        if value is None:
            value = hash((self.src, self.sport, self.dst, self.dport, self.protocol))
            object.__setattr__(self, "_hash", value)
        return value

    def __str__(self) -> str:
        return f"{self.src}:{self.sport}->{self.dst}:{self.dport}/{self.protocol}"


#: Interning tables (bounded, oldest evicted).  Best-effort only — equality
#: semantics never depend on identity.  _KEY_INTERN maps raw field tuples to
#: the shared unidirectional key; _NORMALIZED_INTERN maps normalized keys to
#: their canonical instance so flow-table probes hit the dict identity path.
_KEY_INTERN: dict[tuple, FiveTuple] = {}
_NORMALIZED_INTERN: dict[FiveTuple, FiveTuple] = {}
_INTERN_LIMIT = 16_384
