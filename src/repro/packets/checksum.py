"""RFC 1071 internet checksum and the TCP/UDP pseudo-header.

Every header in this package carries a ``checksum`` field that defaults to
``None`` ("compute the correct value on serialization").  Setting it to a
concrete number freezes that value on the wire, which is how the *wrong
checksum* inert-packet techniques are built.
"""

from __future__ import annotations

import struct
from functools import lru_cache


def internet_checksum(data: bytes | bytearray | memoryview) -> int:
    """Compute the 16-bit one's-complement checksum over *data*.

    Odd-length input is implicitly zero-padded, as specified by RFC 1071.
    The result is the value to place in a header checksum field (i.e. the
    complement of the one's-complement sum).

    The whole buffer is treated as one big-endian integer and folded modulo
    0xFFFF: since 2**16 ≡ 1 (mod 0xFFFF), that residue equals the
    one's-complement sum of the 16-bit words — with the representative for
    the zero class being 0xFFFF for any non-zero input, matching word-wise
    carry folding exactly.  A trailing odd byte contributes its padded word
    directly, so odd-length input needs no reallocation.
    """
    length = len(data)
    if length % 2:
        view = memoryview(data)
        total = int.from_bytes(view[: length - 1], "big") + (view[length - 1] << 8)
    else:
        total = int.from_bytes(data, "big")
    folded = total % 0xFFFF
    if folded == 0 and total:
        folded = 0xFFFF
    return (~folded) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """Return True when *data* (including its checksum field) sums to zero."""
    return internet_checksum(data) == 0


@lru_cache(maxsize=4096)
def ip_to_bytes(address: str) -> bytes:
    """Convert a dotted-quad IPv4 address string to its 4-byte form.

    The simulator serializes the same handful of addresses millions of
    times, so conversions are memoized (the function is pure).
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {address!r}")
    try:
        octets = [int(p) for p in parts]
    except ValueError as exc:
        raise ValueError(f"not an IPv4 address: {address!r}") from exc
    if any(o < 0 or o > 255 for o in octets):
        raise ValueError(f"octet out of range in {address!r}")
    return bytes(octets)


def bytes_to_ip(raw: bytes) -> str:
    """Convert a 4-byte address back to dotted-quad form."""
    if len(raw) != 4:
        raise ValueError("IPv4 address must be 4 bytes")
    return ".".join(str(b) for b in raw)


def pseudo_header(src: str, dst: str, protocol: int, length: int) -> bytes:
    """Build the 12-byte TCP/UDP pseudo-header used in checksum computation."""
    return ip_to_bytes(src) + ip_to_bytes(dst) + struct.pack("!BBH", 0, protocol, length)
