"""repro — a faithful reproduction of lib·erate (IMC 2017).

lib·erate is a library for exposing traffic-classification rules used by
DPI middleboxes and evading them efficiently.  This package implements the
complete system from the paper:

* :mod:`repro.packets` — an IPv4/TCP/UDP/ICMP packet layer able to craft the
  malformed packets the evasion taxonomy relies on,
* :mod:`repro.netsim` — a virtual-clock network simulator with routers,
  malformed-packet filters and token-bucket shapers,
* :mod:`repro.endpoint` — simplified endpoint stacks with per-OS validation
  models (Linux / macOS / Windows),
* :mod:`repro.traffic` — application traffic generators (HTTP, TLS ClientHello
  with SNI, STUN) and the trace record/replay format,
* :mod:`repro.middlebox` — a configurable DPI engine plus profiles for every
  middlebox evaluated in the paper,
* :mod:`repro.envs` — ready-made test environments (testbed, T-Mobile, AT&T,
  Sprint, the Great Firewall of China, Iran),
* :mod:`repro.core` — lib·erate itself: differentiation detection, classifier
  characterization, the evasion-technique taxonomy, evaluation and runtime
  deployment,
* :mod:`repro.replay` — replay client/server machinery.

Quickstart::

    from repro import Liberate
    from repro.envs import make_testbed
    from repro.traffic import http_get_trace

    env = make_testbed()
    trace = http_get_trace(host="video.example.com")
    lib = Liberate(env)
    report = lib.run(trace)
    print(report.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "Liberate",
    "LiberateReport",
    "DetectionReport",
    "CharacterizationReport",
    "EvasionReport",
    "Trace",
    "TracePacket",
    "LiberateSocket",
    "LiberateProxy",
    "RuleCache",
    "__version__",
]

_LAZY_EXPORTS = {
    "Liberate": ("repro.core.pipeline", "Liberate"),
    "LiberateReport": ("repro.core.report", "LiberateReport"),
    "DetectionReport": ("repro.core.report", "DetectionReport"),
    "CharacterizationReport": ("repro.core.report", "CharacterizationReport"),
    "EvasionReport": ("repro.core.report", "EvasionReport"),
    "Trace": ("repro.traffic.trace", "Trace"),
    "TracePacket": ("repro.traffic.trace", "TracePacket"),
    "LiberateSocket": ("repro.core.socketlib", "LiberateSocket"),
    "LiberateProxy": ("repro.core.deployment", "LiberateProxy"),
    "RuleCache": ("repro.core.cache", "RuleCache"),
}


def __getattr__(name: str):
    """Lazily resolve the public API to keep `import repro` cheap and cycle-free."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
