"""Which anomalous packets a middlebox classifier processes vs. ignores.

The key insight of the paper is that middleboxes have *incomplete*
implementations of the network and transport layers: the testbed device
checked almost nothing, the GFC did extensive validation, T-Mobile and Iran
checked partially.  A check set to True here means "the middlebox validates
this and ignores packets that fail" — the packet is still forwarded, it just
doesn't feed the classifier, which is exactly what makes (or breaks) each
inert-packet evasion technique.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram


@dataclass(frozen=True)
class MiddleboxValidation:
    """Validation checks a middlebox applies before inspecting a packet.

    The structural checks every implementation needs just to find the
    payload (IP version, IHL, truncated total length, TCP data offset) are
    always enforced; the rest are configurable per profile.
    """

    require_valid_ip_checksum: bool = False
    require_length_not_long: bool = False  # ignore packets whose declared length overshoots
    require_wellformed_ip_options: bool = False
    reject_deprecated_ip_options: bool = False
    require_valid_tcp_checksum: bool = False
    require_in_window_seq: bool = False
    require_ack_flag: bool = False
    require_valid_flag_combo: bool = False
    require_valid_udp_checksum: bool = False
    require_valid_udp_length: bool = False

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def ip_inspectable(self, packet: IPPacket) -> bool:
        """Can/will the classifier look inside this IP packet at all?"""
        if not packet.has_valid_version() or not packet.has_valid_ihl():
            return False  # cannot even locate the payload
        if packet.total_length_too_short():
            return False  # payload truncated per the declared length
        if self.require_length_not_long and packet.total_length_too_long():
            return False
        if self.require_valid_ip_checksum and not packet.has_valid_checksum():
            return False
        if packet.padded_options:
            if self.require_wellformed_ip_options and not packet.has_wellformed_options():
                return False
            if self.reject_deprecated_ip_options and packet.has_deprecated_options():
                return False
        return True

    def tcp_inspectable(
        self, packet: IPPacket, segment: TCPSegment, expected_seq: int | None
    ) -> bool:
        """Will the classifier feed this TCP segment to its matcher?

        *expected_seq* is the middlebox's view of the flow's next sequence
        number (None when it keeps no stream state).
        """
        if not segment.has_valid_data_offset():
            return False  # cannot locate the payload
        if self.require_valid_tcp_checksum and not segment.verify_checksum(packet.src, packet.dst):
            return False
        if self.require_valid_flag_combo and not segment.flags.is_valid_combination():
            return False
        if self.require_ack_flag:
            established_data = segment.payload and not segment.flags & (
                TCPFlags.SYN | TCPFlags.RST
            )
            if established_data and not segment.flags & TCPFlags.ACK:
                return False
        if self.require_in_window_seq and expected_seq is not None and segment.payload:
            distance = (segment.seq - expected_seq) & 0xFFFFFFFF
            reverse = (expected_seq - segment.seq) & 0xFFFFFFFF
            if min(distance, reverse) > (1 << 20):
                return False
        return True

    def udp_inspectable(self, packet: IPPacket, datagram: UDPDatagram) -> bool:
        """Will the classifier feed this UDP datagram to its matcher?"""
        if self.require_valid_udp_checksum and not datagram.verify_checksum(
            packet.src, packet.dst
        ):
            return False
        if self.require_valid_udp_length and not datagram.has_valid_length():
            return False
        return True

    # ------------------------------------------------------------------
    # canonical profiles (paper §6)
    # ------------------------------------------------------------------
    @classmethod
    def lax(cls) -> "MiddleboxValidation":
        """The testbed device: accepts nearly any malformed packet."""
        return cls()

    @classmethod
    def extensive(cls) -> "MiddleboxValidation":
        """The GFC: validates everything except the TCP checksum and ACK flag."""
        return cls(
            require_valid_ip_checksum=True,
            require_length_not_long=True,
            require_wellformed_ip_options=True,
            reject_deprecated_ip_options=True,
            require_valid_tcp_checksum=False,
            require_in_window_seq=True,
            require_ack_flag=False,
            require_valid_flag_combo=True,
            require_valid_udp_checksum=False,
            require_valid_udp_length=True,
        )

    @classmethod
    def partial_tmobile(cls) -> "MiddleboxValidation":
        """T-Mobile: validates the transport layer but not IP options."""
        return cls(
            require_valid_ip_checksum=True,
            require_length_not_long=True,
            require_wellformed_ip_options=False,
            reject_deprecated_ip_options=False,
            require_valid_tcp_checksum=True,
            require_in_window_seq=True,
            require_ack_flag=True,
            require_valid_flag_combo=True,
            require_valid_udp_checksum=True,
            require_valid_udp_length=True,
        )

    @classmethod
    def partial_iran(cls) -> "MiddleboxValidation":
        """Iran: processes even invalid packets, as long as it can find payload."""
        return cls()
