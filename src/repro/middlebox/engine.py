"""The DPI middlebox engine.

One engine class expresses every classifier implementation the paper
reverse-engineered, through configuration:

* **reassembly mode** — per-packet matching (Iran, the testbed device),
  in-order-only stream assembly that ignores out-of-order segments
  (T-Mobile), or full endpoint-grade reassembly (the GFC);
* **inspection window** — how many payload packets are examined before the
  classifier commits to a final verdict ("match and forget");
* **protocol anchoring** — whether the first payload must look like a known
  protocol (the reason one dummy byte at the start of a flow breaks
  classification in the testbed, T-Mobile and the GFC);
* **validation** — which malformed packets are still fed to the matcher
  (:mod:`repro.middlebox.validation`), the crack every inert-packet
  technique slips through;
* **state retention** — pre-match and post-match flush timeouts, RST-driven
  flushing, and the GFC's residual server:port blocking.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from typing import Callable

from repro.middlebox.flowtable import FlowTable
from repro.middlebox.overload import LoadShedder, OverloadPolicy
from repro.middlebox.policy import PolicyAction
from repro.middlebox.ruleindex import CompiledRuleSet, CompiledView, StreamScan
from repro.middlebox.rules import MatchRule
from repro.middlebox.state import UNCLASSIFIED_FINAL, FlowState
from repro.middlebox.validation import MiddleboxValidation
from repro.netsim.element import NetworkElement, TransitContext
from repro.netsim.shaper import PolicyState
from repro.netsim.timerwheel import TimerWheel
from repro.obs import coverage as obs_coverage
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import ops as obs_ops
from repro.obs import trace as obs_trace
from repro.packets.flow import Direction, FiveTuple
from repro.packets.fragment import reassemble_fragments
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment

#: Protocol prefixes an anchoring classifier accepts at stream offset zero.
PROTOCOL_ANCHORS: tuple[bytes, ...] = (b"GET", b"POST", b"HEAD", b"PUT", b"HTTP/", b"\x16\x03")

#: Stream-reassembling classifiers wait for this many contiguous bytes
#: before judging the protocol anchor.
ANCHOR_MIN_BYTES = 5

TimeoutSpec = float | None | Callable[[float], float | None]


def _flow_fields(key: FiveTuple) -> str:
    """A flow tuple as one deterministic, diff-friendly trace field."""
    return f"{key.src}:{key.sport}>{key.dst}:{key.dport}/{key.protocol}"


def _verdict_name(verdict: MatchRule | str | None) -> str | None:
    """A verdict as its stable trace label (rule name or sentinel string)."""
    if isinstance(verdict, MatchRule):
        return verdict.name
    return verdict


def _flow_cost(state: FlowState) -> int:
    """Approximate heap bytes pinned by one flow's scan state."""
    cost = 256 + len(state.client_buffer) + len(state.server_buffer)
    if state.ooo_segments:
        cost += sum(len(chunk) for chunk in state.ooo_segments.values())
    return cost


def _low_value_flow(state: FlowState) -> bool:
    """Flows whose inspection already finished are the cheapest to evict:
    no classification work is lost, only a final verdict that the flow
    would need to re-earn if it ever resumes.  Blocked flows stay: their
    state keeps injecting resets on further payload."""
    return state.verdict is not None and not state.blocked


class ReassemblyMode(enum.Enum):
    """How the classifier turns packets into a matchable buffer."""

    PER_PACKET = "per-packet"  # each packet matched independently
    IN_ORDER = "in-order"  # stream assembly, out-of-order segments ignored
    FULL = "full"  # endpoint-grade stream assembly with OOO buffering


class DPIMiddlebox(NetworkElement):
    """A configurable deep-packet-inspection middlebox.

    Args:
        name: element label.
        rules: the classification rules to evaluate.
        policy_state: shared marks read by shapers / accounting elements.
        validation: which malformed packets still reach the matcher.
        reassembly: see :class:`ReassemblyMode`.
        reassemble_ip_fragments: virtually reassemble fragments for
            inspection (the fragments themselves are forwarded untouched).
        inspect_packet_limit: payload packets examined per flow before a
            final verdict (None = unlimited).
        inspect_byte_limit: bytes examined per flow (None = unlimited).
        match_and_forget: commit to a final verdict (match or not) and stop
            inspecting; False re-evaluates every packet forever.
        require_protocol_anchor: give up unless the stream starts with a
            known protocol prefix.
        track_flows: classify only flows whose creation (SYN / first UDP
            packet) was seen; False (Iran) matches statelessly per packet.
        ports: restrict inspection to these server ports (None = all).
        classify_udp: whether UDP traffic is classified at all (no
            operational network we tested did).
        pre_match_timeout: seconds of silence after which an unmatched
            flow's state is flushed; may be a callable of the current clock
            (the GFC's time-of-day behaviour).
        post_match_timeout: seconds after which a verdict is flushed.
        rst_flush_pre_match: a client RST before a match flushes flow state.
        rst_flush_post_match: a client RST after a match flushes the verdict.
        rst_timeout_reduction: instead of flushing, a RST shortens both
            timeouts to this value (testbed behaviour: 120 s → 10 s).
        endpoint_block_threshold: after this many blocked flows to the same
            (server, port), block that endpoint outright (GFC: 2).
        endpoint_block_duration: seconds the endpoint stays blocked.
        protocol_agnostic_flow_keying: attribute packets to flows by port
            pair even when the IP protocol field is wrong — the testbed
            device behaved this way (Table 3 footnote 1), which is why the
            *wrong protocol* inert technique evaded it.
        max_flows: flow-table capacity; beyond it the least-recently-active
            flow is evicted (marks cleared).  This is the mechanism the
            paper hypothesizes behind Figure 4's busy-hour flushing:
            "classification results being flushed due to scarce resources".
            Backed by the O(1) slab/LRU store in
            :mod:`repro.middlebox.flowtable`.
        flow_byte_budget: optional bound on the summed scan-buffer bytes
            across tracked flows; exceeding it sheds least-recently-active
            flows (reason ``evicted-bytes``) until back under budget.
        overload: optional :class:`~repro.middlebox.overload.OverloadPolicy`
            enabling deterministic load-shedding (victim preference and
            admission shedding); None keeps historical behaviour exactly.
        fragment_capacity: bound on concurrently-reassembling fragment
            groups (oldest group dropped beyond it).
        endpoint_block_capacity: bound on tracked (server, port) block
            counters / active blocks.
    """

    def __init__(
        self,
        name: str,
        rules: list[MatchRule],
        policy_state: PolicyState,
        validation: MiddleboxValidation | None = None,
        reassembly: ReassemblyMode = ReassemblyMode.PER_PACKET,
        reassemble_ip_fragments: bool = False,
        inspect_packet_limit: int | None = None,
        inspect_byte_limit: int | None = None,
        match_and_forget: bool = True,
        require_protocol_anchor: bool = False,
        track_flows: bool = True,
        ports: frozenset[int] | None = None,
        classify_udp: bool = True,
        udp_inspect_packet_limit: int | None = None,
        pre_match_timeout: TimeoutSpec = None,
        post_match_timeout: TimeoutSpec = None,
        rst_flush_pre_match: bool = False,
        rst_flush_post_match: bool = False,
        rst_timeout_reduction: float | None = None,
        endpoint_block_threshold: int | None = None,
        endpoint_block_duration: float = 90.0,
        protocol_agnostic_flow_keying: bool = False,
        max_flows: int | None = None,
        flow_byte_budget: int | None = None,
        overload: OverloadPolicy | None = None,
        fragment_capacity: int | None = 4096,
        endpoint_block_capacity: int | None = 65536,
    ) -> None:
        self.name = name
        self.rules = list(rules)
        self.policy_state = policy_state
        self.validation = validation if validation is not None else MiddleboxValidation.lax()
        self.reassembly = reassembly
        self.reassemble_ip_fragments = reassemble_ip_fragments
        self.inspect_packet_limit = inspect_packet_limit
        self.inspect_byte_limit = inspect_byte_limit
        self.match_and_forget = match_and_forget
        self.require_protocol_anchor = require_protocol_anchor
        self.track_flows = track_flows
        self.ports = frozenset(ports) if ports is not None else None
        self.classify_udp = classify_udp
        self.udp_inspect_packet_limit = (
            udp_inspect_packet_limit if udp_inspect_packet_limit is not None else inspect_packet_limit
        )
        self.pre_match_timeout = pre_match_timeout
        self.post_match_timeout = post_match_timeout
        self.rst_flush_pre_match = rst_flush_pre_match
        self.rst_flush_post_match = rst_flush_post_match
        self.rst_timeout_reduction = rst_timeout_reduction
        self.endpoint_block_threshold = endpoint_block_threshold
        self.endpoint_block_duration = endpoint_block_duration
        self.protocol_agnostic_flow_keying = protocol_agnostic_flow_keying
        self.max_flows = max_flows
        self.flow_byte_budget = flow_byte_budget
        self.overload = overload
        self.evictions = 0
        self.sheds = 0

        self._compiled = CompiledRuleSet.shared(self.rules)
        self._compiled_source: list[MatchRule] = self.rules
        self._now = 0.0  # last packet's clock time, for event timestamps
        #: Sticky flag: True once any flow received an RST-shortened
        #: timeout, so the per-packet expiry sweep can skip scanning when no
        #: timeout source exists at all.
        self._any_timeout_override = False
        #: Callable timeouts (GFC time-of-day flushing) can shrink between
        #: packets, so fixed-deadline wheel scheduling would fire late; those
        #: configurations keep the per-packet scan.  Constant timeouts (and
        #: RST overrides, which are always constants) use the timer wheel.
        self._scan_timeouts = callable(pre_match_timeout) or callable(post_match_timeout)
        self._wheel: TimerWheel | None = None
        self._shedder = LoadShedder(overload) if overload is not None else None
        prefer_victim = None
        victim_scan_limit = 1
        if overload is not None and overload.prefer_finished_victims:
            prefer_victim = _low_value_flow
            victim_scan_limit = overload.victim_scan_limit
        cost_of = _flow_cost if flow_byte_budget is not None else None
        self._flows: FlowTable[FiveTuple, FlowState] = FlowTable(
            capacity=max_flows,
            byte_budget=flow_byte_budget,
            cost_of=cost_of,
            on_evict=self._flow_evicted,
            prefer_victim=prefer_victim,
            victim_scan_limit=victim_scan_limit,
            name="flows",
        )
        self._fragments: FlowTable[tuple[str, str, int, int], list[IPPacket]] = FlowTable(
            capacity=fragment_capacity, name="fragments"
        )
        self._endpoint_block_counts: FlowTable[tuple[str, int], int] = FlowTable(
            capacity=endpoint_block_capacity, name="endpoint_counts"
        )
        self._endpoint_block_until: FlowTable[tuple[str, int], float] = FlowTable(
            capacity=endpoint_block_capacity,
            name="endpoint_blocks",
            on_evict=self._endpoint_block_evicted,
        )
        self.match_log: list[tuple[float, str, FiveTuple]] = []
        #: Total matches ever logged, surviving log bounding and flushes —
        #: harnesses that bound ``match_log`` (the churn workload) read this
        #: instead of draining the log between flush points.
        self.matches_logged = 0
        #: The coverage recorder this engine last declared its universe to
        #: (identity-compared so re-registration costs one check per view).
        self._coverage_registered: obs_coverage.CoverageRecorder | None = None

    # ==================================================================
    # NetworkElement interface
    # ==================================================================
    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Observe one packet: update classifier state, apply policies, forward."""
        now = ctx.clock.now
        self._now = now
        self._expire(now)

        inspect_target = packet
        if packet.is_fragment:
            if not self.reassemble_ip_fragments:
                return [packet]  # cannot attribute a fragment to a flow
            whole = self._feed_fragment(packet)
            if whole is None:
                return [packet]
            inspect_target = whole

        key = self._flow_key(inspect_target)
        if key is None:
            return [packet]  # non-TCP/UDP (wrong protocol field, ICMP, ...)

        if self.policy_state.blocked_endpoints and self._endpoint_blocked(
            inspect_target, key, now, ctx
        ):
            return []

        if not self.track_flows:
            self._stateless_inspect(inspect_target, ctx)
            return [packet]

        state = self._flow_for(inspect_target, key, now)
        if state is None:
            return [packet]  # untracked mid-flow traffic is invisible to us
        state.last_packet_time = now

        tcp = inspect_target.tcp
        if tcp is not None and int(tcp.flags) & 0x04:  # RST
            self._handle_rst(state, key)
            return [packet]

        if not self._in_scope(state):
            return [packet]

        if state.blocked and state.matched_rule is not None:
            if inspect_target.app_payload:
                self._apply_block(state, state.matched_rule, inspect_target, ctx)
            return [packet]

        if state.inspection_finished:
            return [packet]

        self._inspect(state, inspect_target, now, ctx)
        if self.flow_byte_budget is not None:
            # Scan buffers may have grown; re-appraise and shed if over.
            self._flows.recost(key.normalized())
        return [packet]

    def _flow_key(self, packet: IPPacket) -> FiveTuple | None:
        """The flow a packet belongs to, honoring protocol-agnostic keying."""
        key = FiveTuple.of(packet)
        if key is None or not self.protocol_agnostic_flow_keying:
            return key
        if packet.tcp is not None:
            if key.protocol == 6:
                return key
            return FiveTuple(key.src, key.sport, key.dst, key.dport, 6)
        if packet.udp is not None:
            if key.protocol == 17:
                return key
            return FiveTuple(key.src, key.sport, key.dst, key.dport, 17)
        return key

    def _transport_protocol(self, packet: IPPacket) -> int:
        """The protocol used for inspection dispatch (honors agnostic keying)."""
        if self.protocol_agnostic_flow_keying:
            if packet.tcp is not None:
                return 6
            if packet.udp is not None:
                return 17
        return packet.effective_protocol

    def reset(self) -> None:
        """Forget every flow, fragment buffer, block counter and log entry."""
        self._any_timeout_override = False
        self._wheel = None
        if self.overload is not None:
            self._shedder = LoadShedder(self.overload)
        self._flows.clear()
        self._fragments.clear()
        self._endpoint_block_counts.clear()
        self._endpoint_block_until.clear()
        self.match_log.clear()
        self.matches_logged = 0

    # ==================================================================
    # flow bookkeeping
    # ==================================================================
    def _flow_for(self, packet: IPPacket, key: FiveTuple, now: float) -> FlowState | None:
        normalized = key.normalized()
        state = self._flows.get(normalized)  # touches the LRU chain
        if state is not None:
            return state
        tcp = packet.tcp
        is_flow_start = self._transport_protocol(packet) == 17 or (
            tcp is not None and int(tcp.flags) & 0x12 == 0x02  # SYN without ACK
        )
        if not is_flow_start:
            return None  # mid-flow packet for a flow we never tracked (or flushed)
        if self._shedder is not None and not self._admit_flow(key, normalized, now):
            return None  # shed: the flow forwards uninspected
        protocol = "udp" if self._transport_protocol(packet) == 17 else "tcp"
        expected_seq = None
        if tcp is not None:
            expected_seq = (tcp.seq + 1) & 0xFFFFFFFF
        state = FlowState(
            client_tuple=key,
            protocol=protocol,
            server_port=key.dport,
            created_at=now,
            last_packet_time=now,
            expected_seq=expected_seq,
        )
        # Capacity pressure evicts inside insert() (O(1) via the LRU chain),
        # firing _flow_evicted for the victim before this flow's creation
        # event — the same event order as the historical evict-then-insert.
        self._flows.insert(normalized, state)
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "mbx.flow_created",
                now,
                element=self.name,
                flow=_flow_fields(key),
                proto_name=protocol,
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("mbx.flows_created")
        self._arm_timer(normalized, state, now)
        return state

    def bound_flow_state(self, max_flows: int, match_log_bound: int | None = None) -> None:
        """Bound per-flow state for long-lived (live-serve) deployments.

        Table 3 cells run a handful of flows, so the historical default is
        an unbounded flow table; a transparent proxy pushes an open-ended
        flow population through the *same* engine, where unbounded per-flow
        state is a leak.  Call before serving: completed simulated flows
        never span an eviction (``run_flow`` is synchronous), so bounding
        cannot change any verdict.
        """
        if max_flows < 1:
            raise ValueError("max_flows must be >= 1")
        self.max_flows = max_flows
        self._flows.capacity = max_flows
        if match_log_bound is not None:
            self.match_log = deque(self.match_log, maxlen=match_log_bound)

    def _admit_flow(self, key: FiveTuple, normalized: FiveTuple, now: float) -> bool:
        """Admission control under overload: decide whether to track at all."""
        shedder = self._shedder
        assert shedder is not None
        if self.max_flows is None:
            return True
        fullness = len(self._flows) / self.max_flows
        transition = shedder.crossed(fullness)
        if transition is not None:
            if obs_live.BUS is not None:
                obs_live.BUS.emit(
                    "mbx.overload",
                    element=self.name,
                    phase=transition,
                    fullness=round(fullness, 4),
                    shed=shedder.shed,
                )
            if obs_metrics.METRICS is not None:
                obs_metrics.METRICS.inc(f"mbx.shed.overload_{transition}")
        if shedder.admit(normalized, fullness):
            return True
        self.sheds += 1
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "mbx.flow_shed",
                now,
                element=self.name,
                flow=_flow_fields(key),
                fullness=round(fullness, 4),
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("mbx.shed.flows")
        return False

    def _flow_evicted(self, normalized: FiveTuple, state: FlowState, reason: str) -> None:
        """Table-driven eviction (capacity or byte budget): clean up marks."""
        reason = "evicted" if reason == "evicted" else "evicted-bytes"
        self._flow_dropped(normalized, state, reason)
        self.evictions += 1
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("mbx.evictions")

    def _in_scope(self, state: FlowState) -> bool:
        if self.ports is not None and state.server_port not in self.ports:
            return False
        if state.protocol == "udp" and not self.classify_udp:
            return False
        return True

    def _resolve_timeout(self, spec: TimeoutSpec, now: float) -> float | None:
        if callable(spec):
            return spec(now)
        return spec

    def _timeout_for(self, state: FlowState, now: float) -> float | None:
        """The flush timeout applying to the flow's current category."""
        if state.timeout_override is not None:
            return state.timeout_override
        if state.matched_rule is not None:
            return self._resolve_timeout(self.post_match_timeout, now)
        if state.verdict is None:
            return self._resolve_timeout(self.pre_match_timeout, now)
        return self._resolve_timeout(self.post_match_timeout, now)

    def _arm_timer(self, normalized: FiveTuple, state: FlowState, now: float) -> None:
        """Schedule (or tighten) the flow's expiry timer on the wheel.

        Called when a timeout *source* changes — flow creation, a verdict,
        an RST override — never per packet: activity pushes the true
        deadline later, and the pending timer handles that lazily by
        re-checking the idle condition and rescheduling when it fires.
        Only a deadline **earlier** than the pending one forces a
        replacement (firing late would miss a flush the per-packet scan
        would have caught).
        """
        if self._scan_timeouts:
            return  # callable timeouts keep the exact per-packet scan
        timeout = self._timeout_for(state, now)
        if timeout is None:
            return
        deadline = state.last_packet_time + timeout
        if state.timer_deadline is not None and deadline >= state.timer_deadline:
            return
        wheel = self._wheel
        if wheel is None:
            wheel = self._wheel = TimerWheel()
        if state.timer_id is not None:
            wheel.cancel(state.timer_id)
        handle = self._flows.handle_of(normalized)
        if handle is None:
            return
        state.timer_id = wheel.schedule(deadline, handle)
        state.timer_deadline = deadline

    def _expire(self, now: float) -> None:
        # Fast path: nothing can expire when no timeout is configured, no
        # flow carries an RST-shortened override, and no endpoint is blocked
        # — true for most environments, checked per packet.
        if (
            self.pre_match_timeout is None
            and self.post_match_timeout is None
            and not self._any_timeout_override
            and not len(self._endpoint_block_until)
        ):
            return
        if self._scan_timeouts:
            self._expire_scan(now)
        else:
            self._expire_wheel(now)
        if len(self._endpoint_block_until):
            expired_endpoints = [
                endpoint
                for endpoint, until in self._endpoint_block_until.items()
                if now > until
            ]
            for endpoint in expired_endpoints:
                self._endpoint_block_until.pop(endpoint)
                self.policy_state.blocked_endpoints.discard(endpoint)
                self._endpoint_block_counts.pop(endpoint)

    def _expire_scan(self, now: float) -> None:
        """Per-packet timeout scan, kept for callable (time-of-day) specs."""
        stale: list[FiveTuple] = []
        for normalized, state in self._flows.items():
            timeout = self._timeout_for(state, now)
            if timeout is not None and now - state.last_packet_time > timeout:
                stale.append(normalized)
        for normalized in stale:
            self._forget_flow(normalized, reason="timeout")

    def _expire_wheel(self, now: float) -> None:
        """Batch expiry off the timer wheel: O(timers due), not O(flows).

        Due timers re-check the exact idle condition the scan used (the
        flow may have been touched since the timer was armed) and
        reschedule when not yet stale.  Stale flows flush in flow-table
        insertion order, matching the scan's dict-iteration order.
        """
        wheel = self._wheel
        if wheel is None or not len(wheel):
            return
        due = wheel.advance(now)
        if not due:
            return
        stale: list[tuple[int, FiveTuple]] = []
        for handle in due:
            entry = self._flows.entry_by_handle(handle)
            if entry is None:
                continue  # flow already flushed/evicted; stale handle
            normalized, state = entry
            state.timer_id = None
            state.timer_deadline = None
            timeout = self._timeout_for(state, now)
            if timeout is None:
                continue
            if now - state.last_packet_time > timeout:
                seq = self._flows.seq_of(normalized)
                stale.append((seq if seq is not None else 0, normalized))
            else:
                self._arm_timer(normalized, state, now)
        stale.sort()
        for _seq, normalized in stale:
            self._forget_flow(normalized, reason="timeout")

    def _forget_flow(self, normalized: FiveTuple, reason: str = "flush") -> None:
        state = self._flows.pop(normalized)
        if state is None:
            return
        self._flow_dropped(normalized, state, reason)

    def _flow_dropped(self, normalized: FiveTuple, state: FlowState, reason: str) -> None:
        """Shared teardown for flushed *and* table-evicted flows."""
        if state.timer_id is not None and self._wheel is not None:
            self._wheel.cancel(state.timer_id)
            state.timer_id = None
            state.timer_deadline = None
        self.policy_state.throttled_flows.pop(normalized, None)
        self.policy_state.zero_rated_flows.discard(normalized)
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "mbx.flow_flushed",
                self._now,
                element=self.name,
                reason=reason,
                flow=_flow_fields(state.client_tuple),
                verdict=_verdict_name(state.verdict),
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("mbx.flows_flushed")
            obs_metrics.METRICS.inc(f"mbx.flows_flushed.{reason}")

    def _handle_rst(self, state: FlowState, key: FiveTuple) -> None:
        matched = state.matched_rule is not None
        if matched and self.rst_flush_post_match:
            self._forget_flow(key.normalized(), reason="rst-post-match")
        elif not matched and self.rst_flush_pre_match:
            self._forget_flow(key.normalized(), reason="rst-pre-match")
        elif self.rst_timeout_reduction is not None:
            state.timeout_override = self.rst_timeout_reduction
            self._any_timeout_override = True
            self._arm_timer(key.normalized(), state, self._now)
            if obs_trace.TRACER is not None:
                obs_trace.TRACER.emit(
                    "mbx.rst_timeout_reduced",
                    self._now,
                    element=self.name,
                    flow=_flow_fields(state.client_tuple),
                    timeout=self.rst_timeout_reduction,
                )

    # ==================================================================
    # fragment handling (virtual reassembly for inspection only)
    # ==================================================================
    def _feed_fragment(self, packet: IPPacket) -> IPPacket | None:
        key = (packet.src, packet.dst, packet.identification, packet.effective_protocol)
        bucket = self._fragments.get(key)
        if bucket is None:
            bucket = []
            self._fragments.insert(key, bucket)  # bounds evict oldest group
        bucket.append(packet)
        whole = reassemble_fragments(bucket)
        if whole is not None:
            fragment_count = len(bucket)
            self._fragments.pop(key)
            if obs_trace.TRACER is not None:
                # Provenance: which on-the-wire fragments produced the packet
                # the matcher actually saw.  Flow fields are not yet known
                # (the reassembled transport header carries them), so the
                # fragment key identifies the group.
                obs_trace.TRACER.emit(
                    "mbx.frag_reassembled",
                    self._now,
                    element=self.name,
                    src=packet.src,
                    dst=packet.dst,
                    ident=packet.identification,
                    fragments=fragment_count,
                )
        return whole

    # ==================================================================
    # inspection
    # ==================================================================
    def _inspect(
        self, state: FlowState, packet: IPPacket, now: float, ctx: TransitContext
    ) -> None:
        if not self.validation.ip_inspectable(packet):
            return
        direction = state.direction_of(packet.src, self._sport_of(packet))
        payload = b""
        if self._transport_protocol(packet) == 6 and packet.tcp is not None:
            payload = self._tcp_payload_for_matching(state, packet, packet.tcp, direction)
        elif self._transport_protocol(packet) == 17 and packet.udp is not None:
            if not self.validation.udp_inspectable(packet, packet.udp):
                return
            payload = packet.udp.payload
        if not payload:
            return

        if direction == "client":
            index = state.client_packets
            state.client_packets += 1
        else:
            index = state.server_packets
            state.server_packets += 1

        buffer = self._buffer_for_matching(state, payload, direction)

        if direction == "client" and self.require_protocol_anchor and state.anchor_ok is None:
            self._decide_anchor(state, payload, buffer, index)
            if state.anchor_ok is not None and obs_trace.TRACER is not None:
                obs_trace.TRACER.emit(
                    "mbx.anchor",
                    now,
                    element=self.name,
                    flow=_flow_fields(state.client_tuple),
                    ok=state.anchor_ok,
                )
            if state.anchor_ok is False:
                if self.match_and_forget:
                    self._finalize_unclassified(state, "anchor-failed", now)
                return
        if (
            direction == "client"
            and self.require_protocol_anchor
            and state.anchor_ok is None
            and state.protocol == "tcp"
        ):
            # Stream modes postpone the anchor decision until enough bytes
            # assemble; matching waits with it.
            if self._window_exhausted(state) and self.match_and_forget:
                self._finalize_unclassified(state, "window-exhausted", now)
            return

        matched = self._match_rules(state, buffer, payload, index, direction)
        if matched is not None:
            state.verdict = matched
            state.match_time = now
            self._arm_timer(state.client_tuple.normalized(), state, now)
            self.match_log.append((now, matched.name, state.client_tuple))
            self.matches_logged += 1
            if obs_trace.TRACER is not None:
                self._emit_rule_match(state, matched, buffer, index, direction, now)
            if obs_metrics.METRICS is not None:
                obs_metrics.METRICS.inc("mbx.rule_matches")
            self._apply_policy(state, matched, packet, ctx)
            return

        if self._window_exhausted(state) and self.match_and_forget:
            self._finalize_unclassified(state, "window-exhausted", now)

    def _finalize_unclassified(self, state: FlowState, reason: str, now: float) -> None:
        """Commit the match-and-forget "never going to match" verdict."""
        state.verdict = UNCLASSIFIED_FINAL
        self._arm_timer(state.client_tuple.normalized(), state, now)
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "mbx.verdict",
                now,
                element=self.name,
                flow=_flow_fields(state.client_tuple),
                verdict=UNCLASSIFIED_FINAL,
                reason=reason,
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("mbx.verdicts.unclassified_final")

    def _emit_rule_match(
        self,
        state: FlowState,
        rule: MatchRule,
        buffer: bytes | bytearray,
        index: int,
        direction: str,
        now: float,
    ) -> None:
        """The causal core of a trace: which rule fired, where, and on what.

        The matched byte range is the first keyword occurrence in the
        inspected buffer (None for STUN-attribute rules, which match parsed
        structure rather than a substring), and the watermark is the
        incremental-scan position from :mod:`repro.middlebox.ruleindex` —
        together they say exactly which bytes convicted the flow.
        """
        match_start = match_end = None
        for keyword in rule.keywords:
            offset = bytes(buffer).find(keyword)
            if offset >= 0 and (match_start is None or offset < match_start):
                match_start, match_end = offset, offset + len(keyword)
        scan = state.client_scan if direction == "client" else state.server_scan
        view = self._view(state.protocol, state.server_port, direction)
        tracer = obs_trace.TRACER
        assert tracer is not None
        tracer.emit(
            "mbx.rule_match",
            now,
            element=self.name,
            rule=rule.name,
            action=rule.policy.action.value,
            flow=_flow_fields(state.client_tuple),
            dir=direction,
            packet_index=index,
            match_start=match_start,
            match_end=match_end,
            watermark=scan.watermark if scan is not None else None,
            buffer_len=len(buffer),
            automaton=view.automaton.digest if view.automaton.patterns else None,
            scan_node=scan.node if scan is not None else None,
            rule_scope=view.scope,
        )
        tracer.emit(
            "mbx.verdict",
            now,
            element=self.name,
            flow=_flow_fields(state.client_tuple),
            verdict=rule.name,
            reason="rule-match",
        )

    def _decide_anchor(
        self, state: FlowState, payload: bytes, buffer: bytes | bytearray, index: int
    ) -> None:
        """Settle the protocol-anchor check when enough evidence exists.

        Per-packet classifiers judge the first payload packet as-is (one
        byte of leading payload defeats them); stream classifiers judge the
        assembled stream once at least ``ANCHOR_MIN_BYTES`` are contiguous.
        """
        if state.protocol == "udp":
            state.anchor_ok = True
            return
        if self.reassembly is ReassemblyMode.PER_PACKET:
            if index == 0:
                state.anchor_ok = payload.startswith(PROTOCOL_ANCHORS)
            return
        if len(buffer) >= ANCHOR_MIN_BYTES:
            state.anchor_ok = buffer.startswith(PROTOCOL_ANCHORS)

    def _sport_of(self, packet: IPPacket) -> int:
        transport = packet.transport
        return getattr(transport, "sport", 0)

    def _tcp_payload_for_matching(
        self, state: FlowState, packet: IPPacket, segment: TCPSegment, direction: str
    ) -> bytes:
        expected = state.expected_seq if direction == "client" else None
        if not self.validation.tcp_inspectable(packet, segment, expected):
            return b""
        payload = segment.payload
        if not payload:
            return b""
        if self.reassembly is ReassemblyMode.PER_PACKET or direction == "server":
            return payload
        # Stream modes track the client's sequence space.
        if state.expected_seq is None:
            state.expected_seq = segment.seq  # no SYN seen (shouldn't happen when tracked)
        ahead = (segment.seq - state.expected_seq) & 0xFFFFFFFF
        if ahead == 0:
            state.expected_seq = (state.expected_seq + len(payload)) & 0xFFFFFFFF
            assembled = bytearray(payload)
            if self.reassembly is ReassemblyMode.FULL:
                while state.expected_seq in state.ooo_segments:
                    chunk = state.ooo_segments.pop(state.expected_seq)
                    assembled.extend(chunk)
                    state.expected_seq = (state.expected_seq + len(chunk)) & 0xFFFFFFFF
            return bytes(assembled)
        if ahead < 0x8000_0000:
            # Future data: only FULL mode buffers it; IN_ORDER ignores it.
            if self.reassembly is ReassemblyMode.FULL:
                state.ooo_segments.setdefault(segment.seq, payload)
            return b""
        behind = 0x1_0000_0000 - ahead
        if behind >= len(payload):
            return b""  # duplicate of old data
        fresh = payload[behind:]
        state.expected_seq = (state.expected_seq + len(fresh)) & 0xFFFFFFFF
        return fresh

    def _buffer_for_matching(
        self, state: FlowState, payload: bytes, direction: str
    ) -> bytes | bytearray:
        if self.reassembly is ReassemblyMode.PER_PACKET:
            return payload
        buffer = state.client_buffer if direction == "client" else state.server_buffer
        buffer.extend(payload)
        if self.inspect_byte_limit is not None:
            del buffer[self.inspect_byte_limit :]
        return buffer

    def _view(self, protocol: str, server_port: int, direction: str) -> CompiledView:
        """The precompiled rule view for this flow context (rebuilds if the
        rule list was replaced since compilation)."""
        if self.rules is not self._compiled_source or len(self._compiled.rules) != len(
            self.rules
        ):
            self._compiled = CompiledRuleSet.shared(self.rules)
            self._compiled_source = self.rules
            self._coverage_registered = None  # new catalog: re-declare
        coverage = obs_coverage.COVERAGE
        if coverage is not None and self._coverage_registered is not coverage:
            self._compiled.register_coverage(coverage)
            self._coverage_registered = coverage
        return self._compiled.view(protocol, server_port, direction)

    def _match_rules(
        self,
        state: FlowState,
        buffer: bytes | bytearray,
        packet_payload: bytes,
        index: int,
        direction: str,
    ) -> MatchRule | None:
        view = self._view(state.protocol, state.server_port, direction)
        scan: StreamScan | None = None
        if self.reassembly is not ReassemblyMode.PER_PACKET:
            scan = state.client_scan if direction == "client" else state.server_scan
            if scan is None:
                scan = StreamScan()
                if direction == "client":
                    state.client_scan = scan
                else:
                    state.server_scan = scan
        metrics = obs_metrics.METRICS
        if metrics is not None:
            # Bytes the matcher actually walks: whole buffer per packet in
            # per-packet mode, only the un-scanned tail past the watermark in
            # stream modes (the incremental-scan optimisation).
            if scan is None:
                scanned = len(buffer)
            else:
                scanned = max(0, len(buffer) - scan.watermark)
            metrics.inc("mbx.scan_bytes", scanned)
            metrics.observe("mbx.scan.payload_bytes", scanned)
        ops = obs_ops.OPS
        if ops is None:
            return view.match(buffer, packet_payload, index, scan)
        started = time.perf_counter()
        match = view.match(buffer, packet_payload, index, scan)
        ops.record("mbx.scan", time.perf_counter() - started)
        return match

    def _window_exhausted(self, state: FlowState) -> bool:
        limit = (
            self.udp_inspect_packet_limit if state.protocol == "udp" else self.inspect_packet_limit
        )
        if limit is not None and state.client_packets >= limit:
            return True
        if (
            self.inspect_byte_limit is not None
            and len(state.client_buffer) >= self.inspect_byte_limit
        ):
            return True
        return False

    # ==================================================================
    # stateless (Iran-style) inspection
    # ==================================================================
    def _stateless_inspect(self, packet: IPPacket, ctx: TransitContext) -> None:
        key = FiveTuple.of(packet)
        if key is None:
            return
        if not self.validation.ip_inspectable(packet):
            return
        protocol = "udp" if packet.effective_protocol == 17 else "tcp"
        if protocol == "udp" and not self.classify_udp:
            return
        payload = b""
        server_port = key.dport
        direction = "client"
        if packet.effective_protocol == 6 and packet.tcp is not None:
            if not self.validation.tcp_inspectable(packet, packet.tcp, None):
                return
            payload = packet.tcp.payload
            # Heuristic orientation: traffic *to* a rule port is client-side.
            if self.ports is not None and packet.tcp.sport in self.ports:
                direction = "server"
                server_port = key.sport
        elif packet.effective_protocol == 17 and packet.udp is not None:
            if not self.validation.udp_inspectable(packet, packet.udp):
                return
            payload = packet.udp.payload
        if not payload:
            return
        if self.ports is not None and server_port not in self.ports:
            return
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("mbx.scan_bytes", len(payload))
            obs_metrics.METRICS.observe("mbx.scan.payload_bytes", len(payload))
        ops = obs_ops.OPS
        if ops is None:
            rule = self._view(protocol, server_port, direction).match_stateless(payload)
        else:
            started = time.perf_counter()
            rule = self._view(protocol, server_port, direction).match_stateless(payload)
            ops.record("mbx.scan", time.perf_counter() - started)
        if rule is not None:
            self.match_log.append((ctx.clock.now, rule.name, key))
            self.matches_logged += 1
            if obs_trace.TRACER is not None:
                match_start = match_end = None
                for keyword in rule.keywords:
                    offset = payload.find(keyword)
                    if offset >= 0 and (match_start is None or offset < match_start):
                        match_start, match_end = offset, offset + len(keyword)
                view = self._view(protocol, server_port, direction)
                obs_trace.TRACER.emit(
                    "mbx.rule_match",
                    ctx.clock.now,
                    element=self.name,
                    rule=rule.name,
                    action=rule.policy.action.value,
                    flow=_flow_fields(key),
                    dir=direction,
                    packet_index=None,
                    match_start=match_start,
                    match_end=match_end,
                    watermark=None,
                    buffer_len=len(payload),
                    automaton=view.automaton.digest if view.automaton.patterns else None,
                    scan_node=None,
                    rule_scope=view.scope,
                )
            if obs_metrics.METRICS is not None:
                obs_metrics.METRICS.inc("mbx.rule_matches")
            self._apply_stateless_policy(rule, packet, key, ctx)

    # ==================================================================
    # policy application
    # ==================================================================
    def _apply_policy(
        self, state: FlowState, rule: MatchRule, packet: IPPacket, ctx: TransitContext
    ) -> None:
        key = state.client_tuple
        action = rule.policy.action
        if action is PolicyAction.THROTTLE:
            self.policy_state.throttle(key, rule.policy.throttle_rate_bps)
        elif action is PolicyAction.ZERO_RATE:
            self.policy_state.zero_rate(key)
            if rule.policy.also_throttle:
                self.policy_state.throttle(key, rule.policy.throttle_rate_bps)
        elif action in (PolicyAction.BLOCK_RST, PolicyAction.BLOCK_PAGE):
            state.blocked = True
            self._register_endpoint_block(key, ctx)
            self._apply_block(state, rule, packet, ctx)

    def _apply_stateless_policy(
        self, rule: MatchRule, packet: IPPacket, key: FiveTuple, ctx: TransitContext
    ) -> None:
        action = rule.policy.action
        if action is PolicyAction.THROTTLE:
            self.policy_state.throttle(key, rule.policy.throttle_rate_bps)
        elif action is PolicyAction.ZERO_RATE:
            self.policy_state.zero_rate(key)
        elif action in (PolicyAction.BLOCK_RST, PolicyAction.BLOCK_PAGE):
            self._inject_block(rule, key, packet, ctx)

    def _endpoint_block_evicted(
        self, endpoint: tuple[str, int], until: float, reason: str
    ) -> None:
        """Endpoint-block capacity pressure: the block simply lapses early."""
        self.policy_state.blocked_endpoints.discard(endpoint)
        self._endpoint_block_counts.pop(endpoint)

    def _register_endpoint_block(self, key: FiveTuple, ctx: TransitContext) -> None:
        if self.endpoint_block_threshold is None:
            return
        endpoint = (key.dst, key.dport)
        count = (self._endpoint_block_counts.get(endpoint) or 0) + 1
        self._endpoint_block_counts.insert(endpoint, count)
        if count >= self.endpoint_block_threshold:
            until = ctx.clock.now + self.endpoint_block_duration
            self.policy_state.blocked_endpoints.add(endpoint)
            self._endpoint_block_until.insert(endpoint, until)
            if obs_trace.TRACER is not None:
                obs_trace.TRACER.emit(
                    "mbx.endpoint_block",
                    ctx.clock.now,
                    element=self.name,
                    endpoint=f"{endpoint[0]}:{endpoint[1]}",
                    until=round(until, 6),
                )
            if obs_metrics.METRICS is not None:
                obs_metrics.METRICS.inc("mbx.endpoint_blocks")

    def _endpoint_blocked(
        self, packet: IPPacket, key: FiveTuple, now: float, ctx: TransitContext
    ) -> bool:
        endpoint = (key.dst, key.dport)
        if endpoint not in self.policy_state.blocked_endpoints:
            return False
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "mbx.endpoint_block_hit",
                now,
                element=self.name,
                endpoint=f"{endpoint[0]}:{endpoint[1]}",
                flow=_flow_fields(key),
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("mbx.endpoint_block_hits")
        # Disrupt the connection attempt outright.
        rst = TCPSegment(
            sport=key.dport,
            dport=key.sport,
            seq=0,
            ack=0,
            flags=TCPFlags.RST,
        )
        if packet.effective_protocol == 6:
            ctx.inject_back(IPPacket(src=key.dst, dst=key.src, transport=rst))
        return True

    def _apply_block(
        self, state: FlowState, rule: MatchRule, packet: IPPacket, ctx: TransitContext
    ) -> None:
        self._inject_block(rule, state.client_tuple, packet, ctx)

    def _inject_block(
        self, rule: MatchRule, client_tuple: FiveTuple, packet: IPPacket, ctx: TransitContext
    ) -> None:
        behavior = rule.policy.block
        client, sport = client_tuple.src, client_tuple.sport
        server, dport = client_tuple.dst, client_tuple.dport
        going_to_server = packet.dst == server
        seq_guess = 0
        tcp = packet.tcp
        if tcp is not None:
            seq_guess = (tcp.seq + len(tcp.payload)) & 0xFFFFFFFF

        def toward_client(transport: TCPSegment) -> None:
            injected = IPPacket(src=server, dst=client, transport=transport)
            if going_to_server:
                ctx.inject_back(injected)
            else:
                ctx.inject_forward(injected)

        def toward_server(transport: TCPSegment) -> None:
            injected = IPPacket(src=client, dst=server, transport=transport)
            if going_to_server:
                ctx.inject_forward(injected)
            else:
                ctx.inject_back(injected)

        if behavior.block_page is not None:
            toward_client(
                TCPSegment(
                    sport=dport,
                    dport=sport,
                    seq=1,
                    ack=seq_guess,
                    flags=TCPFlags.ACK | TCPFlags.PSH,
                    payload=behavior.block_page,
                )
            )
        for _ in range(behavior.rsts_to_client):
            toward_client(
                TCPSegment(sport=dport, dport=sport, seq=1, ack=seq_guess, flags=TCPFlags.RST)
            )
        for _ in range(behavior.rsts_to_server):
            toward_server(
                TCPSegment(sport=sport, dport=dport, seq=seq_guess, flags=TCPFlags.RST)
            )

    # ==================================================================
    # readout (testbed ground truth)
    # ==================================================================
    def classification_of(self, client: str, sport: int, server: str, dport: int) -> str | None:
        """The current verdict for a flow: rule name, "unclassified-final", or None."""
        for protocol in (6, 17):
            lookup = FiveTuple(
                src=client, sport=sport, dst=server, dport=dport, protocol=protocol
            ).normalized()
            state = self._flows.peek(lookup)  # readout must not disturb LRU
            if state is not None:
                if isinstance(state.verdict, MatchRule):
                    return state.verdict.name
                return state.verdict
        if not self.track_flows:
            # Stateless classifiers keep no flow table; the match log is the
            # only readout.
            for _time, rule_name, key in reversed(self.match_log):
                if key.src == client and key.sport == sport and key.dport == dport:
                    return rule_name
        return None

    def ever_matched(self, client: str, sport: int) -> bool:
        """True when any match was logged for this client endpoint (any flow)."""
        return any(
            key.src == client and key.sport == sport for _t, _rule, key in self.match_log
        )
