"""Bounded slab/LRU flow store: O(1) insert, touch, evict and pop.

Every stateful table in the middlebox layer (engine flow table, normalizer
flow dict, proxy connection map, fragment buckets, endpoint block counters)
historically used a plain ``dict`` — unbounded, and evicted by an O(n)
min-scan over last-activity times.  :class:`FlowTable` replaces them with a
slab allocator threaded by an intrusive doubly-linked LRU list:

* **slab slots** — entries live in preallocated parallel arrays (key, value,
  generation, insertion sequence, LRU links, byte cost).  Slots are recycled
  through a free list; the arrays grow geometrically up to ``capacity`` and
  never shrink, so steady-state churn allocates nothing.
* **intrusive LRU** — ``get``/``touch`` splice the entry to the MRU end and
  eviction unlinks the LRU end, all by integer index surgery: no heap, no
  scan, no per-entry wrapper objects.
* **generation-stamped handles** — a :class:`Handle` is ``(slot,
  generation)``; recycling a slot bumps its generation, so a stale handle
  held by a timer wheel or shed queue dereferences to ``None`` instead of
  aliasing whichever flow now occupies the slot.  Never a ``KeyError``.
* **bounds** — a ``capacity`` entry bound (LRU-evict on insert) and an
  optional ``byte_budget`` enforced through a caller-supplied ``cost_of``
  function (re-appraised via :meth:`recost` as buffers grow).
* **determinism** — iteration order over :meth:`items`/:meth:`keys` is the
  key-insertion order of the underlying index dict, exactly the semantics
  of the plain ``dict`` tables this replaces, so flush/evict event ordering
  in traces is byte-identical.  Victim selection breaks activity ties by
  insertion order for the same reason.

Eviction victims can be biased toward *low-value* entries (e.g. flows whose
inspection already finished) by a ``prefer_victim`` predicate examined over
a bounded window from the LRU end — the walk is capped by
``victim_scan_limit`` so eviction stays O(1).
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, NamedTuple, TypeVar

from repro.obs import metrics as obs_metrics

K = TypeVar("K")
V = TypeVar("V")

#: Slots preallocated at construction (and the geometric growth floor).
_INITIAL_SLOTS = 64

#: Default cap on the LRU walk when a ``prefer_victim`` predicate is set.
DEFAULT_VICTIM_SCAN_LIMIT = 8

_NIL = -1  # null link in the intrusive list


class Handle(NamedTuple):
    """A generation-stamped reference to a table entry.

    Stays cheap to store (two ints) and safe to hold across evictions: once
    the slot is recycled for another key the generation no longer matches
    and :meth:`FlowTable.entry_by_handle` returns ``None``.
    """

    slot: int
    generation: int


class FlowTable(Generic[K, V]):
    """A bounded LRU mapping with slab storage and O(1) operations.

    Args:
        capacity: maximum entry count (None = unbounded; the slab still
            recycles slots, there is just no forced eviction).
        byte_budget: optional bound on ``sum(cost_of(value))``; exceeding it
            evicts from the LRU end until back under budget.
        cost_of: appraises one value's byte cost (required with
            ``byte_budget``; entries cost 0 without it).
        on_evict: called as ``on_evict(key, value, reason)`` for entries the
            table itself removes (capacity / byte-budget pressure), *not*
            for explicit :meth:`pop`.  Reasons: ``"evicted"`` (capacity),
            ``"evicted-bytes"`` (byte budget).
        prefer_victim: optional predicate marking low-value entries; capacity
            eviction scans up to ``victim_scan_limit`` entries from the LRU
            end for one before falling back to the strict LRU victim.
        victim_scan_limit: bound on that scan (keeps eviction O(1)).
        name: metrics label; when set (and metrics are enabled) evictions
            increment ``mbx.flowtable.<name>.evictions`` and update the
            ``mbx.flowtable.<name>.size`` gauge.
    """

    __slots__ = (
        "capacity",
        "byte_budget",
        "_cost_of",
        "_on_evict",
        "prefer_victim",
        "victim_scan_limit",
        "name",
        "_index",
        "_key",
        "_value",
        "_gen",
        "_seq",
        "_cost",
        "_prev",
        "_next",
        "_free",
        "_head",
        "_tail",
        "_next_seq",
        "total_cost",
        "hits",
        "misses",
        "evictions",
        "inserts",
    )

    def __init__(
        self,
        capacity: int | None = None,
        byte_budget: int | None = None,
        cost_of: Callable[[V], int] | None = None,
        on_evict: Callable[[K, V, str], None] | None = None,
        prefer_victim: Callable[[V], bool] | None = None,
        victim_scan_limit: int = DEFAULT_VICTIM_SCAN_LIMIT,
        name: str | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        if byte_budget is not None and cost_of is None:
            raise ValueError("byte_budget requires cost_of")
        self.capacity = capacity
        self.byte_budget = byte_budget
        self._cost_of = cost_of
        self._on_evict = on_evict
        self.prefer_victim = prefer_victim
        self.victim_scan_limit = victim_scan_limit
        self.name = name
        self._index: dict[K, int] = {}
        size = _INITIAL_SLOTS if capacity is None else min(capacity, _INITIAL_SLOTS)
        self._key: list[K | None] = [None] * size
        self._value: list[V | None] = [None] * size
        self._gen: list[int] = [0] * size
        self._seq: list[int] = [0] * size
        self._cost: list[int] = [0] * size
        self._prev: list[int] = [_NIL] * size
        self._next: list[int] = [_NIL] * size
        self._free: list[int] = list(range(size - 1, -1, -1))
        self._head = _NIL  # MRU end
        self._tail = _NIL  # LRU end
        self._next_seq = 0
        self.total_cost = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0

    # ------------------------------------------------------------------
    # slab plumbing
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        old = len(self._key)
        new = max(_INITIAL_SLOTS, old * 2)
        if self.capacity is not None:
            new = min(new, self.capacity)
        extra = new - old
        self._key.extend([None] * extra)
        self._value.extend([None] * extra)
        self._gen.extend([0] * extra)
        self._seq.extend([0] * extra)
        self._cost.extend([0] * extra)
        self._prev.extend([_NIL] * extra)
        self._next.extend([_NIL] * extra)
        self._free.extend(range(new - 1, old - 1, -1))

    def _link_front(self, slot: int) -> None:
        self._prev[slot] = _NIL
        self._next[slot] = self._head
        if self._head != _NIL:
            self._prev[self._head] = slot
        self._head = slot
        if self._tail == _NIL:
            self._tail = slot

    def _unlink(self, slot: int) -> None:
        prev, nxt = self._prev[slot], self._next[slot]
        if prev != _NIL:
            self._next[prev] = nxt
        else:
            self._head = nxt
        if nxt != _NIL:
            self._prev[nxt] = prev
        else:
            self._tail = prev
        self._prev[slot] = self._next[slot] = _NIL

    def _touch_slot(self, slot: int) -> None:
        if self._head == slot:
            return
        self._unlink(slot)
        self._link_front(slot)

    def _release(self, slot: int) -> V:
        """Unlink *slot*, recycle it, and return its value."""
        self._unlink(slot)
        key = self._key[slot]
        value = self._value[slot]
        del self._index[key]  # type: ignore[arg-type]
        self.total_cost -= self._cost[slot]
        self._key[slot] = None
        self._value[slot] = None
        self._cost[slot] = 0
        self._gen[slot] += 1  # invalidate outstanding handles
        self._free.append(slot)
        return value  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # mapping API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: K) -> bool:
        return key in self._index

    def get(self, key: K, touch: bool = True) -> V | None:
        """The value for *key* (None when absent); touches LRU by default."""
        slot = self._index.get(key)
        if slot is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            self._touch_slot(slot)
        return self._value[slot]

    def peek(self, key: K) -> V | None:
        """Read without disturbing LRU order (readout paths)."""
        return self.get(key, touch=False)

    def touch(self, key: K) -> bool:
        """Mark *key* most-recently-used; False when absent."""
        slot = self._index.get(key)
        if slot is None:
            return False
        self._touch_slot(slot)
        return True

    def insert(self, key: K, value: V) -> Handle:
        """Insert (or replace) *key*, evicting under pressure; returns a handle.

        A replaced key keeps its slot and generation but is re-stamped with
        a fresh insertion sequence and touched to MRU, mirroring
        ``dict.pop`` + re-insert ordering semantics.
        """
        slot = self._index.get(key)
        if slot is not None:
            self.total_cost -= self._cost[slot]
            self._value[slot] = value
            self._cost[slot] = self._cost_of(value) if self._cost_of is not None else 0
            self.total_cost += self._cost[slot]
            self._seq[slot] = self._next_seq
            self._next_seq += 1
            # Match dict pop+insert: the key moves to the back of iteration
            # order as well as to the MRU end.
            del self._index[key]
            self._index[key] = slot
            self._touch_slot(slot)
            self._maybe_shed_bytes(keep=slot)
            return Handle(slot, self._gen[slot])
        if self.capacity is not None and len(self._index) >= self.capacity:
            self.evict(reason="evicted")
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._key[slot] = key
        self._value[slot] = value
        self._cost[slot] = self._cost_of(value) if self._cost_of is not None else 0
        self.total_cost += self._cost[slot]
        self._seq[slot] = self._next_seq
        self._next_seq += 1
        self._index[key] = slot
        self._link_front(slot)
        self.inserts += 1
        self._maybe_shed_bytes(keep=slot)
        return Handle(slot, self._gen[slot])

    def pop(self, key: K, default: V | None = None) -> V | None:
        """Remove *key* and return its value (no eviction callback)."""
        slot = self._index.get(key)
        if slot is None:
            return default
        return self._release(slot)

    def clear(self) -> None:
        """Drop every entry (no eviction callbacks); slab stays allocated."""
        for slot in list(self._index.values()):
            self._key[slot] = None
            self._value[slot] = None
            self._cost[slot] = 0
            self._prev[slot] = self._next[slot] = _NIL
            self._gen[slot] += 1
            self._free.append(slot)
        self._index.clear()
        self._head = self._tail = _NIL
        self.total_cost = 0

    def keys(self) -> Iterator[K]:
        """Keys in insertion order (plain-dict iteration semantics)."""
        return iter(self._index)

    def items(self) -> Iterator[tuple[K, V]]:
        """(key, value) pairs in insertion order."""
        for key, slot in self._index.items():
            yield key, self._value[slot]  # type: ignore[misc]

    def values(self) -> Iterator[V]:
        for slot in self._index.values():
            yield self._value[slot]  # type: ignore[misc]

    # ------------------------------------------------------------------
    # handles and ordering
    # ------------------------------------------------------------------
    def handle_of(self, key: K) -> Handle | None:
        """A generation-stamped handle for *key* (None when absent)."""
        slot = self._index.get(key)
        if slot is None:
            return None
        return Handle(slot, self._gen[slot])

    def entry_by_handle(self, handle: Handle) -> tuple[K, V] | None:
        """Dereference *handle*: ``(key, value)`` while live, else ``None``.

        A handle whose slot was recycled (or whose table was cleared) is
        detected by the generation stamp — stale dereferences are safe.
        """
        slot = handle.slot
        if slot < 0 or slot >= len(self._key):
            return None
        if self._gen[slot] != handle.generation:
            return None
        key = self._key[slot]
        if key is None:
            return None
        return key, self._value[slot]  # type: ignore[return-value]

    def seq_of(self, key: K) -> int | None:
        """The entry's insertion sequence (monotonic; reassigned on replace)."""
        slot = self._index.get(key)
        if slot is None:
            return None
        return self._seq[slot]

    def lru_key(self) -> K | None:
        """The current eviction candidate, without evicting it."""
        if self._tail == _NIL:
            return None
        return self._key[self._tail]

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _pick_victim(self) -> int:
        slot = self._tail
        if self.prefer_victim is None or slot == _NIL:
            return slot
        cursor, scanned = slot, 0
        while cursor != _NIL and scanned < self.victim_scan_limit:
            if self.prefer_victim(self._value[cursor]):  # type: ignore[arg-type]
                return cursor
            cursor = self._prev[cursor]
            scanned += 1
        return slot

    def evict(self, reason: str = "evicted") -> tuple[K, V] | None:
        """Evict one entry (preferring low-value victims near the LRU end)."""
        slot = self._pick_victim()
        if slot == _NIL:
            return None
        key = self._key[slot]
        value = self._release(slot)
        self.evictions += 1
        if self.name is not None and obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc(f"mbx.flowtable.{self.name}.evictions")
            obs_metrics.METRICS.set_gauge(f"mbx.flowtable.{self.name}.size", len(self._index))
        if self._on_evict is not None:
            self._on_evict(key, value, reason)  # type: ignore[arg-type]
        return key, value  # type: ignore[return-value]

    def recost(self, key: K) -> None:
        """Re-appraise *key*'s byte cost after its value grew or shrank."""
        if self._cost_of is None:
            return
        slot = self._index.get(key)
        if slot is None:
            return
        self.total_cost -= self._cost[slot]
        self._cost[slot] = self._cost_of(self._value[slot])  # type: ignore[arg-type]
        self.total_cost += self._cost[slot]
        self._maybe_shed_bytes(keep=slot)

    def _maybe_shed_bytes(self, keep: int) -> None:
        """Evict from the LRU end until back under the byte budget.

        The entry in *keep* (the one just inserted / re-appraised) is never
        chosen — a single oversized flow cannot empty the whole table.
        """
        if self.byte_budget is None:
            return
        while self.total_cost > self.byte_budget and len(self._index) > 1:
            if self._tail == keep:
                break
            victim = self.prefer_victim
            self.prefer_victim = None  # byte pressure evicts strictly LRU
            try:
                self.evict(reason="evicted-bytes")
            finally:
                self.prefer_victim = victim

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counters for metrics/bench payloads (cheap, allocation-light)."""
        return {
            "size": len(self._index),
            "capacity": self.capacity if self.capacity is not None else -1,
            "slots": len(self._key),
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "total_cost": self.total_cost,
        }
